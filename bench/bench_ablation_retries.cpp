// Ablation: single-probe hitlist vs multi-target probing (§3.1: "We could
// improve the response rate by probing multiple targets in each block (as
// Trinocular does), or retrying immediately. Exploration of these options
// is future work.") — we explore both: coverage and traffic cost per
// extra target, and retry/backoff sweeps against an injected-loss plan
// (sim::FaultInjector), including the cross of the two knobs.
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"
#include "sim/fault_injector.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Ablation", "multi-target probing vs the one-probe hitlist",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  util::Table table{{"targets/block", "probes", "blocks mapped", "coverage",
                     "marginal blocks per 1k probes"}};
  std::uint64_t base_probes = 0, base_mapped = 0;
  std::uint64_t prev_probes = 0, prev_mapped = 0;
  std::vector<double> coverages;
  for (const int extra : {0, 1, 2, 4, 8}) {
    core::ProbeConfig probe;
    probe.measurement_id = static_cast<std::uint32_t>(9000 + extra);
    probe.extra_targets_per_block = extra;
    const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
    const double coverage =
        static_cast<double>(map.mapped_blocks()) /
        static_cast<double>(map.blocks_probed);
    coverages.push_back(coverage);
    std::string marginal = "-";
    if (prev_probes != 0) {
      marginal = util::fixed(
          1000.0 * static_cast<double>(map.mapped_blocks() - prev_mapped) /
              static_cast<double>(map.probes_sent - prev_probes),
          1);
    } else {
      base_probes = map.probes_sent;
      base_mapped = map.mapped_blocks();
    }
    table.add_row({std::to_string(1 + extra),
                   util::with_commas(map.probes_sent),
                   util::with_commas(map.mapped_blocks()),
                   util::percent(coverage), marginal});
    prev_probes = map.probes_sent;
    prev_mapped = map.mapped_blocks();
  }
  std::printf("%s\n", table.to_string().c_str());

  // Traffic cost accounting (paper §3.1: one probe per /24 cuts traffic
  // to 0.4% of a complete IPv4 scan; a whole measurement is ~128 MB).
  const std::size_t probe_bytes =
      net::build_echo_request(net::Ipv4Address{192, 0, 2, 1},
                              net::Ipv4Address{1, 2, 3, 4}, 1, 1,
                              net::ProbePayload{})
          .data.size();
  const double hitlist_mb =
      static_cast<double>(base_probes) * probe_bytes / 1e6;
  const double full_scan_mb =
      static_cast<double>(base_probes) * 256.0 * probe_bytes / 1e6;
  std::printf("traffic cost: %.1f MB per hitlist measurement (%s bytes x "
              "%s probes); a full per-address scan would be %.0f MB\n\n",
              hitlist_mb, util::with_commas(probe_bytes).c_str(),
              util::with_commas(base_probes).c_str(), full_scan_mb);

  // --- retry/backoff sweep under injected loss ---------------------------
  // A lossy-but-plausible Internet: 20% forward loss, 10% return loss,
  // plus mild ICMP rate-limiting. Retries are the paper's deferred
  // future work; the sweep shows what they buy and what they cost.
  sim::FaultPlan plan;
  plan.seed = 2017;
  plan.probe_loss_rate = 0.20;
  plan.reply_loss_rate = 0.10;
  plan.rate_limit_site_rate = 0.5;
  plan.rate_limit_drop_rate = 0.15;
  const sim::FaultInjector injector{plan};

  const auto faulty_run = [&](int retries, double backoff_ms,
                              int extra_targets) {
    core::RoundSpec spec;
    spec.probe.measurement_id =
        static_cast<std::uint32_t>(9500 + retries * 10 + extra_targets);
    spec.probe.extra_targets_per_block = extra_targets;
    spec.probe.max_retries = retries;
    spec.probe.retry_backoff_ms = backoff_ms;
    spec.faults = &injector;
    return scenario.verfploeter().run(routes, spec);
  };

  const double clean_coverage = coverages.front();
  util::Table retry_table{{"retries", "probes", "coverage", "recovered",
                           "marginal blocks per 1k probes"}};
  std::vector<double> retry_coverages;
  std::uint64_t rprev_probes = 0, rprev_mapped = 0;
  for (const int retries : {0, 1, 2, 4}) {
    const auto result = faulty_run(retries, 250.0, 0);
    const auto& map = result.map;
    const double coverage = static_cast<double>(map.mapped_blocks()) /
                            static_cast<double>(map.blocks_probed);
    retry_coverages.push_back(coverage);
    std::string marginal = "-";
    if (rprev_probes != 0) {
      marginal = util::fixed(
          1000.0 * static_cast<double>(map.mapped_blocks() - rprev_mapped) /
              static_cast<double>(map.probes_sent - rprev_probes),
          1);
    }
    retry_table.add_row({std::to_string(retries),
                         util::with_commas(map.probes_sent),
                         util::percent(coverage),
                         util::with_commas(result.faults.recovered),
                         marginal});
    rprev_probes = map.probes_sent;
    rprev_mapped = map.mapped_blocks();
  }
  std::printf("retries under a lossy plan (20%% fwd / 10%% rtn loss, "
              "rate-limiting):\n%s\n",
              retry_table.to_string().c_str());

  // Backoff sweep: spacing changes reply timing, not reachability, so
  // coverage should barely move while the probing tail stretches.
  util::Table backoff_table{{"backoff ms", "coverage", "late replies"}};
  std::vector<double> backoff_coverages;
  for (const double backoff_ms : {50.0, 250.0, 2'000.0}) {
    const auto result = faulty_run(2, backoff_ms, 0);
    backoff_coverages.push_back(
        static_cast<double>(result.map.mapped_blocks()) /
        static_cast<double>(result.map.blocks_probed));
    backoff_table.add_row({util::fixed(backoff_ms, 0),
                           util::percent(backoff_coverages.back()),
                           util::with_commas(result.map.cleaning.late)});
  }
  std::printf("backoff sweep (2 retries, same plan):\n%s\n",
              backoff_table.to_string().c_str());

  // Crossing the knobs: extra targets fix stale hitlist entries, retries
  // fix loss; under a lossy plan they stack.
  util::Table cross_table{{"targets/block", "retries", "probes",
                           "coverage"}};
  double cross_base = 0.0, cross_both = 0.0;
  for (const int extra : {0, 1}) {
    for (const int retries : {0, 2}) {
      const auto result = faulty_run(retries, 250.0, extra);
      const double coverage =
          static_cast<double>(result.map.mapped_blocks()) /
          static_cast<double>(result.map.blocks_probed);
      if (extra == 0 && retries == 0) cross_base = coverage;
      if (extra == 1 && retries == 2) cross_both = coverage;
      cross_table.add_row({std::to_string(1 + extra),
                           std::to_string(retries),
                           util::with_commas(result.map.probes_sent),
                           util::percent(coverage)});
    }
  }
  std::printf("multi-target x retries under the same plan:\n%s\n",
              cross_table.to_string().c_str());

  std::printf("shape checks:\n");
  bench::shape("hitlist traffic is a sliver of a full scan", "0.4%",
               util::percent(hitlist_mb / full_scan_mb),
               std::abs(hitlist_mb / full_scan_mb - 1.0 / 256.0) < 1e-9);
  bench::shape("extra targets raise coverage", "rising",
               util::percent(coverages.front()) + " -> " +
                   util::percent(coverages.back()),
               coverages.back() > coverages.front() + 0.02);
  // Per-probe marginals: the step 0->1 adds 1 probe/block, the last step
  // (4->8) adds 4, so normalize before comparing.
  const double first_marginal = coverages[1] - coverages[0];
  const double last_marginal =
      (coverages.back() - coverages[coverages.size() - 2]) / 4.0;
  bench::shape("with diminishing returns per probe", "diminishing",
               util::percent(first_marginal) + " then " +
                   util::percent(last_marginal) + " per probe",
               first_marginal > last_marginal);
  bench::shape("paper's one-probe design already catches most of it",
               "~55%", util::percent(coverages.front()),
               coverages.front() > 0.8 * coverages.back());
  bench::shape("injected loss dents coverage", "below clean",
               util::percent(retry_coverages.front()) + " vs " +
                   util::percent(clean_coverage),
               retry_coverages.front() < clean_coverage - 0.02);
  bench::shape("retries claw it back monotonically", "rising to ~clean",
               util::percent(retry_coverages.front()) + " -> " +
                   util::percent(retry_coverages.back()),
               retry_coverages.back() > clean_coverage - 0.01 &&
                   retry_coverages[1] >= retry_coverages[0] &&
                   retry_coverages[2] >= retry_coverages[1] &&
                   retry_coverages[3] >= retry_coverages[2]);
  bench::shape("backoff spacing is coverage-neutral", "flat",
               util::percent(backoff_coverages.front()) + " ~ " +
                   util::percent(backoff_coverages.back()),
               std::abs(backoff_coverages.front() -
                        backoff_coverages.back()) < 0.01);
  bench::shape("retries and extra targets stack under loss", "stacking",
               util::percent(cross_base) + " -> " + util::percent(cross_both),
               cross_both > cross_base + 0.05);
  (void)base_mapped;
  return 0;
}
