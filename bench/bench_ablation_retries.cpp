// Ablation: single-probe hitlist vs multi-target probing (§3.1: "We could
// improve the response rate by probing multiple targets in each block (as
// Trinocular does), or retrying immediately. Exploration of these options
// is future work.") — we explore it: coverage and traffic cost per extra
// target.
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Ablation", "multi-target probing vs the one-probe hitlist",
                scenario);

  const auto routes = scenario.route(scenario.broot(), analysis::kMayEpoch);
  util::Table table{{"targets/block", "probes", "blocks mapped", "coverage",
                     "marginal blocks per 1k probes"}};
  std::uint64_t base_probes = 0, base_mapped = 0;
  std::uint64_t prev_probes = 0, prev_mapped = 0;
  std::vector<double> coverages;
  for (const int extra : {0, 1, 2, 4, 8}) {
    core::ProbeConfig probe;
    probe.measurement_id = static_cast<std::uint32_t>(9000 + extra);
    probe.extra_targets_per_block = extra;
    const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
    const double coverage =
        static_cast<double>(map.mapped_blocks()) /
        static_cast<double>(map.blocks_probed);
    coverages.push_back(coverage);
    std::string marginal = "-";
    if (prev_probes != 0) {
      marginal = util::fixed(
          1000.0 * static_cast<double>(map.mapped_blocks() - prev_mapped) /
              static_cast<double>(map.probes_sent - prev_probes),
          1);
    } else {
      base_probes = map.probes_sent;
      base_mapped = map.mapped_blocks();
    }
    table.add_row({std::to_string(1 + extra),
                   util::with_commas(map.probes_sent),
                   util::with_commas(map.mapped_blocks()),
                   util::percent(coverage), marginal});
    prev_probes = map.probes_sent;
    prev_mapped = map.mapped_blocks();
  }
  std::printf("%s\n", table.to_string().c_str());

  // Traffic cost accounting (paper §3.1: one probe per /24 cuts traffic
  // to 0.4% of a complete IPv4 scan; a whole measurement is ~128 MB).
  const std::size_t probe_bytes =
      net::build_echo_request(net::Ipv4Address{192, 0, 2, 1},
                              net::Ipv4Address{1, 2, 3, 4}, 1, 1,
                              net::ProbePayload{})
          .data.size();
  const double hitlist_mb =
      static_cast<double>(base_probes) * probe_bytes / 1e6;
  const double full_scan_mb =
      static_cast<double>(base_probes) * 256.0 * probe_bytes / 1e6;
  std::printf("traffic cost: %.1f MB per hitlist measurement (%s bytes x "
              "%s probes); a full per-address scan would be %.0f MB\n\n",
              hitlist_mb, util::with_commas(probe_bytes).c_str(),
              util::with_commas(base_probes).c_str(), full_scan_mb);

  std::printf("shape checks:\n");
  bench::shape("hitlist traffic is a sliver of a full scan", "0.4%",
               util::percent(hitlist_mb / full_scan_mb),
               std::abs(hitlist_mb / full_scan_mb - 1.0 / 256.0) < 1e-9);
  bench::shape("extra targets raise coverage", "rising",
               util::percent(coverages.front()) + " -> " +
                   util::percent(coverages.back()),
               coverages.back() > coverages.front() + 0.02);
  // Per-probe marginals: the step 0->1 adds 1 probe/block, the last step
  // (4->8) adds 4, so normalize before comparing.
  const double first_marginal = coverages[1] - coverages[0];
  const double last_marginal =
      (coverages.back() - coverages[coverages.size() - 2]) / 4.0;
  bench::shape("with diminishing returns per probe", "diminishing",
               util::percent(first_marginal) + " then " +
                   util::percent(last_marginal) + " per probe",
               first_marginal > last_marginal);
  bench::shape("paper's one-probe design already catches most of it",
               "~55%", util::percent(coverages.front()),
               coverages.front() > 0.8 * coverages.back());
  (void)base_mapped;
  return 0;
}
