// Figure 9: stability of Tangled's catchments over 24 hours — 96 rounds
// at 15-minute intervals, each VP classified as stable / flipped /
// to-non-responsive / from-non-responsive against the previous round.
#include "analysis/stability.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  // The 96-round campaign is the most expensive bench; default to a
  // half-size Internet so the full sweep stays under a minute.
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Figure 9", "Tangled catchment stability over 24h (96 rounds)",
                scenario);

  const auto routes_ptr = scenario.route(scenario.tangled());
  const auto& routes = *routes_ptr;
  analysis::StabilityAccumulator accumulator{scenario.topo()};
  core::ProbeConfig probe;
  probe.order_seed = 97;
  for (std::uint32_t round = 0; round < 96; ++round) {
    probe.measurement_id = 3000 + round;
    const auto result = scenario.verfploeter().run(
        routes, {probe, round, util::SimTime::from_minutes(15.0 * round)});
    accumulator.add_round(result.map);
    if (round % 24 == 23)
      std::printf("  ... %u/96 rounds (t=%s)\n", round + 1,
                  util::format_hms(result.started).c_str());
  }
  const auto report = accumulator.finish();

  std::printf("\nper-transition series (every 8th shown; 1 point = 15 min):\n");
  util::Table series{{"t", "stable", "to_NR", "from_NR", "flipped"}};
  for (std::size_t i = 0; i < report.transitions.size(); i += 8) {
    const auto& t = report.transitions[i];
    series.add_row({util::format_hms(util::SimTime::from_minutes(
                        15.0 * static_cast<double>(i + 1))),
                    util::with_commas(t.stable), util::with_commas(t.to_nr),
                    util::with_commas(t.from_nr),
                    util::with_commas(t.flipped)});
  }
  std::printf("%s\n", series.to_string().c_str());

  const double stable = report.median_stable();
  const double flipped = report.median_flipped();
  const double to_nr = report.median_to_nr();
  const double from_nr = report.median_from_nr();
  const double responding = stable + flipped + to_nr;

  std::printf("medians: stable=%s to_NR=%s from_NR=%s flipped=%s\n\n",
              util::si_count(stable).c_str(), util::si_count(to_nr).c_str(),
              util::si_count(from_nr).c_str(),
              util::si_count(flipped).c_str());

  std::printf("shape checks (paper: Figure 9, STV-3-23):\n");
  bench::shape("catchments are overwhelmingly stable", "~95%",
               util::percent(stable / responding),
               stable / responding > 0.90);
  bench::shape("responsiveness churn per round", "~2.4%",
               util::percent(to_nr / responding),
               to_nr / responding > 0.01 && to_nr / responding < 0.06);
  bench::shape("flips are rare", "~0.1%", util::percent(flipped / responding),
               flipped / responding > 0.0001 &&
                   flipped / responding < 0.01);
  bench::shape("churn is two-sided (from_NR ~ to_NR)", "~89k each",
               util::si_count(from_nr) + " vs " + util::si_count(to_nr),
               std::abs(from_nr - to_nr) < 0.5 * to_nr);
  return 0;
}
