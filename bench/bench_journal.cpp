// Journaling overhead: per-round cost of the crash-safe campaign journal
// (core/journal.hpp) — serialize + CRC + append + fsync per completed
// round — against the bare campaign loop. Target: the journaling code
// path costs < 5% of round wall time, since the paper's production shape
// (96 rounds, 24 hours, §4.2) journals once per ~15 simulated minutes
// and durability must not meaningfully tax the probing path.
//
// Two journal placements separate what the code costs from what the
// disk costs: tmpfs (/dev/shm) isolates the journaling path itself,
// while a disk-backed journal adds the fsync + writeback price of real
// durability — on a single-CPU box the deferred writeback competes with
// the next round's compute, which is a property of the disk, not the
// journal. The < 5% shape check applies to the code path.
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "core/campaign.hpp"
#include "util/format.hpp"

using namespace vp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

long file_size(const char* path) {
  struct stat st{};
  return ::stat(path, &st) == 0 ? static_cast<long>(st.st_size) : 0;
}

}  // namespace

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.4)};
  bench::banner("Journal", "crash-safe journaling overhead per round",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  const std::uint64_t deployment = anycast::fingerprint(scenario.broot());
  const char* disk_path = "/tmp/vp_bench_journal.bin";
  struct stat shm{};
  const bool have_shm = ::stat("/dev/shm", &shm) == 0;
  const char* shm_path =
      have_shm ? "/dev/shm/vp_bench_journal.bin" : disk_path;
  constexpr std::uint32_t kRounds = 8;
  core::ProbeConfig probe;
  probe.measurement_id = 7000;
  const auto make_campaign = [&] {
    core::Campaign campaign{scenario.verfploeter(), routes};
    campaign.probe(probe).rounds(kRounds).interval(
        util::SimTime::from_minutes(15));
    return campaign;
  };

  // Warm up, then time the pieces directly. The journal's cost is a few
  // ms per round — far below a shared box's run-to-run drift — so
  // subtracting whole-campaign wall clocks would measure the machine,
  // not the journal. Instead: time bare rounds, then time appending
  // those rounds' actual results through the real journal, and take the
  // ratio. Best-of-N each.
  const auto timed = [](const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return seconds_since(start);
  };
  make_campaign().run();
  double bare = 1e30;
  std::vector<core::RoundResult> results;
  for (int rep = 0; rep < 3; ++rep)
    bare = std::min(bare, timed([&] { results = make_campaign().run(); }));
  const double per_round = bare / kRounds;

  const core::JournalManifest manifest{
      make_campaign().journal(disk_path, deployment).fingerprint(), kRounds};
  const auto append_all = [&](const char* path) {
    core::CampaignJournal journal;
    journal.open(path, manifest, false);
    for (std::uint32_t r = 0; r < kRounds; ++r)
      journal.append_round(r, results[r]);
    journal.close();
  };
  double code = 1e30, disk = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    if (have_shm) code = std::min(code, timed([&] { append_all(shm_path); }));
    disk = std::min(disk, timed([&] { append_all(disk_path); }));
  }
  if (!have_shm) code = disk;
  const long journal_bytes = file_size(disk_path);
  if (have_shm) std::remove(shm_path);

  // Integration numbers: a real journaled campaign and its resume.
  const auto journaled =
      make_campaign().journal(disk_path, deployment).run_reported();
  core::CampaignReport resumed;
  double resume = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    resume = std::min(resume, timed([&] {
      resumed = make_campaign()
                    .journal(disk_path, deployment)
                    .resume()
                    .run_reported();
    }));
  }
  std::remove(disk_path);

  const auto row = [&](const char* name, double per_append) {
    return std::vector<std::string>{name,
                                    util::fixed(per_append * 1e3, 2) + " ms",
                                    util::percent(per_append / per_round)};
  };
  util::Table table{{"cost", "per round", "of round time"},
                    {util::Align::kLeft}};
  table.add_row({"bare round (probe + collect + clean)",
                 util::fixed(per_round * 1e3, 2) + " ms", "-"});
  table.add_row(row(have_shm ? "journal append (tmpfs: code path)"
                             : "journal append (no tmpfs: disk)",
                    code / kRounds));
  table.add_row(row("journal append (disk: + fsync durability)",
                    disk / kRounds));
  table.add_row(row("resume, per journaled round skipped",
                    resume / kRounds));
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "journal size: %s bytes (%s per round); resume loaded %u rounds, "
      "re-ran %u\n",
      util::with_commas(static_cast<std::uint64_t>(journal_bytes)).c_str(),
      util::with_commas(static_cast<std::uint64_t>(journal_bytes) / kRounds)
          .c_str(),
      resumed.rounds_loaded, resumed.rounds_executed);

  const double overhead = (code / kRounds) / per_round;
  const double durable = (disk / kRounds) / per_round;
  bench::shape("journaling code path < 5% of round time", "< 5%",
               util::percent(overhead), overhead < 0.05);
  bench::shape("with disk durability (fsync per append)", "< 10%",
               util::percent(durable), durable < 0.10);
  return journaled.ok() && resumed.rounds_loaded == kRounds &&
                 overhead < 0.05
             ? 0
             : 1;
}
