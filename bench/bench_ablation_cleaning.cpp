// Ablation: what the §4 data-cleaning pipeline is worth. Re-runs one
// B-Root round and compares the cleaned catchment map against a naive
// map built from raw replies (no dedup, no unsolicited/late filters),
// scoring both against the simulator's ground truth.
#include <unordered_map>

#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Ablation", "value of the data-cleaning pipeline (§4)",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;

  // Re-implement a "no cleaning" collector path: every raw reply counts,
  // attribution by reply source, later replies overwrite earlier ones.
  const auto& hitlist = scenario.hitlist();
  const auto& internet = scenario.internet();
  std::unordered_map<std::uint32_t, anycast::SiteId> naive;  // block->site
  std::uint64_t raw_replies = 0;
  util::SimTime now{};
  const util::SimTime gap = util::SimTime::from_seconds(1.0 / 10'000.0);
  for (const auto& entry : hitlist.entries()) {
    net::ProbePayload payload;
    payload.measurement_id = 424242;
    payload.tx_time_usec = now.usec;
    payload.original_target = entry.target;
    const auto probe = net::build_echo_request(
        scenario.broot().measurement_address, entry.target, 42, 1, payload);
    for (const auto& delivery : internet.probe(routes, probe.data, now, 0)) {
      ++raw_replies;
      const auto parsed = net::parse_reply(delivery.packet.data);
      if (!parsed) continue;
      naive[net::Block24::containing(parsed->ip.source).index()] =
          delivery.site;  // last reply wins; no filters at all
    }
    now += gap;
  }

  core::RoundSpec spec;
  spec.probe.measurement_id = 424242;
  bench::RoundTally tally;
  const auto clean = scenario.verfploeter().run(routes, spec, &tally).map;

  std::uint64_t clean_correct = 0, clean_wrong = 0;
  for (const auto& [block, site] : clean.entries()) {
    if (site == internet.ground_truth_site(routes, block, 0))
      ++clean_correct;
    else
      ++clean_wrong;
  }
  std::uint64_t naive_correct = 0, naive_wrong = 0, naive_phantom = 0;
  for (const auto& [index, site] : naive) {
    const net::Block24 block{index};
    if (scenario.topo().block_info(block) == nullptr) {
      ++naive_phantom;  // a block we never probed (cross-block alias)
      continue;
    }
    if (site == internet.ground_truth_site(routes, block, 0))
      ++naive_correct;
    else
      ++naive_wrong;
  }

  util::Table table{{"pipeline", "blocks mapped", "correct", "wrong",
                     "error rate"},
                    {util::Align::kLeft}};
  table.add_row({"cleaned (§4)", util::with_commas(clean.mapped_blocks()),
                 util::with_commas(clean_correct),
                 util::with_commas(clean_wrong),
                 util::percent(static_cast<double>(clean_wrong) /
                               static_cast<double>(clean.mapped_blocks()))});
  table.add_row(
      {"naive (raw replies)", util::with_commas(naive.size()),
       util::with_commas(naive_correct),
       util::with_commas(naive_wrong + naive_phantom),
       util::percent(static_cast<double>(naive_wrong + naive_phantom) /
                     static_cast<double>(naive.size()))});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("raw replies handled: %s (cleaned pipeline dropped %s)\n\n",
              util::with_commas(raw_replies).c_str(),
              util::with_commas(tally.cleaning.dropped()).c_str());

  std::printf("shape checks:\n");
  bench::shape("cleaned map agrees with ground truth", "100%",
               util::percent(static_cast<double>(clean_correct) /
                             static_cast<double>(clean.mapped_blocks())),
               clean_wrong == 0);
  bench::shape("naive map contains wrong/phantom attributions", ">0",
               util::with_commas(naive_wrong + naive_phantom),
               naive_wrong + naive_phantom > 0);
  return 0;
}
