// Figure 8: per announced-prefix length, the distribution of how many
// Tangled sites the prefix's blocks are served by. Long prefixes are
// mostly single-site; large (short) prefixes split across several.
// Also reports the §6.2 address-space share needing multiple VPs (~38%).
#include "analysis/divisions.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 8", "sites seen per announced prefix, by length",
                scenario);

  const auto routes_ptr = scenario.route(scenario.tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 8000;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  const auto rows = analysis::analyze_prefix_sites(scenario.topo(), map);

  util::Table table{{"len", "prefixes", "1 site", "2", "3", "4", "5", "6+",
                     "mean sites"},
                    {util::Align::kLeft}};
  for (const auto& row : rows) {
    table.add_row({"/" + std::to_string(row.prefix_length),
                   util::with_commas(row.prefix_count),
                   util::percent(row.fraction_by_sites[0]),
                   util::percent(row.fraction_by_sites[1]),
                   util::percent(row.fraction_by_sites[2]),
                   util::percent(row.fraction_by_sites[3]),
                   util::percent(row.fraction_by_sites[4]),
                   util::percent(row.fraction_by_sites[5]),
                   util::fixed(row.mean_sites, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto share = analysis::multi_vp_address_share(scenario.topo(), map);
  std::printf(
      "address space in multi-site prefixes: %s of %s observed blocks "
      "(%s)\n\n",
      util::with_commas(share.multi_site_blocks).c_str(),
      util::with_commas(share.observed_blocks).c_str(),
      util::percent(share.fraction()).c_str());

  std::printf("shape checks (paper: Figure 8 + §6.2):\n");
  // Long prefixes (/23,/24) overwhelmingly single-site.
  double long_single = 0;
  int long_n = 0;
  double short_mean = 0;
  int short_n = 0;
  std::uint8_t shortest = 32;
  for (const auto& row : rows) shortest = std::min(shortest, row.prefix_length);
  for (const auto& row : rows) {
    if (row.prefix_length >= 23) {
      long_single += row.fraction_by_sites[0];
      ++long_n;
    }
    if (row.prefix_length <= shortest + 3 && row.prefix_count >= 2) {
      short_mean += 1.0 - row.fraction_by_sites[0];
      ++short_n;
    }
  }
  bench::shape("long prefixes (/23+) are mostly single-site", "~80%",
               util::percent(long_single / std::max(long_n, 1)),
               long_n > 0 && long_single / long_n > 0.7);
  bench::shape("the largest prefixes usually split", "75% of /10s",
               util::percent(short_mean / std::max(short_n, 1)) +
                   " multi-site",
               short_n > 0 && short_mean / short_n > 0.5);
  bench::shape("multi-site prefixes hold a big share of address space",
               "38%", util::percent(share.fraction()),
               share.fraction() > 0.15 && share.fraction() < 0.7);
  return 0;
}
