// Figure 3: catchments of the nine-site Tangled testbed from RIPE Atlas
// and Verfploeter. The story: with more sites the denser coverage matters
// more — only Verfploeter sees China at all, and per-region site mixes
// differ qualitatively between the two systems.
#include "analysis/geomaps.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 3", "Tangled catchments: Atlas vs Verfploeter",
                scenario);

  const auto& tangled = scenario.tangled();
  const auto routes_ptr = scenario.route(tangled);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 301;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  const auto campaign =
      scenario.atlas().measure(routes, scenario.internet().flips(), 0);

  std::vector<std::string> categories;
  for (const auto& site : tangled.sites) categories.push_back(site.code);
  categories.push_back("UNK");

  const auto atlas_bins = analysis::bin_atlas(
      scenario.atlas(), campaign, tangled.sites.size());
  const auto verf_bins =
      analysis::bin_catchment(scenario.topo(), map, tangled.sites.size());

  std::printf("--- (a) RIPE Atlas (VPs) ---\n%s\n",
              analysis::render_map_summary(atlas_bins, categories).c_str());
  std::printf("--- (b) Verfploeter (/24 blocks) ---\n%s\n",
              analysis::render_map_summary(verf_bins, categories).c_str());

  std::printf("per-site catchment sizes (Verfploeter):\n");
  const auto counts = map.per_site_counts(tangled.sites.size());
  util::Table table{{"site", "/24 blocks", "share"}, {util::Align::kLeft}};
  for (std::size_t s = 0; s < counts.size(); ++s) {
    table.add_row({tangled.sites[s].code, util::with_commas(counts[s]),
                   util::percent(static_cast<double>(counts[s]) /
                                 static_cast<double>(map.mapped_blocks()))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper: Figure 3, STA/STV-2-01):\n");
  double atlas_total = 0, verf_total = 0, verf_china = 0, atlas_china = 0;
  for (const auto& row : atlas_bins.rows()) {
    atlas_total += row.total;
    const auto c = row.bin.center();
    if (c.lat > 18 && c.lat < 46 && c.lon > 95 && c.lon < 125)
      atlas_china += row.total;
  }
  for (const auto& row : verf_bins.rows()) {
    verf_total += row.total;
    const auto c = row.bin.center();
    if (c.lat > 18 && c.lat < 46 && c.lon > 95 && c.lon < 125)
      verf_china += row.total;
  }
  bench::shape("only Verfploeter provides coverage of China", ">0 vs ~0",
               util::si_count(verf_china) + " vs " +
                   util::si_count(atlas_china),
               verf_china > 100 && atlas_china < 5);
  std::size_t active_sites = 0;
  for (std::size_t s = 0; s < counts.size(); ++s)
    active_sites += counts[s] > 0;
  bench::shape("all visible sites attract catchments", "8 sites",
               std::to_string(active_sites) + " sites", active_sites >= 7);
  const auto gru = tangled.site_by_code("GRU");
  bench::shape("the shadowed Sao Paulo site attracts nothing", "hidden",
               util::with_commas(counts[static_cast<std::size_t>(*gru)]),
               counts[static_cast<std::size_t>(*gru)] == 0);
  const auto hnd = tangled.site_by_code("HND");
  const double hnd_share =
      static_cast<double>(counts[static_cast<std::size_t>(*hnd)]) /
      static_cast<double>(map.mapped_blocks());
  bench::shape("the weakly-connected Tokyo site stays small", "small HND",
               util::percent(hnd_share), hnd_share < 0.25);
  return 0;
}
