// Figure 5: AS-path prepending sweep on B-Root — fraction of the
// catchment going to LAX under {+1 LAX, equal, +1 MIA, +2 MIA, +3 MIA},
// measured both with Atlas (VPs) and Verfploeter (/24 blocks).
#include "analysis/scenario.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 5", "prepending sweep: fraction of catchment to LAX",
                scenario);

  struct Config {
    const char* label;
    const char* site;
    int amount;
  };
  const Config configs[] = {{"+1 LAX", "LAX", 1},
                            {"equal", "LAX", 0},
                            {"+1 MIA", "MIA", 1},
                            {"+2 MIA", "MIA", 2},
                            {"+3 MIA", "MIA", 3}};

  util::Table table{
      {"prepending", "Atlas (VPs)", "Verfploeter (/24 blocks)"},
      {util::Align::kLeft}};
  std::vector<double> verf_series, atlas_series;
  // The sweep is one routing session: each configuration is reached from
  // the previous one by an incremental delta apply, so only the ASes
  // whose best path changes are recomputed between rows.
  auto session = scenario.delta_session(scenario.broot(), analysis::kAprilEpoch);
  for (const Config& config : configs) {
    // Each prepending configuration was "taken once on a different day"
    // (§6.1) — model with distinct rounds on the April epoch.
    const auto deployment =
        scenario.broot().with_prepend(config.site, config.amount);
    const auto routes_ptr = session.route_to(deployment);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id =
        static_cast<std::uint32_t>(5000 + config.amount * 7 +
                                   (config.site[0] == 'L' ? 100 : 0));
    const auto map =
        scenario.verfploeter()
            .run(routes,
                 {probe, static_cast<std::uint32_t>(&config - configs)})
            .map;
    const auto atlas = scenario.atlas().measure(
        routes, scenario.internet().flips(),
        static_cast<std::uint32_t>(&config - configs));
    verf_series.push_back(map.fraction_to(0));
    atlas_series.push_back(atlas.fraction_to(0));
    table.add_row({config.label, util::percent(atlas.fraction_to(0)),
                   util::percent(map.fraction_to(0))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper: Figure 5, SBA-4-20/21 + SBV-4-21):\n");
  bool monotone = true;
  for (std::size_t i = 1; i < verf_series.size(); ++i)
    monotone &= verf_series[i] >= verf_series[i - 1] - 1e-9;
  bench::shape("fraction to LAX rises monotonically with MIA prepending",
               "0.25 -> 0.9",
               util::percent(verf_series.front()) + " -> " +
                   util::percent(verf_series.back()),
               monotone);
  bench::shape("no prepending: LAX already dominates", "74-78%",
               util::percent(verf_series[1]),
               verf_series[1] > 0.6 && verf_series[1] < 0.95);
  bench::shape("+1 LAX sends most traffic to MIA", "~25% LAX",
               util::percent(verf_series[0]), verf_series[0] < 0.5);
  bench::shape("a residue sticks to MIA even at +3", "<100%",
               util::percent(verf_series.back()), verf_series.back() < 0.999);
  // Both measurement systems should tell the same story (§6.1: "both
  // measurement systems are useful to evaluate routing options").
  double max_gap = 0;
  for (std::size_t i = 0; i < verf_series.size(); ++i)
    max_gap = std::max(max_gap, std::abs(verf_series[i] - atlas_series[i]));
  bench::shape("Atlas and Verfploeter roughly agree", "few % apart",
               util::percent(max_gap) + " max gap", max_gap < 0.25);
  return 0;
}
