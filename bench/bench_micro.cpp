// Microbenchmarks (google-benchmark): the hot paths of the pipeline —
// packet serialize/parse, checksum, trie lookups, a full probe round-trip
// through the simulated dataplane, and BGP route computation.
#include <benchmark/benchmark.h>

#include "analysis/scenario.hpp"
#include "bgp/catchment_resolver.hpp"
#include "bgp/routing_engine.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

using namespace vp;

namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;  // micro benches need a topology, not a big one
    return config;
  }()};
  return scenario;
}

void BM_ChecksumPerByte(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  util::Rng rng{1};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumPerByte)->Arg(48)->Arg(512)->Arg(4096);

void BM_BuildEchoRequest(benchmark::State& state) {
  net::ProbePayload payload;
  payload.measurement_id = 7;
  payload.original_target = net::Ipv4Address{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::build_echo_request(
        net::Ipv4Address{192, 0, 2, 1}, payload.original_target, 1, 2,
        payload));
  }
}
BENCHMARK(BM_BuildEchoRequest);

void BM_ParseReply(benchmark::State& state) {
  net::ProbePayload payload;
  payload.measurement_id = 7;
  payload.original_target = net::Ipv4Address{1, 2, 3, 4};
  const auto request = net::build_echo_request(
      net::Ipv4Address{192, 0, 2, 1}, payload.original_target, 1, 2, payload);
  const auto ip = net::Ipv4Header::parse(request.data);
  const auto icmp = net::IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(
          net::Ipv4Header::kSize));
  const auto reply =
      net::build_echo_reply(*ip, *icmp, payload.original_target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_reply(reply.data));
  }
}
BENCHMARK(BM_ParseReply);

void BM_TrieLookup(benchmark::State& state) {
  const auto& topo = shared_scenario().topo();
  util::Rng rng{2};
  std::vector<net::Ipv4Address> addresses;
  for (int i = 0; i < 1024; ++i) {
    const auto& info =
        topo.blocks()[rng.below(topo.block_count())];
    addresses.push_back(info.block.address(1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.route_lookup(addresses[i++ & 1023]));
  }
}
BENCHMARK(BM_TrieLookup);

std::vector<net::Block24> sample_blocks(const analysis::Scenario& scenario,
                                        std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<net::Block24> blocks;
  for (int i = 0; i < 1024; ++i)
    blocks.push_back(
        scenario.topo().blocks()[rng.below(scenario.topo().block_count())]
            .block);
  return blocks;
}

const bgp::RoutingTable& broot_routes() {
  static const auto routes_ptr =
      shared_scenario().route(shared_scenario().broot());
  return *routes_ptr;
}

// Cached vs uncached per-probe resolution. The CI gate
// (tools/bench_compare.py) asserts the cached variants beat the uncached
// ones by the ratios recorded in baseline.json, so the speedup — not
// just the absolute time — is regression-checked.
void BM_GroundTruthSiteLookup(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  scenario.internet().warm(routes);  // build outside the timed loop
  const auto blocks = sample_blocks(scenario, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.internet().ground_truth_site(
        routes, blocks[i++ & 1023], 0));
  }
}
BENCHMARK(BM_GroundTruthSiteLookup);

void BM_GroundTruthSiteUncached(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  const auto blocks = sample_blocks(scenario, 3);
  bgp::set_catchment_cache_enabled(false);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.internet().ground_truth_site(
        routes, blocks[i++ & 1023], 0));
  }
  bgp::set_catchment_cache_enabled(true);
}
BENCHMARK(BM_GroundTruthSiteUncached);

void BM_SiteForBlock(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  scenario.internet().warm(routes);
  const bgp::CatchmentResolver* resolver = routes.catchment_resolver();
  const auto blocks = sample_blocks(scenario, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver->stable_site(blocks[i++ & 1023]));
  }
}
BENCHMARK(BM_SiteForBlock);

void BM_SiteForBlockUncached(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  const auto blocks = sample_blocks(scenario, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routes.site_for_block(blocks[i++ & 1023]));
  }
}
BENCHMARK(BM_SiteForBlockUncached);

void BM_ProbeRoundTrip(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  const auto& hitlist = scenario.hitlist();
  std::size_t i = 0;
  std::uint64_t replies = 0;
  for (auto _ : state) {
    const auto& entry = hitlist.entries()[i++ % hitlist.size()];
    net::ProbePayload payload;
    payload.measurement_id = 1;
    payload.original_target = entry.target;
    const auto probe = net::build_echo_request(
        scenario.broot().measurement_address, entry.target, 1,
        static_cast<std::uint16_t>(i), payload);
    auto deliveries =
        scenario.internet().probe(routes, probe.data, {}, 0);
    replies += deliveries.size();
    benchmark::DoNotOptimize(deliveries);
  }
  state.counters["replies_per_probe"] =
      benchmark::Counter(static_cast<double>(replies),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProbeRoundTrip);

void BM_ComputeRoutes(benchmark::State& state) {
  // Deliberately bypasses the scenario's route cache: this measures the
  // full propagation, which a cached scenario.route() no longer pays.
  const auto& scenario = shared_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::RoutingEngine{scenario.topo(), scenario.broot()}.full());
  }
  state.counters["ases"] =
      static_cast<double>(scenario.topo().as_count());
}
BENCHMARK(BM_ComputeRoutes)->Unit(benchmark::kMillisecond);

// One full measurement round, sharded over Arg(0) probe workers. The
// acceptance bar for the parallel engine is >= 2.5x round throughput at
// 8 threads vs 1 on multicore hardware; compare the per-iteration times
// (the result is bit-identical at every thread count, so this measures
// pure engine overhead/speedup).
void BM_FullMeasurementRound(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingTable& routes = broot_routes();
  core::RoundSpec spec;
  spec.threads = static_cast<unsigned>(state.range(0));
  std::uint32_t round = 0;
  for (auto _ : state) {
    spec.probe.measurement_id = 100 + round;
    spec.round = round++;
    benchmark::DoNotOptimize(scenario.verfploeter().run(routes, spec));
  }
  state.counters["blocks"] =
      static_cast<double>(scenario.hitlist().size());
  state.counters["blocks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * scenario.hitlist().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullMeasurementRound)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace

BENCHMARK_MAIN();
