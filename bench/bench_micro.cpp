// Microbenchmarks (google-benchmark): the hot paths of the pipeline —
// packet serialize/parse, checksum, trie lookups, a full probe round-trip
// through the simulated dataplane, and BGP route computation.
#include <benchmark/benchmark.h>

#include "analysis/scenario.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

using namespace vp;

namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;  // micro benches need a topology, not a big one
    return config;
  }()};
  return scenario;
}

void BM_ChecksumPerByte(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  util::Rng rng{1};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumPerByte)->Arg(48)->Arg(512)->Arg(4096);

void BM_BuildEchoRequest(benchmark::State& state) {
  net::ProbePayload payload;
  payload.measurement_id = 7;
  payload.original_target = net::Ipv4Address{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::build_echo_request(
        net::Ipv4Address{192, 0, 2, 1}, payload.original_target, 1, 2,
        payload));
  }
}
BENCHMARK(BM_BuildEchoRequest);

void BM_ParseReply(benchmark::State& state) {
  net::ProbePayload payload;
  payload.measurement_id = 7;
  payload.original_target = net::Ipv4Address{1, 2, 3, 4};
  const auto request = net::build_echo_request(
      net::Ipv4Address{192, 0, 2, 1}, payload.original_target, 1, 2, payload);
  const auto ip = net::Ipv4Header::parse(request.data);
  const auto icmp = net::IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(
          net::Ipv4Header::kSize));
  const auto reply =
      net::build_echo_reply(*ip, *icmp, payload.original_target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_reply(reply.data));
  }
}
BENCHMARK(BM_ParseReply);

void BM_TrieLookup(benchmark::State& state) {
  const auto& topo = shared_scenario().topo();
  util::Rng rng{2};
  std::vector<net::Ipv4Address> addresses;
  for (int i = 0; i < 1024; ++i) {
    const auto& info =
        topo.blocks()[rng.below(topo.block_count())];
    addresses.push_back(info.block.address(1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.route_lookup(addresses[i++ & 1023]));
  }
}
BENCHMARK(BM_TrieLookup);

void BM_GroundTruthSiteLookup(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  static const bgp::RoutingTable routes =
      scenario.route(scenario.broot());
  util::Rng rng{3};
  std::vector<net::Block24> blocks;
  for (int i = 0; i < 1024; ++i)
    blocks.push_back(
        scenario.topo().blocks()[rng.below(scenario.topo().block_count())]
            .block);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.internet().ground_truth_site(
        routes, blocks[i++ & 1023], 0));
  }
}
BENCHMARK(BM_GroundTruthSiteLookup);

void BM_ProbeRoundTrip(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  static const bgp::RoutingTable routes =
      scenario.route(scenario.broot());
  const auto& hitlist = scenario.hitlist();
  std::size_t i = 0;
  std::uint64_t replies = 0;
  for (auto _ : state) {
    const auto& entry = hitlist.entries()[i++ % hitlist.size()];
    net::ProbePayload payload;
    payload.measurement_id = 1;
    payload.original_target = entry.target;
    const auto probe = net::build_echo_request(
        scenario.broot().measurement_address, entry.target, 1,
        static_cast<std::uint16_t>(i), payload);
    auto deliveries =
        scenario.internet().probe(routes, probe.data, {}, 0);
    replies += deliveries.size();
    benchmark::DoNotOptimize(deliveries);
  }
  state.counters["replies_per_probe"] =
      benchmark::Counter(static_cast<double>(replies),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProbeRoundTrip);

void BM_ComputeRoutes(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.route(scenario.broot()));
  }
  state.counters["ases"] =
      static_cast<double>(scenario.topo().as_count());
}
BENCHMARK(BM_ComputeRoutes)->Unit(benchmark::kMillisecond);

// One full measurement round, sharded over Arg(0) probe workers. The
// acceptance bar for the parallel engine is >= 2.5x round throughput at
// 8 threads vs 1 on multicore hardware; compare the per-iteration times
// (the result is bit-identical at every thread count, so this measures
// pure engine overhead/speedup).
void BM_FullMeasurementRound(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  static const bgp::RoutingTable routes =
      scenario.route(scenario.broot());
  core::RoundSpec spec;
  spec.threads = static_cast<unsigned>(state.range(0));
  std::uint32_t round = 0;
  for (auto _ : state) {
    spec.probe.measurement_id = 100 + round;
    spec.round = round++;
    benchmark::DoNotOptimize(scenario.verfploeter().run(routes, spec));
  }
  state.counters["blocks"] =
      static_cast<double>(scenario.hitlist().size());
  state.counters["blocks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * scenario.hitlist().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullMeasurementRound)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace

BENCHMARK_MAIN();
