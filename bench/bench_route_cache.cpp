// Deployment-sweep benchmarks for the route cache (google-benchmark).
//
// The sweep loops (prepending playbooks, placement searches) are where
// bgp::RouteCache earns its keep: every configuration after the first
// visit is a hash lookup instead of a full three-stage propagation.
// BM_PrependSweep{Cached,Uncached} measure exactly that loop — the same
// nine-site prepend sweep routed through a warm cache vs computed fresh
// — and tools/bench_compare.py gates the ratio against baseline.json.
// BM_ResolverBuild pins the one-time cost of precomputing a
// block->site catchment table, and BM_RouteCacheRound compares a full
// measurement round with catchment precomputation on vs off (the
// per-probe saving the resolver buys, isolated from route computation).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "analysis/scenario.hpp"
#include "bgp/catchment_resolver.hpp"
#include "bgp/route_cache.hpp"
#include "bgp/routing_engine.hpp"
#include "sim/flips.hpp"
#include "util/rng.hpp"

using namespace vp;

namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;
    return config;
  }()};
  return scenario;
}

// The sweep a prepending playbook runs: every site of the Tangled
// testbed prepended at depths 1..3, plus the unmodified deployment.
std::vector<anycast::Deployment> sweep_deployments() {
  const anycast::Deployment& base = shared_scenario().tangled();
  std::vector<anycast::Deployment> sweep;
  sweep.push_back(base);
  for (const auto& site : base.sites)
    for (int depth = 1; depth <= 3; ++depth)
      sweep.push_back(base.with_prepend(site.code, depth));
  return sweep;
}

bgp::RoutingOptions sweep_options() {
  const auto& scenario = shared_scenario();
  bgp::RoutingOptions options;
  options.tiebreak_salt =
      util::hash_combine(scenario.config().seed, analysis::kMayEpoch);
  return options;
}

void BM_PrependSweepUncached(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto sweep = sweep_deployments();
  const bgp::RoutingOptions options = sweep_options();
  for (auto _ : state) {
    for (const auto& deployment : sweep)
      benchmark::DoNotOptimize(
          bgp::RoutingEngine{scenario.topo(), deployment, options}.full());
  }
  state.counters["configs"] = static_cast<double>(sweep.size());
}
BENCHMARK(BM_PrependSweepUncached)->Unit(benchmark::kMillisecond);

void BM_PrependSweepCached(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto sweep = sweep_deployments();
  const bgp::RoutingOptions options = sweep_options();
  bgp::RouteCache cache{scenario.topo()};
  for (const auto& deployment : sweep)
    (void)cache.routes(deployment, options);  // warm outside the timed loop
  for (auto _ : state) {
    for (const auto& deployment : sweep)
      benchmark::DoNotOptimize(cache.routes(deployment, options));
  }
  state.counters["configs"] = static_cast<double>(sweep.size());
}
BENCHMARK(BM_PrependSweepCached)->Unit(benchmark::kMillisecond);

// One-time cost of precomputing the block->site table: the price a round
// pays (once, under std::call_once) before every subsequent lookup drops
// to a vector load.
void BM_ResolverBuild(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto routes_ptr = scenario.route(scenario.broot());
  const bgp::RoutingTable& routes = *routes_ptr;
  const sim::FlipModel flips;
  const std::uint64_t signature = flips.flap_signature();
  for (auto _ : state) {
    bgp::CatchmentResolver resolver{
        routes, signature,
        [&](const net::Block24& block) {
          return flips.is_flappy(routes, block);
        }};
    benchmark::DoNotOptimize(resolver.block_span());
  }
  state.counters["blocks"] =
      static_cast<double>(scenario.topo().block_count());
}
BENCHMARK(BM_ResolverBuild)->Unit(benchmark::kMillisecond);

// A full measurement round with catchment precomputation off (Arg 0) vs
// on (Arg 1). Routes are prebuilt either way, so the difference is the
// per-probe resolution path: three hash-map probes per target vs one
// vector load. Results are bit-identical (tests/route_cache_test.cpp).
void BM_RouteCacheRound(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  static const auto routes_ptr = scenario.route(scenario.broot());
  const bgp::RoutingTable& routes = *routes_ptr;
  scenario.internet().warm(routes);  // resolver build outside the loop
  bgp::set_catchment_cache_enabled(state.range(0) != 0);
  core::RoundSpec spec;
  spec.threads = 2;
  std::uint32_t round = 0;
  for (auto _ : state) {
    spec.probe.measurement_id = 100 + round;
    spec.round = round++;
    benchmark::DoNotOptimize(scenario.verfploeter().run(routes, spec));
  }
  bgp::set_catchment_cache_enabled(true);
  state.counters["blocks"] =
      static_cast<double>(scenario.hitlist().size());
}
BENCHMARK(BM_RouteCacheRound)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

}  // namespace

BENCHMARK_MAIN();
