// Figure 4: measured DNS traffic over geography — (a) B-Root load by
// catchment site as inferred from Verfploeter, with the unmappable
// (UNK) traffic concentrated in ICMP-dark Asia; (b) the Europe-dominated
// load of the .nl ccTLD, which makes load calibration essential for
// regional services.
#include "analysis/geomaps.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 4", "geographic load: B-Root (by site) and .nl",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kAprilEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 412;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  const auto broot_load = scenario.broot_load(0x20170412);  // LB-4-12
  const auto nl_load = scenario.nl_load();                  // LN-4-12

  const auto broot_bins =
      analysis::bin_load(scenario.topo(), broot_load, map, 2);
  const auto nl_bins = analysis::bin_load_plain(scenario.topo(), nl_load);

  std::printf("--- (a) B-Root load by inferred site (q/s) ---\n%s\n",
              analysis::render_map_summary(broot_bins, {"LAX", "MIA", "UNK"})
                  .c_str());
  std::printf("--- (b) .nl load (q/s, no site attribution) ---\n%s\n",
              analysis::render_map_summary(nl_bins, {"queries"}).c_str());

  std::printf("shape checks (paper: Figure 4):\n");
  // (a) Unmappable load concentrates in Korea/Japan/Asia.
  double unk_asia = 0, unk_total = 0;
  for (const auto& [continent, weights] : broot_bins.by_continent()) {
    unk_total += weights[2];
    if (continent == geo::Continent::kAsia) unk_asia += weights[2];
  }
  bench::shape("unmappable (UNK) load concentrates in Asia",
               "mostly Korea/Japan", util::percent(unk_asia / unk_total),
               unk_asia / unk_total > 0.5);
  // Load is more concentrated than block counts (resolver hotspots):
  // compare the share of the top-10 bins under load vs block weighting.
  const auto block_bins = analysis::bin_catchment(scenario.topo(), map, 2);
  auto top10_share = [](const geo::GeoBinner& binner) {
    const auto rows = binner.rows();
    double top = 0, total = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      total += rows[i].total;
      if (i < 10) top += rows[i].total;
    }
    return total > 0 ? top / total : 0.0;
  };
  bench::shape("load concentrates in fewer hotspots than blocks",
               "fewer hotspots",
               util::percent(top10_share(broot_bins)) + " vs " +
                   util::percent(top10_share(block_bins)) + " in top-10 bins",
               top10_share(broot_bins) > top10_share(block_bins));
  // (b) .nl: majority of traffic from Europe; B-Root: global.
  double nl_europe = 0, nl_total = 0, broot_europe = 0, broot_total = 0;
  for (const auto& [continent, weights] : nl_bins.by_continent()) {
    for (double w : weights) nl_total += w;
    if (continent == geo::Continent::kEurope)
      for (double w : weights) nl_europe += w;
  }
  for (const auto& [continent, weights] : broot_bins.by_continent()) {
    for (double w : weights) broot_total += w;
    if (continent == geo::Continent::kEurope)
      for (double w : weights) broot_europe += w;
  }
  bench::shape(".nl load is Europe-dominated", ">50%",
               util::percent(nl_europe / nl_total),
               nl_europe / nl_total > 0.5);
  bench::shape("B-Root load tracks global users instead", "global",
               util::percent(broot_europe / broot_total) + " Europe",
               broot_europe / broot_total < 0.45);
  return 0;
}
