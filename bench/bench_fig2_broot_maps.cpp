// Figure 2: geographic coverage of B-Root as seen by (a) RIPE Atlas and
// (b) Verfploeter, in two-degree geographic bins colored by site. The
// textual rendering prints per-continent totals and the heaviest bins;
// the shape checks encode the figure's story: Verfploeter is ~3 orders
// of magnitude denser, covers China where Atlas is blind, and shows the
// AMPATH effect in eastern South America.
#include "analysis/geomaps.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 2", "geographic coverage of B-Root: Atlas vs Verfploeter",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 215;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  const auto campaign =
      scenario.atlas().measure(routes, scenario.internet().flips(), 0);

  const std::vector<std::string> categories{"LAX", "MIA", "UNK"};
  const auto atlas_bins =
      analysis::bin_atlas(scenario.atlas(), campaign, 2);
  const auto verf_bins = analysis::bin_catchment(scenario.topo(), map, 2);

  std::printf("--- (a) RIPE Atlas coverage (VPs per bin) ---\n%s\n",
              analysis::render_map_summary(atlas_bins, categories).c_str());
  std::printf("--- (b) Verfploeter coverage (/24 blocks per bin) ---\n%s\n",
              analysis::render_map_summary(verf_bins, categories).c_str());

  // Region tallies for the shape checks.
  auto china_total = [&](const geo::GeoBinner& binner) {
    double total = 0;
    for (const auto& row : binner.rows()) {
      const auto c = row.bin.center();
      if (c.lat > 18 && c.lat < 46 && c.lon > 95 && c.lon < 125)
        total += row.total;
    }
    return total;
  };
  // Eastern South America (Brazil/Argentina) MIA share vs western (Peru/
  // Chile) — the AMPATH story of §5.1.
  auto region_mia_share = [&](double lat_lo, double lat_hi, double lon_lo,
                              double lon_hi) {
    double mia = 0, total = 0;
    for (const auto& row : verf_bins.rows()) {
      const auto c = row.bin.center();
      if (c.lat < lat_lo || c.lat > lat_hi || c.lon < lon_lo ||
          c.lon > lon_hi)
        continue;
      mia += row.category_weights[1];
      total += row.total;
    }
    return total > 0 ? mia / total : 0.0;
  };

  double atlas_total = 0, verf_total = 0;
  for (const auto& row : atlas_bins.rows()) atlas_total += row.total;
  for (const auto& row : verf_bins.rows()) verf_total += row.total;

  std::printf("shape checks (paper: Figure 2):\n");
  bench::shape("Verfploeter is orders of magnitude denser", "1000x scale",
               util::fixed(verf_total / std::max(atlas_total, 1.0), 0) + "x",
               verf_total > 50 * atlas_total);
  bench::shape("Atlas is blind in China; Verfploeter is not", ">0 vs ~0",
               util::si_count(china_total(verf_bins)) + " vs " +
                   util::si_count(china_total(atlas_bins)),
               china_total(verf_bins) > 100 && china_total(atlas_bins) < 5);
  const double east_sa = region_mia_share(-35, 0, -55, -34);   // BR/AR
  const double west_sa = region_mia_share(-35, 0, -82, -66);   // PE/CL
  bench::shape("MIA (AMPATH) strong in eastern South America",
               "wide MIA use in BR", util::percent(east_sa), east_sa > 0.5);
  bench::shape("...but weaker on the SA west coast", "less MIA in PE/CL",
               util::percent(west_sa) + " vs " + util::percent(east_sa),
               west_sa < east_sa);
  // Atlas: Europe-heavy; Verfploeter tracks the Internet.
  double atlas_europe = 0, verf_europe = 0;
  for (const auto& [continent, weights] : atlas_bins.by_continent())
    if (continent == geo::Continent::kEurope)
      for (double w : weights) atlas_europe += w;
  for (const auto& [continent, weights] : verf_bins.by_continent())
    if (continent == geo::Continent::kEurope)
      for (double w : weights) verf_europe += w;
  bench::shape("Atlas is Europe-skewed; Verfploeter is not", "~50% vs ~20%",
               util::percent(atlas_europe / atlas_total) + " vs " +
                   util::percent(verf_europe / verf_total),
               atlas_europe / atlas_total >
                   1.5 * (verf_europe / verf_total));
  return 0;
}
