// Figure 7: number of sites seen from an AS vs how many prefixes that AS
// announces (median and 5/25/75/95 percentiles) — ASes that announce more
// prefixes are split across more catchments. Also reports §6.2's headline
// number: the fraction of ASes served by more than one site.
#include "analysis/divisions.hpp"
#include "analysis/stability.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 7", "announced prefixes vs sites seen per AS",
                scenario);

  const auto routes_ptr = scenario.route(scenario.tangled());
  const auto& routes = *routes_ptr;
  // Run a short campaign first to identify unstable VPs; the paper
  // removes them before counting divisions ("without removing these VPs
  // we observe approximately 2% more divisions").
  core::ProbeConfig probe;
  probe.order_seed = 77;
  analysis::StabilityAccumulator accumulator{scenario.topo()};
  core::CatchmentMap last_map;
  for (std::uint32_t round = 0; round < 8; ++round) {
    probe.measurement_id = 7000 + round;
    auto result = scenario.verfploeter().run(
        routes, {probe, round, util::SimTime::from_minutes(15.0 * round)});
    accumulator.add_round(result.map);
    last_map = std::move(result.map);
  }
  const auto stability = accumulator.finish();

  const auto report = analysis::analyze_divisions(
      scenario.topo(), last_map, stability.unstable_blocks);
  const auto unfiltered =
      analysis::analyze_divisions(scenario.topo(), last_map);

  util::Table table{{"sites seen", "ASes", "prefixes p5", "p25", "median",
                     "p75", "p95"}};
  for (const auto& bucket : report.buckets) {
    table.add_row({std::to_string(bucket.sites_seen),
                   util::with_commas(bucket.as_count),
                   util::fixed(bucket.announced_prefixes.p5, 0),
                   util::fixed(bucket.announced_prefixes.p25, 0),
                   util::fixed(bucket.announced_prefixes.p50, 0),
                   util::fixed(bucket.announced_prefixes.p75, 0),
                   util::fixed(bucket.announced_prefixes.p95, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ASes observed: %llu; served by >1 site: %llu (%s)\n\n",
              static_cast<unsigned long long>(report.ases_observed),
              static_cast<unsigned long long>(report.ases_multi_site),
              util::percent(report.multi_site_fraction()).c_str());

  std::printf("shape checks (paper: Figure 7 + §6.2, STV-3-23):\n");
  bench::shape("a noticeable fraction of ASes is split across sites",
               "12.7%", util::percent(report.multi_site_fraction()),
               report.multi_site_fraction() > 0.02 &&
                   report.multi_site_fraction() < 0.35);
  double single = 0;
  double multi_sum = 0, multi_n = 0;
  for (const auto& bucket : report.buckets) {
    if (bucket.sites_seen == 1) single = bucket.mean_prefixes;
    if (bucket.sites_seen >= 2) {
      multi_sum += bucket.mean_prefixes * static_cast<double>(bucket.as_count);
      multi_n += static_cast<double>(bucket.as_count);
    }
  }
  const double multi = multi_n > 0 ? multi_sum / multi_n : 0.0;
  bench::shape("multi-site ASes announce more prefixes (mean)",
               "rising trend",
               util::fixed(single, 1) + " -> " + util::fixed(multi, 1),
               multi > single);
  bench::shape("removing unstable VPs lowers the division count", "-2%",
               util::with_commas(unfiltered.ases_multi_site) + " -> " +
                   util::with_commas(report.ases_multi_site),
               report.ases_multi_site <= unfiltered.ases_multi_site);
  return 0;
}
