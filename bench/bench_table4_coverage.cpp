// Table 4: coverage of B-Root from RIPE Atlas vs Verfploeter —
// considered / non-responding / responding / geolocatable VPs and /24s,
// plus the unique-block overlap and the ~430x coverage ratio.
#include "analysis/coverage.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Table 4", "coverage of B-Root: Atlas vs Verfploeter",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 515;  // the SBV-5-15 dataset
  const auto round = scenario.verfploeter().run(routes, {probe, 0});
  const auto campaign = scenario.atlas().measure(
      routes, scenario.internet().flips(), 0);
  const auto report = analysis::compute_coverage(
      scenario.topo(), scenario.atlas(), campaign, round.map);

  util::Table table{{"", "RIPE Atlas (VPs)", "(/24s)", "Verfploeter (/24s)"},
                    {util::Align::kLeft}};
  table.add_row({"considered", util::with_commas(report.atlas_vps_considered),
                 util::with_commas(report.atlas_blocks_considered),
                 util::with_commas(report.verf_blocks_considered)});
  table.add_row({"non-responding",
                 util::with_commas(report.atlas_vps_nonresponding), "",
                 util::with_commas(report.verf_blocks_nonresponding)});
  table.add_row({"responding", util::with_commas(report.atlas_vps_responding),
                 util::with_commas(report.atlas_blocks_responding),
                 util::with_commas(report.verf_blocks_responding)});
  table.add_row({"no location", "0", "0",
                 util::with_commas(report.verf_blocks_no_location)});
  table.add_row({"geolocatable", util::with_commas(report.atlas_vps_responding),
                 util::with_commas(report.atlas_blocks_geolocatable),
                 util::with_commas(report.verf_blocks_geolocatable)});
  table.add_separator();
  table.add_row({"unique", "", util::with_commas(report.atlas_unique_blocks),
                 util::with_commas(report.verf_unique_blocks)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper values from Table 4, SBA/SBV-5-15):\n");
  const double ratio = report.coverage_ratio();
  bench::shape("Verfploeter sees 100x+ more blocks than Atlas", "430x",
               util::fixed(ratio, 0) + "x", ratio > 100);
  const double overlap = report.atlas_overlap_fraction();
  bench::shape("most Atlas blocks also seen by Verfploeter", "77%",
               util::percent(overlap), overlap > 0.55 && overlap < 0.95);
  const double response =
      static_cast<double>(report.verf_blocks_responding) /
      static_cast<double>(report.verf_blocks_considered);
  bench::shape("hitlist response rate", "55%", util::percent(response),
               response > 0.45 && response < 0.65);
  const double located =
      static_cast<double>(report.verf_blocks_no_location) /
      static_cast<double>(report.verf_blocks_responding);
  bench::shape("tiny un-geolocatable residue", "678 of 3.79M",
               util::percent(located), located > 0 && located < 0.005);
  return 0;
}
