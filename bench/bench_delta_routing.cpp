// Incremental-routing benchmarks (google-benchmark).
//
// The RoutingEngine's pitch is that a configuration *change* should cost
// the affected-AS set, not the Internet. These benchmarks pin that down
// on the Tangled deployment:
//   BM_FullReroute        — a from-scratch full() after a one-site
//                           prepend change (what every sweep step paid
//                           before the engine existed);
//   BM_DeltaApplyPrepend  — the same change as an engine apply();
//   BM_DeltaWithdraw      — announce/withdraw flapping of one site;
//   BM_DeltaSweep28       — the 28-config prepend sweep of
//                           bench_route_cache walked as one delta
//                           session vs BM_FullSweep28 recomputing each.
// tools/bench_compare.py gates the same-run full/delta ratios via
// baseline.json's "delta_gates" (one-site prepend must be >= 10x).
#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/scenario.hpp"
#include "anycast/deployment.hpp"
#include "bgp/routing_engine.hpp"
#include "util/rng.hpp"

using namespace vp;

namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;
    return config;
  }()};
  return scenario;
}

bgp::RoutingOptions tangled_options() {
  const auto& scenario = shared_scenario();
  bgp::RoutingOptions options;
  options.tiebreak_salt =
      util::hash_combine(scenario.config().seed, analysis::kMayEpoch);
  return options;
}

// The 28-config sweep of bench_route_cache: the base deployment plus
// every site prepended at depths 1..3.
std::vector<anycast::Deployment> sweep_deployments() {
  const anycast::Deployment& base = shared_scenario().tangled();
  std::vector<anycast::Deployment> sweep;
  sweep.push_back(base);
  for (const auto& site : base.sites)
    for (int depth = 1; depth <= 3; ++depth)
      sweep.push_back(base.with_prepend(site.code, depth));
  return sweep;
}

void BM_FullReroute(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const bgp::RoutingOptions options = tangled_options();
  const auto prepended = scenario.tangled().with_prepend("MIA", 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::RoutingEngine{scenario.topo(), prepended, options}.full());
  }
  state.counters["ases"] = static_cast<double>(scenario.topo().as_count());
}
BENCHMARK(BM_FullReroute)->Unit(benchmark::kMillisecond);

void BM_DeltaApplyPrepend(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  bgp::RoutingEngine engine{scenario.topo(), scenario.tangled(),
                            tangled_options()};
  engine.full();
  const auto site = *scenario.tangled().site_by_code("MIA");
  // Alternate two depths so every iteration applies a real change.
  int depth = 2;
  std::size_t recomputed = 0;
  for (auto _ : state) {
    const auto result =
        engine.apply(anycast::ConfigDelta::set_prepend(site, depth));
    benchmark::DoNotOptimize(result.table);
    recomputed = result.recomputed_ases;
    depth = depth == 2 ? 3 : 2;
  }
  state.counters["recomputed_ases"] = static_cast<double>(recomputed);
  state.counters["ases"] = static_cast<double>(scenario.topo().as_count());
}
BENCHMARK(BM_DeltaApplyPrepend)->Unit(benchmark::kMillisecond);

void BM_DeltaWithdraw(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  bgp::RoutingEngine engine{scenario.topo(), scenario.tangled(),
                            tangled_options()};
  engine.full();
  const auto site = *scenario.tangled().site_by_code("SYD");
  bool up = true;
  for (auto _ : state) {
    const auto delta = up ? anycast::ConfigDelta::withdraw(site)
                          : anycast::ConfigDelta::announce(site);
    benchmark::DoNotOptimize(engine.apply(delta).table);
    up = !up;
  }
}
BENCHMARK(BM_DeltaWithdraw)->Unit(benchmark::kMillisecond);

void BM_FullSweep28(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto sweep = sweep_deployments();
  const bgp::RoutingOptions options = tangled_options();
  for (auto _ : state) {
    for (const auto& deployment : sweep)
      benchmark::DoNotOptimize(
          bgp::RoutingEngine{scenario.topo(), deployment, options}.full());
  }
  state.counters["configs"] = static_cast<double>(sweep.size());
}
BENCHMARK(BM_FullSweep28)->Unit(benchmark::kMillisecond);

void BM_DeltaSweep28(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto sweep = sweep_deployments();
  for (auto _ : state) {
    // One engine session per sweep; the first configuration pays the
    // full propagation, every later one only its delta from the
    // previous configuration.
    auto session = scenario.delta_session(scenario.tangled());
    for (const auto& deployment : sweep)
      benchmark::DoNotOptimize(session.route_to(deployment));
  }
  state.counters["configs"] = static_cast<double>(sweep.size());
}
BENCHMARK(BM_DeltaSweep28)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
