// Table 7: top ASes involved in catchment flips over the 24h Tangled
// campaign. The paper finds flips heavily concentrated: 51% in Chinanet,
// 63% in the top five ASes.
#include "analysis/stability.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Table 7", "top ASes involved in site flips (24h campaign)",
                scenario);

  const auto routes_ptr = scenario.route(scenario.tangled());
  const auto& routes = *routes_ptr;
  analysis::StabilityAccumulator accumulator{scenario.topo()};
  core::ProbeConfig probe;
  probe.order_seed = 97;
  for (std::uint32_t round = 0; round < 96; ++round) {
    probe.measurement_id = 4000 + round;
    accumulator.add_round(
        scenario.verfploeter()
            .run(routes,
                 {probe, round, util::SimTime::from_minutes(15.0 * round)})
            .map);
  }
  const auto report = accumulator.finish();

  util::Table table{{"#", "AS", "name", "IPs (/24s)", "flips", "frac"},
                    {util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft}};
  std::uint64_t top5 = 0;
  std::uint64_t shown_blocks = 0, shown_flips = 0;
  for (std::size_t i = 0; i < report.by_as.size() && i < 5; ++i) {
    const auto& as = report.by_as[i];
    top5 += as.flips;
    shown_blocks += as.flipping_blocks;
    shown_flips += as.flips;
    table.add_row(
        {std::to_string(i + 1), std::to_string(as.asn), as.name,
         util::with_commas(as.flipping_blocks), util::with_commas(as.flips),
         util::fixed(static_cast<double>(as.flips) /
                         static_cast<double>(report.total_flips),
                     2)});
  }
  std::uint64_t other_blocks = 0;
  for (std::size_t i = 5; i < report.by_as.size(); ++i)
    other_blocks += report.by_as[i].flipping_blocks;
  table.add_row({"", "", "Other", util::with_commas(other_blocks),
                 util::with_commas(report.total_flips - shown_flips),
                 util::fixed(static_cast<double>(report.total_flips -
                                                 shown_flips) /
                                 static_cast<double>(report.total_flips),
                             2)});
  table.add_separator();
  table.add_row({"", "", "Total",
                 util::with_commas(shown_blocks + other_blocks),
                 util::with_commas(report.total_flips), "1.00"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("flipping ASes: %llu\n\n",
              static_cast<unsigned long long>(report.flipping_ases));
  std::printf("shape checks (paper: Table 7, STV-3-23):\n");
  const double top1 = report.by_as.empty()
                          ? 0.0
                          : static_cast<double>(report.by_as[0].flips) /
                                static_cast<double>(report.total_flips);
  bench::shape("one load-balanced giant dominates flips", "51% (Chinanet)",
               util::percent(top1) + " (" +
                   (report.by_as.empty() ? "-" : report.by_as[0].name) + ")",
               top1 > 0.3);
  const double top5_share = static_cast<double>(top5) /
                            static_cast<double>(report.total_flips);
  bench::shape("top-5 ASes hold most flips", "63%", util::percent(top5_share),
               top5_share > 0.45);
  bench::shape("but a long tail of ASes flips occasionally", "2809 ASes",
               util::with_commas(report.flipping_ases) + " ASes",
               report.flipping_ases > 10);
  return 0;
}
