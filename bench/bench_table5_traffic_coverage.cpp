// Table 5: coverage of Verfploeter as seen from B-Root's traffic — of the
// blocks that send queries, how many (and how much traffic) can the
// catchment map attribute to a site?
#include "analysis/load_analysis.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Table 5", "coverage of Verfploeter from B-Root traffic",
                scenario);

  const auto routes_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 515;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  const auto load = scenario.broot_load(0x20170515);  // LB-5-15
  const auto coverage = analysis::compute_traffic_coverage(load, map);

  util::Table table{{"", "/24s", "%", "q/day", "%"}, {util::Align::kLeft}};
  table.add_row({"seen at B-Root", util::with_commas(coverage.blocks_seen),
                 "100%", util::si_count(coverage.queries_seen), "100%"});
  table.add_row({"mapped by Verfploeter",
                 util::with_commas(coverage.blocks_mapped),
                 util::percent(coverage.mapped_block_fraction()),
                 util::si_count(coverage.queries_mapped),
                 util::percent(coverage.mapped_query_fraction())});
  table.add_row({"not mappable", util::with_commas(coverage.blocks_unmapped),
                 util::percent(1.0 - coverage.mapped_block_fraction()),
                 util::si_count(coverage.queries_unmapped),
                 util::percent(1.0 - coverage.mapped_query_fraction())});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper: Table 5, SBV-5-15 x LB-5-15):\n");
  const double blocks = coverage.mapped_block_fraction();
  const double queries = coverage.mapped_query_fraction();
  bench::shape("most querying blocks are mappable", "87.1%",
               util::percent(blocks), blocks > 0.75 && blocks < 0.95);
  bench::shape("unmappable blocks carry MORE load per block",
               "12.9% blk/17.6% q",
               util::percent(1 - blocks) + " blk/" +
                   util::percent(1 - queries) + " q",
               queries < blocks);
  return 0;
}
