// Figure 6: predicted hourly load at each B-Root site for five prepending
// configurations — catchments from Verfploeter, per-hour volumes from the
// day-long load dataset (LB-4-12). The "UNKNOWN" series is traffic from
// blocks Verfploeter could not map.
#include "analysis/load_analysis.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Figure 6",
                "predicted hourly load per site under prepending", scenario);

  const auto load = scenario.broot_load(0x20170412);  // LB-4-12 (DITL)

  struct Config {
    const char* label;
    const char* site;
    int amount;
  };
  const Config configs[] = {{"lax+1", "LAX", 1},
                            {"equal", "LAX", 0},
                            {"mia+1", "MIA", 1},
                            {"mia+2", "MIA", 2},
                            {"mia+3", "MIA", 3}};

  bool lax1_mia_dominates = false;
  bool equal_lax_dominates = false;
  double unknown_share_sum = 0;
  for (const Config& config : configs) {
    const auto deployment =
        scenario.broot().with_prepend(config.site, config.amount);
    const auto routes_ptr = scenario.route(deployment, analysis::kAprilEpoch);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id = static_cast<std::uint32_t>(
        6000 + (&config - configs));
    const auto map =
        scenario.verfploeter()
            .run(routes,
                 {probe, static_cast<std::uint32_t>(&config - configs)})
            .map;
    const auto hours =
        analysis::hourly_load_by_site(scenario.topo(), load, map, 2);

    std::printf("-- %s (avg q/s per 1-hour bin) --\n", config.label);
    util::Table table{{"hour", "LAX", "MIA", "UNKNOWN"}};
    double lax_total = 0, mia_total = 0, unknown_total = 0;
    for (int h = 0; h < 24; h += 4) {
      table.add_row({util::fixed(h, 0), util::si_count(hours[h][0]),
                     util::si_count(hours[h][1]),
                     util::si_count(hours[h][2])});
    }
    for (int h = 0; h < 24; ++h) {
      lax_total += hours[h][0];
      mia_total += hours[h][1];
      unknown_total += hours[h][2];
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("day totals: LAX %s  MIA %s  UNKNOWN %s\n\n",
                util::si_count(lax_total).c_str(),
                util::si_count(mia_total).c_str(),
                util::si_count(unknown_total).c_str());

    if (std::string(config.label) == "lax+1")
      lax1_mia_dominates = mia_total > lax_total;
    if (std::string(config.label) == "equal")
      equal_lax_dominates = lax_total > mia_total;
    unknown_share_sum +=
        unknown_total / (lax_total + mia_total + unknown_total);
  }

  std::printf("shape checks (paper: Figure 6, SBV-4-21 x LB-4-12):\n");
  bench::shape("lax+1: nearly all traffic goes to MIA", "MIA >> LAX",
               lax1_mia_dominates ? "MIA > LAX" : "LAX >= MIA",
               lax1_mia_dominates);
  bench::shape("equal: most load shifts to LAX", "LAX > MIA",
               equal_lax_dominates ? "LAX > MIA" : "MIA >= LAX",
               equal_lax_dominates);
  const double unknown_share = unknown_share_sum / 5.0;
  bench::shape("a small UNKNOWN share persists in every config", "~17%",
               util::percent(unknown_share),
               unknown_share > 0.05 && unknown_share < 0.35);
  return 0;
}
