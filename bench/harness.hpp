// Shared plumbing for the per-table / per-figure benchmark harnesses.
//
// Each bench binary rebuilds one table or figure from the paper: it wires
// a Scenario, runs the relevant measurements, prints the paper-style rows,
// and finishes with a "paper vs measured" shape check. Absolute numbers
// differ (our substrate is a simulator, DESIGN.md §2); what must hold is
// the *shape* — who wins, by roughly what factor, where crossovers fall.
//
// Environment knobs: VP_SCALE (default 1.0 = ~120k blocks), VP_SEED.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/round.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace vp::bench {

/// Accumulates the engine's RoundObserver callbacks across rounds:
/// probes sent, per-site raw reply counters, cleaning totals. Benches
/// read these instead of re-deriving the counts from each RoundResult.
class RoundTally : public core::RoundObserver {
 public:
  void on_replies_collected(
      const core::RoundSpec&,
      const std::vector<std::uint64_t>& per_site) override {
    if (per_site_raw_replies.size() < per_site.size())
      per_site_raw_replies.resize(per_site.size(), 0);
    for (std::size_t s = 0; s < per_site.size(); ++s)
      per_site_raw_replies[s] += per_site[s];
  }
  void on_round_complete(const core::RoundSpec&,
                         const core::RoundResult& result) override {
    ++rounds;
    probes_sent += result.map.probes_sent;
    const core::CleaningStats& c = result.map.cleaning;
    cleaning.raw_replies += c.raw_replies;
    cleaning.malformed += c.malformed;
    cleaning.wrong_id += c.wrong_id;
    cleaning.unsolicited += c.unsolicited;
    cleaning.duplicates += c.duplicates;
    cleaning.late += c.late;
    cleaning.kept += c.kept;
  }

  std::uint64_t rounds = 0;
  std::uint64_t probes_sent = 0;
  std::vector<std::uint64_t> per_site_raw_replies;
  core::CleaningStats cleaning;
};

inline analysis::ScenarioConfig config_from_env(double default_scale = 1.0) {
  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr) config.scale = default_scale;
  return config;
}

inline void banner(const char* artifact, const char* title,
                   const analysis::Scenario& scenario) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, title);
  std::printf("scenario: seed=%llu scale=%.2f (%zu ASes, %zu /24 blocks)\n",
              static_cast<unsigned long long>(scenario.config().seed),
              scenario.config().scale, scenario.topo().as_count(),
              scenario.topo().block_count());
  std::printf("==============================================================\n");
}

/// One "paper vs measured" shape-check line.
inline void shape(const char* what, const std::string& paper,
                  const std::string& measured, bool holds) {
  std::printf("  [%s] %-52s paper: %-14s measured: %s\n",
              holds ? "ok" : "!!", what, paper.c_str(), measured.c_str());
}

}  // namespace vp::bench
