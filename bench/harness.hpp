// Shared plumbing for the per-table / per-figure benchmark harnesses.
//
// Each bench binary rebuilds one table or figure from the paper: it wires
// a Scenario, runs the relevant measurements, prints the paper-style rows,
// and finishes with a "paper vs measured" shape check. Absolute numbers
// differ (our substrate is a simulator, DESIGN.md §2); what must hold is
// the *shape* — who wins, by roughly what factor, where crossovers fall.
//
// Environment knobs: VP_SCALE (default 1.0 = ~120k blocks), VP_SEED.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/scenario.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace vp::bench {

inline analysis::ScenarioConfig config_from_env(double default_scale = 1.0) {
  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr) config.scale = default_scale;
  return config;
}

inline void banner(const char* artifact, const char* title,
                   const analysis::Scenario& scenario) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, title);
  std::printf("scenario: seed=%llu scale=%.2f (%zu ASes, %zu /24 blocks)\n",
              static_cast<unsigned long long>(scenario.config().seed),
              scenario.config().scale, scenario.topo().as_count(),
              scenario.topo().block_count());
  std::printf("==============================================================\n");
}

/// One "paper vs measured" shape-check line.
inline void shape(const char* what, const std::string& paper,
                  const std::string& measured, bool holds) {
  std::printf("  [%s] %-52s paper: %-14s measured: %s\n",
              holds ? "ok" : "!!", what, paper.c_str(), measured.c_str());
}

}  // namespace vp::bench
