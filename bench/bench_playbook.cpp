// Playbook-search benchmarks (google-benchmark).
//
// The PlaybookOptimizer's pitch is that a load-aware TE search is cheap
// enough for CI because candidates are evaluated through one incremental
// routing session (and scored from changed block ranges) instead of
// re-routing the Internet per configuration. These pin that down on the
// Tangled deployment under a polarized attack:
//   BM_PlaybookDelta1Site / BM_PlaybookFull1Site
//       one site's prepend menu (depths 1..3 + baseline, the paper's
//       Figs 5-6 TE knob), the smallest useful search — delta session
//       vs every table and score recomputed from scratch. A prepend
//       change re-converges only the site's upstream cone (~9% of
//       ASes here), so this is where the delta session's advantage is
//       structural (>= 3x gated; withdrawal is deliberately excluded —
//       re-flooding a withdrawn site's cone costs as much as a full
//       reroute either way, see BM_DeltaWithdraw).
//   BM_PlaybookDelta28 / BM_PlaybookFull28
//       the 28-config prepend sweep (9 sites x depths 1..3 + baseline),
//       the optimizer's default path vs vpctl --no-route-cache. Walking
//       *between* sites unions two frontiers per boundary step, so the
//       ratio here is lower (~3x measured, gated >= 2.5x as a
//       regression tripwire).
// tools/bench_compare.py gates both same-run full/delta ratios via
// baseline.json's "agility_gates"; each benchmark also reports
// configs/s.
#include <benchmark/benchmark.h>

#include <vector>

#include "agility/attack.hpp"
#include "agility/playbook.hpp"
#include "analysis/scenario.hpp"
#include "anycast/deployment.hpp"

using namespace vp;

namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;
    return config;
  }()};
  return scenario;
}

agility::PlaybookConfig search_config(bool use_delta) {
  agility::PlaybookConfig config;
  config.max_prepend = 3;
  config.allow_withdraw = false;  // the 28-config prepend sweep shape
  config.strategy = agility::SearchStrategy::kStaged;
  config.threads = 1;
  config.use_delta = use_delta;
  return config;
}

agility::AttackSpec bench_attack() {
  agility::AttackSpec spec;
  spec.kind = agility::AttackKind::kPolarized;
  spec.seed = 1;
  return spec;
}

/// Offered load under the bench attack, against the Tangled baseline.
const agility::OfferedLoad& shared_offered() {
  static const agility::OfferedLoad offered = [] {
    const auto& scenario = shared_scenario();
    return agility::offered_load(scenario.topo(),
                                 scenario.broot_load(0x20170515ull),
                                 *scenario.route(scenario.tangled()),
                                 bench_attack());
  }();
  return offered;
}

void run_search(benchmark::State& state,
                const std::vector<agility::Candidate>& candidates,
                bool use_delta) {
  const agility::PlaybookOptimizer optimizer{
      shared_scenario(), shared_scenario().tangled(),
      search_config(use_delta)};
  const agility::OfferedLoad& offered = shared_offered();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.evaluate(candidates, offered));
  }
  state.counters["configs"] = static_cast<double>(candidates.size());
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(candidates.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

/// One site's prepend menu: depths 1..5 plus the no-action baseline —
/// the paper's Fig-5 sweep as a search workload. Depth 0 -> 1 vacates
/// the site's whole catchment (the expensive flip); each further depth
/// moves an already-shrunken cone, which is where the delta session
/// pulls away from per-candidate full recomputes.
std::vector<agility::Candidate> one_site_candidates() {
  const auto site = *shared_scenario().tangled().site_by_code("MIA");
  std::vector<agility::Candidate> candidates;
  candidates.push_back({anycast::ConfigDelta{}, "baseline"});
  for (int depth = 1; depth <= 5; ++depth)
    candidates.push_back(
        {anycast::ConfigDelta::set_prepend(site, depth),
         "MIA+" + std::to_string(depth)});
  return candidates;
}

void BM_PlaybookDelta1Site(benchmark::State& state) {
  run_search(state, one_site_candidates(), /*use_delta=*/true);
}
BENCHMARK(BM_PlaybookDelta1Site)->Unit(benchmark::kMillisecond);

void BM_PlaybookFull1Site(benchmark::State& state) {
  run_search(state, one_site_candidates(), /*use_delta=*/false);
}
BENCHMARK(BM_PlaybookFull1Site)->Unit(benchmark::kMillisecond);

void BM_PlaybookDelta28(benchmark::State& state) {
  const agility::PlaybookOptimizer optimizer{
      shared_scenario(), shared_scenario().tangled(), search_config(true)};
  run_search(state, optimizer.enumerate_candidates(), /*use_delta=*/true);
}
BENCHMARK(BM_PlaybookDelta28)->Unit(benchmark::kMillisecond);

void BM_PlaybookFull28(benchmark::State& state) {
  const agility::PlaybookOptimizer optimizer{
      shared_scenario(), shared_scenario().tangled(), search_config(false)};
  run_search(state, optimizer.enumerate_candidates(), /*use_delta=*/false);
}
BENCHMARK(BM_PlaybookFull28)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
