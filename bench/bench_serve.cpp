// Serving-path benchmark for verfploeterd (google-benchmark).
//
// The daemon's query surface is an O(1) catchment lookup behind a
// shared_ptr swap — the bar (ISSUE, DESIGN.md §15) is >= 100k /block
// lookups/s, and it must hold *while a measurement round is running*,
// not just on an idle daemon. Both variants drive Daemon::handle()
// in-process (no sockets: the socket layer is one blocking accept loop
// and deliberately not the serving economics), publishing a
// lookups_per_sec counter that tools/bench_compare.py gates via
// "serve_gates" in bench/baseline.json.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "net/http_server.hpp"
#include "service/daemon.hpp"

using namespace vp;

namespace {

const analysis::Scenario& scenario() {
  static const analysis::Scenario s{[] {
    analysis::ScenarioConfig config;
    config.scale = 0.05;
    config.seed = 42;
    return config;
  }()};
  return s;
}

service::DaemonConfig daemon_config(std::uint32_t rounds) {
  service::DaemonConfig config;
  config.probe.measurement_id = 100;
  config.rounds = rounds;
  config.threads = 2;
  return config;
}

/// Pre-parsed /block requests covering every mapped block, so the loop
/// measures dispatch + lookup, not request-string formatting.
std::vector<net::HttpRequest> block_requests(const service::Daemon& daemon) {
  std::vector<net::HttpRequest> requests;
  const auto map = daemon.current_map();
  for (const auto& [block, site] : map->result.map.entries()) {
    net::HttpRequest request;
    request.method = "GET";
    request.path = "/block/" + block.address(1).to_string();
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Idle daemon: one good round published, then nothing but lookups.
void BM_ServeBlockLookup(benchmark::State& state) {
  static service::Daemon daemon{scenario(), scenario().broot(),
                                daemon_config(1)};
  static const bool ran = daemon.run_rounds();
  static const std::vector<net::HttpRequest> requests =
      block_requests(daemon);
  if (!ran || requests.empty()) {
    state.SkipWithError("round did not publish a map");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const net::HttpResponse response =
        daemon.handle(requests[i++ % requests.size()]);
    benchmark::DoNotOptimize(response.body.data());
    if (response.status != 200) {
      state.SkipWithError("lookup failed");
      return;
    }
  }
  state.counters["lookups_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeBlockLookup);

/// The contended case: lookups racing a live round loop (continuous
/// mode, back-to-back rounds). This is the configuration the TSan lane
/// runs under and the one the 100k/s bar actually has to survive.
void BM_ServeBlockLookupWhileMeasuring(benchmark::State& state) {
  service::Daemon daemon{scenario(), scenario().broot(), daemon_config(0)};
  std::thread rounds{[&daemon] { daemon.run_rounds(); }};
  // Wait for the first publish so every lookup hits a real map.
  while (!daemon.current_map())
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  const std::vector<net::HttpRequest> requests = block_requests(daemon);

  std::size_t i = 0;
  for (auto _ : state) {
    const net::HttpResponse response =
        daemon.handle(requests[i++ % requests.size()]);
    benchmark::DoNotOptimize(response.body.data());
  }
  state.counters["lookups_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  daemon.request_stop();
  rounds.join();
}
BENCHMARK(BM_ServeBlockLookupWhileMeasuring);

}  // namespace

BENCHMARK_MAIN();
