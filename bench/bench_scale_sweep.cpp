// Scale sweep over generated Internets (google-benchmark).
//
// The paper probes 6.4M /24 blocks per round; the default scenario keeps
// every ratio at ~120k blocks (EXPERIMENTS.md deviation #1). These
// benchmarks close that gap: BM_GenerateScaleTopology pins the sharded
// generator's throughput and per-AS memory, and BM_ScaleProbeRound runs
// full Verfploeter rounds over generated Internets from the scenario
// default (120k) up to the paper's 6.4M blocks. tools/bench_compare.py
// gates the sweep via `scale_gates` in bench/baseline.json: per-block
// probe throughput at 6.4M must stay within a constant factor of the
// 120k figure (near memory bandwidth, not super-linear in topology
// size), and the SoA routing-table footprint must stay bounded per AS.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "anycast/deployment.hpp"
#include "bgp/routing_engine.hpp"
#include "core/verfploeter.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"
#include "topology/scale_generator.hpp"
#include "util/rng.hpp"
#include "util/round_arena.hpp"

using namespace vp;

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr double kBlocksPerAs = 13.0;  // paper-like allocation ratio

topology::ScaleConfig config_for_blocks(std::uint64_t blocks) {
  topology::ScaleConfig config;
  config.seed = kSeed;
  config.target_blocks = static_cast<std::uint32_t>(blocks);
  config.as_count = static_cast<std::uint32_t>(
      static_cast<double>(blocks) / kBlocksPerAs);
  return config;
}

/// Everything one probe round needs, built once per block count. Only a
/// single world is kept alive (the 6.4M one is ~GB-scale); benchmarks
/// run in ascending block order so each world is built exactly once.
struct ScaleWorld {
  topology::Topology topo;
  anycast::Deployment deployment;
  std::unique_ptr<sim::InternetSim> internet;
  hitlist::Hitlist hitlist;
  std::unique_ptr<core::Verfploeter> verfploeter;
  std::shared_ptr<const bgp::RoutingTable> routes;

  explicit ScaleWorld(std::uint64_t blocks)
      : topo(topology::generate_scale_topology(config_for_blocks(blocks))) {
    deployment = anycast::make_generated(topo, 9, kSeed);
    sim::InternetConfig internet_config;
    internet_config.responsiveness.seed = util::hash_combine(kSeed, 1);
    internet_config.flips.seed = util::hash_combine(kSeed, 2);
    internet = std::make_unique<sim::InternetSim>(topo, internet_config);
    hitlist::HitlistConfig hitlist_config;
    hitlist_config.seed = util::hash_combine(kSeed, 3);
    hitlist = hitlist::Hitlist::build(topo, internet->responsiveness(),
                                      hitlist_config, /*threads=*/0);
    verfploeter = std::make_unique<core::Verfploeter>(*internet, hitlist);
    routes = bgp::RoutingEngine{topo, deployment}.full();
  }
};

const ScaleWorld& world_for(std::uint64_t blocks) {
  static std::uint64_t current_blocks = 0;
  static std::unique_ptr<ScaleWorld> current;
  if (current == nullptr || current_blocks != blocks) {
    current.reset();  // free the old world before building the next
    current = std::make_unique<ScaleWorld>(blocks);
    current_blocks = blocks;
  }
  return *current;
}

void BM_GenerateScaleTopology(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const topology::ScaleConfig config = config_for_blocks(blocks);
  std::size_t memory = 0;
  std::uint64_t realized = 0;
  for (auto _ : state) {
    const topology::Topology topo =
        topology::generate_scale_topology(config);
    memory = topo.memory_bytes();
    realized = topo.block_count();
    benchmark::DoNotOptimize(realized);
  }
  state.counters["blocks_per_sec"] = benchmark::Counter(
      static_cast<double>(realized), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["bytes_per_as"] =
      static_cast<double>(memory) / static_cast<double>(config.as_count);
}
BENCHMARK(BM_GenerateScaleTopology)
    ->Arg(120'000)
    ->Arg(1'300'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleProbeRound(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const ScaleWorld& world = world_for(blocks);
  std::uint64_t probed = 0;
  std::uint32_t round = 0;
  // Rounds share one arena, exactly as a campaign or the daemon would:
  // iteration 1 pays the cold allocations, the steady state we measure
  // (and gate) is the arena-warm round.
  util::RoundArena arena;
  for (auto _ : state) {
    core::RoundSpec spec;
    spec.probe.measurement_id = 9600 + round;
    spec.round = round++;
    spec.threads = 0;  // all hardware threads
    spec.arena = &arena;
    const auto result = world.verfploeter->run(*world.routes, spec);
    probed = result.map.blocks_probed;
    benchmark::DoNotOptimize(probed);
  }
  state.counters["blocks_per_sec"] = benchmark::Counter(
      static_cast<double>(probed), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["table_bytes_per_as"] =
      static_cast<double>(world.routes->memory_bytes()) /
      static_cast<double>(world.topo.as_count());
}
BENCHMARK(BM_ScaleProbeRound)
    ->Arg(120'000)
    ->Arg(1'300'000)
    ->Arg(6'400'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
