// Microbenchmarks for the obs metrics layer (google-benchmark).
//
// Two questions, answered separately:
//  1. What do the primitives cost? (counter add, histogram observe,
//     handle lookup, snapshot+export) — nanosecond-scale, so regressions
//     in the striping or the enabled-check show up immediately.
//  2. What does the whole layer cost a real measurement round?
//     BM_RoundMetrics runs BM_FullMeasurementRound's workload with
//     metrics enabled vs disabled; the budget (ISSUE/DESIGN.md §11) is
//     < 2% overhead. tools/bench_compare.py gates both in CI against
//     bench/baseline.json.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

using namespace vp;

namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("vp_bench_total");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry reg;
  reg.set_enabled(false);
  obs::Counter& c = reg.counter("vp_bench_total");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAddDisabled);

// Contention check: all threads hammer ONE counter. Striping should keep
// per-add cost flat versus the single-threaded number.
void BM_CounterAddContended(benchmark::State& state) {
  static obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("vp_bench_contended_total");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAddContended)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("vp_bench_ms", obs::latency_buckets_ms());
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.7;
    if (v > 200000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

// Name -> handle lookup (shard mutex + map find). Paid once per round
// per metric, never per probe; still worth pinning.
void BM_HandleLookup(benchmark::State& state) {
  obs::MetricsRegistry reg;
  reg.counter("vp_bench_total");
  for (auto _ : state) {
    benchmark::DoNotOptimize(&reg.counter("vp_bench_total"));
  }
}
BENCHMARK(BM_HandleLookup);

void BM_SnapshotAndExport(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 40; ++i)
    reg.counter("vp_bench_total{i=\"" + std::to_string(i) + "\"}").add(i);
  for (int i = 0; i < 8; ++i)
    reg.histogram("vp_bench_ms{i=\"" + std::to_string(i) + "\"}",
                  obs::latency_buckets_ms())
        .observe(i * 3.0);
  for (auto _ : state) {
    const obs::Snapshot snap = reg.snapshot();
    benchmark::DoNotOptimize(obs::to_json(snap));
    benchmark::DoNotOptimize(obs::to_prometheus(snap));
  }
}
BENCHMARK(BM_SnapshotAndExport)->Unit(benchmark::kMicrosecond);

// The number the <2% budget is judged on: a full measurement round
// (same workload as bench_micro's BM_FullMeasurementRound) with the
// global registry enabled (Arg 1) vs disabled (Arg 0). Compare the two
// per-iteration times; CI recomputes the ratio from baseline.json.
void BM_RoundMetrics(benchmark::State& state) {
  static const analysis::Scenario scenario{[] {
    analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
    config.scale = 0.1;
    return config;
  }()};
  static const auto routes_ptr = scenario.route(scenario.broot());
  const bgp::RoutingTable& routes = *routes_ptr;
  obs::metrics().set_enabled(state.range(0) != 0);
  core::RoundSpec spec;
  spec.threads = 2;
  std::uint32_t round = 0;
  for (auto _ : state) {
    spec.probe.measurement_id = 100 + round;
    spec.round = round++;
    benchmark::DoNotOptimize(scenario.verfploeter().run(routes, spec));
  }
  obs::metrics().set_enabled(true);
}
BENCHMARK(BM_RoundMetrics)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

}  // namespace

BENCHMARK_MAIN();
