// Extension (paper §7, future work): use the RTTs embedded in Verfploeter
// replies to suggest where a new anycast site would help, then *validate*
// the suggestion by actually deploying the recommended site in the
// simulator and re-measuring latency — the closed loop the paper could
// only sketch.
#include "analysis/latency.hpp"
#include "analysis/load_analysis.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"
#include "topology/generator.hpp"

using namespace vp;

namespace {

/// The transit AS best positioned to host a site at `center` (nearest PoP).
topology::AsNumber upstream_near(const topology::Topology& topo,
                                 geo::LatLon location) {
  topology::AsNumber best{0};
  double best_km = 1e18;
  for (const auto& node : topo.ases()) {
    if (node.tier != topology::AsTier::kTransit) continue;
    for (const auto& pop : node.pops) {
      const double km = geo::distance_km(pop.location, location);
      if (km < best_km) {
        best_km = km;
        best = node.asn;
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  analysis::Scenario scenario{bench::config_from_env(0.5)};
  bench::banner("Extension (§7)",
                "RTT-driven site placement for B-Root, validated", scenario);

  const auto load = scenario.broot_load(0x20170515);

  // 1. Measure the current two-site deployment, with RTTs.
  const auto routes_ptr = scenario.route(scenario.broot());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 11000;
  const auto before = scenario.verfploeter().run(routes, {probe, 0});
  const auto report_before = analysis::analyze_latency(
      scenario.topo(), before, load, scenario.broot());

  std::printf("current deployment latency:\n");
  util::Table table{{"site", "blocks", "p25 ms", "median ms", "p95 ms"},
                    {util::Align::kLeft}};
  for (const auto& site : report_before.per_site) {
    table.add_row({site.code, util::with_commas(site.blocks),
                   util::fixed(site.rtt_ms.p25, 1),
                   util::fixed(site.rtt_ms.p50, 1),
                   util::fixed(site.rtt_ms.p95, 1)});
  }
  std::printf("%sload-weighted mean RTT: %.1f ms\n\n",
              table.to_string().c_str(),
              report_before.load_weighted_mean_ms);

  // 2. Recommend new sites from the measured RTTs.
  const auto candidates = analysis::recommend_sites(
      scenario.topo(), before, load, scenario.broot(), 5);
  std::printf("recommended new sites (greedy, load-weighted):\n");
  util::Table recs{{"#", "location", "blocks won", "mean saving"},
                   {util::Align::kRight, util::Align::kLeft}};
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    recs.add_row({std::to_string(i + 1), candidates[i].center_name,
                  util::with_commas(candidates[i].blocks_won),
                  util::fixed(candidates[i].mean_rtt_saving_ms, 1) + " ms"});
  }
  std::printf("%s\n", recs.to_string().c_str());
  if (candidates.empty()) {
    std::printf("no beneficial candidate found\n");
    return 0;
  }

  // 3. Validate: deploy the top recommendation and re-measure.
  const auto& pick = candidates.front();
  const geo::LatLon location = geo::world_centers()[pick.center_id].location;
  anycast::Deployment expanded = scenario.broot();
  expanded.sites.push_back(anycast::AnycastSite{
      "NEW", upstream_near(scenario.topo(), location), location});
  const auto new_routes_ptr = scenario.route(expanded);
  const auto& new_routes = *new_routes_ptr;
  probe.measurement_id = 11001;
  const auto after = scenario.verfploeter().run(new_routes, {probe, 1});
  const auto report_after =
      analysis::analyze_latency(scenario.topo(), after, load, expanded);

  const auto counts = after.map.per_site_counts(expanded.sites.size());
  std::printf("after adding %s (upstream AS%u):\n", pick.center_name.c_str(),
              expanded.sites.back().upstream.value);
  std::printf("  new site catchment : %s blocks (%s)\n",
              util::with_commas(counts[2]).c_str(),
              util::percent(static_cast<double>(counts[2]) /
                            static_cast<double>(after.map.mapped_blocks()))
                  .c_str());
  std::printf("  load-weighted RTT  : %.1f ms -> %.1f ms\n\n",
              report_before.load_weighted_mean_ms,
              report_after.load_weighted_mean_ms);

  std::printf("shape checks:\n");
  bench::shape("recommender finds candidates with positive savings", ">0",
               util::with_commas(candidates.size()) + " candidates",
               !candidates.empty() && pick.mean_rtt_saving_ms > 0);
  bench::shape("the new site attracts a real catchment", ">0 blocks",
               util::with_commas(counts[2]), counts[2] > 0);
  bench::shape("measured latency improves after deployment", "lower",
               util::fixed(report_before.load_weighted_mean_ms -
                               report_after.load_weighted_mean_ms,
                           1) +
                   " ms saved",
               report_after.load_weighted_mean_ms <
                   report_before.load_weighted_mean_ms);
  return 0;
}
