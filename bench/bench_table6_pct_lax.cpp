// Table 6: quantifying B-Root's anycast split under different measurement
// methods and dates — Atlas VPs, Verfploeter blocks, load-weighted
// Verfploeter, and the actual measured load. Includes the §5.5
// long-duration-prediction panel (April data predicting May traffic).
#include "analysis/catchment_diff.hpp"
#include "analysis/load_analysis.hpp"
#include "bench/harness.hpp"
#include "core/verfploeter.hpp"

using namespace vp;

int main() {
  analysis::Scenario scenario{bench::config_from_env()};
  bench::banner("Table 6", "%LAX by measurement method and date", scenario);

  // Two routing epochs: 2017-04-21 and 2017-05-15 (§5.5: routing shifted
  // between the B-Root scans).
  const auto april_ptr = scenario.route(scenario.broot(), analysis::kAprilEpoch);
  const auto& april = *april_ptr;
  const auto may_ptr = scenario.route(scenario.broot(), analysis::kMayEpoch);
  const auto& may = *may_ptr;

  core::ProbeConfig probe;
  probe.measurement_id = 421;
  const auto verf_april =
      scenario.verfploeter().run(april, {probe, 10}).map;
  probe.measurement_id = 515;
  const auto verf_may = scenario.verfploeter().run(may, {probe, 20}).map;

  const auto atlas_april = scenario.atlas_small().measure(
      april, scenario.internet().flips(), 10);
  const auto atlas_may =
      scenario.atlas().measure(may, scenario.internet().flips(), 20);

  const auto load_april = scenario.broot_load(0x20170412);  // LB-4-12
  const auto load_may = scenario.broot_load(0x20170515);    // LB-5-15

  const auto predicted =
      analysis::predict_load(load_may, verf_may, 2);
  const auto actual = analysis::actual_load(
      load_may, may, scenario.internet().flips(), 20);

  util::Table table{{"date", "method", "measurement", "% LAX"},
                    {util::Align::kLeft, util::Align::kLeft}};
  const auto pct = [](double f) { return util::percent(f); };
  table.add_row({"2017-04-21", "Atlas",
                 util::with_commas(atlas_april.responding) + " VPs",
                 pct(atlas_april.fraction_to(0))});
  table.add_row({"2017-05-15", "",
                 util::with_commas(atlas_may.responding) + " VPs",
                 pct(atlas_may.fraction_to(0))});
  table.add_row({"2017-04-21", "Verfploeter",
                 util::with_commas(verf_april.mapped_blocks()) + " /24s",
                 pct(verf_april.fraction_to(0))});
  table.add_row({"2017-05-15", "",
                 util::with_commas(verf_may.mapped_blocks()) + " /24s",
                 pct(verf_may.fraction_to(0))});
  table.add_row({"2017-05-15", "+ load",
                 util::si_count(predicted.total(false)) + " q/day",
                 pct(predicted.fraction_to(0))});
  table.add_separator();
  table.add_row({"2017-05-15", "Act. Load",
                 util::si_count(actual.total(false)) + " q/day",
                 pct(actual.fraction_to(0))});
  std::printf("%s\n", table.to_string().c_str());

  const double blocks_may = verf_may.fraction_to(0);
  const double load_weighted = predicted.fraction_to(0);
  const double truth = actual.fraction_to(0);
  std::printf("shape checks (paper: Table 6):\n");
  bench::shape("LAX serves the large majority of blocks", "82-88%",
               util::percent(blocks_may), blocks_may > 0.6);
  bench::shape("load weighting moves the estimate toward actual",
               "81.6 vs 81.4", util::percent(load_weighted) + " vs " +
               util::percent(truth),
               std::abs(load_weighted - truth) <
                   std::abs(blocks_may - truth));
  bench::shape("load-weighted prediction within ~1% of actual", "0.2%",
               util::percent(std::abs(load_weighted - truth)),
               std::abs(load_weighted - truth) < 0.03);
  bench::shape("routing shifted between the dates", "82.4 -> 87.8",
               util::percent(verf_april.fraction_to(0)) + " -> " +
                   util::percent(blocks_may),
               std::abs(verf_april.fraction_to(0) - blocks_may) > 0.005);

  // --- §5.5 long-duration prediction panel --------------------------------
  const auto stale = analysis::predict_load(load_april, verf_april, 2);
  std::printf("\nlong-duration prediction (§5.5):\n");
  util::Table panel{{"prediction basis", "% LAX", "abs. error vs actual"},
                    {util::Align::kLeft}};
  panel.add_row({"same-day (May scan x May load)",
                 util::percent(load_weighted),
                 util::percent(std::abs(load_weighted - truth))});
  panel.add_row({"month-old (Apr scan x Apr load)",
                 util::percent(stale.fraction_to(0)),
                 util::percent(std::abs(stale.fraction_to(0) - truth))});
  std::printf("%s\n", panel.to_string().c_str());
  bench::shape("stale data predicts worse (76.2 vs 81.6 in paper)",
               "5.4% error",
               util::percent(std::abs(stale.fraction_to(0) - truth)),
               std::abs(stale.fraction_to(0) - truth) >=
                   std::abs(load_weighted - truth));

  // What actually moved between the dates (the routing-shift anatomy).
  const auto diff = analysis::diff_catchments(scenario.topo(), verf_april,
                                              verf_may, load_may);
  std::printf("\nApril -> May catchment diff: %s blocks moved (%s of "
              "blocks mapped in both), carrying %s q/day\n",
              util::with_commas(diff.moved_blocks).c_str(),
              util::percent(diff.moved_fraction()).c_str(),
              util::si_count(diff.moved_queries).c_str());
  if (!diff.top_ases.empty()) {
    std::printf("largest movers: ");
    for (std::size_t i = 0; i < diff.top_ases.size() && i < 3; ++i) {
      std::printf("%s%s (%s)", i ? ", " : "",
                  diff.top_ases[i].name.c_str(),
                  util::with_commas(diff.top_ases[i].moved_blocks).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
