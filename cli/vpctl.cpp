// vpctl — command-line driver for the Verfploeter library.
//
// Runs measurements against the simulated Internet and produces the same
// artifacts an operator of the real system works with: catchment CSVs,
// stability reports, load predictions, and site recommendations.
//
//   vpctl scan      [--deployment broot|tangled] [--prepend SITE=N]
//                   [--out catchment.csv]
//   vpctl sweep     [--deployment ...] [--site CODE] [--max-prepend N]
//                   [--delta-sweep]
//   vpctl campaign  [--deployment ...] [--rounds N] [--interval-min M]
//   vpctl atlas     [--deployment ...]
//   vpctl predict   [--catchment file.csv] [--date apr|may]
//   vpctl recommend [--candidates N]
//   vpctl export-load [--date apr|may] [--out load.csv]
//   vpctl gen       [--gen-ases N] [--gen-blocks N] [--out topo.vpt]
//                   [--load topo.vpt] [--probe]
//   vpctl playbook  [--attack KINDS] [--attack-seed N] [--magnitude F]
//                   [--target SITE] [--headroom F] [--max-prepend N]
//                   [--no-withdraw] [--exhaustive] [--top K]
//                   [--out playbook.csv|.json]
//
// Global flags: --scale F (Internet size, default 0.4), --seed N,
// --threads N (probe workers per round; 0 = all hardware threads).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "agility/attack.hpp"
#include "agility/playbook.hpp"
#include "analysis/coverage.hpp"
#include "analysis/latency.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "analysis/load_analysis.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stability.hpp"
#include "anycast/deployment.hpp"
#include "bgp/routing_engine.hpp"
#include "core/campaign.hpp"
#include "core/dataset_io.hpp"
#include "sim/fault_injector.hpp"
#include "topology/scale_generator.hpp"
#include "topology/topo_io.hpp"
#include "util/atomic_file.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vp;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atol(it->second.c_str());
  }
};

/// Flags that take no value.
bool is_boolean_flag(std::string_view key) {
  return key == "resume" || key == "no-metrics" || key == "no-route-cache" ||
         key == "delta-sweep" || key == "probe" || key == "no-withdraw" ||
         key == "exhaustive";
}

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) return std::nullopt;
    const std::string key{arg.substr(2)};
    if (is_boolean_flag(key)) {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    args.options[key] = argv[++i];
  }
  return args;
}

/// Exit codes beyond 0/1/2 (ok / runtime error / usage), so scripts and
/// the crash harness can tell resume outcomes apart.
constexpr int kExitResumed = 3;             // completed after a resume
constexpr int kExitFingerprintMismatch = 4; // journal is another campaign's
constexpr int kExitCorruptJournal = 5;      // checksum failure, refused
// Any output artifact (--out, --metrics-out, the journal) failed to
// write. Writes go through util::atomic_file (and journal appends fail
// fast on I/O errors), so failure surfaces at flush time — a command
// must never exit 0 after silently losing its artifact.
constexpr int kExitWriteFailed = 6;
// SIGINT/SIGTERM landed mid-campaign: the in-flight round and its
// journal append completed, metrics flushed, later rounds were skipped.
// The journal is a resumable prefix; rerun with --resume to finish.
constexpr int kExitInterrupted = 7;

/// Set by the signal handler, polled by Campaign between rounds. Signal
/// handlers may only touch lock-free atomics; everything else (the final
/// journal append, the metrics flush) happens on the normal path after
/// the campaign loop notices the flag.
std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(
      stderr,
      "usage: vpctl <command> [options]\n"
      "\n"
      "commands:\n"
      "  scan         run one Verfploeter round, print the catchment split\n"
      "  sweep        prepend sweep over one site, one round per config\n"
      "  campaign     run a multi-round stability campaign (Figure 9 style)\n"
      "  atlas        run a RIPE-Atlas-style campaign for comparison\n"
      "  predict      predict per-site load from a catchment + query logs\n"
      "  recommend    suggest new site locations from measured RTTs\n"
      "  export-load  write the per-block query-log dataset as CSV\n"
      "  gen          build an Internet with the sharded scale generator\n"
      "  playbook     search TE responses to attack workloads (Agility\n"
      "               style): best prepend/withdraw config per attack\n"
      "\n"
      "common options:\n"
      "  --scale F          Internet size multiplier (default 0.4 ~ 48k /24s)\n"
      "  --seed N           simulation seed (default 42)\n"
      "  --deployment NAME  broot (default) or tangled\n"
      "  --threads N        probe workers per round (default 1; 0 = all\n"
      "                     hardware threads; result is identical)\n"
      "  --retries N        retry probes that saw no reply within the\n"
      "                     timeout, up to N times (default 0)\n"
      "  --timeout-ms T     per-probe reply timeout (default 1000)\n"
      "  --backoff-ms B     base retry backoff, doubled per retry\n"
      "                     (default 250)\n"
      "  --fault-seed N     inject a seeded random fault plan (loss,\n"
      "                     rate-limiting, outages, route churn)\n"
      "  --metrics-out FILE dump the run's metrics registry on exit\n"
      "                     (.json = JSON, .prom/.txt = Prometheus text)\n"
      "  --no-metrics       disable metric collection (results identical)\n"
      "  --no-route-cache   recompute routes and resolve catchments\n"
      "                     per probe instead of using the precomputed\n"
      "                     tables (results identical; A/B escape hatch)\n"
      "  --route-cache-bytes N  cap retained route-cache table memory;\n"
      "                     least-recently-used tables are evicted\n"
      "                     (default 0 = unbounded; env VP_ROUTE_CACHE_BYTES)\n"
      "scan options:\n"
      "  --prepend SITE=N   AS-prepend the SITE announcement N times\n"
      "  --out FILE         write the catchment as CSV\n"
      "sweep options:\n"
      "  --site CODE        site whose announcement is prepended\n"
      "                     (default MIA)\n"
      "  --max-prepend N    sweep prepend 0..N (default 3)\n"
      "  --delta-sweep      walk the sweep as one incremental routing\n"
      "                     session: each step recomputes only the ASes\n"
      "                     whose best path changes (results identical\n"
      "                     to full per-config recomputation)\n"
      "campaign options:\n"
      "  --rounds N         number of rounds (default 16)\n"
      "  --interval-min M   minutes between rounds (default 15)\n"
      "  --concurrency N    rounds measured in parallel (default 1)\n"
      "  --journal PATH     append each completed round to a crash-safe\n"
      "                     journal; with --resume, rounds already in the\n"
      "                     journal are loaded instead of re-run\n"
      "  --resume           resume from an existing --journal file\n"
      "  --out FILE         write every round's catchment as one CSV\n"
      "                     (atomic replace; byte-stable across resumes)\n"
      "campaign exit codes: 0 ran fresh, 3 completed after a resume,\n"
      "  4 journal belongs to a different config, 5 journal corrupt,\n"
      "  7 interrupted by SIGINT/SIGTERM (current round + journal append\n"
      "  finished; journal is a resumable prefix)\n"
      "all commands exit 6 when an output file (--out/--metrics-out) or\n"
      "  the journal cannot be written\n"
      "predict options:\n"
      "  --catchment FILE   reuse an exported catchment instead of scanning\n"
      "  --date apr|may     which load dataset to weight with (default may)\n"
      "recommend options:\n"
      "  --candidates N     how many suggestions (default 5)\n"
      "export-load options:\n"
      "  --date apr|may     dataset date (default may)\n"
      "  --out FILE         output path (default load.csv)\n"
      "gen options:\n"
      "  --gen-ases N       AS count (default 10000)\n"
      "  --gen-blocks N     target /24 count (default 13 per AS)\n"
      "  --gen-transits N   tier-1 clique size (default 16)\n"
      "  --gen-shard N      ASes per shard (any value, same topology)\n"
      "  --multihoming F    mean extra providers per stub (default 0.35)\n"
      "  --peering F        regional lateral-peering chance (default 0.15)\n"
      "  --gen-seed N       generator seed (default 42)\n"
      "  --sites N          generated anycast sites for --probe (default 4)\n"
      "  --out FILE         save the topology (binary, reload with --load)\n"
      "  --load FILE        load a saved topology instead of generating\n"
      "  --probe            run one Verfploeter round over the generated\n"
      "                     Internet (generated deployment at the transit\n"
      "                     core) and print the catchment split\n"
      "playbook options:\n"
      "  --attack KINDS     comma list of polarized,flash,spoofed,\n"
      "                     volumetric (default: all four)\n"
      "  --attack-seed N    attack workload seed (default 1)\n"
      "  --magnitude F      attack volume as a multiple of the baseline\n"
      "                     load (default 4.0)\n"
      "  --target SITE      catchment the targeted attacks concentrate\n"
      "                     in (default: seed-chosen enabled site)\n"
      "  --headroom F       per-site capacity = F x fair share of the\n"
      "                     legitimate baseline (default 1.6)\n"
      "  --max-prepend N    prepend depths searched, 0..N (default 3)\n"
      "  --no-withdraw      exclude site withdrawal from the search\n"
      "  --exhaustive       search the full per-site action product\n"
      "                     instead of the staged single+pair search\n"
      "  --top K            ranked responses kept per attack (default 5)\n"
      "  --date apr|may     load dataset for baseline + capacity\n"
      "  --out FILE         write the playbook (.json = JSON, else CSV)\n"
      "  (--no-route-cache re-routes every candidate from scratch instead\n"
      "   of the incremental delta session; results are identical)\n");
  return 2;
}

analysis::Scenario make_scenario(const Args& args) {
  analysis::ScenarioConfig config;
  config.scale = args.get_double("scale", 0.4);
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  config.route_cache = !args.has("no-route-cache");
  if (args.has("route-cache-bytes")) {
    config.route_cache_bytes =
        static_cast<std::size_t>(args.get_long("route-cache-bytes", 0));
  } else if (const char* env = std::getenv("VP_ROUTE_CACHE_BYTES")) {
    config.route_cache_bytes = std::strtoull(env, nullptr, 10);
  }
  std::printf("building simulated Internet (scale %.2f, seed %llu)...\n",
              config.scale,
              static_cast<unsigned long long>(config.seed));
  return analysis::Scenario{config};
}

const anycast::Deployment& pick_deployment(const analysis::Scenario& scenario,
                                           const Args& args) {
  return args.get("deployment", "broot") == "tangled" ? scenario.tangled()
                                                      : scenario.broot();
}

std::uint64_t load_date_seed(const Args& args) {
  return args.get("date", "may") == "apr" ? 0x20170412ull : 0x20170515ull;
}

/// Renders a live progress line from the engine's callbacks. Shared by
/// every round of a campaign, so state is guarded: concurrent rounds
/// interleave their updates on one line, keyed by round index.
class ProgressObserver : public core::RoundObserver {
 public:
  void on_probe_progress(const core::RoundSpec& spec, std::uint64_t sent,
                         std::uint64_t total) override {
    std::lock_guard lock{mutex_};
    std::printf("\r\033[Kround %u: %s / %s probes", spec.round,
                util::with_commas(sent).c_str(),
                util::with_commas(total).c_str());
    std::fflush(stdout);
  }
  void on_round_complete(const core::RoundSpec& spec,
                         const core::RoundResult& result) override {
    std::lock_guard lock{mutex_};
    std::printf("\r\033[Kround %u: %s probes, %s replies kept, %s dropped\n",
                spec.round, util::with_commas(result.map.probes_sent).c_str(),
                util::with_commas(result.map.cleaning.kept).c_str(),
                util::with_commas(result.map.cleaning.dropped()).c_str());
  }
  void on_metrics(const core::RoundSpec& spec,
                  const core::RoundMetrics& metrics) override {
    std::lock_guard lock{mutex_};
    std::printf(
        "round %u: %s wall (probe phase %s), %s probes/s, "
        "RTT p50 %s ms p95 %s ms\n",
        spec.round, (util::fixed(metrics.wall_ms, 1) + " ms").c_str(),
        (util::fixed(metrics.probe_phase_ms, 1) + " ms").c_str(),
        util::si_count(metrics.probes_per_sec).c_str(),
        util::fixed(metrics.rtt_p50_ms, 1).c_str(),
        util::fixed(metrics.rtt_p95_ms, 1).c_str());
  }

 private:
  std::mutex mutex_;
};

unsigned probe_threads(const Args& args) {
  return static_cast<unsigned>(args.get_long("threads", 1));
}

/// Retry/backoff knobs shared by scan-style commands and campaigns.
void apply_retry_args(core::ProbeConfig& probe, const Args& args) {
  probe.max_retries = static_cast<int>(args.get_long("retries", 0));
  probe.probe_timeout_ms = args.get_double("timeout-ms", 1000.0);
  probe.retry_backoff_ms = args.get_double("backoff-ms", 250.0);
}

/// The seeded fault plan behind --fault-seed (nullopt = run clean).
std::optional<sim::FaultInjector> make_injector(const Args& args) {
  if (!args.has("fault-seed")) return std::nullopt;
  const auto seed = static_cast<std::uint64_t>(args.get_long("fault-seed", 1));
  std::printf("injecting faults (plan seed %llu)\n",
              static_cast<unsigned long long>(seed));
  return sim::FaultInjector{sim::FaultPlan::from_seed(seed)};
}

void print_fault_summary(const sim::FaultStats& faults) {
  if (faults.probes_lost + faults.replies_dropped() + faults.retries == 0)
    return;
  std::printf(
      "faults: %s probes lost, %s replies dropped (%s rate-limited, %s "
      "outage, %s withdrawn), %s diverted, %s delayed\n",
      util::with_commas(faults.probes_lost).c_str(),
      util::with_commas(faults.replies_dropped()).c_str(),
      util::with_commas(faults.rate_limited).c_str(),
      util::with_commas(faults.outage_drops).c_str(),
      util::with_commas(faults.withdrawn).c_str(),
      util::with_commas(faults.diverted).c_str(),
      util::with_commas(faults.delayed).c_str());
  if (faults.retries > 0) {
    std::printf("retries: %s sent, %s probes recovered by a retry\n",
                util::with_commas(faults.retries).c_str(),
                util::with_commas(faults.recovered).c_str());
  }
}

void print_catchment_summary(const anycast::Deployment& deployment,
                             const core::RoundResult& round) {
  std::printf("probed %s blocks, mapped %s (%s)\n",
              util::with_commas(round.map.blocks_probed).c_str(),
              util::with_commas(round.map.mapped_blocks()).c_str(),
              util::percent(static_cast<double>(round.map.mapped_blocks()) /
                            static_cast<double>(round.map.blocks_probed))
                  .c_str());
  util::Table table{{"site", "/24 blocks", "share"}, {util::Align::kLeft}};
  const auto counts = round.map.per_site_counts(deployment.sites.size());
  for (std::size_t s = 0; s < counts.size(); ++s) {
    table.add_row(
        {deployment.sites[s].code, util::with_commas(counts[s]),
         util::percent(static_cast<double>(counts[s]) /
                       static_cast<double>(round.map.mapped_blocks()))});
  }
  std::printf("%s", table.to_string().c_str());
  const auto& cleaning = round.map.cleaning;
  std::printf(
      "cleaning: %s raw replies; dropped %s dup, %s unsolicited, %s late\n",
      util::with_commas(cleaning.raw_replies).c_str(),
      util::with_commas(cleaning.duplicates).c_str(),
      util::with_commas(cleaning.unsolicited).c_str(),
      util::with_commas(cleaning.late).c_str());
}

core::RoundResult run_scan(const analysis::Scenario& scenario,
                           const anycast::Deployment& deployment,
                           std::uint32_t round_index, const Args& args) {
  const auto routes_ptr = scenario.route(deployment);
  const auto& routes = *routes_ptr;
  core::RoundSpec spec;
  spec.probe.measurement_id = 9000 + round_index;
  apply_retry_args(spec.probe, args);
  spec.round = round_index;
  spec.threads = probe_threads(args);
  const auto injector = make_injector(args);
  if (injector) spec.faults = &*injector;
  ProgressObserver progress;
  return scenario.verfploeter().run(routes, spec, &progress);
}

int cmd_scan(const Args& args) {
  const auto scenario = make_scenario(args);
  anycast::Deployment deployment = pick_deployment(scenario, args);
  if (args.has("prepend")) {
    const std::string spec = args.get("prepend", "");
    const auto eq = spec.find('=');
    if (eq == std::string::npos) return usage();
    deployment =
        deployment.with_prepend(spec.substr(0, eq),
                                std::atoi(spec.c_str() + eq + 1));
    std::printf("prepending: %s\n", spec.c_str());
  }
  const auto round = run_scan(scenario, deployment, 0, args);
  print_catchment_summary(deployment, round);
  print_fault_summary(round.faults);
  if (args.has("out")) {
    const std::string path = args.get("out", "catchment.csv");
    if (!core::save_catchment(path, round, deployment)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return kExitWriteFailed;
    }
    std::printf("catchment written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto& base = pick_deployment(scenario, args);
  const std::string site_code = args.get("site", "MIA");
  const auto site = base.site_by_code(site_code);
  if (!site) {
    std::fprintf(stderr, "error: deployment has no site '%s'\n",
                 site_code.c_str());
    return usage();
  }
  const int max_prepend = static_cast<int>(args.get_long("max-prepend", 3));
  const bool delta = args.has("delta-sweep");
  std::printf("sweeping %s prepend 0..%d (%s routing)\n", site_code.c_str(),
              max_prepend, delta ? "incremental delta" : "full per config");

  // One engine session for the whole sweep; consecutive configurations
  // differ in one site, so each --delta-sweep step touches only the
  // affected-AS set. Without the flag every step routes from scratch
  // (through the scenario's cache) — the tables are identical either way.
  auto session = scenario.delta_session(base);
  util::Table table{{"prepend", "recomputed ASes", site_code + " share",
                     "largest share"},
                    {util::Align::kRight}};
  for (int n = 0; n <= max_prepend; ++n) {
    std::shared_ptr<const bgp::RoutingTable> routes;
    std::string recomputed = "-";
    if (delta) {
      const auto result =
          session.apply(anycast::ConfigDelta::set_prepend(*site, n));
      routes = result.table;
      recomputed = util::with_commas(result.recomputed_ases) + " / " +
                   util::with_commas(scenario.topo().as_count());
    } else {
      anycast::Deployment config = base;
      config.sites[static_cast<std::size_t>(*site)].prepend = n;
      routes = scenario.route(config);
    }
    core::RoundSpec spec;
    spec.probe.measurement_id = static_cast<std::uint32_t>(9100 + n);
    apply_retry_args(spec.probe, args);
    spec.round = static_cast<std::uint32_t>(n);
    spec.threads = probe_threads(args);
    const auto round = scenario.verfploeter().run(*routes, spec);
    const auto counts = round.map.per_site_counts(base.sites.size());
    std::size_t largest = 0;
    for (std::size_t s = 1; s < counts.size(); ++s)
      if (counts[s] > counts[largest]) largest = s;
    table.add_row(
        {"+" + std::to_string(n), recomputed,
         util::percent(round.map.fraction_to(*site)),
         base.sites[largest].code + " " +
             util::percent(round.map.fraction_to(
                 static_cast<anycast::SiteId>(largest)))});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  // A SIGINT mid-campaign must not lose the final journal frame or the
  // metrics flush: the handler only sets a flag, the campaign finishes
  // the round (and append) in flight, and we exit with a distinct code.
  // Installed before the (slow) scenario build so an early ^C is caught.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto scenario = make_scenario(args);
  const auto& deployment = pick_deployment(scenario, args);
  const auto rounds = static_cast<std::uint32_t>(args.get_long("rounds", 16));
  const double interval = args.get_double("interval-min", 15.0);
  const auto routes_ptr = scenario.route(deployment);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 100;
  apply_retry_args(probe, args);
  const auto injector = make_injector(args);
  ProgressObserver progress;
  core::Campaign campaign{scenario.verfploeter(), routes};
  campaign.probe(probe)
      .rounds(rounds)
      .interval(util::SimTime::from_minutes(interval))
      .threads(probe_threads(args))
      .concurrency(static_cast<unsigned>(args.get_long("concurrency", 1)))
      .observe(progress)
      .cancel(&g_interrupted)
      .faults(injector ? &*injector : nullptr);
  if (args.has("journal")) {
    campaign.journal(args.get("journal", ""),
                     anycast::fingerprint(deployment));
    campaign.resume(args.has("resume"));
  }
  const auto outcome = campaign.run_reported();
  switch (outcome.journal) {
    case core::JournalStatus::kFingerprintMismatch:
      std::fprintf(stderr,
                   "error: journal was written by a different campaign "
                   "config; refusing to resume\n");
      return kExitFingerprintMismatch;
    case core::JournalStatus::kCorrupt:
      std::fprintf(stderr,
                   "error: journal failed its checksum (corrupt record); "
                   "refusing to resume\n");
      return kExitCorruptJournal;
    case core::JournalStatus::kIoError:
      // The journal is an output artifact like --out: losing frames must
      // surface as the write-failure exit code, never a generic error
      // (and never silently — see VP_JOURNAL_FAIL_AT in journal_test).
      std::fprintf(stderr, "error: cannot write journal\n");
      return kExitWriteFailed;
    case core::JournalStatus::kResumed:
      std::printf("resumed: %u rounds from journal, %u re-run",
                  outcome.rounds_loaded, outcome.rounds_executed);
      if (outcome.truncated_bytes > 0) {
        std::printf(" (%llu torn bytes truncated)",
                    static_cast<unsigned long long>(outcome.truncated_bytes));
      }
      std::printf("\n");
      break;
    default:
      break;
  }
  if (outcome.interrupted) {
    // Skipped rounds left empty results, so the stability analysis and
    // the --out CSV (which must cover every round) would be wrong.
    // Everything durable — the in-flight round's journal append — already
    // happened; report the prefix and leave with a distinct code.
    std::uint32_t completed = 0;
    for (const core::RoundResult& result : outcome.results)
      if (result.map.blocks_probed > 0) ++completed;
    std::printf("interrupted: %u of %u rounds completed (%u from journal); "
                "rerun with --resume to finish\n",
                completed, rounds, outcome.rounds_loaded);
    return kExitInterrupted;
  }
  const auto& results = outcome.results;
  analysis::StabilityAccumulator accumulator{scenario.topo()};
  sim::FaultStats campaign_faults;
  for (const core::RoundResult& result : results) {
    accumulator.add_round(result.map);
    campaign_faults += result.faults;
  }
  print_fault_summary(campaign_faults);
  const auto report = accumulator.finish();
  std::printf("campaign: %u rounds, %.0f min apart\n", rounds, interval);
  std::printf("medians per round: stable %s, to-NR %s, from-NR %s, "
              "flipped %s\n",
              util::si_count(report.median_stable()).c_str(),
              util::si_count(report.median_to_nr()).c_str(),
              util::si_count(report.median_from_nr()).c_str(),
              util::si_count(report.median_flipped()).c_str());
  util::Table table{{"AS", "name", "flips"},
                    {util::Align::kRight, util::Align::kLeft}};
  for (std::size_t i = 0; i < report.by_as.size() && i < 5; ++i) {
    table.add_row({std::to_string(report.by_as[i].asn), report.by_as[i].name,
                   util::with_commas(report.by_as[i].flips)});
  }
  std::printf("top flipping ASes:\n%s", table.to_string().c_str());
  if (args.has("out")) {
    // All rounds in one file: the crash harness byte-compares this
    // against an uninterrupted run, so it must cover every round, in
    // order, and be written atomically.
    std::ostringstream all;
    for (std::uint32_t r = 0; r < rounds; ++r) {
      all << "# round " << r << '\n';
      core::write_catchment_csv(all, results[r], deployment);
    }
    const std::string path = args.get("out", "campaign.csv");
    if (!util::atomic_write_file(path, all.str())) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return kExitWriteFailed;
    }
    std::printf("campaign catchments written to %s\n", path.c_str());
  }
  return outcome.journal == core::JournalStatus::kResumed ? kExitResumed : 0;
}

int cmd_atlas(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto& deployment = pick_deployment(scenario, args);
  const auto routes_ptr = scenario.route(deployment);
  const auto& routes = *routes_ptr;
  const auto campaign =
      scenario.atlas().measure(routes, scenario.internet().flips(), 0);
  std::printf("%u VPs considered, %u responded\n", campaign.considered,
              campaign.responding);
  util::Table table{{"site", "VPs", "share"}, {util::Align::kLeft}};
  const auto counts = campaign.per_site_counts(deployment.sites.size());
  for (std::size_t s = 0; s < counts.size(); ++s) {
    table.add_row({deployment.sites[s].code, util::with_commas(counts[s]),
                   util::percent(campaign.fraction_to(
                       static_cast<anycast::SiteId>(s)))});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto& deployment = pick_deployment(scenario, args);
  core::RoundResult round;
  if (args.has("catchment")) {
    auto loaded = core::load_catchment(args.get("catchment", ""), deployment);
    if (!loaded) {
      std::fprintf(stderr, "error: cannot read catchment CSV\n");
      return 1;
    }
    round = std::move(*loaded);
    std::printf("using imported catchment (%s blocks)\n",
                util::with_commas(round.map.mapped_blocks()).c_str());
  } else {
    round = run_scan(scenario, deployment, 0, args);
  }
  const auto load = scenario.broot_load(load_date_seed(args));
  const auto split = analysis::predict_load(load, round.map,
                                            deployment.sites.size());
  util::Table table{{"site", "q/day", "share"}, {util::Align::kLeft}};
  for (std::size_t s = 0; s < deployment.sites.size(); ++s) {
    table.add_row({deployment.sites[s].code,
                   util::si_count(split.site_queries[s]),
                   util::percent(split.fraction_to(
                       static_cast<anycast::SiteId>(s)))});
  }
  table.add_row({"(unmapped)", util::si_count(split.unknown_queries), "-"});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_recommend(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto& deployment = pick_deployment(scenario, args);
  const auto round = run_scan(scenario, deployment, 0, args);
  const auto load = scenario.broot_load(load_date_seed(args));
  const auto report =
      analysis::analyze_latency(scenario.topo(), round, load, deployment);
  std::printf("current load-weighted mean RTT: %.1f ms\n",
              report.load_weighted_mean_ms);
  const auto candidates = analysis::recommend_sites(
      scenario.topo(), round, load, deployment,
      static_cast<std::size_t>(args.get_long("candidates", 5)));
  util::Table table{{"#", "location", "blocks won", "mean saving"},
                    {util::Align::kRight, util::Align::kLeft}};
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    table.add_row({std::to_string(i + 1), candidates[i].center_name,
                   util::with_commas(candidates[i].blocks_won),
                   util::fixed(candidates[i].mean_rtt_saving_ms, 1) + " ms"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_export_load(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto load = scenario.broot_load(load_date_seed(args));
  const std::string path = args.get("out", "load.csv");
  if (!core::save_load_csv(path, load)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return kExitWriteFailed;
  }
  std::printf("wrote %zu querying blocks (%s q/day) to %s\n",
              load.blocks().size(),
              util::si_count(load.total_daily_queries()).c_str(),
              path.c_str());
  return 0;
}

int cmd_gen(const Args& args) {
  namespace chrono = std::chrono;
  topology::Topology topo;
  double gen_seconds = 0.0;
  if (args.has("load")) {
    const std::string path = args.get("load", "");
    std::string error;
    const auto t0 = chrono::steady_clock::now();
    if (!topology::load_topology(path, topo, error)) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    gen_seconds = chrono::duration<double>(chrono::steady_clock::now() - t0)
                      .count();
    std::printf("loaded %s (%.2fs)\n", path.c_str(), gen_seconds);
  } else {
    topology::ScaleConfig gen;
    gen.seed = static_cast<std::uint64_t>(args.get_long("gen-seed", 42));
    gen.as_count =
        static_cast<std::uint32_t>(args.get_long("gen-ases", 10'000));
    gen.target_blocks = static_cast<std::uint32_t>(args.get_long(
        "gen-blocks", static_cast<long>(13L * gen.as_count)));
    gen.transit_count =
        static_cast<std::uint32_t>(args.get_long("gen-transits", 16));
    if (args.has("gen-shard")) {
      gen.shard_size =
          static_cast<std::uint32_t>(args.get_long("gen-shard", 4096));
    }
    gen.multihoming_mean = args.get_double("multihoming", 0.35);
    gen.peering_density = args.get_double("peering", 0.15);
    gen.threads = static_cast<unsigned>(args.get_long("threads", 0));
    std::printf("generating %s ASes / %s target blocks (seed %llu)...\n",
                util::with_commas(gen.as_count).c_str(),
                util::with_commas(gen.target_blocks).c_str(),
                static_cast<unsigned long long>(gen.seed));
    const auto t0 = chrono::steady_clock::now();
    topo = topology::generate_scale_topology(gen);
    gen_seconds = chrono::duration<double>(chrono::steady_clock::now() - t0)
                      .count();
  }

  std::size_t tier_counts[3] = {0, 0, 0};
  std::size_t link_records = 0;
  for (topology::AsId v = 0; v < topo.as_count(); ++v) {
    const topology::AsNode& node = topo.as_at(v);
    tier_counts[static_cast<std::size_t>(node.tier)]++;
    link_records += node.links.size();
  }
  util::Table table{{"", "count"}, {util::Align::kLeft}};
  table.add_row({"transit ASes", util::with_commas(tier_counts[0])});
  table.add_row({"regional ASes", util::with_commas(tier_counts[1])});
  table.add_row({"stub ASes", util::with_commas(tier_counts[2])});
  table.add_row({"links", util::with_commas(link_records / 2)});
  table.add_row({"announced prefixes",
                 util::with_commas(topo.announced_prefixes().size())});
  table.add_row({"/24 blocks", util::with_commas(topo.block_count())});
  table.add_row({"geolocated blocks", util::with_commas(topo.geodb().size())});
  std::printf("%s", table.to_string().c_str());
  if (gen_seconds > 0.0) {
    std::printf("built in %.2fs (%s blocks/s)\n", gen_seconds,
                util::si_count(static_cast<double>(topo.block_count()) /
                               gen_seconds)
                    .c_str());
  }
  std::printf("memory: %s bytes (%.1f bytes/block)\n",
              util::with_commas(topo.memory_bytes()).c_str(),
              static_cast<double>(topo.memory_bytes()) /
                  static_cast<double>(std::max<std::size_t>(
                      1, topo.block_count())));
  std::printf("structural digest: %016llx\n",
              static_cast<unsigned long long>(
                  topology::structural_digest(topo)));

  if (args.has("out")) {
    const std::string path = args.get("out", "topology.vpt");
    if (!topology::save_topology(topo, path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return kExitWriteFailed;
    }
    std::printf("topology written to %s\n", path.c_str());
  }

  if (args.has("probe")) {
    const auto seed =
        static_cast<std::uint64_t>(args.get_long("gen-seed", 42));
    const auto deployment = anycast::make_generated(
        topo, static_cast<std::size_t>(args.get_long("sites", 4)), seed);
    if (deployment.sites.empty()) {
      std::fprintf(stderr, "error: topology has no transit core to host "
                           "anycast sites\n");
      return 1;
    }
    std::printf("probing via %zu generated sites...\n",
                deployment.sites.size());
    sim::InternetConfig internet_config;
    internet_config.responsiveness.seed = util::hash_combine(seed, 1);
    internet_config.flips.seed = util::hash_combine(seed, 2);
    const sim::InternetSim internet{topo, internet_config};
    hitlist::HitlistConfig hitlist_config;
    hitlist_config.seed = util::hash_combine(seed, 3);
    const auto hitlist = hitlist::Hitlist::build(
        topo, internet.responsiveness(), hitlist_config, probe_threads(args));
    const core::Verfploeter verfploeter{internet, hitlist};
    bgp::RoutingEngine engine{topo, deployment};
    const auto routes = engine.full();
    core::RoundSpec spec;
    spec.probe.measurement_id = 9500;
    apply_retry_args(spec.probe, args);
    spec.threads = probe_threads(args);
    ProgressObserver progress;
    const auto round = verfploeter.run(*routes, spec, &progress);
    print_catchment_summary(deployment, round);
  }
  return 0;
}

std::string playbook_csv(const agility::Playbook& playbook,
                         const anycast::Deployment& deployment) {
  std::ostringstream out;
  out << "attack,kind,seed,magnitude,target,rank,response,absorbed_frac,"
         "broken_frac,overloaded_sites,shifted_blocks,offered_qday,"
         "configs_evaluated\n";
  for (const agility::PlaybookEntry& entry : playbook.entries) {
    const std::string target =
        entry.target >= 0 &&
                static_cast<std::size_t>(entry.target) <
                    deployment.sites.size()
            ? deployment.sites[static_cast<std::size_t>(entry.target)].code
            : "-";
    const auto row = [&](std::size_t rank, const std::string& label,
                         const agility::Score& score) {
      out << entry.attack_label << ',' << agility::to_string(entry.attack.kind)
          << ',' << entry.attack.seed << ','
          << util::fixed(entry.attack.magnitude, 2) << ',' << target << ','
          << rank << ',' << label << ','
          << util::fixed(score.absorbed_fraction(entry.offered_milliq), 6)
          << ','
          << util::fixed(score.broken_fraction(entry.offered_milliq), 6)
          << ',' << score.overloaded_sites << ',' << score.shifted_blocks
          << ',' << entry.offered_milliq / 1000 << ','
          << entry.configs_evaluated << '\n';
    };
    row(0, "no action", entry.no_action);
    for (std::size_t r = 0; r < entry.responses.size(); ++r)
      row(r + 1, entry.responses[r].candidate.label,
          entry.responses[r].score);
  }
  return out.str();
}

std::string playbook_json(const agility::Playbook& playbook,
                          const anycast::Deployment& deployment) {
  std::ostringstream out;
  const auto score_json = [&](const agility::Score& score,
                              std::uint64_t offered) {
    std::ostringstream s;
    s << "{\"absorbed_frac\": "
      << util::fixed(score.absorbed_fraction(offered), 6)
      << ", \"broken_frac\": " << util::fixed(score.broken_fraction(offered), 6)
      << ", \"overloaded_sites\": " << score.overloaded_sites
      << ", \"shifted_blocks\": " << score.shifted_blocks << "}";
    return s.str();
  };
  out << "{\n  \"deployment\": \"" << deployment.name << "\",\n"
      << "  \"entries\": [\n";
  for (std::size_t e = 0; e < playbook.entries.size(); ++e) {
    const agility::PlaybookEntry& entry = playbook.entries[e];
    const std::string target =
        entry.target >= 0 &&
                static_cast<std::size_t>(entry.target) <
                    deployment.sites.size()
            ? deployment.sites[static_cast<std::size_t>(entry.target)].code
            : "";
    out << "    {\"attack\": \"" << entry.attack_label << "\", \"kind\": \""
        << agility::to_string(entry.attack.kind) << "\", \"seed\": "
        << entry.attack.seed << ", \"target\": \"" << target
        << "\", \"offered_qday\": " << entry.offered_milliq / 1000
        << ", \"configs_evaluated\": " << entry.configs_evaluated
        << ",\n     \"no_action\": "
        << score_json(entry.no_action, entry.offered_milliq)
        << ",\n     \"responses\": [\n";
    for (std::size_t r = 0; r < entry.responses.size(); ++r) {
      out << "       {\"rank\": " << r + 1 << ", \"response\": \""
          << entry.responses[r].candidate.label << "\", \"score\": "
          << score_json(entry.responses[r].score, entry.offered_milliq)
          << '}' << (r + 1 < entry.responses.size() ? "," : "") << '\n';
    }
    out << "     ]}" << (e + 1 < playbook.entries.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

int cmd_playbook(const Args& args) {
  const auto scenario = make_scenario(args);
  const auto& deployment = pick_deployment(scenario, args);

  agility::PlaybookConfig config;
  config.max_prepend = static_cast<int>(args.get_long("max-prepend", 3));
  config.allow_withdraw = !args.has("no-withdraw");
  config.strategy = args.has("exhaustive")
                        ? agility::SearchStrategy::kExhaustive
                        : agility::SearchStrategy::kStaged;
  config.threads = static_cast<unsigned>(args.get_long("threads", 1));
  // The A/B escape hatch reaches the optimizer too: without the route
  // cache every candidate is routed and scored from scratch. The
  // playbook is bit-identical either way (cli_exit_test proves it).
  config.use_delta = !args.has("no-route-cache");
  config.capacity_headroom = args.get_double("headroom", 1.6);
  config.top_k = static_cast<std::size_t>(args.get_long("top", 5));

  anycast::SiteId target = anycast::kUnknownSite;
  if (args.has("target")) {
    const std::string code = args.get("target", "");
    const auto site = deployment.site_by_code(code);
    if (!site) {
      std::fprintf(stderr, "error: deployment has no site '%s'\n",
                   code.c_str());
      return usage();
    }
    target = *site;
  }

  std::vector<agility::AttackSpec> attacks;
  {
    const std::string list =
        args.get("attack", "polarized,flash,spoofed,volumetric");
    std::istringstream stream{list};
    std::string name;
    while (std::getline(stream, name, ',')) {
      const auto kind = agility::attack_kind_from_string(name);
      if (!kind) {
        std::fprintf(stderr, "error: unknown attack kind '%s'\n",
                     name.c_str());
        return usage();
      }
      agility::AttackSpec spec;
      spec.kind = *kind;
      spec.seed = static_cast<std::uint64_t>(args.get_long("attack-seed", 1));
      spec.magnitude = args.get_double("magnitude", 4.0);
      spec.target_site = target;
      attacks.push_back(spec);
    }
    if (attacks.empty()) return usage();
  }

  const agility::PlaybookOptimizer optimizer{scenario, deployment, config,
                                             load_date_seed(args)};
  std::printf("searching %s responses (%s, max prepend %d%s)\n",
              deployment.name.c_str(),
              config.strategy == agility::SearchStrategy::kExhaustive
                  ? "exhaustive"
                  : "staged",
              config.max_prepend,
              config.allow_withdraw ? ", withdrawal allowed" : "");
  const agility::Playbook playbook = optimizer.build(attacks);

  for (const agility::PlaybookEntry& entry : playbook.entries) {
    std::printf("\n%s: offered %s q/day (attack %s), %zu configs in %s ms\n",
                entry.attack_label.c_str(),
                util::si_count(static_cast<double>(entry.offered_milliq) /
                               1000.0)
                    .c_str(),
                util::si_count(static_cast<double>(entry.attack_milliq) /
                               1000.0)
                    .c_str(),
                entry.configs_evaluated,
                util::fixed(entry.search_ms, 1).c_str());
    util::Table table{{"rank", "response", "absorbed", "broken",
                       "overloaded", "shifted blocks"},
                      {util::Align::kRight, util::Align::kLeft}};
    const auto row = [&](const std::string& rank, const std::string& label,
                         const agility::Score& score) {
      table.add_row(
          {rank, label,
           util::percent(score.absorbed_fraction(entry.offered_milliq)),
           util::percent(score.broken_fraction(entry.offered_milliq)),
           std::to_string(score.overloaded_sites),
           util::with_commas(score.shifted_blocks)});
    };
    row("-", "no action", entry.no_action);
    for (std::size_t r = 0; r < entry.responses.size(); ++r)
      row(std::to_string(r + 1), entry.responses[r].candidate.label,
          entry.responses[r].score);
    std::printf("%s", table.to_string().c_str());
  }

  if (args.has("out")) {
    const std::string path = args.get("out", "playbook.csv");
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    const std::string contents = json ? playbook_json(playbook, deployment)
                                      : playbook_csv(playbook, deployment);
    if (!util::atomic_write_file(path, contents)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return kExitWriteFailed;
    }
    std::printf("\nplaybook written to %s\n", path.c_str());
  }
  return 0;
}

int dispatch(const Args& args) {
  if (args.command == "scan") return cmd_scan(args);
  if (args.command == "sweep") return cmd_sweep(args);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "atlas") return cmd_atlas(args);
  if (args.command == "predict") return cmd_predict(args);
  if (args.command == "recommend") return cmd_recommend(args);
  if (args.command == "export-load") return cmd_export_load(args);
  if (args.command == "gen") return cmd_gen(args);
  if (args.command == "playbook") return cmd_playbook(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();
  if (args->has("no-metrics")) obs::metrics().set_enabled(false);
  int rc = dispatch(*args);
  if (args->has("metrics-out")) {
    const std::string path = args->get("metrics-out", "metrics.json");
    if (obs::write_metrics_file(path, obs::metrics().snapshot())) {
      std::printf("metrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      // Don't mask a more specific failure (journal mismatch/corruption)
      // already carried in rc; only successful-so-far runs become 6.
      if (rc == 0 || rc == kExitResumed) rc = kExitWriteFailed;
    }
  }
  return rc;
}
