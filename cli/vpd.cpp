// vpd — verfploeterd, the continuous anycast-mapping daemon.
//
// Runs measurement rounds on an interval, keeps the live catchment map
// in memory through every failure mode (supervised watchdog loop,
// crash-safe journal resume, degraded-mode serving — see
// src/service/daemon.hpp), and answers queries over a minimal local
// HTTP/JSON listener:
//
//   vpd --rounds 6 --journal j.bin --resume --listen 0 --port-file p
//
//   GET /block/<ip>   owning site + map round/age/state
//   GET /load?config=SITE=N,...   predicted per-site load
//   GET /healthz      state machine + counters
//   GET /drift        change-point report between the last good rounds
//   GET /map          the served catchment as CSV
//   GET /metrics      Prometheus registry
//
// SIGTERM/SIGINT wind the round loop down cleanly: the in-flight round
// finishes (or hits its watchdog), its journal append completes, metrics
// flush, exit 0. Exit codes 4/5 mirror vpctl campaign (journal
// fingerprint mismatch / corruption), 6 = artifact write failure.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "analysis/scenario.hpp"
#include "core/journal.hpp"
#include "net/http_server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "sim/fault_injector.hpp"
#include "util/atomic_file.hpp"

using namespace vp;

namespace {

struct Args {
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atol(it->second.c_str());
  }
};

bool is_boolean_flag(std::string_view key) {
  return key == "resume" || key == "no-metrics" || key == "no-route-cache" ||
         key == "exit-after-rounds";
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) return std::nullopt;
    const std::string key{arg.substr(2)};
    if (is_boolean_flag(key)) {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    args.options[key] = argv[++i];
  }
  return args;
}

constexpr int kExitFingerprintMismatch = 4;  // journal is another campaign's
constexpr int kExitCorruptJournal = 5;       // checksum failure, refused
constexpr int kExitWriteFailed = 6;          // port-file/metrics-out failed

int usage() {
  std::fprintf(
      stderr,
      "usage: vpd [options]\n"
      "\n"
      "scenario:\n"
      "  --scale F          Internet size multiplier (default 0.4)\n"
      "  --seed N           simulation seed (default 42)\n"
      "  --deployment NAME  broot (default) or tangled\n"
      "  --no-route-cache   recompute routes per probe (A/B escape hatch)\n"
      "measurement loop:\n"
      "  --rounds N         stop measuring after N rounds (default 0 =\n"
      "                     run until signalled)\n"
      "  --interval-min M   simulated minutes between rounds (default 15;\n"
      "                     campaign spacing policy, part of the journal\n"
      "                     fingerprint)\n"
      "  --cadence-ms T     wall-clock delay between round starts\n"
      "                     (default 0 = back to back)\n"
      "  --threads N        probe workers per round (default 1; 0 = all)\n"
      "  --retries/--timeout-ms/--backoff-ms   probe retry knobs (as vpctl)\n"
      "  --fault-seed N     seeded random fault plan for every round\n"
      "supervision:\n"
      "  --watchdog-ms T    abandon a round attempt after T ms of wall\n"
      "                     clock (default 30000)\n"
      "  --round-retries N  extra attempts per round before it fails\n"
      "                     (default 1)\n"
      "  --stale-after-ms T report the map stale beyond this age\n"
      "                     (default 3 x cadence)\n"
      "journal:\n"
      "  --journal PATH     append completed rounds to a crash-safe\n"
      "                     journal (vpctl-compatible)\n"
      "  --resume           resume the live map from an existing journal\n"
      "serving:\n"
      "  --listen PORT      serve HTTP on 127.0.0.1:PORT (0 = ephemeral);\n"
      "                     without --listen nothing is served\n"
      "  --port-file PATH   write the bound port (atomic; for tests)\n"
      "  --exit-after-rounds  exit once the round budget is spent instead\n"
      "                     of serving until signalled\n"
      "  --metrics-out FILE dump the metrics registry on exit\n"
      "  --no-metrics       disable metric collection\n"
      "\n"
      "exit codes: 0 clean shutdown, 2 usage, 4 journal fingerprint\n"
      "  mismatch, 5 journal corrupt, 6 artifact write failed\n");
  return 2;
}

/// Signal handlers may only touch lock-free state: the flag is polled by
/// the main thread, which forwards it to Daemon::request_stop().
volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();
  if (args->has("no-metrics")) obs::metrics().set_enabled(false);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  analysis::ScenarioConfig scenario_config;
  scenario_config.scale = args->get_double("scale", 0.4);
  scenario_config.seed = static_cast<std::uint64_t>(args->get_long("seed", 42));
  scenario_config.route_cache = !args->has("no-route-cache");
  std::printf("building simulated Internet (scale %.2f, seed %llu)...\n",
              scenario_config.scale,
              static_cast<unsigned long long>(scenario_config.seed));
  const analysis::Scenario scenario{scenario_config};
  const anycast::Deployment& deployment =
      args->get("deployment", "broot") == "tangled" ? scenario.tangled()
                                                    : scenario.broot();

  service::DaemonConfig config;
  config.probe.measurement_id = 100;  // vpctl campaign's base id
  config.probe.max_retries = static_cast<int>(args->get_long("retries", 0));
  config.probe.probe_timeout_ms = args->get_double("timeout-ms", 1000.0);
  config.probe.retry_backoff_ms = args->get_double("backoff-ms", 250.0);
  config.rounds = static_cast<std::uint32_t>(args->get_long("rounds", 0));
  config.sim_interval =
      util::SimTime::from_minutes(args->get_double("interval-min", 15.0));
  config.cadence_ms = args->get_double("cadence-ms", 0.0);
  config.threads = static_cast<unsigned>(args->get_long("threads", 1));
  config.watchdog_ms = args->get_double("watchdog-ms", 30'000.0);
  config.round_retries = static_cast<int>(args->get_long("round-retries", 1));
  config.stale_after_ms = args->get_double("stale-after-ms", 0.0);
  config.journal_path = args->get("journal", "");
  config.resume = args->has("resume");

  std::optional<sim::FaultInjector> injector;
  if (args->has("fault-seed")) {
    const auto seed =
        static_cast<std::uint64_t>(args->get_long("fault-seed", 1));
    std::printf("injecting faults (plan seed %llu)\n",
                static_cast<unsigned long long>(seed));
    injector.emplace(sim::FaultPlan::from_seed(seed));
    config.faults = &*injector;
  }

  service::Daemon daemon{scenario, deployment, config};

  net::HttpServer server;
  if (args->has("listen")) {
    const auto port =
        static_cast<std::uint16_t>(args->get_long("listen", 0));
    if (!server.start(port, [&daemon](const net::HttpRequest& request) {
          return daemon.handle(request);
        })) {
      std::fprintf(stderr, "error: cannot bind 127.0.0.1:%u\n",
                   static_cast<unsigned>(port));
      return 1;
    }
    std::printf("serving on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    if (args->has("port-file") &&
        !util::atomic_write_file(args->get("port-file", ""),
                                 std::to_string(server.port()) + "\n")) {
      std::fprintf(stderr, "error: cannot write port file\n");
      return kExitWriteFailed;
    }
  }

  // The round loop runs on its own thread so serving never blocks on a
  // measurement; main polls the signal flag and forwards it.
  bool loop_ok = true;
  std::atomic<bool> rounds_done{false};
  std::thread rounds{[&daemon, &loop_ok, &rounds_done] {
    loop_ok = daemon.run_rounds();
    rounds_done.store(true, std::memory_order_release);
  }};
  // With a listener the daemon keeps serving after the round budget is
  // spent (that is the point of a daemon); --exit-after-rounds turns it
  // back into a journal-producing batch run for the chaos harness.
  const bool park = args->has("listen") && !args->has("exit-after-rounds");
  while (!g_signalled &&
         (park || !rounds_done.load(std::memory_order_acquire))) {
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
  }
  daemon.request_stop();
  rounds.join();
  server.stop();

  int rc = 0;
  if (!loop_ok) {
    switch (daemon.journal_status()) {
      case core::JournalStatus::kFingerprintMismatch:
        std::fprintf(stderr,
                     "error: journal was written by a different campaign "
                     "config; refusing to resume\n");
        rc = kExitFingerprintMismatch;
        break;
      case core::JournalStatus::kCorrupt:
        std::fprintf(stderr,
                     "error: journal failed its checksum (corrupt record); "
                     "refusing to resume\n");
        rc = kExitCorruptJournal;
        break;
      default:
        rc = 1;
        break;
    }
  } else {
    const service::DaemonStatus status = daemon.status();
    std::printf("shutdown: %u rounds completed (%u resumed), %u failed, "
                "%u watchdog kills, state %s\n",
                status.rounds_completed, status.rounds_resumed,
                status.rounds_failed, status.watchdog_kills,
                service::to_string(status.state));
  }

  if (args->has("metrics-out")) {
    const std::string path = args->get("metrics-out", "metrics.json");
    if (obs::write_metrics_file(path, obs::metrics().snapshot())) {
      std::printf("metrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      if (rc == 0) rc = kExitWriteFailed;
    }
  }
  return rc;
}
