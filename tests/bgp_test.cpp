#include <gtest/gtest.h>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "topology/generator.hpp"
#include "topology/topology.hpp"

namespace vp::bgp {
namespace {

/// One-shot engine session; the table copy keeps the engine-owned
/// deployment alive through its shared_ptr members.
RoutingTable route(const topology::Topology& topo,
                   const anycast::Deployment& deployment,
                   const RoutingOptions& options = {}) {
  return *RoutingEngine{topo, deployment, options}.full();
}

using topology::AsId;
using topology::AsNumber;
using topology::AsTier;
using topology::Pop;
using topology::Relationship;
using topology::Topology;

constexpr std::uint16_t kNoCare = 0;

Pop pop_at(const char* center) {
  const std::uint16_t id = topology::center_by_name(center);
  return Pop{id, geo::world_centers()[id].location};
}

AsId add_as(Topology& topo, std::uint32_t asn, AsTier tier,
            std::initializer_list<const char*> centers) {
  topology::AsNode node;
  node.asn = AsNumber{asn};
  node.tier = tier;
  node.name = "AS" + std::to_string(asn);
  for (const char* c : centers) node.pops.push_back(pop_at(c));
  return topo.add_as(std::move(node));
}

/// A hand-built mini Internet with a fully known routing outcome:
///
///        T1 ---peer--- T2 ---peer--- T3 ---peer--- T4(*)
///        |             |             (T4 only peers T3)
///   (A) LAX        (B) MIA
///        |             |
///        A             B          C = customer of T1 and T2 (tie)
///                                 S = customer of C
///                                 D = two PoPs, customer of T1 (at LA)
///                                     and T2 (at Miami) -> hot potato
struct MiniInternet {
  Topology topo;
  AsId a, b, t1, t2, t3, t4, c, s, d;
  anycast::Deployment deployment;

  MiniInternet() {
    a = add_as(topo, 100, AsTier::kRegional, {"Los Angeles"});
    b = add_as(topo, 200, AsTier::kRegional, {"Miami"});
    t1 = add_as(topo, 300, AsTier::kTransit, {"Los Angeles", "New York"});
    t2 = add_as(topo, 400, AsTier::kTransit, {"Miami", "New York"});
    t3 = add_as(topo, 500, AsTier::kTransit, {"London"});
    t4 = add_as(topo, 600, AsTier::kTransit, {"Paris"});
    c = add_as(topo, 700, AsTier::kRegional, {"Chicago"});
    s = add_as(topo, 800, AsTier::kStub, {"Chicago"});
    d = add_as(topo, 900, AsTier::kRegional, {"Los Angeles", "Miami"});

    topo.link(a, kNoCare, t1, 0, Relationship::kProvider);
    topo.link(b, kNoCare, t2, 0, Relationship::kProvider);
    topo.link(t1, 1, t2, 1, Relationship::kPeer);
    topo.link(t2, 1, t3, 0, Relationship::kPeer);
    topo.link(t1, 1, t3, 0, Relationship::kPeer);
    topo.link(t3, 0, t4, 0, Relationship::kPeer);
    topo.link(c, 0, t1, 1, Relationship::kProvider);
    topo.link(c, 0, t2, 1, Relationship::kProvider);
    topo.link(s, 0, c, 0, Relationship::kProvider);
    topo.link(d, 0, t1, 0, Relationship::kProvider);  // at LA
    topo.link(d, 1, t2, 0, Relationship::kProvider);  // at Miami

    // Blocks for D, one on each PoP (hot-potato check).
    const std::uint32_t p = topo.announce(d, *net::Prefix::parse("9.9.0.0/23"));
    topo.add_block(net::Block24{0x090900}, d, 0, p);
    topo.add_block(net::Block24{0x090901}, d, 1, p);

    deployment.name = "mini";
    deployment.service_prefix = *net::Prefix::parse("192.0.2.0/24");
    deployment.measurement_address = *net::Ipv4Address::parse("192.0.2.1");
    deployment.origin_asn = AsNumber{65000};
    deployment.sites = {
        anycast::AnycastSite{"LAX", AsNumber{100}, pop_at("Los Angeles").location},
        anycast::AnycastSite{"MIA", AsNumber{200}, pop_at("Miami").location},
    };
  }
};

TEST(Routing, OriginUpstreamsGetDirectRoutes) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  EXPECT_EQ(routes.state(net.a).best().site, 0);
  EXPECT_EQ(routes.state(net.a).best().path_len, 1);
  EXPECT_EQ(routes.state(net.a).best().cls, RouteClass::kCustomer);
  EXPECT_EQ(routes.state(net.b).best().site, 1);
}

TEST(Routing, CustomerRouteBeatsShorterPeerRoute) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  // T1 hears LAX from its customer A (len 2) and MIA from peer T2 (len 3);
  // even with LAX prepended +3 the customer route must win.
  auto prepended = net.deployment.with_prepend("LAX", 3);
  const RoutingTable routes2 = route(net.topo, prepended);
  EXPECT_EQ(routes.state(net.t1).best().site, 0);
  EXPECT_EQ(routes2.state(net.t1).best().site, 0);
  EXPECT_EQ(routes2.state(net.t1).best().cls, RouteClass::kCustomer);
}

TEST(Routing, MultihomedCustomerTiesAcrossSites) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  const AsRoutingState& state = routes.state(net.c);
  ASSERT_EQ(state.candidates.size(), 2u);
  EXPECT_TRUE(state.multi_site());
  EXPECT_EQ(state.best().cls, RouteClass::kProvider);
  EXPECT_EQ(state.best().path_len, 3);
}

TEST(Routing, PrependingFlipsLengthSensitiveAses) {
  MiniInternet net;
  // +2 on LAX: C now sees LAX at len 5 vs MIA at len 3 -> MIA.
  auto prepended = net.deployment.with_prepend("LAX", 2);
  const RoutingTable routes = route(net.topo, prepended);
  const AsRoutingState& state = routes.state(net.c);
  ASSERT_TRUE(state.reachable());
  EXPECT_EQ(state.candidates.size(), 1u);
  EXPECT_EQ(state.best().site, 1);
  // And the stub under C follows.
  EXPECT_EQ(routes.state(net.s).best().site, 1);
}

TEST(Routing, PeerRoutesAreNotReExportedToPeers) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  // T3 hears peer routes from T1/T2 (fine), but T4 — whose only neighbor
  // is peer T3 holding a peer-class route — must be unreachable.
  EXPECT_TRUE(routes.state(net.t3).reachable());
  EXPECT_EQ(routes.state(net.t3).best().cls, RouteClass::kPeer);
  EXPECT_FALSE(routes.state(net.t4).reachable());
}

TEST(Routing, StubInheritsProviderChoice) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  const AsRoutingState& c_state = routes.state(net.c);
  const AsRoutingState& s_state = routes.state(net.s);
  ASSERT_TRUE(s_state.reachable());
  EXPECT_EQ(s_state.best().path_len, c_state.best().path_len + 1);
  EXPECT_EQ(s_state.best().cls, RouteClass::kProvider);
}

TEST(Routing, HotPotatoSplitsMultiPopAs) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  // D ties LAX (learned at its LA PoP) and MIA (at its Miami PoP):
  // each PoP exits through the nearest egress.
  ASSERT_TRUE(routes.state(net.d).multi_site());
  EXPECT_EQ(routes.site_for_pop(net.d, 0), 0);  // LA PoP -> LAX
  EXPECT_EQ(routes.site_for_pop(net.d, 1), 1);  // Miami PoP -> MIA
  EXPECT_EQ(routes.site_for_block(net::Block24{0x090900}), 0);
  EXPECT_EQ(routes.site_for_block(net::Block24{0x090901}), 1);
  EXPECT_EQ(routes.distinct_sites(net.d), 2u);
}

TEST(Routing, SiteForUnallocatedBlockIsUnknown) {
  MiniInternet net;
  const RoutingTable routes = route(net.topo, net.deployment);
  EXPECT_EQ(routes.site_for_block(net::Block24{0x334455}),
            anycast::kUnknownSite);
}

TEST(Routing, HiddenSiteDoesNotAttractTraffic) {
  MiniInternet net;
  net.deployment.sites[1].hidden = true;  // hide MIA
  const RoutingTable routes = route(net.topo, net.deployment);
  for (const AsId as : {net.a, net.t1, net.t2, net.c, net.s}) {
    ASSERT_TRUE(routes.state(as).reachable());
    EXPECT_EQ(routes.state(as).best().site, 0)
        << net.topo.as_at(as).name;
  }
  // B itself is only reachable via the LAX announcement now.
  EXPECT_EQ(routes.state(net.b).best().site, 0);
}

TEST(Routing, DisabledSiteSameAsHidden) {
  MiniInternet net;
  net.deployment.sites[0].enabled = false;
  const RoutingTable routes = route(net.topo, net.deployment);
  EXPECT_EQ(routes.state(net.s).best().site, 1);
}

TEST(Routing, LocalPrefOverridesPathLength) {
  MiniInternet net;
  // C prefers routes learned from T1 regardless of prepending.
  net.topo.set_local_pref_bonus(net.c, net.t1, 1);
  auto prepended = net.deployment.with_prepend("LAX", 3);
  const RoutingTable routes = route(net.topo, prepended);
  EXPECT_EQ(routes.state(net.c).best().site, 0)
      << "local-pref must beat the longer AS path";
}

TEST(Routing, TiebreakSaltSelectsAmongEqualRoutes) {
  MiniInternet net;
  // C's two candidates are tied; across many salts both canonical choices
  // must occur (this is the paper's April-vs-May routing shift in §5.5).
  bool saw_lax = false, saw_mia = false;
  for (std::uint64_t salt = 0; salt < 32; ++salt) {
    RoutingOptions options;
    options.tiebreak_salt = salt;
    const RoutingTable routes =
        route(net.topo, net.deployment, options);
    const auto site = routes.state(net.c).best().site;
    saw_lax |= site == 0;
    saw_mia |= site == 1;
  }
  EXPECT_TRUE(saw_lax);
  EXPECT_TRUE(saw_mia);
}

TEST(Routing, DeterministicForSameInputs) {
  MiniInternet net;
  const RoutingTable r1 = route(net.topo, net.deployment);
  const RoutingTable r2 = route(net.topo, net.deployment);
  for (AsId as = 0; as < net.topo.as_count(); ++as) {
    ASSERT_EQ(r1.state(as).reachable(), r2.state(as).reachable());
    if (r1.state(as).reachable()) {
      EXPECT_EQ(r1.state(as).best().site, r2.state(as).best().site);
    }
  }
}

// --- properties on a generated topology ------------------------------------

class GeneratedRoutingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::TopologyConfig config;
    config.seed = 21;
    config.target_blocks = 10'000;
    topo_ = new Topology(topology::generate_topology(config));
    deployment_ = new anycast::Deployment(anycast::make_broot(*topo_));
    routes_ = new RoutingTable(route(*topo_, *deployment_));
  }
  static void TearDownTestSuite() {
    delete routes_;
    delete deployment_;
    delete topo_;
  }
  static const Topology& topo() { return *topo_; }
  static const RoutingTable& routes() { return *routes_; }

 private:
  static const Topology* topo_;
  static const anycast::Deployment* deployment_;
  static const RoutingTable* routes_;
};

const Topology* GeneratedRoutingTest::topo_ = nullptr;
const anycast::Deployment* GeneratedRoutingTest::deployment_ = nullptr;
const RoutingTable* GeneratedRoutingTest::routes_ = nullptr;

TEST_F(GeneratedRoutingTest, EveryAsIsReachable) {
  for (AsId as = 0; as < topo().as_count(); ++as) {
    EXPECT_TRUE(routes().state(as).reachable()) << topo().as_at(as).name;
  }
}

TEST_F(GeneratedRoutingTest, EveryBlockHasASite) {
  for (const topology::BlockInfo& info : topo().blocks()) {
    const auto site = routes().site_for_block(info.block);
    EXPECT_GE(site, 0);
    EXPECT_LT(site, 2);
  }
}

TEST_F(GeneratedRoutingTest, BothSitesHaveNonTrivialCatchments) {
  std::size_t lax = 0, mia = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    (routes().site_for_block(info.block) == 0 ? lax : mia) += 1;
  }
  const double lax_fraction =
      static_cast<double>(lax) / static_cast<double>(lax + mia);
  // LAX dominates at the calibrated default seed; across arbitrary seeds
  // the transit-cone draw varies, so this test only pins "both sites have
  // substantial catchments" (the default-seed split is asserted by the
  // integration tests and benches).
  EXPECT_GT(lax_fraction, 0.30);
  EXPECT_LT(lax_fraction, 0.97);
}

TEST_F(GeneratedRoutingTest, CandidatesShareClassAndPreference) {
  for (AsId as = 0; as < topo().as_count(); ++as) {
    const auto& state = routes().state(as);
    if (state.candidates.size() < 2) continue;
    const auto& best = state.candidates.front();
    for (const CandidateRoute& cand : state.candidates) {
      EXPECT_EQ(cand.cls, best.cls);
      EXPECT_EQ(cand.local_pref_bonus, best.local_pref_bonus);
      EXPECT_EQ(cand.path_len, best.path_len);
    }
  }
}

TEST_F(GeneratedRoutingTest, PathLengthsAreShort) {
  // A flat Internet: nothing should be more than ~10 AS hops out.
  for (AsId as = 0; as < topo().as_count(); ++as) {
    EXPECT_LE(routes().state(as).best().path_len, 10)
        << topo().as_at(as).name;
  }
}

}  // namespace
}  // namespace vp::bgp
