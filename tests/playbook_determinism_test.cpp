// The playbook must be a pure function of (scenario, deployment, config
// minus threads, attacks): the parallel candidate-evaluation pool may
// not change a single bit of the result at any worker count. Each worker
// walks its own delta session over a deterministic chunk, and the
// integer scoring makes every sum order-independent, so thread counts
// 1/2/5/8 must agree exactly. This test is also raced under TSan in CI
// (the tsan lane regex) to catch data races in the shared-table reads.
#include <gtest/gtest.h>

#include <vector>

#include "agility/attack.hpp"
#include "agility/playbook.hpp"
#include "analysis/scenario.hpp"

namespace vp::agility {
namespace {

TEST(PlaybookDeterminism, IdenticalAcrossThreadCounts) {
  analysis::ScenarioConfig scenario_config;
  scenario_config.scale = 0.04;
  const analysis::Scenario scenario{scenario_config};

  std::vector<AttackSpec> attacks;
  AttackSpec polarized;
  polarized.kind = AttackKind::kPolarized;
  attacks.push_back(polarized);
  AttackSpec spoofed;
  spoofed.kind = AttackKind::kSpoofedFlood;
  attacks.push_back(spoofed);

  std::vector<Playbook> playbooks;
  for (const unsigned threads : {1u, 2u, 5u, 8u}) {
    PlaybookConfig config;
    config.strategy = SearchStrategy::kStaged;
    config.threads = threads;
    const PlaybookOptimizer optimizer{scenario, scenario.tangled(), config};
    playbooks.push_back(optimizer.build(attacks));
  }

  const Playbook& reference = playbooks.front();
  for (std::size_t p = 1; p < playbooks.size(); ++p) {
    const Playbook& other = playbooks[p];
    ASSERT_EQ(reference.entries.size(), other.entries.size());
    EXPECT_EQ(reference.capacity.site_milliq, other.capacity.site_milliq);
    for (std::size_t e = 0; e < reference.entries.size(); ++e) {
      const PlaybookEntry& a = reference.entries[e];
      const PlaybookEntry& b = other.entries[e];
      EXPECT_EQ(a.attack_label, b.attack_label);
      EXPECT_EQ(a.offered_milliq, b.offered_milliq);
      EXPECT_EQ(a.attack_milliq, b.attack_milliq);
      EXPECT_EQ(a.configs_evaluated, b.configs_evaluated);
      EXPECT_EQ(a.no_action, b.no_action);
      ASSERT_EQ(a.responses.size(), b.responses.size());
      for (std::size_t r = 0; r < a.responses.size(); ++r) {
        EXPECT_EQ(a.responses[r].candidate_index,
                  b.responses[r].candidate_index);
        EXPECT_EQ(a.responses[r].candidate.label,
                  b.responses[r].candidate.label);
        EXPECT_EQ(a.responses[r].score, b.responses[r].score);
      }
    }
  }
}

}  // namespace
}  // namespace vp::agility
