// Exit-code contract for vpctl's output artifacts: a command must never
// exit 0 after failing to write a file the user asked for. Writes go
// through util::atomic_file, so an unwritable path surfaces at flush
// time — this forks the real binary and checks the distinct write-failed
// exit code (6) for --out and --metrics-out, and that successful runs
// actually leave the artifact behind.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace {

constexpr int kWriteFailedExit = 6;

std::string test_dir() {
  static const std::string dir = [] {
    std::string d =
        "/tmp/vp_cli_exit_" + std::to_string(static_cast<long>(getpid()));
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

int run_vpctl(const std::string& args) {
  const std::string cmd =
      std::string{VPCTL_PATH} + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool file_exists(const std::string& path) {
  return std::ifstream{path}.good();
}

// A path whose parent directory does not exist; atomic_write_file cannot
// even create its temp file there.
std::string unwritable(const std::string& leaf) {
  return test_dir() + "/no-such-dir/" + leaf;
}

const std::string kScan = "scan --scale 0.03 --seed 5";

TEST(CliExit, ScanOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl(kScan + " --out " + unwritable("c.csv")),
            kWriteFailedExit);
}

TEST(CliExit, MetricsOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl(kScan + " --metrics-out " + unwritable("m.json")),
            kWriteFailedExit);
}

TEST(CliExit, ExportLoadUnwritableExits6) {
  EXPECT_EQ(run_vpctl("export-load --scale 0.03 --out " + unwritable("l.csv")),
            kWriteFailedExit);
}

TEST(CliExit, CampaignOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl("campaign --scale 0.03 --rounds 2 --out " +
                      unwritable("all.csv")),
            kWriteFailedExit);
}

TEST(CliExit, WritablePathsExitZeroAndLeaveArtifacts) {
  const std::string csv = test_dir() + "/c.csv";
  const std::string json = test_dir() + "/m.json";
  const std::string prom = test_dir() + "/m.prom";
  ASSERT_EQ(run_vpctl(kScan + " --out " + csv + " --metrics-out " + json), 0);
  EXPECT_TRUE(file_exists(csv));
  EXPECT_TRUE(file_exists(json));
  ASSERT_EQ(run_vpctl(kScan + " --no-metrics --metrics-out " + prom), 0);
  EXPECT_TRUE(file_exists(prom));
}

TEST(CliExit, MetricsFailureDoesNotMaskJournalRefusal) {
  // A campaign refused for journal fingerprint mismatch must keep exit 4
  // even when --metrics-out is also unwritable: the more specific
  // failure wins.
  const std::string journal = test_dir() + "/j.bin";
  ASSERT_EQ(run_vpctl("campaign --scale 0.03 --rounds 2 --seed 5 --journal " +
                      journal),
            0);
  EXPECT_EQ(run_vpctl("campaign --scale 0.03 --rounds 3 --seed 5 --journal " +
                      journal + " --resume --metrics-out " +
                      unwritable("m.json")),
            4);
}

}  // namespace
