// Exit-code contract for vpctl's output artifacts: a command must never
// exit 0 after failing to write a file the user asked for. Writes go
// through util::atomic_file, so an unwritable path surfaces at flush
// time — this forks the real binary and checks the distinct write-failed
// exit code (6) for --out and --metrics-out, and that successful runs
// actually leave the artifact behind.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace {

constexpr int kResumedExit = 3;
constexpr int kWriteFailedExit = 6;
constexpr int kInterruptedExit = 7;

std::string test_dir() {
  static const std::string dir = [] {
    std::string d =
        "/tmp/vp_cli_exit_" + std::to_string(static_cast<long>(getpid()));
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// Runs vpctl with the given arguments, optionally with an environment
/// prefix (e.g. the journal fault hooks); returns the exit code.
int run_vpctl(const std::string& args, const std::string& env = "") {
  const std::string cmd =
      env + std::string{VPCTL_PATH} + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool file_exists(const std::string& path) {
  return std::ifstream{path}.good();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

// A path whose parent directory does not exist; atomic_write_file cannot
// even create its temp file there.
std::string unwritable(const std::string& leaf) {
  return test_dir() + "/no-such-dir/" + leaf;
}

const std::string kScan = "scan --scale 0.03 --seed 5";

TEST(CliExit, ScanOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl(kScan + " --out " + unwritable("c.csv")),
            kWriteFailedExit);
}

TEST(CliExit, MetricsOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl(kScan + " --metrics-out " + unwritable("m.json")),
            kWriteFailedExit);
}

TEST(CliExit, ExportLoadUnwritableExits6) {
  EXPECT_EQ(run_vpctl("export-load --scale 0.03 --out " + unwritable("l.csv")),
            kWriteFailedExit);
}

TEST(CliExit, CampaignOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl("campaign --scale 0.03 --rounds 2 --out " +
                      unwritable("all.csv")),
            kWriteFailedExit);
}

TEST(CliExit, WritablePathsExitZeroAndLeaveArtifacts) {
  const std::string csv = test_dir() + "/c.csv";
  const std::string json = test_dir() + "/m.json";
  const std::string prom = test_dir() + "/m.prom";
  ASSERT_EQ(run_vpctl(kScan + " --out " + csv + " --metrics-out " + json), 0);
  EXPECT_TRUE(file_exists(csv));
  EXPECT_TRUE(file_exists(json));
  ASSERT_EQ(run_vpctl(kScan + " --no-metrics --metrics-out " + prom), 0);
  EXPECT_TRUE(file_exists(prom));
}

TEST(CliExit, PlaybookOutUnwritableExits6) {
  EXPECT_EQ(run_vpctl("playbook --scale 0.03 --attack polarized --top 2 "
                      "--out " +
                      unwritable("p.csv")),
            kWriteFailedExit);
}

TEST(CliExit, PlaybookNoRouteCacheIsByteIdentical) {
  // --no-route-cache reaches the optimizer path: every candidate is
  // routed and scored from scratch instead of through the incremental
  // delta session. The artifact must not change by a byte.
  const std::string cached = test_dir() + "/playbook_cached.csv";
  const std::string uncached = test_dir() + "/playbook_uncached.csv";
  const std::string common =
      "playbook --scale 0.03 --attack polarized,spoofed --magnitude 2 "
      "--max-prepend 2 --top 4 --threads 2 ";
  ASSERT_EQ(run_vpctl(common + "--out " + cached), 0);
  ASSERT_EQ(run_vpctl(common + "--no-route-cache --out " + uncached), 0);
  const std::string a = read_file(cached);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, read_file(uncached));
}

TEST(CliExit, JournalUnwritableMidCampaignExits6) {
  // VP_JOURNAL_FAIL_AT=2 fails every frame write from the first round
  // append on — the signature of the journal directory going unwritable
  // (disk full, read-only remount) mid-campaign. The campaign must
  // surface that as the write-failure exit code, never exit 0 after
  // silently dropping frames.
  const std::string journal = test_dir() + "/fail_mid.bin";
  EXPECT_EQ(run_vpctl("campaign --scale 0.03 --rounds 3 --seed 5 --journal " +
                          journal,
                      "VP_JOURNAL_FAIL_AT=2 "),
            kWriteFailedExit);
  std::remove(journal.c_str());
}

/// Forks vpctl campaign, delivers `signum` once `when` says so, and
/// returns the exit code (or -1 on signal death).
int run_vpctl_signalled(const std::vector<std::string>& args, int signum,
                        const std::function<bool()>& when) {
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    ::dup2(null_fd, 1);
    ::dup2(null_fd, 2);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(VPCTL_PATH));
    for (const std::string& arg : args)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(VPCTL_PATH, argv.data());
    ::_exit(127);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{60};
  while (!when() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  ::kill(pid, signum);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0
             ? static_cast<std::uint64_t>(st.st_size)
             : 0;
}

TEST(CliExit, SigintEarlyInCampaignExits7AndLeavesResumablePrefix) {
  // Interrupt as soon as the journal file appears (the campaign has just
  // opened it; the signal handler went in before the scenario build).
  // Whatever prefix of rounds got in, the exit code is the distinct
  // interrupted one and the journal resumes into a complete campaign.
  const std::string journal = test_dir() + "/sigint_early.bin";
  const std::string csv = test_dir() + "/sigint_early.csv";
  const std::vector<std::string> args = {
      "campaign", "--scale", "0.03", "--rounds", "3", "--seed",    "5",
      "--journal", journal,  "--out", csv};
  EXPECT_EQ(run_vpctl_signalled(args, SIGINT,
                                [&journal] { return file_exists(journal); }),
            kInterruptedExit);
  // An interrupted campaign must not write the all-rounds CSV (it would
  // be missing rounds).
  EXPECT_FALSE(file_exists(csv));

  std::string resume;
  for (const std::string& arg : args) resume += arg + " ";
  EXPECT_EQ(run_vpctl(resume + "--resume"), kResumedExit);
  EXPECT_TRUE(file_exists(csv));
  std::remove(journal.c_str());
  std::remove(csv.c_str());
}

TEST(CliExit, SigintMidCampaignFinishesInFlightRoundThenExits7) {
  // Interrupt once the first round's journal append has landed: the
  // in-flight round completes (the journal stays a clean prefix) and a
  // resume finishes the campaign producing the same artifact as an
  // uninterrupted run.
  const std::string journal = test_dir() + "/sigint_mid.bin";
  const std::string csv = test_dir() + "/sigint_mid.csv";
  const std::string base_journal = test_dir() + "/sigint_base.bin";
  const std::string base_csv = test_dir() + "/sigint_base.csv";
  const std::string common =
      "campaign --scale 0.03 --rounds 8 --seed 5 ";
  ASSERT_EQ(run_vpctl(common + "--journal " + base_journal + " --out " +
                      base_csv),
            0);

  const std::vector<std::string> args = {
      "campaign", "--scale", "0.03", "--rounds", "8", "--seed",    "5",
      "--journal", journal,  "--out", csv};
  // A manifest-only journal is a few dozen bytes; any size beyond 1 KB
  // means at least one round record was appended.
  const int rc = run_vpctl_signalled(args, SIGINT, [&journal] {
    return file_size(journal) > 1024;
  });
  EXPECT_EQ(rc, kInterruptedExit);
  EXPECT_FALSE(file_exists(csv));

  std::string resume;
  for (const std::string& arg : args) resume += arg + " ";
  EXPECT_EQ(run_vpctl(resume + "--resume"), kResumedExit);
  EXPECT_EQ(read_file(csv), read_file(base_csv));
  for (const std::string& path : {journal, csv, base_journal, base_csv})
    std::remove(path.c_str());
}

TEST(CliExit, MetricsFailureDoesNotMaskJournalRefusal) {
  // A campaign refused for journal fingerprint mismatch must keep exit 4
  // even when --metrics-out is also unwritable: the more specific
  // failure wins.
  const std::string journal = test_dir() + "/j.bin";
  ASSERT_EQ(run_vpctl("campaign --scale 0.03 --rounds 2 --seed 5 --journal " +
                      journal),
            0);
  EXPECT_EQ(run_vpctl("campaign --scale 0.03 --rounds 3 --seed 5 --journal " +
                      journal + " --resume --metrics-out " +
                      unwritable("m.json")),
            4);
}

}  // namespace
