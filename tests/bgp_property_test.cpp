// Property tests over generated topologies: BGP invariants that must hold
// for every AS on every seed — the valley-free export discipline, path
// length consistency along the advertisement chain, and the sanity of
// hot-potato/multipath resolution.
#include <gtest/gtest.h>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "topology/generator.hpp"

namespace vp::bgp {
namespace {

struct SweepCase {
  std::uint64_t seed;
  bool tangled;  // which deployment to route
};

class RoutingInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    topology::TopologyConfig config;
    config.seed = GetParam().seed;
    config.target_blocks = 8'000;
    topo_ = topology::generate_topology(config);
    deployment_ = GetParam().tangled ? anycast::make_tangled(topo_)
                                     : anycast::make_broot(topo_);
    routes_.emplace(*RoutingEngine{topo_, deployment_}.full());
  }

  topology::Topology topo_;
  anycast::Deployment deployment_;
  std::optional<RoutingTable> routes_;
};

TEST_P(RoutingInvariants, EveryCandidateHasAValidSite) {
  const std::size_t site_count = deployment_.sites.size();
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    for (const CandidateRoute& cand : routes_->state(as).candidates) {
      ASSERT_GE(cand.site, 0);
      ASSERT_LT(static_cast<std::size_t>(cand.site), site_count);
      const auto& site = deployment_.sites[static_cast<std::size_t>(
          cand.site)];
      EXPECT_TRUE(site.enabled);
      EXPECT_FALSE(site.hidden);
    }
  }
}

TEST_P(RoutingInvariants, PathLengthsChainCorrectly) {
  // A candidate learned from neighbor N carries exactly N's best length
  // plus one hop (N advertises its equal-best set).
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    for (const CandidateRoute& cand : routes_->state(as).candidates) {
      if (cand.egress_neighbor == topology::kNoAs) {
        // Origin injection at a site upstream: 1 + prepend.
        bool matches_site = false;
        for (const auto& site : deployment_.sites) {
          if (topo_.find_as(site.upstream) == as &&
              cand.path_len == 1 + site.prepend) {
            matches_site = true;
          }
        }
        EXPECT_TRUE(matches_site) << topo_.as_at(as).name;
        continue;
      }
      const auto& sender = routes_->state(cand.egress_neighbor);
      ASSERT_TRUE(sender.reachable());
      EXPECT_EQ(cand.path_len, sender.candidates.front().path_len + 1)
          << topo_.as_at(as).name << " <- "
          << topo_.as_at(cand.egress_neighbor).name;
    }
  }
}

TEST_P(RoutingInvariants, ExportsAreValleyFree) {
  // Gao-Rexford: a route travels "up" (to a provider) or "sideways" (to
  // a peer) only while it is a customer route at the sender. Receiving
  // a customer- or peer-class candidate therefore implies the sender's
  // own best is customer-class.
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    for (const CandidateRoute& cand : routes_->state(as).candidates) {
      if (cand.egress_neighbor == topology::kNoAs) continue;
      if (cand.cls == RouteClass::kCustomer ||
          cand.cls == RouteClass::kPeer) {
        const auto& sender = routes_->state(cand.egress_neighbor);
        EXPECT_EQ(sender.candidates.front().cls, RouteClass::kCustomer)
            << "valley: " << topo_.as_at(cand.egress_neighbor).name
            << " exported a non-customer route to "
            << topo_.as_at(as).name;
      }
    }
  }
}

TEST_P(RoutingInvariants, CandidateClassMatchesRelationship) {
  // The class recorded for a candidate must equal the receiver's actual
  // relationship with the sender.
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    for (const CandidateRoute& cand : routes_->state(as).candidates) {
      if (cand.egress_neighbor == topology::kNoAs) continue;
      topology::Relationship rel = topology::Relationship::kPeer;
      bool found = false;
      for (const auto& link : topo_.as_at(as).links) {
        if (link.neighbor == cand.egress_neighbor) {
          rel = link.rel;
          found = true;
        }
      }
      ASSERT_TRUE(found);
      switch (cand.cls) {
        case RouteClass::kCustomer:
          EXPECT_EQ(rel, topology::Relationship::kCustomer);
          break;
        case RouteClass::kPeer:
          EXPECT_EQ(rel, topology::Relationship::kPeer);
          break;
        case RouteClass::kProvider:
          EXPECT_EQ(rel, topology::Relationship::kProvider);
          break;
        case RouteClass::kNone:
          FAIL();
      }
    }
  }
}

TEST_P(RoutingInvariants, PopResolutionPicksFromCandidates) {
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    const auto& state = routes_->state(as);
    if (!state.reachable()) continue;
    for (std::uint16_t p = 0; p < topo_.as_at(as).pops.size(); ++p) {
      const SiteId site = routes_->site_for_pop(as, p);
      bool in_candidates = false;
      for (const CandidateRoute& cand : state.candidates)
        in_candidates |= cand.site == site;
      EXPECT_TRUE(in_candidates) << topo_.as_at(as).name;
    }
  }
}

TEST_P(RoutingInvariants, BlockSitesComeFromOwningAsCandidates) {
  std::size_t checked = 0;
  for (std::size_t i = 0; i < topo_.block_count(); i += 23) {
    const auto& info = topo_.blocks()[i];
    const SiteId site = routes_->site_for_block(info.block);
    if (site < 0) continue;
    bool in_candidates = false;
    for (const CandidateRoute& cand : routes_->state(info.as_id).candidates)
      in_candidates |= cand.site == site;
    EXPECT_TRUE(in_candidates);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_P(RoutingInvariants, EgressPopsAreLocal) {
  for (AsId as = 0; as < topo_.as_count(); ++as) {
    for (const CandidateRoute& cand : routes_->state(as).candidates)
      EXPECT_LT(cand.egress_pop, topo_.as_at(as).pops.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RoutingInvariants,
    ::testing::Values(SweepCase{101, false}, SweepCase{102, false},
                      SweepCase{103, true}, SweepCase{104, true},
                      SweepCase{105, false}, SweepCase{106, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return (info.param.tangled ? "tangled_" : "broot_") +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace vp::bgp
