#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "analysis/divisions.hpp"
#include "analysis/geomaps.hpp"
#include "analysis/load_analysis.hpp"
#include "analysis/stability.hpp"
#include "core/catchment.hpp"

namespace vp::analysis {
namespace {

// --- LoadSplit ----------------------------------------------------------------

TEST(LoadSplit, FractionsAndTotals) {
  LoadSplit split;
  split.site_queries = {80.0, 20.0};
  split.unknown_queries = 25.0;
  EXPECT_DOUBLE_EQ(split.total(true), 125.0);
  EXPECT_DOUBLE_EQ(split.total(false), 100.0);
  EXPECT_DOUBLE_EQ(split.fraction_to(0), 0.8);
  EXPECT_DOUBLE_EQ(split.fraction_to(0, true), 0.64);
  EXPECT_DOUBLE_EQ(split.fraction_to(1), 0.2);
  EXPECT_DOUBLE_EQ(split.fraction_to(anycast::kUnknownSite), 0.0);
  EXPECT_DOUBLE_EQ(split.fraction_to(5), 0.0);
}

TEST(LoadSplit, EmptySplitIsZero) {
  LoadSplit split;
  split.site_queries = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(split.fraction_to(0), 0.0);
}

// --- stability on synthetic rounds ---------------------------------------------

core::RoundResult make_round(
    std::initializer_list<std::pair<std::uint32_t, anycast::SiteId>> entries) {
  core::RoundResult r;
  for (const auto& [index, site] : entries)
    r.map.set(net::Block24{index}, site);
  return r;
}

TEST(Stability, ClassifiesTransitions) {
  // Minimal hand-checkable scenario: block 1 stable, block 2 flips,
  // block 3 disappears, block 4 appears.
  topology::Topology topo;  // empty: per-AS attribution silently skipped
  std::vector<core::RoundResult> rounds;
  rounds.push_back(make_round({{1, 0}, {2, 0}, {3, 1}}));
  rounds.push_back(make_round({{1, 0}, {2, 1}, {4, 0}}));

  const StabilityReport report = analyze_stability(topo, rounds);
  ASSERT_EQ(report.transitions.size(), 1u);
  EXPECT_EQ(report.transitions[0].stable, 1u);
  EXPECT_EQ(report.transitions[0].flipped, 1u);
  EXPECT_EQ(report.transitions[0].to_nr, 1u);
  EXPECT_EQ(report.transitions[0].from_nr, 1u);
  EXPECT_EQ(report.total_flips, 1u);
  EXPECT_TRUE(report.unstable_blocks.contains(2u));
  EXPECT_FALSE(report.unstable_blocks.contains(1u));
}

TEST(Stability, MediansOverRounds) {
  topology::Topology topo;
  std::vector<core::RoundResult> rounds;
  rounds.push_back(make_round({{1, 0}, {2, 0}}));
  rounds.push_back(make_round({{1, 0}, {2, 0}}));
  rounds.push_back(make_round({{1, 0}, {2, 1}}));
  const StabilityReport report = analyze_stability(topo, rounds);
  ASSERT_EQ(report.transitions.size(), 2u);
  EXPECT_DOUBLE_EQ(report.median_stable(), 1.5);
  EXPECT_DOUBLE_EQ(report.median_flipped(), 0.5);
}

TEST(Stability, FewerThanTwoRoundsIsEmpty) {
  topology::Topology topo;
  std::vector<core::RoundResult> rounds;
  rounds.push_back(make_round({{1, 0}}));
  const StabilityReport report = analyze_stability(topo, rounds);
  EXPECT_TRUE(report.transitions.empty());
  EXPECT_EQ(report.total_flips, 0u);
}

// --- divisions on a synthetic topology ------------------------------------------

struct DivisionsFixture {
  topology::Topology topo;
  core::CatchmentMap map;

  DivisionsFixture() {
    // AS 0: two prefixes, blocks split across two sites.
    // AS 1: one prefix, single site.
    topology::AsNode a;
    a.asn = topology::AsNumber{111};
    a.pops.push_back(topology::Pop{0, {0, 0}});
    const auto a_id = topo.add_as(std::move(a));
    topology::AsNode b;
    b.asn = topology::AsNumber{222};
    b.pops.push_back(topology::Pop{0, {0, 0}});
    const auto b_id = topo.add_as(std::move(b));

    const auto p0 = topo.announce(a_id, *net::Prefix::parse("1.0.0.0/23"));
    const auto p1 = topo.announce(a_id, *net::Prefix::parse("1.0.2.0/24"));
    const auto p2 = topo.announce(b_id, *net::Prefix::parse("2.0.0.0/24"));
    topo.add_block(net::Block24{0x010000}, a_id, 0, p0);
    topo.add_block(net::Block24{0x010001}, a_id, 0, p0);
    topo.add_block(net::Block24{0x010002}, a_id, 0, p1);
    topo.add_block(net::Block24{0x020000}, b_id, 0, p2);
    topo.seal();

    map.set(net::Block24{0x010000}, 0);
    map.set(net::Block24{0x010001}, 1);  // /23 split across sites
    map.set(net::Block24{0x010002}, 0);
    map.set(net::Block24{0x020000}, 1);
  }
};

TEST(Divisions, CountsMultiSiteAses) {
  DivisionsFixture f;
  const DivisionsReport report = analyze_divisions(f.topo, f.map);
  EXPECT_EQ(report.ases_observed, 2u);
  EXPECT_EQ(report.ases_multi_site, 1u);
  EXPECT_DOUBLE_EQ(report.multi_site_fraction(), 0.5);
  ASSERT_EQ(report.buckets.size(), 2u);
  EXPECT_EQ(report.buckets[0].sites_seen, 1);
  EXPECT_EQ(report.buckets[0].as_count, 1u);
  EXPECT_EQ(report.buckets[1].sites_seen, 2);
  // The multi-site AS announces 2 prefixes.
  EXPECT_DOUBLE_EQ(report.buckets[1].announced_prefixes.p50, 2.0);
}

TEST(Divisions, UnstableBlocksAreExcluded) {
  DivisionsFixture f;
  std::unordered_set<std::uint32_t> unstable{0x010001};
  const DivisionsReport report = analyze_divisions(f.topo, f.map, unstable);
  EXPECT_EQ(report.ases_multi_site, 0u);
}

TEST(Divisions, PrefixSiteRows) {
  DivisionsFixture f;
  const auto rows = analyze_prefix_sites(f.topo, f.map);
  ASSERT_EQ(rows.size(), 2u);  // lengths 23 and 24
  EXPECT_EQ(rows[0].prefix_length, 23);
  EXPECT_EQ(rows[0].prefix_count, 1u);
  EXPECT_DOUBLE_EQ(rows[0].fraction_by_sites[1], 1.0);  // 2 sites
  EXPECT_DOUBLE_EQ(rows[0].mean_sites, 2.0);
  EXPECT_EQ(rows[1].prefix_length, 24);
  EXPECT_EQ(rows[1].prefix_count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].fraction_by_sites[0], 1.0);  // 1 site each
}

TEST(Divisions, AddressSpaceShare) {
  DivisionsFixture f;
  const AddressSpaceShare share = multi_vp_address_share(f.topo, f.map);
  EXPECT_EQ(share.observed_blocks, 4u);
  EXPECT_EQ(share.multi_site_blocks, 2u);  // the split /23's two blocks
  EXPECT_DOUBLE_EQ(share.fraction(), 0.5);
}

// --- traffic coverage ------------------------------------------------------------

TEST(TrafficCoverage, FractionsComputed) {
  TrafficCoverage coverage;
  coverage.blocks_seen = 100;
  coverage.blocks_mapped = 87;
  coverage.blocks_unmapped = 13;
  coverage.queries_seen = 1000;
  coverage.queries_mapped = 820;
  coverage.queries_unmapped = 180;
  EXPECT_DOUBLE_EQ(coverage.mapped_block_fraction(), 0.87);
  EXPECT_DOUBLE_EQ(coverage.mapped_query_fraction(), 0.82);
}

// --- geomaps render ---------------------------------------------------------------

TEST(GeoMaps, RenderSummaryProducesTables) {
  geo::GeoBinner binner{2};
  binner.add({51.5, -0.1}, 0, 10);
  binner.add({35.7, 139.7}, 1, 5);
  const std::string out =
      render_map_summary(binner, {"LAX", "MIA"}, 5);
  EXPECT_NE(out.find("continent"), std::string::npos);
  EXPECT_NE(out.find("Europe"), std::string::npos);
  EXPECT_NE(out.find("LAX"), std::string::npos);
  EXPECT_NE(out.find("two-degree bins"), std::string::npos);
}

}  // namespace
}  // namespace vp::analysis
