// Property harness for the fault-injection subsystem and probe retries.
//
// Generates 100+ random fault plans from fixed seeds (FaultPlan::from_seed)
// and checks the invariants that make faulty measurements trustworthy:
//
//  * determinism — for every plan, the RoundResult is bit-identical under
//    1, 2, and 8 probe threads (the sharded merge survives faults);
//  * containment — a faulty round's catchment maps a subset of the
//    fault-free round's blocks (faults only remove or redirect replies,
//    they cannot invent responders);
//  * attribution — a block whose measured site differs from the clean
//    round's is one the plan's churn actually diverted (modulo the known
//    rare cross-block-alias race, bounded below);
//  * accounting — injected losses are conserved exactly: surviving
//    replies = generated - dropped, and the cleaning pipeline accounts
//    for every record it saw;
//  * retry monotonicity — more retries never shrink coverage, and under
//    loss they recover blocks;
//  * neutrality — a disabled plan and zero retries leave the result
//    byte-identical to the plain engine, with all fault counters zero.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/verfploeter.hpp"
#include "sim/fault_injector.hpp"

namespace vp::core {
namespace {

constexpr int kPlanCount = 100;
constexpr std::uint32_t kRound = 1;

class FaultPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 42;
    config.scale = 0.03;  // ~3.6k blocks: 300+ faulty rounds stay fast
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
    clean_ = new RoundResult(run(nullptr, 0, 1));
  }
  static void TearDownTestSuite() {
    delete clean_;
    routes_.reset();
    delete scenario_;
  }

  static RoundSpec spec_with(const sim::FaultInjector* faults, int retries,
                             unsigned threads) {
    RoundSpec spec;
    spec.probe.measurement_id = 7100;
    spec.probe.max_retries = retries;
    spec.round = kRound;
    spec.threads = threads;
    spec.faults = faults;
    return spec;
  }

  static RoundResult run(const sim::FaultInjector* faults, int retries,
                         unsigned threads) {
    return scenario_->verfploeter().run(*routes_,
                                        spec_with(faults, retries, threads));
  }

  /// The fault-free, retry-free reference round (threads = 1).
  static const RoundResult& clean() { return *clean_; }

  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
  static RoundResult* clean_;
};

analysis::Scenario* FaultPropertyTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> FaultPropertyTest::routes_;
RoundResult* FaultPropertyTest::clean_ = nullptr;

void expect_identical(const RoundResult& a, const RoundResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.map.probes_sent, b.map.probes_sent) << label;
  EXPECT_EQ(a.map.blocks_probed, b.map.blocks_probed) << label;
  EXPECT_EQ(a.map.entries(), b.map.entries()) << label;
  EXPECT_EQ(a.map.cleaning.raw_replies, b.map.cleaning.raw_replies) << label;
  EXPECT_EQ(a.map.cleaning.wrong_id, b.map.cleaning.wrong_id) << label;
  EXPECT_EQ(a.map.cleaning.unsolicited, b.map.cleaning.unsolicited) << label;
  EXPECT_EQ(a.map.cleaning.duplicates, b.map.cleaning.duplicates) << label;
  EXPECT_EQ(a.map.cleaning.late, b.map.cleaning.late) << label;
  EXPECT_EQ(a.map.cleaning.kept, b.map.cleaning.kept) << label;
  EXPECT_EQ(a.raw_replies_per_site, b.raw_replies_per_site) << label;
  EXPECT_EQ(a.rtt_ms, b.rtt_ms) << label;
  // Fault accounting must be as deterministic as the map itself.
  EXPECT_EQ(a.faults.probes_lost, b.faults.probes_lost) << label;
  EXPECT_EQ(a.faults.replies_generated, b.faults.replies_generated) << label;
  EXPECT_EQ(a.faults.replies_lost, b.faults.replies_lost) << label;
  EXPECT_EQ(a.faults.rate_limited, b.faults.rate_limited) << label;
  EXPECT_EQ(a.faults.outage_drops, b.faults.outage_drops) << label;
  EXPECT_EQ(a.faults.withdrawn, b.faults.withdrawn) << label;
  EXPECT_EQ(a.faults.diverted, b.faults.diverted) << label;
  EXPECT_EQ(a.faults.delayed, b.faults.delayed) << label;
  EXPECT_EQ(a.faults.retries, b.faults.retries) << label;
  EXPECT_EQ(a.faults.recovered, b.faults.recovered) << label;
}

/// Every cleaning counter sums back to what the collectors recorded, and
/// the collectors saw exactly the replies the faults let through.
void expect_exact_accounting(const RoundResult& result,
                             const std::string& label) {
  const CleaningStats& c = result.map.cleaning;
  EXPECT_EQ(c.raw_replies, c.kept + c.malformed + c.wrong_id + c.unsolicited +
                               c.duplicates + c.late)
      << label;
  EXPECT_EQ(c.raw_replies,
            result.faults.replies_generated - result.faults.replies_dropped())
      << label;
}

TEST_F(FaultPropertyTest, HundredPlansHoldInvariantsUnderAnyThreadCount) {
  std::uint64_t plans_with_injections = 0;
  std::uint64_t unattributed_site_changes = 0;
  for (std::uint64_t seed = 0; seed < kPlanCount; ++seed) {
    const sim::FaultInjector injector{sim::FaultPlan::from_seed(seed)};
    const std::string label = "plan seed " + std::to_string(seed);
    const RoundResult faulty = run(&injector, 0, 1);

    // Determinism: 2 and 8 probe threads replay plan bit for bit.
    expect_identical(faulty, run(&injector, 0, 2), label + ", 2 threads");
    expect_identical(faulty, run(&injector, 0, 8), label + ", 8 threads");

    // Containment: faults cannot map a block the clean round did not.
    ASSERT_LE(faulty.map.mapped_blocks(), clean().map.mapped_blocks())
        << label;
    for (const auto& [block, site] : faulty.map.entries()) {
      const anycast::SiteId clean_site = clean().map.site_of(block);
      ASSERT_NE(clean_site, anycast::kUnknownSite) << label;
      // Attribution: a different site means churn diverted the block —
      // except for the rare cross-block alias race (a neighbor's aliased
      // reply standing in after the block's own reply was dropped),
      // which we count and bound instead.
      if (site != clean_site && !injector.churn(block, kRound).active)
        ++unattributed_site_changes;
    }

    // Exact loss accounting, including the injected duplicates the
    // cleaning pass has to absorb.
    expect_exact_accounting(faulty, label);
    EXPECT_EQ(faulty.map.probes_sent, clean().map.probes_sent) << label;
    EXPECT_EQ(faulty.map.blocks_probed, clean().map.blocks_probed) << label;
    if (faulty.faults.probes_lost + faulty.faults.replies_dropped() > 0)
      ++plans_with_injections;
  }
  // The plan generator must actually exercise the machinery...
  EXPECT_GE(plans_with_injections, static_cast<std::uint64_t>(kPlanCount) - 2);
  // ...and unattributed site changes stay at the alias-race noise floor.
  EXPECT_LE(unattributed_site_changes, 5u);
}

TEST_F(FaultPropertyTest, RetriesAreDeterministicAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const sim::FaultInjector injector{sim::FaultPlan::from_seed(seed)};
    const std::string label = "retry plan seed " + std::to_string(seed);
    const RoundResult serial = run(&injector, 2, 1);
    expect_identical(serial, run(&injector, 2, 2), label + ", 2 threads");
    expect_identical(serial, run(&injector, 2, 8), label + ", 8 threads");
    expect_exact_accounting(serial, label);
  }
}

TEST_F(FaultPropertyTest, RetryCoverageIsMonotonicallyNonDecreasing) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const sim::FaultInjector injector{sim::FaultPlan::from_seed(seed)};
    const std::string label = "plan seed " + std::to_string(seed);
    RoundResult prev = run(&injector, 0, 1);
    for (const int retries : {1, 2}) {
      const RoundResult next = run(&injector, retries, 1);
      EXPECT_GE(next.map.mapped_blocks(), prev.map.mapped_blocks())
          << label << ", retries " << retries;
      // Superset, not just count: nothing previously mapped disappears.
      for (const auto& [block, site] : prev.map.entries())
        ASSERT_TRUE(next.map.contains(block))
            << label << ", retries " << retries;
      EXPECT_EQ(next.map.probes_sent,
                clean().map.probes_sent + next.faults.retries)
          << label;
      EXPECT_GE(next.faults.retries, prev.faults.retries) << label;
      prev = next;
    }
  }
}

TEST_F(FaultPropertyTest, RetriesRecoverLostCoverage) {
  // A plan that is pure forward-path loss: every silent probe is a
  // retryable loss, so retries must claw coverage back toward clean.
  sim::FaultPlan plan;
  plan.seed = 977;
  plan.probe_loss_rate = 0.4;
  const sim::FaultInjector injector{plan};
  const RoundResult lossy = run(&injector, 0, 1);
  const RoundResult retried = run(&injector, 3, 1);
  EXPECT_LT(lossy.map.mapped_blocks(), clean().map.mapped_blocks());
  EXPECT_GT(retried.map.mapped_blocks(), lossy.map.mapped_blocks());
  EXPECT_GT(retried.faults.recovered, 0u);
  // Four attempts at 40% loss leave ~2.6% of responsive blocks unmapped.
  EXPECT_GT(retried.map.mapped_blocks(),
            clean().map.mapped_blocks() * 95 / 100);
}

TEST_F(FaultPropertyTest, DisabledPlanAndNoRetriesAreByteIdentical) {
  const sim::FaultInjector disabled{sim::FaultPlan{}};
  ASSERT_FALSE(disabled.plan().enabled());
  const RoundResult result = run(&disabled, 0, 1);
  expect_identical(clean(), result, "disabled plan");
  EXPECT_EQ(result.faults.probes_lost, 0u);
  EXPECT_EQ(result.faults.replies_generated, 0u);
  EXPECT_EQ(result.faults.retries, 0u);
}

TEST_F(FaultPropertyTest, RetriesWithoutFaultsChangeNothingButCost) {
  // With no injected loss, retries only re-probe blocks that stay silent
  // (or answer late): the map is unchanged, the probe bill is not.
  const RoundResult retried = run(nullptr, 2, 1);
  EXPECT_EQ(retried.map.entries(), clean().map.entries());
  EXPECT_GT(retried.faults.retries, 0u);
  EXPECT_EQ(retried.map.probes_sent,
            clean().map.probes_sent + retried.faults.retries);
  expect_exact_accounting(retried, "retries, no faults");
}

class FaultStatsObserver : public RoundObserver {
 public:
  void on_fault_stats(const RoundSpec&,
                      const sim::FaultStats& faults) override {
    seen = faults;
    ++calls;
  }
  sim::FaultStats seen;
  int calls = 0;
};

TEST_F(FaultPropertyTest, ObserverReceivesTheRoundsFaultStats) {
  const sim::FaultInjector injector{sim::FaultPlan::from_seed(3)};
  FaultStatsObserver observer;
  const RoundResult result = scenario_->verfploeter().run(
      *routes_, spec_with(&injector, 1, 4), &observer);
  EXPECT_EQ(observer.calls, 1);
  EXPECT_EQ(observer.seen.probes_lost, result.faults.probes_lost);
  EXPECT_EQ(observer.seen.replies_generated,
            result.faults.replies_generated);
  EXPECT_EQ(observer.seen.retries, result.faults.retries);
  EXPECT_EQ(observer.seen.recovered, result.faults.recovered);
}

}  // namespace
}  // namespace vp::core
