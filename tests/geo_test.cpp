#include <gtest/gtest.h>

#include "geo/geodb.hpp"
#include "geo/world.hpp"

namespace vp::geo {
namespace {

// --- world catalog -----------------------------------------------------------

TEST(World, CatalogIsSaneAndNonTrivial) {
  const auto centers = world_centers();
  ASSERT_GE(centers.size(), 50u);
  for (const auto& c : centers) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_EQ(c.country.size(), 2u) << c.name;
    EXPECT_GE(c.location.lat, -90.0);
    EXPECT_LE(c.location.lat, 90.0);
    EXPECT_GE(c.location.lon, -180.0);
    EXPECT_LE(c.location.lon, 180.0);
    EXPECT_GT(c.block_weight, 0.0) << c.name;
    EXPECT_GE(c.atlas_weight, 0.0) << c.name;
    EXPECT_GT(c.scatter_deg, 0.0) << c.name;
  }
}

TEST(World, EveryContinentRepresented) {
  bool seen[6] = {};
  for (const auto& c : world_centers())
    seen[static_cast<int>(c.continent)] = true;
  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(seen[i]) << to_string(static_cast<Continent>(i));
}

TEST(World, AtlasSkewIsEuropean) {
  // The structural premise of the paper's coverage comparison: Europe's
  // share of Atlas weight far exceeds its share of block weight.
  double europe_atlas = 0, europe_blocks = 0;
  for (const auto& c : world_centers()) {
    if (c.continent == Continent::kEurope) {
      europe_atlas += c.atlas_weight;
      europe_blocks += c.block_weight;
    }
  }
  const double atlas_share = europe_atlas / total_atlas_weight();
  const double block_share = europe_blocks / total_block_weight();
  EXPECT_GT(atlas_share, 0.45);
  EXPECT_LT(block_share, 0.30);
  EXPECT_GT(atlas_share, 2.0 * block_share);
}

TEST(World, ChinaIsAtlasDark) {
  double china_atlas = 0, china_blocks = 0;
  for (const auto& c : world_centers()) {
    if (c.country == "CN") {
      china_atlas += c.atlas_weight;
      china_blocks += c.block_weight;
    }
  }
  EXPECT_GT(china_blocks / total_block_weight(), 0.10);
  EXPECT_LT(china_atlas / total_atlas_weight(), 0.01);
}

// --- distance ----------------------------------------------------------------

TEST(Distance, KnownPairs) {
  const LatLon london{51.5, -0.1};
  const LatLon new_york{40.7, -74.0};
  EXPECT_NEAR(distance_km(london, new_york), 5570, 100);
  EXPECT_NEAR(distance_km(london, london), 0, 1e-9);
}

TEST(Distance, SymmetricAndPositive) {
  const LatLon a{12.3, 45.6}, b{-33.9, 151.2};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
  EXPECT_GT(distance_km(a, b), 0.0);
}

TEST(Distance, AntipodesNearHalfCircumference) {
  const LatLon a{0, 0}, b{0, 180};
  EXPECT_NEAR(distance_km(a, b), 20015, 50);
}

// --- geodb ---------------------------------------------------------------------

TEST(GeoDatabase, LookupHitAndMiss) {
  GeoDatabase db;
  GeoRecord rec;
  rec.location = {52.0, 5.0};
  rec.country[0] = 'N';
  rec.country[1] = 'L';
  db.add(net::Block24{100}, rec);
  const auto hit = db.lookup(net::Block24{100});
  ASSERT_TRUE(hit);
  EXPECT_DOUBLE_EQ(hit->location.lat, 52.0);
  EXPECT_FALSE(db.lookup(net::Block24{101}));
  EXPECT_EQ(db.size(), 1u);
}

// --- binning ---------------------------------------------------------------------

TEST(GeoBin, TwoDegreeGrid) {
  EXPECT_EQ(GeoBin::of({0.0, 0.0}), (GeoBin{90, 45}));
  EXPECT_EQ(GeoBin::of({1.9, 1.9}), (GeoBin{90, 45}));
  EXPECT_EQ(GeoBin::of({2.0, 2.0}), (GeoBin{91, 46}));
  EXPECT_EQ(GeoBin::of({-90.0, -180.0}), (GeoBin{0, 0}));
  // Clamp rather than overflow at the edges.
  EXPECT_EQ(GeoBin::of({90.0, 180.0}), (GeoBin{179, 89}));
}

TEST(GeoBin, CenterIsInsideBin) {
  const GeoBin bin = GeoBin::of({51.5, -0.1});
  const LatLon center = bin.center();
  EXPECT_EQ(GeoBin::of(center), bin);
}

TEST(GeoBinner, AccumulatesPerCategory) {
  GeoBinner binner{2};
  binner.add({51.5, -0.1}, 0);
  binner.add({51.5, -0.1}, 0);
  binner.add({51.4, -0.3}, 1, 3.0);  // same 2-degree bin
  binner.add({40.7, -74.0}, 1);

  const auto rows = binner.rows();
  ASSERT_EQ(rows.size(), 2u);
  // Rows are sorted by total weight descending.
  EXPECT_DOUBLE_EQ(rows[0].total, 5.0);
  EXPECT_DOUBLE_EQ(rows[0].category_weights[0], 2.0);
  EXPECT_DOUBLE_EQ(rows[0].category_weights[1], 3.0);
  EXPECT_DOUBLE_EQ(rows[1].total, 1.0);
}

TEST(GeoBinner, OutOfRangeCategoryIgnored) {
  GeoBinner binner{1};
  binner.add({0, 0}, 5);  // invalid category: dropped, bin still exists
  const auto rows = binner.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].total, 0.0);
}

TEST(GeoBinner, ContinentAggregation) {
  GeoBinner binner{1};
  binner.add({51.5, -0.1}, 0, 10.0);   // London
  binner.add({35.7, 139.7}, 0, 7.0);   // Tokyo
  double europe = 0, asia = 0;
  for (const auto& [continent, weights] : binner.by_continent()) {
    if (continent == Continent::kEurope) europe = weights[0];
    if (continent == Continent::kAsia) asia = weights[0];
  }
  EXPECT_DOUBLE_EQ(europe, 10.0);
  EXPECT_DOUBLE_EQ(asia, 7.0);
}

}  // namespace
}  // namespace vp::geo
