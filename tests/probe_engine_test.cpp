// The parallel probe engine's core guarantee: for a fixed RoundSpec, the
// result is bit-identical no matter how many worker shards probe it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/verfploeter.hpp"

namespace vp::core {
namespace {

class ProbeEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 77;
    config.scale = 0.08;  // ~10k blocks
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
  }
  static void TearDownTestSuite() {
    routes_.reset();
    delete scenario_;
  }
  static const analysis::Scenario& scenario() { return *scenario_; }
  static const bgp::RoutingTable& routes() { return *routes_; }

 private:
  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
};

analysis::Scenario* ProbeEngineTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> ProbeEngineTest::routes_;

void expect_identical(const RoundResult& a, const RoundResult& b,
                      const char* label) {
  // CatchmentMap: counters and the full block -> site relation.
  EXPECT_EQ(a.map.probes_sent, b.map.probes_sent) << label;
  EXPECT_EQ(a.map.blocks_probed, b.map.blocks_probed) << label;
  EXPECT_EQ(a.map.measurement_id, b.map.measurement_id) << label;
  EXPECT_EQ(a.map.entries(), b.map.entries()) << label;
  // CleaningStats, field by field.
  EXPECT_EQ(a.map.cleaning.raw_replies, b.map.cleaning.raw_replies) << label;
  EXPECT_EQ(a.map.cleaning.malformed, b.map.cleaning.malformed) << label;
  EXPECT_EQ(a.map.cleaning.wrong_id, b.map.cleaning.wrong_id) << label;
  EXPECT_EQ(a.map.cleaning.unsolicited, b.map.cleaning.unsolicited) << label;
  EXPECT_EQ(a.map.cleaning.duplicates, b.map.cleaning.duplicates) << label;
  EXPECT_EQ(a.map.cleaning.late, b.map.cleaning.late) << label;
  EXPECT_EQ(a.map.cleaning.kept, b.map.cleaning.kept) << label;
  // Raw per-site volumes, timing, and the measured RTTs (bit-exact float
  // compare on purpose: the parallel engine must build the very same
  // packets with the very same timestamps).
  EXPECT_EQ(a.raw_replies_per_site, b.raw_replies_per_site) << label;
  EXPECT_EQ(a.started, b.started) << label;
  EXPECT_EQ(a.probing_duration, b.probing_duration) << label;
  EXPECT_EQ(a.rtt_ms, b.rtt_ms) << label;
}

TEST_F(ProbeEngineTest, ParallelRoundIsBitIdenticalToSerial) {
  RoundSpec spec;
  spec.probe.measurement_id = 4100;
  spec.round = 3;
  spec.start = util::SimTime::from_minutes(45);

  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  EXPECT_GT(serial.map.mapped_blocks(), 0u);

  for (const unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    const RoundResult parallel =
        scenario().verfploeter().run(routes(), spec);
    expect_identical(serial, parallel,
                     threads == 2 ? "2 threads" : "8 threads");
  }
}

TEST_F(ProbeEngineTest, ParallelRoundIsBitIdenticalWithExtraTargets) {
  // Multi-target probing makes per-entry probe counts uneven, exercising
  // the prefix-sum shard boundaries.
  RoundSpec spec;
  spec.probe.measurement_id = 4200;
  spec.probe.extra_targets_per_block = 2;
  spec.round = 1;

  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  spec.threads = 8;
  const RoundResult parallel = scenario().verfploeter().run(routes(), spec);
  expect_identical(serial, parallel, "extra targets, 8 threads");
}

TEST_F(ProbeEngineTest, ThreadCountBeyondEntriesIsHarmless) {
  RoundSpec spec;
  spec.probe.measurement_id = 4300;
  spec.threads = 64;
  const RoundResult wide = scenario().verfploeter().run(routes(), spec);
  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  expect_identical(serial, wide, "64 threads");
}

TEST_F(ProbeEngineTest, ConcurrentCampaignMatchesSequential) {
  ProbeConfig probe;
  probe.measurement_id = 4400;
  const auto sequential = Campaign{scenario().verfploeter(), routes()}
                              .probe(probe)
                              .rounds(4)
                              .interval(util::SimTime::from_minutes(15))
                              .run();
  const auto concurrent = Campaign{scenario().verfploeter(), routes()}
                              .probe(probe)
                              .rounds(4)
                              .interval(util::SimTime::from_minutes(15))
                              .concurrency(4)
                              .threads(2)
                              .run();
  ASSERT_EQ(sequential.size(), concurrent.size());
  for (std::size_t r = 0; r < sequential.size(); ++r)
    expect_identical(sequential[r], concurrent[r], "campaign round");
}

/// Observer that tallies callbacks; shared across threads in the
/// concurrent-campaign test above via the engine's serialization.
class RecordingObserver : public RoundObserver {
 public:
  void on_probe_progress(const RoundSpec&, std::uint64_t sent,
                         std::uint64_t total) override {
    last_sent = sent;
    last_total = total;
    ++progress_calls;
  }
  void on_replies_collected(
      const RoundSpec&, const std::vector<std::uint64_t>& per_site) override {
    collected = per_site;
  }
  void on_round_complete(const RoundSpec& spec,
                         const RoundResult& result) override {
    ++complete_calls;
    completed_round = spec.round;
    kept = result.map.cleaning.kept;
  }

  std::uint64_t last_sent = 0;
  std::uint64_t last_total = 0;
  int progress_calls = 0;
  int complete_calls = 0;
  std::uint32_t completed_round = 0;
  std::uint64_t kept = 0;
  std::vector<std::uint64_t> collected;
};

TEST_F(ProbeEngineTest, ObserverSeesConsistentCounts) {
  RoundSpec spec;
  spec.probe.measurement_id = 4500;
  spec.round = 2;
  spec.threads = 4;
  RecordingObserver observer;
  const RoundResult result =
      scenario().verfploeter().run(routes(), spec, &observer);

  EXPECT_GE(observer.progress_calls, 1);
  EXPECT_EQ(observer.last_sent, result.map.probes_sent);
  EXPECT_EQ(observer.last_total, result.map.probes_sent);
  EXPECT_EQ(observer.collected, result.raw_replies_per_site);
  EXPECT_EQ(observer.complete_calls, 1);
  EXPECT_EQ(observer.completed_round, 2u);
  EXPECT_EQ(observer.kept, result.map.cleaning.kept);
}

}  // namespace
}  // namespace vp::core
