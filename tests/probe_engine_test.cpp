// The parallel probe engine's core guarantee: for a fixed RoundSpec, the
// result is bit-identical no matter how many worker shards probe it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/verfploeter.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_injector.hpp"
#include "util/round_arena.hpp"

namespace vp::core {
namespace {

class ProbeEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 77;
    config.scale = 0.08;  // ~10k blocks
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
  }
  static void TearDownTestSuite() {
    routes_.reset();
    delete scenario_;
  }
  static const analysis::Scenario& scenario() { return *scenario_; }
  static const bgp::RoutingTable& routes() { return *routes_; }

 private:
  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
};

analysis::Scenario* ProbeEngineTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> ProbeEngineTest::routes_;

void expect_identical(const RoundResult& a, const RoundResult& b,
                      const char* label) {
  // CatchmentMap: counters and the full block -> site relation.
  EXPECT_EQ(a.map.probes_sent, b.map.probes_sent) << label;
  EXPECT_EQ(a.map.blocks_probed, b.map.blocks_probed) << label;
  EXPECT_EQ(a.map.measurement_id, b.map.measurement_id) << label;
  EXPECT_EQ(a.map.entries(), b.map.entries()) << label;
  // CleaningStats, field by field.
  EXPECT_EQ(a.map.cleaning.raw_replies, b.map.cleaning.raw_replies) << label;
  EXPECT_EQ(a.map.cleaning.malformed, b.map.cleaning.malformed) << label;
  EXPECT_EQ(a.map.cleaning.wrong_id, b.map.cleaning.wrong_id) << label;
  EXPECT_EQ(a.map.cleaning.unsolicited, b.map.cleaning.unsolicited) << label;
  EXPECT_EQ(a.map.cleaning.duplicates, b.map.cleaning.duplicates) << label;
  EXPECT_EQ(a.map.cleaning.late, b.map.cleaning.late) << label;
  EXPECT_EQ(a.map.cleaning.kept, b.map.cleaning.kept) << label;
  // Raw per-site volumes, timing, and the measured RTTs (bit-exact float
  // compare on purpose: the parallel engine must build the very same
  // packets with the very same timestamps).
  EXPECT_EQ(a.raw_replies_per_site, b.raw_replies_per_site) << label;
  EXPECT_EQ(a.started, b.started) << label;
  EXPECT_EQ(a.probing_duration, b.probing_duration) << label;
  EXPECT_EQ(a.rtt_ms, b.rtt_ms) << label;
}

TEST_F(ProbeEngineTest, ParallelRoundIsBitIdenticalToSerial) {
  RoundSpec spec;
  spec.probe.measurement_id = 4100;
  spec.round = 3;
  spec.start = util::SimTime::from_minutes(45);

  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  EXPECT_GT(serial.map.mapped_blocks(), 0u);

  for (const unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    const RoundResult parallel =
        scenario().verfploeter().run(routes(), spec);
    expect_identical(serial, parallel,
                     threads == 2 ? "2 threads" : "8 threads");
  }
}

TEST_F(ProbeEngineTest, ParallelRoundIsBitIdenticalWithExtraTargets) {
  // Multi-target probing makes per-entry probe counts uneven, exercising
  // the prefix-sum shard boundaries.
  RoundSpec spec;
  spec.probe.measurement_id = 4200;
  spec.probe.extra_targets_per_block = 2;
  spec.round = 1;

  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  spec.threads = 8;
  const RoundResult parallel = scenario().verfploeter().run(routes(), spec);
  expect_identical(serial, parallel, "extra targets, 8 threads");
}

TEST_F(ProbeEngineTest, ThreadCountBeyondEntriesIsHarmless) {
  RoundSpec spec;
  spec.probe.measurement_id = 4300;
  spec.threads = 64;
  const RoundResult wide = scenario().verfploeter().run(routes(), spec);
  spec.threads = 1;
  const RoundResult serial = scenario().verfploeter().run(routes(), spec);
  expect_identical(serial, wide, "64 threads");
}

TEST_F(ProbeEngineTest, ConcurrentCampaignMatchesSequential) {
  ProbeConfig probe;
  probe.measurement_id = 4400;
  const auto sequential = Campaign{scenario().verfploeter(), routes()}
                              .probe(probe)
                              .rounds(4)
                              .interval(util::SimTime::from_minutes(15))
                              .run();
  const auto concurrent = Campaign{scenario().verfploeter(), routes()}
                              .probe(probe)
                              .rounds(4)
                              .interval(util::SimTime::from_minutes(15))
                              .concurrency(4)
                              .threads(2)
                              .run();
  ASSERT_EQ(sequential.size(), concurrent.size());
  for (std::size_t r = 0; r < sequential.size(); ++r)
    expect_identical(sequential[r], concurrent[r], "campaign round");
}

/// Observer that tallies callbacks; shared across threads in the
/// concurrent-campaign test above via the engine's serialization.
class RecordingObserver : public RoundObserver {
 public:
  void on_probe_progress(const RoundSpec&, std::uint64_t sent,
                         std::uint64_t total) override {
    last_sent = sent;
    last_total = total;
    ++progress_calls;
  }
  void on_replies_collected(
      const RoundSpec&, const std::vector<std::uint64_t>& per_site) override {
    collected = per_site;
  }
  void on_round_complete(const RoundSpec& spec,
                         const RoundResult& result) override {
    ++complete_calls;
    completed_round = spec.round;
    kept = result.map.cleaning.kept;
  }

  std::uint64_t last_sent = 0;
  std::uint64_t last_total = 0;
  int progress_calls = 0;
  int complete_calls = 0;
  std::uint32_t completed_round = 0;
  std::uint64_t kept = 0;
  std::vector<std::uint64_t> collected;
};

TEST_F(ProbeEngineTest, TileSizeNeverChangesTheResult) {
  // The block-range tiling is a pure walk-order optimization: every
  // packet field, timestamp, and fault draw is a function of the probe's
  // global index, so ANY tile size — one entry per tile, tiny tiles,
  // the LLC-sized default, or one tile per shard — must produce the
  // bit-identical round, clean and faulted, at any thread count.
  const sim::FaultInjector faults{sim::FaultPlan::from_seed(9001)};
  for (const bool faulted : {false, true}) {
    RoundSpec spec;
    spec.probe.measurement_id = faulted ? 4650 : 4600;
    spec.round = 2;
    spec.start = util::SimTime::from_minutes(30);
    if (faulted) spec.faults = &faults;

    spec.threads = 1;
    spec.tile_entries = 0;  // auto
    const RoundResult baseline = scenario().verfploeter().run(routes(), spec);
    EXPECT_GT(baseline.map.mapped_blocks(), 0u);

    for (const unsigned threads : {1u, 4u, 8u}) {
      for (const std::uint32_t tile :
           {std::uint32_t{1}, std::uint32_t{4096}, std::uint32_t{65536},
            std::numeric_limits<std::uint32_t>::max()}) {
        spec.threads = threads;
        spec.tile_entries = tile;
        const RoundResult tiled = scenario().verfploeter().run(routes(), spec);
        char label[64];
        std::snprintf(label, sizeof label, "%s threads=%u tile=%u",
                      faulted ? "faulted" : "clean", threads, tile);
        expect_identical(baseline, tiled, label);
      }
    }
  }
}

TEST_F(ProbeEngineTest, SteadyStateRoundsAreAllocationFreeInTheShardLoop) {
  // The cross-round arena exists so round N+1 probes into round N's
  // buffers. After a warm-up round has sized everything, later rounds of
  // a journaled campaign must not grow a single hot-loop vector:
  // vp_engine_hot_allocs_total (shard-loop buffer growths) stays flat
  // while vp_engine_arena_reuses_total keeps climbing.
  auto& registry = obs::metrics();
  obs::Counter& hot = registry.counter("vp_engine_hot_allocs_total");
  obs::Counter& reuses = registry.counter("vp_engine_arena_reuses_total");

  /// Samples the allocation counters at every round completion so the
  /// per-round deltas of a sequential campaign can be asserted after
  /// run() returns.
  class AllocSampler : public RoundObserver {
   public:
    AllocSampler(const obs::Counter& hot, const obs::Counter& reuses)
        : hot_(&hot), reuses_(&reuses) {}
    void on_round_complete(const RoundSpec&, const RoundResult&) override {
      hot_after.push_back(hot_->value());
      reuses_after.push_back(reuses_->value());
    }
    std::vector<std::uint64_t> hot_after;
    std::vector<std::uint64_t> reuses_after;

   private:
    const obs::Counter* hot_;
    const obs::Counter* reuses_;
  };

  const std::string journal_path =
      "/tmp/vp_probe_engine_alloc_" +
      std::to_string(static_cast<long>(::getpid())) + ".bin";
  std::remove(journal_path.c_str());

  ProbeConfig probe;
  probe.measurement_id = 4700;
  AllocSampler sampler{hot, reuses};
  const auto report = Campaign{scenario().verfploeter(), routes()}
                          .probe(probe)
                          .rounds(5)
                          .interval(util::SimTime::from_minutes(15))
                          .threads(2)
                          .journal(journal_path)
                          .observe(sampler)
                          .run_reported();
  std::remove(journal_path.c_str());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(sampler.hot_after.size(), 5u);

  // Round 1 starts cold and rounds 1-2 may still ratchet reply-buffer
  // capacities (reply counts vary slightly per round); from round 3 on
  // the arena is steady state and growth must be exactly zero.
  for (std::size_t r = 2; r < sampler.hot_after.size(); ++r)
    EXPECT_EQ(sampler.hot_after[r], sampler.hot_after[r - 1])
        << "round " << r + 1 << " grew a shard-loop buffer";
  // Every round after the first checked out a warm arena.
  EXPECT_GE(sampler.reuses_after.back() - sampler.reuses_after.front(), 4u);
}

TEST_F(ProbeEngineTest, ObserverSeesConsistentCounts) {
  RoundSpec spec;
  spec.probe.measurement_id = 4500;
  spec.round = 2;
  spec.threads = 4;
  RecordingObserver observer;
  const RoundResult result =
      scenario().verfploeter().run(routes(), spec, &observer);

  EXPECT_GE(observer.progress_calls, 1);
  EXPECT_EQ(observer.last_sent, result.map.probes_sent);
  EXPECT_EQ(observer.last_total, result.map.probes_sent);
  EXPECT_EQ(observer.collected, result.raw_replies_per_site);
  EXPECT_EQ(observer.complete_calls, 1);
  EXPECT_EQ(observer.completed_round, 2u);
  EXPECT_EQ(observer.kept, result.map.cleaning.kept);
}

}  // namespace
}  // namespace vp::core
