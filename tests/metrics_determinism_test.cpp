// Enforces the obs determinism contract (obs/metrics.hpp): measurement
// results are bit-identical with metrics enabled or disabled, for any
// thread count. The catchment CSV is the full serialized result — block
// -> site mapping, RTTs, cleaning stats — so comparing the CSV text
// byte-for-byte across {metrics on, metrics off} x threads {1, 4, 8}
// proves the observability layer never leaks into measurement.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/scenario.hpp"
#include "core/dataset_io.hpp"
#include "core/verfploeter.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_injector.hpp"

namespace vp::core {
namespace {

class MetricsDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 99;
    config.scale = 0.05;
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
  }
  static void TearDownTestSuite() {
    routes_.reset();
    delete scenario_;
  }
  void TearDown() override { obs::metrics().set_enabled(true); }

  static std::string run_csv(unsigned threads, bool metrics_on,
                             const sim::FaultInjector* faults = nullptr) {
    obs::metrics().set_enabled(metrics_on);
    RoundSpec spec;
    spec.probe.measurement_id = 6100;
    spec.round = 2;
    spec.threads = threads;
    spec.faults = faults;
    const RoundResult result = scenario_->verfploeter().run(*routes_, spec);
    std::ostringstream csv;
    write_catchment_csv(csv, result, scenario_->broot());
    return csv.str();
  }

  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
};

analysis::Scenario* MetricsDeterminismTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> MetricsDeterminismTest::routes_;

TEST_F(MetricsDeterminismTest, CsvIdenticalWithMetricsOnOrOff) {
  const std::string baseline = run_csv(1, /*metrics_on=*/true);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 4u, 8u}) {
    EXPECT_EQ(run_csv(threads, true), baseline)
        << "metrics on, threads=" << threads;
    EXPECT_EQ(run_csv(threads, false), baseline)
        << "metrics off, threads=" << threads;
  }
}

TEST_F(MetricsDeterminismTest, CsvIdenticalUnderFaults) {
  // Fault injection exercises the retry path and the per-kind fault
  // counters; the contract must hold there too.
  const sim::FaultInjector injector{sim::FaultPlan::from_seed(11)};
  const std::string baseline = run_csv(1, true, &injector);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 4u, 8u}) {
    EXPECT_EQ(run_csv(threads, true, &injector), baseline)
        << "metrics on, threads=" << threads;
    EXPECT_EQ(run_csv(threads, false, &injector), baseline)
        << "metrics off, threads=" << threads;
  }
}

TEST_F(MetricsDeterminismTest, MetricsActuallyCollectWhenEnabled) {
  // Guards against the trivial "determinism because nothing is wired"
  // failure mode: a run with metrics on must move the engine counters.
  const std::uint64_t before =
      obs::metrics().counter("vp_engine_probes_sent_total").value();
  (void)run_csv(2, true);
  const std::uint64_t after =
      obs::metrics().counter("vp_engine_probes_sent_total").value();
  EXPECT_GT(after, before);
}

TEST_F(MetricsDeterminismTest, DisabledMeansNoCollection) {
  const std::uint64_t before =
      obs::metrics().counter("vp_engine_probes_sent_total").value();
  (void)run_csv(2, false);
  const std::uint64_t after =
      obs::metrics().counter("vp_engine_probes_sent_total").value();
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace vp::core
