// Unit tests for the verfploeterd service layer: the HTTP primitives
// (parse/render/decode plus a real socket round-trip), the daemon's
// Fresh/Stale/Degraded state machine, watchdog supervision, journal
// resume and degraded-mode serving, the query endpoints, and a
// serve-while-measuring race for TSan. Everything runs in-process
// against one small Scenario — the forked-binary chaos and soak
// harnesses live in daemon_chaos_test / daemon_soak_test.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/dataset_io.hpp"
#include "net/http_server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"

namespace vp {
namespace {

// ---------------------------------------------------------------------
// HTTP primitives (no sockets).

TEST(Http, UrlDecode) {
  EXPECT_EQ(net::url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(net::url_decode("MIA%3D2%2CLAX%3D0"), "MIA=2,LAX=0");
  // Invalid escapes pass through untouched.
  EXPECT_EQ(net::url_decode("100%"), "100%");
  EXPECT_EQ(net::url_decode("%zz"), "%zz");
}

TEST(Http, ParseRequestLine) {
  net::HttpRequest request;
  ASSERT_TRUE(net::parse_http_request(
      "GET /load?config=MIA%3D2&x=a+b HTTP/1.1\r\nHost: x\r\n\r\n", request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/load");
  EXPECT_EQ(request.param("config"), "MIA=2");
  EXPECT_EQ(request.param("x"), "a b");
  EXPECT_EQ(request.param("missing", "fallback"), "fallback");
}

TEST(Http, ParseRejectsMalformed) {
  net::HttpRequest request;
  EXPECT_FALSE(net::parse_http_request("", request));
  EXPECT_FALSE(net::parse_http_request("GET\r\n", request));
  EXPECT_FALSE(net::parse_http_request("/nopath HTTP/1.1\r\n", request));
}

TEST(Http, RenderCarriesLengthAndBody) {
  const std::string text =
      net::render_http_response(net::HttpResponse::json("{\"a\":1}"));
  EXPECT_TRUE(text.starts_with("HTTP/1.1 200 "));
  EXPECT_NE(text.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_TRUE(text.ends_with("\r\n\r\n{\"a\":1}"));
}

/// One blocking GET against a live HttpServer, returning the raw response.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + target + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(HttpServer, ServesOverRealSocket) {
  net::HttpServer server;
  ASSERT_TRUE(server.start(0, [](const net::HttpRequest& request) {
    return net::HttpResponse::json("{\"path\":\"" + request.path + "\"}");
  }));
  ASSERT_GT(server.port(), 0);
  const std::string response = http_get(server.port(), "/ping");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 "));
  EXPECT_TRUE(response.ends_with("{\"path\":\"/ping\"}"));
  server.stop();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------
// Daemon tests share one small Scenario (route computation dominates
// construction cost; the daemon itself only borrows it).

class DaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.scale = 0.03;
    scenario_ = new analysis::Scenario(config);
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const analysis::Scenario& scenario() { return *scenario_; }

  static service::DaemonConfig fast_config(std::uint32_t rounds) {
    service::DaemonConfig config;
    config.probe.measurement_id = 100;
    config.rounds = rounds;
    config.threads = 2;
    config.watchdog_ms = 60'000.0;
    return config;
  }

  static net::HttpRequest get(const std::string& path,
                              const std::string& config = "") {
    net::HttpRequest request;
    request.method = "GET";
    request.path = path;
    if (!config.empty()) request.query["config"] = config;
    return request;
  }

 private:
  static analysis::Scenario* scenario_;
};

analysis::Scenario* DaemonTest::scenario_ = nullptr;

/// Scoped environment variable for the daemon's chaos hooks.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST_F(DaemonTest, InitServes503UntilFirstRound) {
  service::Daemon daemon{scenario(), scenario().broot(), fast_config(0)};
  EXPECT_EQ(daemon.status().state, service::MapState::kInit);
  EXPECT_EQ(daemon.handle(get("/block/10.0.0.1")).status, 503);
  EXPECT_EQ(daemon.handle(get("/healthz")).status, 503);
  EXPECT_EQ(daemon.handle(get("/map")).status, 503);
  // /metrics and /drift answer even without a map.
  EXPECT_EQ(daemon.handle(get("/metrics")).status, 200);
  EXPECT_EQ(daemon.handle(get("/drift")).body, "{\"available\":false}");
}

TEST_F(DaemonTest, RoundsPublishFreshMapAndDrift) {
  service::Daemon daemon{scenario(), scenario().broot(), fast_config(3)};
  ASSERT_TRUE(daemon.run_rounds());

  const service::DaemonStatus status = daemon.status();
  EXPECT_EQ(status.state, service::MapState::kFresh);
  EXPECT_EQ(status.reason, service::DegradedReason::kNone);
  EXPECT_EQ(status.rounds_completed, 3u);
  EXPECT_EQ(status.rounds_failed, 0u);
  EXPECT_EQ(status.map_round, 2u);

  const auto served = daemon.current_map();
  ASSERT_NE(served, nullptr);
  EXPECT_FALSE(served->from_journal);
  ASSERT_GT(served->result.map.mapped_blocks(), 0u);

  // /block answers with the map's own assignment plus staleness metadata.
  const auto& [block, site] = *served->result.map.entries().begin();
  const auto response =
      daemon.handle(get("/block/" + block.address(7).to_string()));
  EXPECT_EQ(response.status, 200);
  const std::string code =
      site >= 0
          ? scenario().broot().sites[static_cast<std::size_t>(site)].code
          : "UNK";
  EXPECT_NE(response.body.find("\"site\":\"" + code + "\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"map_round\":2"), std::string::npos);
  EXPECT_NE(response.body.find("\"map_state\":\"fresh\""), std::string::npos);

  // Drift covers the newest good-round transition.
  const service::DriftReport drift = daemon.drift();
  EXPECT_TRUE(drift.available);
  EXPECT_EQ(drift.from_round, 1u);
  EXPECT_EQ(drift.to_round, 2u);
  EXPECT_EQ(daemon.handle(get("/drift")).status, 200);

  // /map is byte-identical to write_catchment_csv of the served round.
  std::ostringstream expected;
  core::write_catchment_csv(expected, served->result, scenario().broot());
  EXPECT_EQ(daemon.handle(get("/map")).body, expected.str());
}

TEST_F(DaemonTest, BlockEndpointRejectsGarbageAddress) {
  service::Daemon daemon{scenario(), scenario().broot(), fast_config(1)};
  ASSERT_TRUE(daemon.run_rounds());
  EXPECT_EQ(daemon.handle(get("/block/not-an-ip")).status, 400);
  EXPECT_EQ(daemon.handle(get("/block/1.2.3.4.5")).status, 400);
  EXPECT_EQ(daemon.handle(get("/nope")).status, 404);
}

TEST_F(DaemonTest, LoadEndpointPredictsUnderPrependConfig) {
  service::Daemon daemon{scenario(), scenario().broot(), fast_config(1)};
  ASSERT_TRUE(daemon.run_rounds());

  const auto baseline = daemon.handle(get("/load"));
  ASSERT_EQ(baseline.status, 200);
  EXPECT_NE(baseline.body.find("\"sites\":["), std::string::npos);

  const auto prepended = daemon.handle(get("/load", "MIA=3"));
  ASSERT_EQ(prepended.status, 200);
  EXPECT_NE(prepended.body.find("\"site\":\"MIA\",\"prepend\":3"),
            std::string::npos);
  // Demoting MIA must change the predicted split.
  EXPECT_NE(prepended.body, baseline.body);

  EXPECT_EQ(daemon.handle(get("/load", "XXX=1")).status, 400);
  EXPECT_EQ(daemon.handle(get("/load", "MIA=99")).status, 400);
  EXPECT_EQ(daemon.handle(get("/load", "MIA")).status, 400);
}

TEST_F(DaemonTest, WatchdogKillsWedgedAttemptThenRecovers) {
  // Round 1's first attempt wedges far past the watchdog deadline; the
  // supervisor must abandon it, degrade, and recover on the retry (the
  // wedge hook fires once per process).
  EnvGuard wedge_round{"VP_DAEMON_WEDGE_ROUND", "1"};
  EnvGuard wedge_ms{"VP_DAEMON_WEDGE_MS", "30000"};
  service::DaemonConfig config = fast_config(2);
  config.watchdog_ms = 150.0;
  config.round_retries = 1;
  config.retry_backoff_ms = 10.0;
  service::Daemon daemon{scenario(), scenario().broot(), config};
  ASSERT_TRUE(daemon.run_rounds());

  const service::DaemonStatus status = daemon.status();
  EXPECT_EQ(status.watchdog_kills, 1u);
  EXPECT_EQ(status.rounds_completed, 2u);
  EXPECT_EQ(status.rounds_failed, 0u);
  // The retry succeeded, so the daemon ends Fresh with round 1 served.
  EXPECT_EQ(status.state, service::MapState::kFresh);
  EXPECT_EQ(status.map_round, 1u);
}

TEST_F(DaemonTest, EmptyRoundDegradesButKeepsLastGoodMap) {
  // Round 1 runs under total probe loss: it completes but maps nothing.
  // The served map must stay at round 0 through the failure and move to
  // round 2 when measurement recovers.
  EnvGuard loss{"VP_DAEMON_LOSS_ROUND", "1"};
  service::DaemonConfig config = fast_config(3);
  config.round_retries = 0;
  service::Daemon daemon{scenario(), scenario().broot(), config};
  ASSERT_TRUE(daemon.run_rounds());

  const service::DaemonStatus status = daemon.status();
  EXPECT_EQ(status.rounds_completed, 2u);
  EXPECT_EQ(status.rounds_failed, 1u);
  EXPECT_EQ(status.state, service::MapState::kFresh);
  EXPECT_EQ(status.map_round, 2u);
  // The published sequence skipped the failed round entirely.
  const service::DriftReport drift = daemon.drift();
  EXPECT_EQ(drift.from_round, 0u);
  EXPECT_EQ(drift.to_round, 2u);
}

TEST_F(DaemonTest, StaleIsDerivedFromMapAge) {
  service::DaemonConfig config = fast_config(1);
  config.stale_after_ms = 1.0;  // everything is instantly stale
  service::Daemon daemon{scenario(), scenario().broot(), config};
  ASSERT_TRUE(daemon.run_rounds());
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_EQ(daemon.status().state, service::MapState::kStale);
  const auto response = daemon.handle(get("/healthz"));
  EXPECT_EQ(response.status, 200);  // stale still serves
  EXPECT_NE(response.body.find("\"state\":\"stale\""), std::string::npos);
}

TEST_F(DaemonTest, JournalResumeRestoresServedMap) {
  const std::string journal = ::testing::TempDir() + "/service_resume.bin";
  std::remove(journal.c_str());

  service::DaemonConfig config = fast_config(2);
  config.journal_path = journal;
  config.resume = false;
  std::string measured_map;
  {
    service::Daemon daemon{scenario(), scenario().broot(), config};
    ASSERT_TRUE(daemon.run_rounds());
    EXPECT_EQ(daemon.journal_status(), core::JournalStatus::kFresh);
    measured_map = daemon.handle(get("/map")).body;
  }

  // A restarted daemon resumes the live map from the journal without
  // measuring anything, and serves the same bytes.
  config.resume = true;
  service::Daemon daemon{scenario(), scenario().broot(), config};
  ASSERT_TRUE(daemon.run_rounds());
  EXPECT_EQ(daemon.journal_status(), core::JournalStatus::kResumed);
  const service::DaemonStatus status = daemon.status();
  EXPECT_EQ(status.rounds_resumed, 2u);
  EXPECT_EQ(status.rounds_completed, 0u);
  EXPECT_EQ(status.map_round, 1u);
  const auto served = daemon.current_map();
  ASSERT_NE(served, nullptr);
  EXPECT_TRUE(served->from_journal);
  EXPECT_EQ(daemon.handle(get("/map")).body, measured_map);
  std::remove(journal.c_str());
}

TEST_F(DaemonTest, UnopenableJournalDegradesButServes) {
  service::DaemonConfig config = fast_config(2);
  config.journal_path = ::testing::TempDir() + "/no-such-dir/journal.bin";
  service::Daemon daemon{scenario(), scenario().broot(), config};
  // Refusals are for mismatch/corruption only; I/O failure keeps running.
  ASSERT_TRUE(daemon.run_rounds());

  const service::DaemonStatus status = daemon.status();
  EXPECT_EQ(status.journal, core::JournalStatus::kIoError);
  EXPECT_EQ(status.state, service::MapState::kDegraded);
  EXPECT_EQ(status.reason, service::DegradedReason::kJournalIo);
  // Degraded never means down: the freshly measured map serves.
  EXPECT_EQ(status.rounds_completed, 2u);
  EXPECT_EQ(daemon.handle(get("/map")).status, 200);
  const auto response = daemon.handle(get("/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"reason\":\"journal-io\""),
            std::string::npos);
}

TEST_F(DaemonTest, MismatchedJournalIsRefused) {
  const std::string journal = ::testing::TempDir() + "/service_mismatch.bin";
  std::remove(journal.c_str());
  service::DaemonConfig config = fast_config(2);
  config.journal_path = journal;
  config.resume = false;
  {
    service::Daemon daemon{scenario(), scenario().broot(), config};
    ASSERT_TRUE(daemon.run_rounds());
  }
  // Same journal, different round-spacing policy: refusal, not serving.
  config.resume = true;
  config.sim_interval = util::SimTime::from_minutes(20);
  service::Daemon daemon{scenario(), scenario().broot(), config};
  EXPECT_FALSE(daemon.run_rounds());
  EXPECT_EQ(daemon.journal_status(),
            core::JournalStatus::kFingerprintMismatch);
  EXPECT_EQ(daemon.current_map(), nullptr);
  std::remove(journal.c_str());
}

TEST_F(DaemonTest, MetricsExportCarriesDaemonAndServeSeries) {
  service::Daemon daemon{scenario(), scenario().broot(), fast_config(1)};
  ASSERT_TRUE(daemon.run_rounds());
  (void)daemon.handle(get("/block/10.1.2.3"));
  (void)daemon.handle(get("/healthz"));
  const std::string text = daemon.handle(get("/metrics")).body;
  for (const char* name :
       {"vp_daemon_state", "vp_daemon_map_age_seconds",
        "vp_daemon_rounds_completed_total", "vp_daemon_rounds_failed_total",
        "vp_daemon_rounds_watchdog_killed_total",
        "vp_serve_requests_total{endpoint=\"block\"}",
        "vp_serve_requests_total{endpoint=\"healthz\"}",
        "vp_serve_request_ms_bucket", "vp_serve_map_age_seconds_bucket"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------
// Serve-while-measuring: reader threads hammer every endpoint while the
// round loop measures and publishes. Run under TSan in CI; the assertion
// here is only that answers stay coherent (200/503, never torn).

TEST_F(DaemonTest, ConcurrentServingDuringMeasurementIsCoherent) {
  service::DaemonConfig config = fast_config(4);
  service::Daemon daemon{scenario(), scenario().broot(), config};

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> answered{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&daemon, &done, &answered, t] {
      const std::string paths[] = {"/block/10.0.0.1", "/healthz", "/map",
                                   "/drift", "/metrics"};
      net::HttpRequest request;
      request.method = "GET";
      while (!done.load(std::memory_order_relaxed)) {
        request.path = paths[static_cast<std::size_t>(t) % 5];
        const auto response = daemon.handle(request);
        EXPECT_TRUE(response.status == 200 || response.status == 503);
        if (response.status == 200 && request.path == "/map")
          EXPECT_FALSE(response.body.empty());
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  ASSERT_TRUE(daemon.run_rounds());
  done.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(daemon.status().state, service::MapState::kFresh);
}

TEST_F(DaemonTest, RequestStopWindsDownPromptly) {
  service::DaemonConfig config = fast_config(0);  // run until stopped
  config.cadence_ms = 10.0;
  service::Daemon daemon{scenario(), scenario().broot(), config};
  std::thread loop{[&daemon] { EXPECT_TRUE(daemon.run_rounds()); }};
  while (daemon.status().rounds_completed < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  daemon.request_stop();
  loop.join();
  // The in-flight round finished; nothing was torn down mid-publish.
  EXPECT_GE(daemon.status().rounds_completed, 2u);
  EXPECT_NE(daemon.current_map(), nullptr);
}

}  // namespace
}  // namespace vp
