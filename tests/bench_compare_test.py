#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py gate parsing.

The scale/serve gates are the only thing standing between a cache-thrashing
probe-path regression and a green CI run, so their parsing — absolute
counter bounds, same-run ratio gates, counter extraction from
google-benchmark JSON — gets pinned here. Run directly or via ctest
(label: unit).
"""
import importlib.util
import json
import os
import sys
import tempfile
import unittest

_TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "tools", "bench_compare.py")
_spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def result(name, real_time=1.0, time_unit="ms", **counters):
    """One google-benchmark result object."""
    obj = {"name": name, "run_name": name, "run_type": "iteration",
           "real_time": real_time, "time_unit": time_unit}
    obj.update(counters)
    return obj


def load(*benchmarks):
    """Round-trips benchmark objects through load_results via a temp file."""
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump({"benchmarks": list(benchmarks)}, f)
        path = f.name
    try:
        return bench_compare.load_results([path])
    finally:
        os.unlink(path)


class LoadResultsTest(unittest.TestCase):
    def test_user_counters_are_separated_from_known_fields(self):
        current = load(result("BM_ScaleProbeRound/6400000", 32000.0, "ms",
                              blocks_per_sec=200000.0,
                              table_bytes_per_as=48.5,
                              iterations=3))
        entry = current["BM_ScaleProbeRound/6400000"]
        self.assertEqual(entry["counters"],
                         {"blocks_per_sec": 200000.0,
                          "table_bytes_per_as": 48.5})
        self.assertNotIn("iterations", entry["counters"])

    def test_median_aggregate_wins_over_other_aggregates(self):
        mean = result("BM_X", 9.0)
        mean.update(run_type="aggregate", aggregate_name="mean",
                    name="BM_X_mean")
        median = result("BM_X", 5.0)
        median.update(run_type="aggregate", aggregate_name="median",
                      name="BM_X_median")
        current = load(mean, median)
        self.assertEqual(current["BM_X"]["real_time"], 5.0)

    def test_counter_of_handles_missing_bench_and_counter(self):
        current = load(result("BM_A", blocks_per_sec=7.0))
        self.assertEqual(
            bench_compare.counter_of(current, "BM_A", "blocks_per_sec"), 7.0)
        self.assertIsNone(
            bench_compare.counter_of(current, "BM_A", "nope"))
        self.assertIsNone(
            bench_compare.counter_of(current, "BM_missing", "blocks_per_sec"))


class ScaleGateTest(unittest.TestCase):
    def setUp(self):
        self.current = load(
            result("BM_ScaleProbeRound/120000", blocks_per_sec=500000.0),
            result("BM_ScaleProbeRound/6400000", blocks_per_sec=320000.0,
                   table_bytes_per_as=48.0))

    def test_ratio_gate_passes_and_fails_on_min_ratio(self):
        gate = {"numerator": "BM_ScaleProbeRound/6400000",
                "denominator": "BM_ScaleProbeRound/120000",
                "counter": "blocks_per_sec", "min_ratio": 0.6}
        rows = bench_compare.scale_gate_rows(self.current, {"probe": gate})
        self.assertEqual(len(rows), 1)
        name, desc, ok = rows[0]
        self.assertEqual(name, "probe")
        self.assertTrue(ok)  # 320000/500000 = 0.64 >= 0.6
        self.assertIn("0.64", desc)

        gate["min_ratio"] = 0.7
        [(_, _, ok)] = bench_compare.scale_gate_rows(self.current,
                                                     {"probe": gate})
        self.assertFalse(ok)

    def test_absolute_gate_min_and_max_bounds(self):
        gates = {
            "floor": {"bench": "BM_ScaleProbeRound/6400000",
                      "counter": "blocks_per_sec", "min_value": 300000},
            "ceiling": {"bench": "BM_ScaleProbeRound/6400000",
                        "counter": "table_bytes_per_as", "max_value": 64},
        }
        rows = {name: ok for name, _, ok
                in bench_compare.scale_gate_rows(self.current, gates)}
        self.assertTrue(rows["floor"])    # 320000 >= 300000
        self.assertTrue(rows["ceiling"])  # 48 <= 64

        gates["floor"]["min_value"] = 400000
        gates["ceiling"]["max_value"] = 32
        rows = {name: ok for name, _, ok
                in bench_compare.scale_gate_rows(self.current, gates)}
        self.assertFalse(rows["floor"])
        self.assertFalse(rows["ceiling"])

    def test_gate_skipped_when_bench_absent_or_denominator_zero(self):
        gates = {
            "absent": {"bench": "BM_NotRun", "counter": "blocks_per_sec",
                       "min_value": 1},
            "zero": {"numerator": "BM_ScaleProbeRound/6400000",
                     "denominator": "BM_Zero", "counter": "blocks_per_sec",
                     "min_ratio": 0.5},
        }
        current = dict(self.current)
        current["BM_Zero"] = {"real_time": 1.0, "time_unit": "ms",
                              "counters": {"blocks_per_sec": 0}}
        self.assertEqual(bench_compare.scale_gate_rows(current, gates), [])

    def test_repo_baseline_scale_gates_parse(self):
        # The committed baseline's own gates must stay in a shape this
        # script understands (a typo here silently disables the gate).
        baseline = os.path.join(os.path.dirname(_TOOL), os.pardir,
                                "bench", "baseline.json")
        with open(baseline) as f:
            doc = json.load(f)
        self.assertIn("scale_gates", doc)
        for name, gate in doc["scale_gates"].items():
            self.assertIn("counter", gate, name)
            if "bench" in gate:
                self.assertTrue("min_value" in gate or "max_value" in gate,
                                name)
            else:
                for key in ("numerator", "denominator", "min_ratio"):
                    self.assertIn(key, gate, name)


class CacheSpeedupTest(unittest.TestCase):
    def test_slow_fast_ratio_with_unit_conversion(self):
        current = load(result("BM_Slow", 2.0, "ms"),
                       result("BM_Fast", 500.0, "us"))
        rows = bench_compare.cache_speedups(
            current, {"gate": {"slow": "BM_Slow", "fast": "BM_Fast",
                               "min_ratio": 3.0}})
        [(name, ratio, need)] = rows
        self.assertAlmostEqual(ratio, 4.0)  # 2 ms / 500 us
        self.assertEqual(need, 3.0)

    def test_gate_skipped_when_either_side_missing(self):
        current = load(result("BM_Slow", 2.0, "ms"))
        self.assertEqual(
            bench_compare.cache_speedups(
                current, {"gate": {"slow": "BM_Slow", "fast": "BM_Gone",
                                   "min_ratio": 1.0}}),
            [])


if __name__ == "__main__":
    unittest.main()
