// Unit tests for the obs metrics registry: counter striping, histogram
// bucket edges (zero, max bound, overflow, NaN rejection), kind-mismatch
// detection, export goldens (JSON + Prometheus), and a concurrent
// hammering test that gives TSan something to chew on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace vp::obs {
namespace {

TEST(Counter, AddAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("vp_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("vp_test_total");
  Counter& b = reg.counter("vp_test_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Counter, DisabledRegistryDropsIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("vp_test_total");
  reg.set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Gauge, SetAddValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("vp_test_gauge");
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Histogram, BucketEdges) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vp_test_ms", std::vector<double>{1, 2, 5});
  // Prometheus `le` semantics: bucket counts observations <= bound.
  h.observe(0.0);   // -> le=1
  h.observe(1.0);   // exactly on a bound -> le=1
  h.observe(1.5);   // -> le=2
  h.observe(5.0);   // max bound, still le=5
  h.observe(6.0);   // past the last bound -> +Inf overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // le=1
  EXPECT_EQ(h.bucket(1), 1u);  // le=2
  EXPECT_EQ(h.bucket(2), 1u);  // le=5
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
}

TEST(Histogram, NanRejectedNotCounted) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vp_test_ms", std::vector<double>{1});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.nan_rejected(), 1u);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, RejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("vp_a_ms", std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("vp_b_ms", std::vector<double>{2, 1}),
               std::invalid_argument);
  EXPECT_THROW(
      reg.histogram("vp_c_ms",
                    std::vector<double>{
                        1, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("vp_test_total");
  EXPECT_THROW(reg.gauge("vp_test_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("vp_test_total", std::vector<double>{1}),
               std::logic_error);
}

TEST(Registry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("vp_z_total").add(1);
  reg.counter("vp_a_total").add(2);
  reg.gauge("vp_m_gauge").set(3);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "vp_a_total");
  EXPECT_EQ(snap.metrics[1].name, "vp_m_gauge");
  EXPECT_EQ(snap.metrics[2].name, "vp_z_total");
}

TEST(SpanTimer, RecordsOnceIdempotently) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vp_test_ms", std::vector<double>{1e9});
  {
    Span span{&h};
    const double ms = span.stop();
    EXPECT_GE(ms, 0.0);
    span.stop();  // second stop is a no-op
  }                // destructor must not double-record
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------
// Export goldens. Built from a hand-constructed registry so the expected
// text is exact and the round-trip stays reviewable.

Snapshot golden_snapshot() {
  MetricsRegistry reg;
  reg.counter("vp_probes_total").add(1234);
  reg.counter("vp_replies_total{site=\"LAX\"}").add(70);
  reg.counter("vp_replies_total{site=\"MIA\"}").add(30);
  reg.gauge("vp_load_ratio").set(0.75);
  Histogram& h = reg.histogram("vp_rtt_ms", std::vector<double>{10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(500);
  return reg.snapshot();
}

TEST(Export, PrometheusGolden) {
  const std::string expected =
      "# TYPE vp_load_ratio gauge\n"
      "vp_load_ratio 0.75\n"
      "# TYPE vp_probes_total counter\n"
      "vp_probes_total 1234\n"
      "# TYPE vp_replies_total counter\n"
      "vp_replies_total{site=\"LAX\"} 70\n"
      "vp_replies_total{site=\"MIA\"} 30\n"
      "# TYPE vp_rtt_ms histogram\n"
      "vp_rtt_ms_bucket{le=\"10\"} 1\n"
      "vp_rtt_ms_bucket{le=\"100\"} 2\n"
      "vp_rtt_ms_bucket{le=\"+Inf\"} 3\n"
      "vp_rtt_ms_sum 555\n"
      "vp_rtt_ms_count 3\n";
  EXPECT_EQ(to_prometheus(golden_snapshot()), expected);
}

TEST(Export, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"vp_load_ratio\", \"type\": \"gauge\", "
      "\"value\": 0.75},\n"
      "    {\"name\": \"vp_probes_total\", \"type\": \"counter\", "
      "\"value\": 1234},\n"
      "    {\"name\": \"vp_replies_total{site=\\\"LAX\\\"}\", "
      "\"type\": \"counter\", \"value\": 70},\n"
      "    {\"name\": \"vp_replies_total{site=\\\"MIA\\\"}\", "
      "\"type\": \"counter\", \"value\": 30},\n"
      "    {\"name\": \"vp_rtt_ms\", \"type\": \"histogram\", "
      "\"count\": 3, \"sum\": 555, \"min\": 5, \"max\": 500, "
      "\"nan_rejected\": 0, \"buckets\": [{\"le\": 10, \"count\": 1}, "
      "{\"le\": 100, \"count\": 2}, {\"le\": \"+Inf\", \"count\": 3}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_json(golden_snapshot()), expected);
}

TEST(Export, FileExtensionPicksFormat) {
  const std::string dir = ::testing::TempDir();
  const Snapshot snap = golden_snapshot();
  ASSERT_TRUE(write_metrics_file(dir + "/m.prom", snap));
  ASSERT_TRUE(write_metrics_file(dir + "/m.json", snap));
  EXPECT_FALSE(write_metrics_file("/nonexistent-vp-dir/m.json", snap));
}

// ---------------------------------------------------------------------
// Concurrency: many threads hammering one registry — handle creation,
// increments, observes, and snapshots all racing. Run under TSan in CI.

TEST(Registry, ConcurrentHammering) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("vp_shared_total").add();
        reg.counter("vp_thread_total{t=\"" + std::to_string(t % 3) + "\"}")
            .add();
        reg.gauge("vp_gauge").set(static_cast<double>(i));
        reg.histogram("vp_hist_ms", std::vector<double>{1, 10, 100})
            .observe(static_cast<double>(i % 200));
        if (i % 500 == 0) (void)reg.snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("vp_shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("vp_hist_ms", std::vector<double>{1, 10, 100})
                .count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace vp::obs
