#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/verfploeter.hpp"

namespace vp::core {
namespace {

/// One shared small scenario; building it is the expensive part.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 77;
    config.scale = 0.08;  // ~10k blocks
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
    ProbeConfig probe;
    probe.measurement_id = 500;
    round_ = new RoundResult(
        scenario_->verfploeter().run(*routes_, {probe, 0}));
  }
  static void TearDownTestSuite() {
    delete round_;
    routes_.reset();
    delete scenario_;
  }
  static const analysis::Scenario& scenario() { return *scenario_; }
  static const bgp::RoutingTable& routes() { return *routes_; }
  static const RoundResult& round() { return *round_; }

 private:
  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
  static RoundResult* round_;
};

analysis::Scenario* CoreTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> CoreTest::routes_;
RoundResult* CoreTest::round_ = nullptr;

TEST_F(CoreTest, ProbesEveryHitlistEntryOnce) {
  EXPECT_EQ(round().map.probes_sent, scenario().hitlist().size());
  EXPECT_EQ(round().map.blocks_probed, scenario().hitlist().size());
}

TEST_F(CoreTest, MappedBlocksAreSubsetOfProbed) {
  EXPECT_LE(round().map.mapped_blocks(), round().map.blocks_probed);
  EXPECT_GT(round().map.mapped_blocks(), round().map.blocks_probed / 3);
  for (const auto& [block, site] : round().map.entries()) {
    EXPECT_NE(scenario().topo().block_info(block), nullptr);
    EXPECT_GE(site, 0);
    EXPECT_LT(site, static_cast<int>(scenario().broot().sites.size()));
  }
}

TEST_F(CoreTest, MeasuredCatchmentsMatchGroundTruth) {
  // The headline validation: Verfploeter discovers catchments without
  // reading the routing table, yet agrees with it everywhere.
  for (const auto& [block, site] : round().map.entries()) {
    EXPECT_EQ(site,
              scenario().internet().ground_truth_site(routes(), block, 0))
        << block.to_string();
  }
}

TEST_F(CoreTest, CleaningStatsAreConsistent) {
  const CleaningStats& s = round().map.cleaning;
  EXPECT_EQ(s.kept, round().map.mapped_blocks());
  EXPECT_EQ(s.raw_replies, s.kept + s.dropped());
  EXPECT_EQ(s.wrong_id, 0u);  // single round, no stale traffic
  EXPECT_GT(s.duplicates, 0u);
  EXPECT_GT(s.unsolicited, 0u);
  EXPECT_GT(s.late, 0u);
  // Duplicates are a small percentage of replies (paper: ~2%).
  EXPECT_LT(static_cast<double>(s.duplicates),
            0.06 * static_cast<double>(s.raw_replies));
}

TEST_F(CoreTest, RawRepliesPerSiteSumToTotal) {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : round().raw_replies_per_site) sum += n;
  EXPECT_EQ(sum + round().map.cleaning.malformed,
            round().map.cleaning.raw_replies);
}

TEST_F(CoreTest, ProbingDurationMatchesRate) {
  // 10k pps over ~10k probes: ~1 second of virtual time.
  const double expected =
      static_cast<double>(round().map.probes_sent) / 10'000.0;
  EXPECT_NEAR(round().probing_duration.seconds(), expected, expected * 0.01);
}

TEST_F(CoreTest, RoundIsDeterministic) {
  ProbeConfig probe;
  probe.measurement_id = 500;
  const RoundResult again =
      scenario().verfploeter().run(routes(), {probe, 0});
  EXPECT_EQ(again.map.mapped_blocks(), round().map.mapped_blocks());
  for (const auto& [block, site] : round().map.entries())
    EXPECT_EQ(again.map.site_of(block), site);
}

TEST_F(CoreTest, DifferentRoundsDifferSlightly) {
  ProbeConfig probe;
  probe.measurement_id = 501;
  const RoundResult other =
      scenario().verfploeter().run(routes(), {probe, 1});
  // Churn means the two rounds map a slightly different set.
  std::size_t differing = 0;
  for (const auto& [block, site] : round().map.entries())
    if (!other.map.contains(block)) ++differing;
  EXPECT_GT(differing, 0u);
  EXPECT_LT(differing, round().map.mapped_blocks() / 10);
}

TEST_F(CoreTest, ExtraTargetsImproveCoverage) {
  ProbeConfig probe;
  probe.measurement_id = 600;
  probe.extra_targets_per_block = 3;
  const RoundResult retried =
      scenario().verfploeter().run(routes(), {probe, 0});
  EXPECT_GT(retried.map.mapped_blocks(), round().map.mapped_blocks());
  EXPECT_GT(retried.map.probes_sent, round().map.probes_sent * 3);
}

TEST_F(CoreTest, PerSiteCountsSumToMapped) {
  const auto counts =
      round().map.per_site_counts(scenario().broot().sites.size());
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  EXPECT_EQ(sum, round().map.mapped_blocks());
  EXPECT_GT(counts[0], counts[1]);  // LAX dominates
}

TEST_F(CoreTest, FractionToSitesSumsToOne) {
  const double lax = round().map.fraction_to(0);
  const double mia = round().map.fraction_to(1);
  EXPECT_NEAR(lax + mia, 1.0, 1e-9);
  EXPECT_GT(lax, 0.5);
}

TEST_F(CoreTest, CampaignProducesDistinctRounds) {
  ProbeConfig probe;
  probe.measurement_id = 700;
  const auto rounds = Campaign{scenario().verfploeter(), routes()}
                          .probe(probe)
                          .rounds(4)
                          .interval(util::SimTime::from_minutes(15))
                          .run();
  ASSERT_EQ(rounds.size(), 4u);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].map.measurement_id, 700u + r);
    EXPECT_EQ(rounds[r].started.usec,
              util::SimTime::from_minutes(15).usec * static_cast<int>(r));
    EXPECT_GT(rounds[r].map.mapped_blocks(), 0u);
  }
}

TEST_F(CoreTest, ConcurrentCampaignMatchesSequentialInRoundOrder) {
  // Rounds completing out of order under concurrency > 1 must still land
  // in round order and match the sequential run exactly — this is the
  // determinism the campaign journal's resume guarantee rests on.
  ProbeConfig probe;
  probe.measurement_id = 800;
  const auto make = [&](unsigned concurrency) {
    return Campaign{scenario().verfploeter(), routes()}
        .probe(probe)
        .rounds(5)
        .interval(util::SimTime::from_minutes(15))
        .concurrency(concurrency)
        .run();
  };
  const auto sequential = make(1);
  for (const unsigned concurrency : {2u, 5u}) {
    const auto concurrent = make(concurrency);
    ASSERT_EQ(concurrent.size(), sequential.size());
    for (std::size_t r = 0; r < sequential.size(); ++r) {
      // Round order, not completion order.
      EXPECT_EQ(concurrent[r].map.measurement_id, 800u + r);
      EXPECT_EQ(concurrent[r].map.mapped_blocks(),
                sequential[r].map.mapped_blocks());
      EXPECT_EQ(concurrent[r].map.cleaning.raw_replies,
                sequential[r].map.cleaning.raw_replies);
      EXPECT_EQ(concurrent[r].map.cleaning.kept,
                sequential[r].map.cleaning.kept);
      EXPECT_EQ(concurrent[r].raw_replies_per_site,
                sequential[r].raw_replies_per_site);
      for (const auto& [block, site] : sequential[r].map.entries())
        EXPECT_EQ(concurrent[r].map.site_of(block), site);
      for (const auto& [block, rtt] : sequential[r].rtt_ms) {
        ASSERT_TRUE(concurrent[r].rtt_ms.count(block));
        EXPECT_EQ(concurrent[r].rtt_ms.at(block), rtt);
      }
    }
  }
}

TEST(Collector, CountsMalformedPackets) {
  Collector collector{0};
  const std::vector<std::uint8_t> garbage{0x01, 0x02, 0x03};
  collector.receive(garbage, {});
  EXPECT_EQ(collector.malformed(), 1u);
  EXPECT_TRUE(collector.records().empty());
}

TEST(Collector, RecordsValidReply) {
  net::ProbePayload payload;
  payload.measurement_id = 9;
  payload.tx_time_usec = 1000;
  payload.original_target = *net::Ipv4Address::parse("1.2.3.4");
  const auto request = net::build_echo_request(
      *net::Ipv4Address::parse("192.0.2.1"), payload.original_target, 9, 1,
      payload);
  const auto ip = net::Ipv4Header::parse(request.data);
  const auto icmp = net::IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(
          net::Ipv4Header::kSize));
  const auto reply = net::build_echo_reply(*ip, *icmp, payload.original_target);

  Collector collector{1};
  collector.receive(reply.data, util::SimTime::from_seconds(2));
  ASSERT_EQ(collector.records().size(), 1u);
  const ReplyRecord& record = collector.records()[0];
  EXPECT_EQ(record.site, 1);
  EXPECT_EQ(record.measurement_id, 9u);
  EXPECT_EQ(record.source, payload.original_target);
  EXPECT_EQ(record.tx_time.usec, 1000);
  EXPECT_DOUBLE_EQ(record.arrival.seconds(), 2.0);
}

TEST(CatchmentMap, SiteOfUnknownBlock) {
  CatchmentMap map;
  EXPECT_EQ(map.site_of(net::Block24{1}), anycast::kUnknownSite);
  map.set(net::Block24{1}, 0);
  EXPECT_EQ(map.site_of(net::Block24{1}), 0);
  EXPECT_TRUE(map.contains(net::Block24{1}));
  // First write wins (duplicate replies never overwrite).
  map.set(net::Block24{1}, 1);
  EXPECT_EQ(map.site_of(net::Block24{1}), 0);
}

}  // namespace
}  // namespace vp::core
