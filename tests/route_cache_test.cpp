// The catchment-resolution cache's equivalence contract: precomputed
// block->site tables (bgp::CatchmentResolver) and memoized route
// computation (bgp::RouteCache) are pure materializations — every answer,
// and every downstream catchment CSV, is byte-identical with the caches
// on or off, at any thread count, clean or fault-injected. The
// concurrency tests here run under TSan in CI (the shared cache and the
// resolver's call_once are hammered from concurrent rounds).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "bgp/catchment_resolver.hpp"
#include "bgp/route_cache.hpp"
#include "bgp/routing_engine.hpp"
#include "core/dataset_io.hpp"
#include "core/verfploeter.hpp"
#include "sim/fault_injector.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

/// Restores the global catchment-precomputation switch on scope exit so a
/// failing test cannot poison its neighbors.
class CacheGuard {
 public:
  ~CacheGuard() { bgp::set_catchment_cache_enabled(true); }
};

// ---- property: cached and uncached resolution agree on every block ------

class ResolutionEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ResolutionEquivalence, EveryBlockEveryRound) {
  CacheGuard guard;
  analysis::ScenarioConfig config;
  config.seed = GetParam();
  config.scale = 0.05;  // ~6k blocks
  const analysis::Scenario scenario{config};

  for (const auto* deployment : {&scenario.broot(), &scenario.tangled()}) {
    const auto routes_ptr = scenario.route(*deployment);
    const auto& routes = *routes_ptr;
    const sim::FlipModel& flips = scenario.internet().flips();

    // Build the resolver, then collect the cached answers.
    bgp::set_catchment_cache_enabled(true);
    flips.warm(routes);
    const bgp::CatchmentResolver* resolver = routes.catchment_resolver();
    ASSERT_NE(resolver, nullptr);
    ASSERT_NE(flips.resolver_for(routes), nullptr);

    for (const topology::BlockInfo& info : scenario.topo().blocks()) {
      // The stable table must fold exactly what site_for_block computes.
      EXPECT_EQ(resolver->stable_site(info.block),
                routes.site_for_block(info.block));
      // And flappy membership must be the flip model's exact decision.
      EXPECT_EQ(resolver->flappy(info.block),
                flips.is_flappy(routes, info.block));
      for (const std::uint32_t round : {0u, 1u, 7u}) {
        bgp::set_catchment_cache_enabled(true);
        const auto cached = flips.site_in_round(routes, info.block, round);
        bgp::set_catchment_cache_enabled(false);
        const auto uncached = flips.site_in_round(routes, info.block, round);
        ASSERT_EQ(cached, uncached)
            << deployment->name << " block " << info.block.to_string()
            << " round " << round << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolutionEquivalence,
                         ::testing::Values(42, 1337));

// ---- the RouteCache itself ----------------------------------------------

class RouteCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 42;
    config.scale = 0.05;
    scenario_ = new analysis::Scenario(config);
  }
  static void TearDownTestSuite() { delete scenario_; }
  static const analysis::Scenario& scenario() { return *scenario_; }

 private:
  static analysis::Scenario* scenario_;
};

analysis::Scenario* RouteCacheTest::scenario_ = nullptr;

TEST_F(RouteCacheTest, RepeatedSweepsHitTheCache) {
  const auto before = scenario().route_cache().stats();
  const auto first = scenario().route(scenario().broot());
  const auto again = scenario().route(scenario().broot());
  EXPECT_EQ(first.get(), again.get())
      << "same (deployment, epoch) must share one table";
  const auto other_epoch =
      scenario().route(scenario().broot(), analysis::kAprilEpoch);
  EXPECT_NE(first.get(), other_epoch.get());
  const auto after = scenario().route_cache().stats();
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_GE(after.misses, before.misses + 1);
  EXPECT_GT(after.bytes, 0u);
}

TEST_F(RouteCacheTest, TablesOutliveTemporaryDeployments) {
  std::shared_ptr<const bgp::RoutingTable> table;
  {
    // The prepended deployment dies at the end of this scope; the cache
    // must have copied it (RoutingTable points into its deployment).
    table = scenario().route(scenario().broot().with_prepend("MIA", 2));
  }
  ASSERT_EQ(table->deployment().sites.size(), 2u);
  EXPECT_EQ(table->deployment().sites[1].prepend, 2);
  EXPECT_GE(table->site_for_pop(0, 0), -1);
}

TEST_F(RouteCacheTest, DisabledCacheComputesFreshAndRetainsNothing) {
  bgp::RouteCache cache{scenario().topo(), /*enabled=*/false};
  const auto a = cache.routes(scenario().broot());
  const auto b = cache.routes(scenario().broot());
  EXPECT_NE(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  // Identical content even though freshly computed.
  for (const topology::BlockInfo& info : scenario().topo().blocks())
    ASSERT_EQ(a->site_for_block(info.block), b->site_for_block(info.block));
}

TEST_F(RouteCacheTest, ClearDropsEntriesButOutstandingTablesSurvive) {
  bgp::RouteCache cache{scenario().topo()};
  const auto table = cache.routes(scenario().tangled());
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(table->deployment().name, "Tangled");  // still alive
}

// ---- whole-campaign byte-equality, cache on vs off ----------------------

class CampaignEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 99;
    config.scale = 0.05;
    scenario_ = new analysis::Scenario(config);
  }
  static void TearDownTestSuite() { delete scenario_; }

  /// One measurement round serialized to CSV. `cached` routes through the
  /// scenario's RouteCache with catchment precomputation on; uncached
  /// recomputes the table from scratch and resolves per probe. `tile`
  /// sets the engine's block-range tile size (0 = auto-sized for LLC).
  static std::string run_csv(unsigned threads, bool cached,
                             const sim::FaultInjector* faults = nullptr,
                             std::uint32_t tile = 0) {
    bgp::set_catchment_cache_enabled(cached);
    std::shared_ptr<const bgp::RoutingTable> shared;
    std::optional<bgp::RoutingTable> fresh;
    const bgp::RoutingTable* routes = nullptr;
    if (cached) {
      shared = scenario_->route(scenario_->broot());
      routes = shared.get();
    } else {
      bgp::RoutingOptions options;
      options.tiebreak_salt =
          util::hash_combine(scenario_->config().seed, analysis::kMayEpoch);
      fresh.emplace(
          *bgp::RoutingEngine{scenario_->topo(), scenario_->broot(), options}
               .full());
      routes = &*fresh;
    }
    core::RoundSpec spec;
    spec.probe.measurement_id = 7300;
    spec.round = 3;
    spec.threads = threads;
    spec.faults = faults;
    spec.tile_entries = tile;
    const core::RoundResult result =
        scenario_->verfploeter().run(*routes, spec);
    bgp::set_catchment_cache_enabled(true);
    std::ostringstream csv;
    core::write_catchment_csv(csv, result, scenario_->broot());
    return csv.str();
  }

  static analysis::Scenario* scenario_;
};

analysis::Scenario* CampaignEquivalence::scenario_ = nullptr;

TEST_F(CampaignEquivalence, CsvByteIdenticalCacheOnOrOff) {
  CacheGuard guard;
  const std::string baseline = run_csv(1, /*cached=*/false);
  ASSERT_FALSE(baseline.empty());
  // The tile dimension crosses the cache dimension on purpose: tiling
  // reorders when the resolver is consulted, so every (threads, cache,
  // tile) combination must still serialize the same bytes.
  for (const unsigned threads : {1u, 4u, 8u}) {
    for (const std::uint32_t tile : {0u, 1u, 65536u}) {
      EXPECT_EQ(run_csv(threads, true, nullptr, tile), baseline)
          << "cached, threads=" << threads << ", tile=" << tile;
      EXPECT_EQ(run_csv(threads, false, nullptr, tile), baseline)
          << "uncached, threads=" << threads << ", tile=" << tile;
    }
  }
}

TEST_F(CampaignEquivalence, CsvByteIdenticalUnderFaults) {
  CacheGuard guard;
  const sim::FaultInjector injector{sim::FaultPlan::from_seed(23)};
  const std::string baseline = run_csv(1, false, &injector);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 4u, 8u}) {
    for (const std::uint32_t tile : {0u, 1u, 65536u}) {
      EXPECT_EQ(run_csv(threads, true, &injector, tile), baseline)
          << "cached, threads=" << threads << ", tile=" << tile;
      EXPECT_EQ(run_csv(threads, false, &injector, tile), baseline)
          << "uncached, threads=" << threads << ", tile=" << tile;
    }
  }
}

// ---- concurrency: many rounds, one shared cache (TSan target) -----------

TEST_F(CampaignEquivalence, ConcurrentRoundsShareCacheAndResolvers) {
  CacheGuard guard;
  bgp::set_catchment_cache_enabled(true);
  const auto& scenario = *scenario_;
  const auto blocks = scenario.topo().blocks();
  const sim::FlipModel& flips = scenario.internet().flips();

  // Serial reference answers for four deployments (distinct cache keys).
  std::vector<anycast::Deployment> deployments;
  for (int p = 0; p < 4; ++p)
    deployments.push_back(scenario.broot().with_prepend("MIA", p));
  std::vector<std::vector<anycast::SiteId>> expected(deployments.size());
  for (std::size_t d = 0; d < deployments.size(); ++d) {
    const auto routes = scenario.route(deployments[d]);
    for (std::size_t i = 0; i < blocks.size(); i += 7)
      expected[d].push_back(
          flips.site_in_round(*routes, blocks[i].block, 1));
  }

  // Hammer a FRESH cache (its tables have unbuilt resolvers): 8 threads
  // race routes() (shared mutex, same-key dedup) and site_in_round
  // (call_once resolver build — two threads per deployment key).
  bgp::RouteCache cache{scenario.topo()};
  bgp::RoutingOptions options;
  options.tiebreak_salt =
      util::hash_combine(scenario.config().seed, analysis::kMayEpoch);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      const std::size_t d = t % deployments.size();
      const auto routes = cache.routes(deployments[d], options);
      std::size_t k = 0;
      for (std::size_t i = 0; i < blocks.size(); i += 7, ++k) {
        if (flips.site_in_round(*routes, blocks[i].block, 1) !=
            expected[d][k])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- >=32 sites: wide-deployment regression -----------------------------

/// Builds a 1-AS topology plus a 40-site deployment, with the AS's
/// routing state hand-built so its tied candidates span all 40 sites.
/// Before the std::bitset fix, distinct_sites shifted `1u << site` (UB
/// past 31) and the transient picker truncated the visible list at 32.
struct WideDeployment {
  topology::Topology topo;
  anycast::Deployment deployment;
  topology::AsId as = 0;

  static constexpr int kSites = 40;
  static constexpr int kBlocks = 200;

  WideDeployment() {
    topology::AsNode node;
    node.asn = topology::AsNumber{65000};
    node.name = "wide";
    node.pops.push_back(topology::Pop{0, geo::LatLon{0.0, 0.0}});
    node.multipath = true;
    as = topo.add_as(std::move(node));
    const auto prefix_index =
        topo.announce(as, *net::Prefix::parse("10.1.0.0/16"));
    for (int b = 0; b < kBlocks; ++b) {
      topo.add_block(net::Block24::containing(net::Ipv4Address{
                         10, 1, static_cast<std::uint8_t>(b), 0}),
                     as, 0, prefix_index);
    }
    topo.seal();

    deployment.name = "wide-40";
    deployment.service_prefix = *net::Prefix::parse("192.0.2.0/24");
    deployment.measurement_address = *net::Ipv4Address::parse("192.0.2.1");
    deployment.origin_asn = topology::AsNumber{65001};
    for (int s = 0; s < kSites; ++s) {
      anycast::AnycastSite site;
      site.code = "S" + std::to_string(s);
      site.upstream = topology::AsNumber{65000};
      site.location = geo::LatLon{0.0, static_cast<double>(s)};
      deployment.sites.push_back(site);
    }
  }

  /// Routing state whose tied candidates cover sites [0, site_count).
  bgp::RoutingTable routes(int site_count) const {
    std::vector<bgp::AsRoutingState> states(topo.as_count());
    for (int s = 0; s < site_count; ++s) {
      bgp::CandidateRoute cand;
      cand.site = static_cast<anycast::SiteId>(s);
      cand.path_len = 2;
      cand.cls = bgp::RouteClass::kCustomer;
      cand.egress_pop = 0;
      cand.tiebreak = static_cast<std::uint64_t>(s);
      states[as].candidates.push_back(cand);
    }
    return bgp::RoutingTable{topo, deployment, std::move(states)};
  }
};

TEST(WideDeploymentTest, DistinctSitesCountsPast32) {
  const WideDeployment wide;
  const auto routes = wide.routes(WideDeployment::kSites);
  EXPECT_EQ(routes.distinct_sites(wide.as),
            static_cast<std::size_t>(WideDeployment::kSites));
}

TEST(WideDeploymentTest, TransientPickerReachesAll40Sites) {
  CacheGuard guard;
  const WideDeployment wide;
  // One candidate only: blocks resolve stably to site 0, so every
  // transient event (rate 1.0) must pick among the other 39 sites.
  const auto routes = wide.routes(1);
  sim::FlipConfig config;
  config.transient_rate = 1.0;
  const sim::FlipModel flips{config};

  std::set<anycast::SiteId> cached_picks;
  for (const topology::BlockInfo& info : wide.topo.blocks()) {
    for (const std::uint32_t round : {0u, 1u, 2u, 3u}) {
      bgp::set_catchment_cache_enabled(true);
      const auto cached = flips.site_in_round(routes, info.block, round);
      bgp::set_catchment_cache_enabled(false);
      const auto uncached = flips.site_in_round(routes, info.block, round);
      ASSERT_EQ(cached, uncached)
          << "block " << info.block.to_string() << " round " << round;
      ASSERT_NE(cached, anycast::kUnknownSite);
      cached_picks.insert(cached);
    }
  }
  // 800 uniform draws over 39 sites miss a given site with p ~ 1e-9; the
  // pre-fix 32-entry cap made sites 33..39 unreachable.
  EXPECT_GT(*cached_picks.rbegin(), 32);
  EXPECT_GE(cached_picks.size(), 38u);
}

}  // namespace
}  // namespace vp
