// Paper-scale smoke test (ctest label: scale): generate a 500k-AS / 2M
// block Internet, route a generated anycast deployment over it, and
// build the hitlist — end to end, in one process. This is the memory
// acceptance test for the SoA routing table and arena RIB allocation:
// before those, RoutingEngine::full() at this size did not fit the CI
// container.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "anycast/deployment.hpp"
#include "bgp/routing_engine.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"
#include "topology/scale_generator.hpp"

namespace vp {
namespace {

TEST(ScaleSmoke, HalfMillionAsInternetEndToEnd) {
  topology::ScaleConfig config;
  config.seed = 42;
  config.as_count = 500'000;
  config.target_blocks = 2'000'000;
  const topology::Topology topo = generate_scale_topology(config);
  ASSERT_EQ(topo.as_count(), 500'000u);
  EXPECT_NEAR(static_cast<double>(topo.block_count()), 2e6, 4e5);

  // Connectivity sweep over the full graph.
  std::vector<bool> seen(topo.as_count(), false);
  std::queue<topology::AsId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const topology::AsId v = frontier.front();
    frontier.pop();
    for (const auto& link : topo.as_at(v).links) {
      if (!seen[link.neighbor]) {
        seen[link.neighbor] = true;
        ++reached;
        frontier.push(link.neighbor);
      }
    }
  }
  EXPECT_EQ(reached, topo.as_count());

  const auto deployment = anycast::make_generated(topo, 9, config.seed);
  ASSERT_EQ(deployment.sites.size(), 9u);
  bgp::RoutingEngine engine{topo, deployment};
  EXPECT_TRUE(engine.incremental_supported());
  const auto routes = engine.full();
  ASSERT_NE(routes, nullptr);

  // Every block resolves to a real site: the graph is connected and
  // valley-free export always leaves stubs a provider path to the core.
  std::size_t mapped = 0;
  for (const auto& info : topo.blocks())
    if (routes->site_for_block(info) != anycast::kUnknownSite) ++mapped;
  EXPECT_EQ(mapped, topo.block_count());

  sim::InternetConfig internet_config;
  const sim::InternetSim internet{topo, internet_config};
  const auto hitlist = hitlist::Hitlist::build(
      topo, internet.responsiveness(), {}, /*threads=*/0);
  // ~2% of blocks are deliberately missing from the hitlist.
  EXPECT_NEAR(static_cast<double>(hitlist.size()),
              0.98 * static_cast<double>(topo.block_count()),
              0.01 * static_cast<double>(topo.block_count()));
}

}  // namespace
}  // namespace vp
