// Shared plumbing for the forked-binary daemon harnesses
// (daemon_soak_test.cpp, daemon_chaos_test.cpp): spawn the real vpd
// under chaos environment hooks, discover its ephemeral port, poll its
// endpoints over a real socket, and shut it down with SIGTERM the way an
// operator (or systemd) would.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace vp::daemon_test {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

/// Extracts round r's catchment section from a `vpctl campaign --out`
/// file ("# round N" separators) — the bytes the daemon's /map endpoint
/// must reproduce exactly when serving round r.
inline std::string round_section(const std::string& csv, unsigned round) {
  const std::string marker = "# round " + std::to_string(round) + "\n";
  const std::size_t begin = csv.find(marker);
  if (begin == std::string::npos) return {};
  const std::size_t body = begin + marker.size();
  const std::size_t end = csv.find("# round ", body);
  return csv.substr(body,
                    end == std::string::npos ? std::string::npos : end - body);
}

/// Forks vpd with the given argv and environment extras, stdout/stderr
/// silenced. The caller owns the pid (terminate() below).
inline pid_t spawn_vpd(const char* vpd_path,
                       const std::vector<std::string>& args,
                       const std::map<std::string, std::string>& env = {}) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const auto& [key, value] : env)
      ::setenv(key.c_str(), value.c_str(), 1);
    const int null_fd = ::open("/dev/null", O_WRONLY);
    ::dup2(null_fd, 1);
    ::dup2(null_fd, 2);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(vpd_path));
    for (const std::string& arg : args)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(vpd_path, argv.data());
    ::_exit(127);
  }
  return pid;
}

/// Blocking run of a command line under `env` extras; returns the exit
/// code (-1 on signal death).
inline int run_blocking(const std::string& binary, const std::string& args,
                        const std::string& env = "") {
  const std::string cmd = env + binary + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// SIGTERM + reap: the daemon's clean-shutdown contract is exit code 0.
inline int terminate_vpd(pid_t pid) {
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Waits for the daemon's --port-file to appear and parses the port.
inline std::uint16_t wait_port(const std::string& port_file,
                               double timeout_s = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string text = read_file(port_file);
    if (!text.empty()) {
      const long port = std::atol(text.c_str());
      if (port > 0 && port < 65536) return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  return 0;
}

struct HttpReply {
  int status = 0;
  std::string body;
};

/// One blocking GET against the daemon; empty status 0 on connect failure.
inline HttpReply http_get(std::uint16_t port, const std::string& target) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return reply;
  }
  std::string response;
  char buffer[8192];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  const std::size_t space = response.find(' ');
  if (space != std::string::npos)
    reply.status = std::atoi(response.c_str() + space + 1);
  const std::size_t split = response.find("\r\n\r\n");
  if (split != std::string::npos) reply.body = response.substr(split + 4);
  return reply;
}

/// Polls `target` until its body contains `needle`; returns the matching
/// body (empty on timeout — callers assert on the contents).
inline std::string poll_for(std::uint16_t port, const std::string& target,
                            const std::string& needle,
                            double timeout_s = 120.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const HttpReply reply = http_get(port, target);
    if (reply.body.find(needle) != std::string::npos) return reply.body;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
  return {};
}

}  // namespace vp::daemon_test
