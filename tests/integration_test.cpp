// End-to-end integration tests: the paper's headline claims, verified at
// small scale against the simulator's ground truth.
#include <gtest/gtest.h>

#include "analysis/catchment_diff.hpp"
#include "analysis/coverage.hpp"
#include "analysis/divisions.hpp"
#include "analysis/load_analysis.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stability.hpp"
#include "core/campaign.hpp"

namespace vp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 42;
    config.scale = 0.3;  // ~36k blocks
    scenario_ = new analysis::Scenario(config);
    broot_routes_ = scenario_->route(scenario_->broot(), analysis::kMayEpoch);
    core::ProbeConfig probe;
    probe.measurement_id = 1;
    broot_round_ = new core::RoundResult(
        scenario_->verfploeter().run(*broot_routes_, {probe, 0}));
  }
  static void TearDownTestSuite() {
    delete broot_round_;
    broot_routes_.reset();
    delete scenario_;
  }
  static const analysis::Scenario& scenario() { return *scenario_; }
  static const bgp::RoutingTable& broot_routes() { return *broot_routes_; }
  static const core::CatchmentMap& broot_map() { return broot_round_->map; }

 private:
  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> broot_routes_;
  static core::RoundResult* broot_round_;
};

analysis::Scenario* IntegrationTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> IntegrationTest::broot_routes_;
core::RoundResult* IntegrationTest::broot_round_ = nullptr;

// --- §5.3 / Table 4: coverage ------------------------------------------------

TEST_F(IntegrationTest, VerfploeterCoverageDwarfsAtlas) {
  const auto campaign = scenario().atlas().measure(
      broot_routes(), scenario().internet().flips(), 0);
  const auto report = analysis::compute_coverage(
      scenario().topo(), scenario().atlas(), campaign, broot_map());
  // The 430x headline. At this small scale the Atlas deployment is
  // clamped to a statistical minimum of ~24 probes, which compresses the
  // ratio; the full-scale bench lands near 430x.
  EXPECT_GT(report.coverage_ratio(), 120.0);
  EXPECT_LT(report.coverage_ratio(), 900.0);
  // Most Atlas blocks are also seen by Verfploeter (paper: 77%).
  EXPECT_GT(report.atlas_overlap_fraction(), 0.55);
  EXPECT_LT(report.atlas_overlap_fraction(), 0.95);
  // Both systems have blind spots the other covers.
  EXPECT_GT(report.atlas_unique_blocks, 0u);
  EXPECT_GT(report.verf_unique_blocks, 1000u);
  // A handful of mapped blocks cannot be geolocated (Table 4's 678).
  EXPECT_GT(report.verf_blocks_no_location, 0u);
  EXPECT_EQ(report.verf_blocks_geolocatable + report.verf_blocks_no_location,
            report.verf_blocks_responding);
}

TEST_F(IntegrationTest, ResponseRateMatchesHitlistStudies) {
  const double rate =
      static_cast<double>(broot_map().mapped_blocks()) /
      static_cast<double>(broot_map().blocks_probed);
  // Paper: 55% (consistent with 56-59% from the hitlist studies [17]).
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.65);
}

// --- §5.1 / Figure 2: geography ------------------------------------------------

TEST_F(IntegrationTest, AtlasIsBlindWhereVerfploeterIsNot) {
  // China: Verfploeter maps plenty of blocks, Atlas has near-zero VPs.
  std::size_t verf_cn = 0;
  for (const auto& [block, site] : broot_map().entries()) {
    const auto geo_record = scenario().topo().geodb().lookup(block);
    if (geo_record && geo_record->country[0] == 'C' &&
        geo_record->country[1] == 'N')
      ++verf_cn;
  }
  std::size_t atlas_cn = 0;
  for (const auto& vp : scenario().atlas().vps()) {
    const auto geo_record = scenario().topo().geodb().lookup(vp.block);
    if (geo_record && geo_record->country[0] == 'C' &&
        geo_record->country[1] == 'N')
      ++atlas_cn;
  }
  EXPECT_GT(verf_cn, 500u);
  EXPECT_LT(atlas_cn, 3u);
}

// --- §5.4-5.5 / Tables 5-6: load ------------------------------------------------

TEST_F(IntegrationTest, TrafficCoverageMatchesTable5Shape) {
  const auto load = scenario().broot_load(0x20170515);
  const auto coverage = analysis::compute_traffic_coverage(load, broot_map());
  // Paper: 87.1% of querying blocks mapped, carrying 82.4% of queries —
  // i.e. unmappable blocks carry *more* load per block.
  EXPECT_GT(coverage.mapped_block_fraction(), 0.75);
  EXPECT_LT(coverage.mapped_block_fraction(), 0.95);
  EXPECT_LT(coverage.mapped_query_fraction(),
            coverage.mapped_block_fraction());
}

TEST_F(IntegrationTest, LoadWeightingImprovesPrediction) {
  // The paper's central §5.5 result: load-weighted Verfploeter predicts
  // the observed traffic split better than raw block counts.
  const auto load = scenario().broot_load(0x20170515);
  const auto predicted = analysis::predict_load(
      load, broot_map(), scenario().broot().sites.size());
  const auto actual = analysis::actual_load(
      load, broot_routes(), scenario().internet().flips(), 0);

  const double block_based = broot_map().fraction_to(0);
  const double load_based = predicted.fraction_to(0);
  const double truth = actual.fraction_to(0);

  EXPECT_LT(std::abs(load_based - truth), std::abs(block_based - truth))
      << "blocks " << block_based << " load " << load_based << " truth "
      << truth;
  EXPECT_LT(std::abs(load_based - truth), 0.08);
}

TEST_F(IntegrationTest, UnmappableBlocksFollowMappedProportions) {
  // §5.5's first observation: traffic from Verfploeter-unmappable blocks
  // splits across sites roughly like mapped traffic does.
  const auto load = scenario().broot_load(0x20170515);
  analysis::LoadSplit unmapped_truth;
  unmapped_truth.site_queries.assign(2, 0.0);
  for (const auto& bl : load.blocks()) {
    if (broot_map().contains(bl.block)) continue;
    const auto site = scenario().internet().flips().site_in_round(
        broot_routes(), bl.block, 0);
    if (site >= 0)
      unmapped_truth.site_queries[static_cast<std::size_t>(site)] +=
          bl.daily_queries;
  }
  // At small simulation scales the unmapped set is dominated by a few
  // ICMP-dark giant ASes, so the agreement is looser than the paper's
  // full-Internet 0.2%.
  const auto mapped = analysis::predict_load(load, broot_map(), 2);
  EXPECT_NEAR(unmapped_truth.fraction_to(0), mapped.fraction_to(0), 0.15);
}

TEST_F(IntegrationTest, StalePredictionsAreWorse) {
  // §5.5 long-duration: April catchments + April load predict May's
  // actual split worse than same-day data does.
  const auto april_routes_ptr = scenario().route(scenario().broot(), analysis::kAprilEpoch);
  const auto& april_routes = *april_routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 90;
  const auto april_map =
      scenario().verfploeter().run(april_routes, {probe, 40}).map;
  const auto april_load = scenario().broot_load(0x20170412);
  const auto may_load = scenario().broot_load(0x20170515);

  const double truth =
      analysis::actual_load(may_load, broot_routes(),
                            scenario().internet().flips(), 0)
          .fraction_to(0);
  const double fresh =
      analysis::predict_load(may_load, broot_map(), 2).fraction_to(0);
  const double stale =
      analysis::predict_load(april_load, april_map, 2).fraction_to(0);
  // At reduced scale both errors are dominated by unmapped-set noise, so
  // we only require that fresh data is not meaningfully worse; the
  // full-scale bench (bench_table6_pct_lax) shows the clean ordering.
  EXPECT_LE(std::abs(fresh - truth), std::abs(stale - truth) + 0.02);
}

// --- §6.1 / Figure 5: prepending -------------------------------------------------

TEST_F(IntegrationTest, PrependingShiftsCatchmentMonotonically) {
  double previous = -1.0;
  for (const auto& [site, amount] :
       std::vector<std::pair<const char*, int>>{
           {"LAX", 1}, {"LAX", 0}, {"MIA", 1}, {"MIA", 2}, {"MIA", 3}}) {
    const auto deployment = scenario().broot().with_prepend(site, amount);
    const auto routes_ptr = scenario().route(deployment, analysis::kAprilEpoch);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id = 200 + amount;
    const auto map =
        scenario().verfploeter().run(routes, {probe, 0}).map;
    const double lax = map.fraction_to(0);
    EXPECT_GE(lax, previous - 1e-9);
    previous = lax;
  }
}

TEST_F(IntegrationTest, PrependingLeavesAStickyResidue) {
  // Even at MIA+3, AMPATH's own customer cone stays at MIA (§6.1: "likely
  // customers of MIA's ISP, or ASes that ignore prepending").
  const auto deployment = scenario().broot().with_prepend("MIA", 3);
  const auto routes_ptr = scenario().route(deployment, analysis::kAprilEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 300;
  const auto map = scenario().verfploeter().run(routes, {probe, 0}).map;
  const double mia = map.fraction_to(1);
  EXPECT_GT(mia, 0.005);
  EXPECT_LT(mia, 0.20);
}

// --- §6.2 / Figures 7-8: divisions ------------------------------------------------

TEST_F(IntegrationTest, LargeAsesSplitAcrossTangledSites) {
  const auto routes_ptr = scenario().route(scenario().tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 400;
  const auto map = scenario().verfploeter().run(routes, {probe, 0}).map;
  const auto report = analysis::analyze_divisions(scenario().topo(), map);
  // Paper: ~12.7% of ASes are served by more than one site.
  EXPECT_GT(report.multi_site_fraction(), 0.02);
  EXPECT_LT(report.multi_site_fraction(), 0.35);

  // ASes seen at more sites announce more prefixes (Figure 7's trend):
  // compare the 1-site and the highest-populated multi-site bucket.
  double single_mean = 0, multi_sum = 0, multi_n = 0;
  for (const auto& bucket : report.buckets) {
    if (bucket.sites_seen == 1) single_mean = bucket.mean_prefixes;
    if (bucket.sites_seen >= 2) {
      multi_sum += bucket.mean_prefixes * static_cast<double>(bucket.as_count);
      multi_n += static_cast<double>(bucket.as_count);
    }
  }
  ASSERT_GT(multi_n, 0.0);
  EXPECT_GT(multi_sum / multi_n, single_mean);

  // Figure 8's trend: short prefixes see more sites than long ones.
  const auto rows = analysis::analyze_prefix_sites(scenario().topo(), map);
  ASSERT_GE(rows.size(), 4u);
  double short_mean = 0, long_mean = 0;
  int short_n = 0, long_n = 0;
  for (const auto& row : rows) {
    if (row.prefix_length <= 17 && row.prefix_count >= 3) {
      short_mean += row.mean_sites;
      ++short_n;
    }
    if (row.prefix_length >= 23) {
      long_mean += row.mean_sites;
      ++long_n;
    }
  }
  ASSERT_GT(short_n, 0);
  ASSERT_GT(long_n, 0);
  EXPECT_GT(short_mean / short_n, long_mean / long_n);
}

// --- §6.3 / Figure 9, Table 7: stability ---------------------------------------------

TEST_F(IntegrationTest, AnycastIsOverwhelminglyStable) {
  const auto routes_ptr = scenario().route(scenario().tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 1000;
  const auto rounds = core::Campaign{scenario().verfploeter(), routes}
                          .probe(probe)
                          .rounds(8)
                          .interval(util::SimTime::from_minutes(15))
                          .run();
  const auto report = analysis::analyze_stability(scenario().topo(), rounds);

  const double stable = report.median_stable();
  const double flipped = report.median_flipped();
  const double churn = report.median_to_nr();
  ASSERT_GT(stable, 0.0);
  // Paper Figure 9: ~95% stable, ~2.4% to-NR, ~0.1% flips.
  EXPECT_GT(stable / (stable + flipped + churn), 0.90);
  EXPECT_LT(flipped / stable, 0.01);
  EXPECT_GT(flipped, 0.0);
  EXPECT_GT(report.median_from_nr(), 0.0);

  // Table 7: flips concentrate; the top AS should be Chinanet-like.
  ASSERT_FALSE(report.by_as.empty());
  const auto& top = report.by_as.front();
  double top_share = static_cast<double>(top.flips) /
                     static_cast<double>(report.total_flips);
  EXPECT_GT(top_share, 0.25);
  EXPECT_TRUE(scenario()
                  .topo()
                  .as_at(scenario().topo().find_as(
                      topology::AsNumber{top.asn}))
                  .load_balanced)
      << top.name;
}

// --- failure injection: site withdrawal (the paper's DDoS-response story) --------

TEST_F(IntegrationTest, WithdrawnSiteFailsOverCompletely) {
  // Withdraw MIA (e.g. it is being overwhelmed): every block must land
  // at LAX in the next scan, and the diff attributes the move correctly.
  anycast::Deployment degraded = scenario().broot();
  degraded.sites[1].enabled = false;
  const auto routes_ptr = scenario().route(degraded, analysis::kMayEpoch);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 5000;
  const auto after = scenario().verfploeter().run(routes, {probe, 0});

  const auto counts = after.map.per_site_counts(2);
  EXPECT_EQ(counts[1], 0u) << "withdrawn site still attracting traffic";
  EXPECT_EQ(counts[0], after.map.mapped_blocks());
  // Coverage does not collapse: the same blocks respond, just elsewhere.
  EXPECT_NEAR(static_cast<double>(after.map.mapped_blocks()),
              static_cast<double>(broot_map().mapped_blocks()),
              0.02 * static_cast<double>(broot_map().mapped_blocks()));

  const auto load = scenario().broot_load(0x20170515);
  const auto diff = analysis::diff_catchments(scenario().topo(), broot_map(),
                                              after.map, load);
  ASSERT_FALSE(diff.flows.empty());
  EXPECT_EQ(diff.flows[0].from, 1);  // MIA ->
  EXPECT_EQ(diff.flows[0].to, 0);    // -> LAX
  // Everything that moved came out of MIA and into LAX.
  for (const auto& flow : diff.flows) EXPECT_EQ(flow.to, 0);
}

TEST_F(IntegrationTest, SingleSiteDeploymentCatchesEverything) {
  anycast::Deployment solo = scenario().broot();
  solo.sites.erase(solo.sites.begin() + 1);
  const auto routes_ptr = scenario().route(solo);
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 5001;
  const auto map = scenario().verfploeter().run(routes, {probe, 0}).map;
  EXPECT_NEAR(map.fraction_to(0), 1.0, 1e-9);
  EXPECT_GT(map.mapped_blocks(), broot_map().mapped_blocks() / 2);
}

// --- Tangled: all visible sites get traffic; hidden one does not -----------------

TEST_F(IntegrationTest, TangledSitesHaveSaneCatchments) {
  const auto routes_ptr = scenario().route(scenario().tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 2000;
  const auto map = scenario().verfploeter().run(routes, {probe, 0}).map;
  const auto counts =
      map.per_site_counts(scenario().tangled().sites.size());
  const auto gru = scenario().tangled().site_by_code("GRU");
  ASSERT_TRUE(gru.has_value());
  std::size_t nonempty = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (s == static_cast<std::size_t>(*gru)) {
      EXPECT_EQ(counts[s], 0u) << "hidden site must attract nothing";
    } else {
      nonempty += counts[s] > 0;
    }
  }
  EXPECT_GE(nonempty, 7u);
}

}  // namespace
}  // namespace vp
