// Chaos harness for verfploeterd: kill-and-restart the real vpd binary
// at every journal write point, wedge rounds into the watchdog, inject
// total probe loss, and take the journal directory away — and after each
// fault assert the one invariant the daemon exists for: the served map
// is always the last good round's map (or its journal-resumed
// equivalent), byte-identical to what an uninterrupted offline `vpctl
// campaign` run produces for the same round.
#include <gtest/gtest.h>

#include "daemon_test_util.hpp"

namespace vp {
namespace {

using namespace vp::daemon_test;

constexpr int kKilledExit = 86;  // VP_JOURNAL_CRASH_AT's _exit code
constexpr unsigned kRounds = 4;

std::string test_dir() {
  static const std::string dir = [] {
    std::string d =
        "/tmp/vp_daemon_chaos_" + std::to_string(static_cast<long>(getpid()));
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

const std::string kCommon = "--scale 0.03 --seed 5";

/// Rounds are pure functions of their spec (which does not depend on the
/// round budget), so one uninterrupted 4-round vpctl run yields the
/// ground-truth bytes for every chaos scenario below, whatever its
/// --rounds value.
const std::string& baseline_csv() {
  static const std::string text = [] {
    const std::string csv = test_dir() + "/base.csv";
    EXPECT_EQ(run_blocking(VPCTL_PATH,
                           "campaign " + kCommon + " --rounds " +
                               std::to_string(kRounds) + " --out " + csv),
              0);
    return read_file(csv);
  }();
  return text;
}

std::vector<std::string> serving_args(unsigned rounds,
                                      const std::string& port_file,
                                      const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args = {"--scale",  "0.03",
                                   "--seed",   "5",
                                   "--rounds", std::to_string(rounds),
                                   "--listen", "0",
                                   "--port-file", port_file};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

/// Spawns a serving vpd, waits for `needle` on /healthz, byte-compares
/// /map against the baseline's `expect_round` section, and SIGTERMs it.
/// Every chaos scenario funnels through here: whatever the fault, the
/// served bytes must be a good round's bytes.
void expect_serves_round(const std::vector<std::string>& args,
                         const std::map<std::string, std::string>& env,
                         const std::string& port_file,
                         const std::string& needle, unsigned expect_round,
                         const std::vector<std::string>& extra_needles = {}) {
  const pid_t pid = spawn_vpd(VPD_PATH, args, env);
  const std::uint16_t port = wait_port(port_file);
  ASSERT_GT(port, 0) << "daemon never wrote its port file";

  const std::string health = poll_for(port, "/healthz", needle);
  ASSERT_FALSE(health.empty())
      << "healthz never matched: " << needle;
  for (const std::string& extra : extra_needles)
    EXPECT_NE(health.find(extra), std::string::npos) << health;

  const HttpReply map = http_get(port, "/map");
  EXPECT_EQ(map.status, 200);
  EXPECT_EQ(map.body, round_section(baseline_csv(), expect_round));

  EXPECT_EQ(terminate_vpd(pid), 0);
  std::remove(port_file.c_str());
}

TEST(DaemonChaos, KillAtEveryJournalWritePointThenResumeServesLastGood) {
  // A 4-round campaign makes 5 journal writes (manifest + one append per
  // round). Crash at each of them — leaving behind a missing manifest, a
  // torn manifest, an empty campaign, a torn first append, and a torn
  // last append — and every restart must still converge on round 3's
  // exact bytes.
  ASSERT_FALSE(baseline_csv().empty());
  for (int k = 1; k <= static_cast<int>(kRounds) + 1; ++k) {
    SCOPED_TRACE("crash at journal write " + std::to_string(k));
    const std::string journal =
        test_dir() + "/crash_" + std::to_string(k) + ".journal";
    EXPECT_EQ(run_blocking(VPD_PATH,
                           kCommon + " --rounds " + std::to_string(kRounds) +
                               " --journal " + journal +
                               " --exit-after-rounds",
                           "VP_JOURNAL_CRASH_AT=" + std::to_string(k) + " "),
              kKilledExit);

    const std::string port_file =
        test_dir() + "/crash_" + std::to_string(k) + ".port";
    expect_serves_round(
        serving_args(kRounds, port_file, {"--journal", journal, "--resume"}),
        {}, port_file, "\"map_round\":" + std::to_string(kRounds - 1),
        kRounds - 1, {"\"state\":\"fresh\""});
    std::remove(journal.c_str());
  }
}

TEST(DaemonChaos, WatchdogExhaustedRetriesKeepsServingDegraded) {
  // Round 1 wedges far past the watchdog deadline with no retries left:
  // the round fails, the daemon degrades — and keeps serving round 0's
  // map, untouched.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string port_file = test_dir() + "/wedge0.port";
  expect_serves_round(
      serving_args(2, port_file,
                   {"--watchdog-ms", "300", "--round-retries", "0"}),
      {{"VP_DAEMON_WEDGE_ROUND", "1"}, {"VP_DAEMON_WEDGE_MS", "30000"}},
      port_file, "\"state\":\"degraded\"", 0,
      {"\"reason\":\"watchdog-killed\"", "\"map_round\":0",
       "\"watchdog_kills\":1"});
}

TEST(DaemonChaos, WatchdogKillRecoversToFreshOnRetry) {
  // Same wedge, but one retry in the budget: the wedge fires once per
  // process, so the retry attempt runs clean and the daemon ends Fresh
  // on round 1 — a watchdog kill is an incident, not an outage.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string port_file = test_dir() + "/wedge1.port";
  const pid_t pid = spawn_vpd(
      VPD_PATH,
      serving_args(2, port_file,
                   {"--watchdog-ms", "300", "--round-retries", "1"}),
      {{"VP_DAEMON_WEDGE_ROUND", "1"}, {"VP_DAEMON_WEDGE_MS", "30000"}});
  const std::uint16_t port = wait_port(port_file);
  ASSERT_GT(port, 0);

  const std::string health = poll_for(port, "/healthz", "\"map_round\":1");
  ASSERT_FALSE(health.empty());
  EXPECT_NE(health.find("\"state\":\"fresh\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"watchdog_kills\":1"), std::string::npos) << health;

  // The kill and the recovery are both visible in the metrics endpoint.
  const HttpReply metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("vp_daemon_rounds_watchdog_killed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("vp_daemon_state 1"), std::string::npos);

  const HttpReply map = http_get(port, "/map");
  EXPECT_EQ(map.body, round_section(baseline_csv(), 1));

  EXPECT_EQ(terminate_vpd(pid), 0);
  std::remove(port_file.c_str());
}

TEST(DaemonChaos, EmptyRoundNeverReplacesTheServedMap) {
  // Round 1 completes but maps zero blocks (100% probe loss). A round
  // that "succeeds" with an empty map must be classified as failed:
  // round 0's map keeps serving.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string port_file = test_dir() + "/loss.port";
  expect_serves_round(
      serving_args(2, port_file, {"--round-retries", "0"}),
      {{"VP_DAEMON_LOSS_ROUND", "1"}}, port_file, "\"state\":\"degraded\"", 0,
      {"\"reason\":\"empty-round\"", "\"map_round\":0",
       "\"rounds_failed\":1"});
}

TEST(DaemonChaos, UnopenableJournalDirDegradesButServesAndMeasures) {
  // The journal directory does not exist: the journal can never open.
  // Disks fill; maps survive — the daemon degrades (journal-io) but both
  // measuring and serving continue to the final round.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string port_file = test_dir() + "/nojournal.port";
  expect_serves_round(
      serving_args(2, port_file,
                   {"--journal", test_dir() + "/no-such-dir/j.bin"}),
      {}, port_file, "\"map_round\":1", 1,
      {"\"state\":\"degraded\"", "\"reason\":\"journal-io\"",
       "\"journal\":\"io-error\""});
}

TEST(DaemonChaos, JournalFailureMidCampaignDegradesButKeepsMeasuring) {
  // The journal goes unwritable after round 0's append (frame 3 of
  // manifest + three rounds fails): the daemon degrades but round 2
  // still runs and its map is served — measurement never depends on
  // journal health.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string journal = test_dir() + "/fail_mid.journal";
  const std::string port_file = test_dir() + "/fail_mid.port";
  expect_serves_round(
      serving_args(3, port_file, {"--journal", journal}),
      {{"VP_JOURNAL_FAIL_AT", "3"}}, port_file, "\"map_round\":2", 2,
      {"\"state\":\"degraded\"", "\"reason\":\"journal-io\""});
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace vp
