#include <gtest/gtest.h>

#include <unordered_set>

#include "atlas/atlas.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "sim/internet.hpp"
#include "topology/generator.hpp"

namespace vp::atlas {
namespace {

class AtlasTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::TopologyConfig config;
    config.seed = 13;
    config.target_blocks = 10'000;
    topo_ = new topology::Topology(topology::generate_topology(config));
    internet_ = new sim::InternetSim(*topo_, sim::InternetConfig{});
    AtlasConfig atlas_config;
    atlas_config.vp_count = 400;
    platform_ =
        new AtlasPlatform(*topo_, internet_->responsiveness(), atlas_config);
    deployment_ = new anycast::Deployment(anycast::make_broot(*topo_));
    routes_ = new bgp::RoutingTable(
        *bgp::RoutingEngine{*topo_, *deployment_}.full());
  }
  static void TearDownTestSuite() {
    delete routes_;
    delete deployment_;
    delete platform_;
    delete internet_;
    delete topo_;
  }
  static const topology::Topology& topo() { return *topo_; }
  static const sim::InternetSim& internet() { return *internet_; }
  static const AtlasPlatform& platform() { return *platform_; }
  static const bgp::RoutingTable& routes() { return *routes_; }

 private:
  static const topology::Topology* topo_;
  static sim::InternetSim* internet_;
  static const AtlasPlatform* platform_;
  static const anycast::Deployment* deployment_;
  static const bgp::RoutingTable* routes_;
};

const topology::Topology* AtlasTest::topo_ = nullptr;
sim::InternetSim* AtlasTest::internet_ = nullptr;
const AtlasPlatform* AtlasTest::platform_ = nullptr;
const anycast::Deployment* AtlasTest::deployment_ = nullptr;
const bgp::RoutingTable* AtlasTest::routes_ = nullptr;

TEST_F(AtlasTest, DeploysRequestedVpCount) {
  EXPECT_EQ(platform().vps().size(), 400u);
}

TEST_F(AtlasTest, VpsLiveInRealBlocks) {
  for (const Vp& vp : platform().vps()) {
    const auto* info = topo().block_info(vp.block);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->as_id, vp.as_id);
  }
}

TEST_F(AtlasTest, EuropeanSkewIsPresent) {
  // The platform's defining bias (paper §5.4, [8]): Europe hosts roughly
  // half the probes even though it has well under a third of the blocks.
  std::size_t europe_vps = 0;
  for (const Vp& vp : platform().vps()) {
    const auto geo_record = topo().geodb().lookup(vp.block);
    if (geo_record && geo_record->continent == geo::Continent::kEurope)
      ++europe_vps;
  }
  const double vp_share = static_cast<double>(europe_vps) /
                          static_cast<double>(platform().vps().size());
  std::size_t europe_blocks = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    const auto geo_record = topo().geodb().lookup(info.block);
    if (geo_record && geo_record->continent == geo::Continent::kEurope)
      ++europe_blocks;
  }
  const double block_share = static_cast<double>(europe_blocks) /
                             static_cast<double>(topo().block_count());
  EXPECT_GT(vp_share, 0.40);
  EXPECT_GT(vp_share, 1.7 * block_share);
}

TEST_F(AtlasTest, CampaignCountsAreConsistent) {
  const Campaign campaign =
      platform().measure(routes(), internet().flips(), 0);
  EXPECT_EQ(campaign.considered, platform().vps().size());
  std::size_t responding = 0;
  for (const auto site : campaign.vp_site)
    if (site >= 0) ++responding;
  EXPECT_EQ(campaign.responding, responding);
  EXPECT_LE(campaign.responding_blocks, campaign.responding);
  EXPECT_LE(campaign.considered_blocks, campaign.considered);
}

TEST_F(AtlasTest, SomeProbesAreDown) {
  const Campaign campaign =
      platform().measure(routes(), internet().flips(), 0);
  const auto down = campaign.considered - campaign.responding;
  // ~4.6% down rate (Table 4's 455/9807), with slack for small samples.
  EXPECT_GT(down, 0u);
  EXPECT_LT(down, campaign.considered / 8);
}

TEST_F(AtlasTest, VpsAgreeWithGroundTruth) {
  const Campaign campaign =
      platform().measure(routes(), internet().flips(), 0);
  const auto vps = platform().vps();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    if (campaign.vp_site[i] < 0) continue;
    EXPECT_EQ(campaign.vp_site[i],
              internet().flips().site_in_round(routes(), vps[i].block, 0));
  }
}

TEST_F(AtlasTest, FractionsAndCountsAgree) {
  const Campaign campaign =
      platform().measure(routes(), internet().flips(), 0);
  const auto counts = campaign.per_site_counts(2);
  const double lax = campaign.fraction_to(0);
  EXPECT_NEAR(lax, static_cast<double>(counts[0]) /
                       static_cast<double>(counts[0] + counts[1]),
              1e-9);
}

TEST_F(AtlasTest, DownProbesVaryByRound) {
  const Campaign a = platform().measure(routes(), internet().flips(), 0);
  const Campaign b = platform().measure(routes(), internet().flips(), 1);
  // The same probe should not be deterministically down forever.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.vp_site.size(); ++i) {
    if ((a.vp_site[i] < 0) != (b.vp_site[i] < 0)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(AtlasTest, MostVpBlocksArePingResponsive) {
  // Calibrates Table 4's "unique" row: ~77% of Atlas blocks are also seen
  // by Verfploeter, so most (not all) VP blocks must answer pings.
  std::size_t responsive = 0;
  for (const Vp& vp : platform().vps())
    if (internet().responsiveness().ever_responds(vp.block)) ++responsive;
  const double fraction = static_cast<double>(responsive) /
                          static_cast<double>(platform().vps().size());
  EXPECT_GT(fraction, 0.60);
  EXPECT_LT(fraction, 0.92);
}

TEST_F(AtlasTest, DeterministicDeployment) {
  AtlasConfig config;
  config.vp_count = 400;
  const AtlasPlatform again{topo(), internet().responsiveness(), config};
  ASSERT_EQ(again.vps().size(), platform().vps().size());
  for (std::size_t i = 0; i < again.vps().size(); i += 17)
    EXPECT_EQ(again.vps()[i].block, platform().vps()[i].block);
}

}  // namespace
}  // namespace vp::atlas
