// Cross-seed robustness: the simulation's headline shapes are properties
// of the model, not of one lucky seed. For seeds {42, 43, 1337} a
// Scenario must reproduce the paper's coverage and stability bands
// (Table 4: ~55% hitlist response; §6.3/Figure 9: ~99.9% of VPs keep
// their site between rounds, our flip model leaves >97% at small scale),
// and rebuilding the same seed must reproduce the same bits.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/verfploeter.hpp"

namespace vp::analysis {
namespace {

core::RoundResult one_round(const Scenario& scenario, std::uint32_t round) {
  const auto routes_ptr = scenario.route(scenario.broot());
  const auto& routes = *routes_ptr;
  core::RoundSpec spec;
  spec.probe.measurement_id = 600 + round;
  spec.round = round;
  return scenario.verfploeter().run(routes, spec);
}

TEST(ScenarioSeeds, CoverageAndStabilityHoldAcrossSeeds) {
  for (const std::uint64_t seed : {42ull, 43ull, 1337ull}) {
    ScenarioConfig config;
    config.seed = seed;
    config.scale = 0.05;
    const Scenario scenario{config};
    const auto routes_ptr = scenario.route(scenario.broot());
    const auto& routes = *routes_ptr;

    core::ProbeConfig probe;
    probe.measurement_id = 700;
    const auto rounds = core::Campaign{scenario.verfploeter(), routes}
                            .probe(probe)
                            .rounds(3)
                            .interval(util::SimTime::from_minutes(15))
                            .run();

    // Coverage: the paper's ~55% hitlist response rate (Table 4), with
    // slack for the small topology.
    for (const core::RoundResult& round : rounds) {
      const double coverage =
          static_cast<double>(round.map.mapped_blocks()) /
          static_cast<double>(round.map.blocks_probed);
      EXPECT_GT(coverage, 0.40) << "seed " << seed;
      EXPECT_LT(coverage, 0.75) << "seed " << seed;
    }

    // Stability: between consecutive rounds, blocks mapped in both stay
    // with their site for the overwhelming majority (paper §6.3).
    for (std::size_t r = 1; r < rounds.size(); ++r) {
      std::uint64_t common = 0, stable = 0;
      for (const auto& [block, site] : rounds[r].map.entries()) {
        const anycast::SiteId before = rounds[r - 1].map.site_of(block);
        if (before == anycast::kUnknownSite) continue;
        ++common;
        if (before == site) ++stable;
      }
      ASSERT_GT(common, 0u) << "seed " << seed;
      EXPECT_GT(static_cast<double>(stable) / static_cast<double>(common),
                0.97)
          << "seed " << seed << " round " << r;
    }

    // Round-to-round churn in which blocks respond at all stays in the
    // Figure 9 band (~2.4% go dark per round, about as many return).
    const double appear_or_vanish = static_cast<double>(
        rounds[0].map.mapped_blocks() + rounds[1].map.mapped_blocks());
    std::uint64_t overlap = 0;
    for (const auto& [block, site] : rounds[1].map.entries())
      if (rounds[0].map.contains(block)) ++overlap;
    const double churn =
        (appear_or_vanish - 2.0 * static_cast<double>(overlap)) /
        appear_or_vanish;
    EXPECT_LT(churn, 0.10) << "seed " << seed;
  }
}

TEST(ScenarioSeeds, SameSeedRebuildsIdenticalResults) {
  for (const std::uint64_t seed : {42ull, 1337ull}) {
    ScenarioConfig config;
    config.seed = seed;
    config.scale = 0.04;
    const Scenario first{config};
    const Scenario second{config};
    const auto a = one_round(first, 2);
    const auto b = one_round(second, 2);
    EXPECT_EQ(a.map.entries(), b.map.entries()) << "seed " << seed;
    EXPECT_EQ(a.map.cleaning.kept, b.map.cleaning.kept) << "seed " << seed;
    EXPECT_EQ(a.rtt_ms, b.rtt_ms) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vp::analysis
