// Sharded-determinism suite for the scale generator (ISSUE: the emitted
// topology must be bit-identical for every thread count and shard size,
// and any shard must be regenerable in isolation).
//
// The structural digest (topology/topo_io.hpp) is the comparison unit: it
// folds every integer quantity of the graph — ASes, links, prefixes,
// blocks, geo coverage — so two topologies with equal digests are
// structurally identical. Floating-point geo jitter is excluded from the
// digest by design (libm last-ulp variance across hosts), but within one
// process identical draws produce identical doubles, which the
// plan-equality helper checks exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"
#include "topology/scale_generator.hpp"
#include "topology/topo_io.hpp"
#include "topology/topology.hpp"

namespace vp {
namespace {

using topology::AsPlan;
using topology::ScaleConfig;
using topology::ScaleGenerator;
using topology::Topology;

ScaleConfig small_config(std::uint64_t seed) {
  ScaleConfig config;
  config.seed = seed;
  config.as_count = 400;
  config.target_blocks = 3'500;
  config.transit_count = 8;
  return config;
}

void expect_plans_equal(const AsPlan& a, const AsPlan& b) {
  EXPECT_EQ(a.node.asn.value, b.node.asn.value);
  EXPECT_EQ(a.node.tier, b.node.tier);
  EXPECT_EQ(a.node.name, b.node.name);
  EXPECT_EQ(a.node.load_balanced, b.node.load_balanced);
  EXPECT_EQ(a.node.multipath, b.node.multipath);
  EXPECT_EQ(a.node.flap_scale, b.node.flap_scale);
  EXPECT_EQ(a.node.icmp_response_scale, b.node.icmp_response_scale);
  ASSERT_EQ(a.node.pops.size(), b.node.pops.size());
  for (std::size_t p = 0; p < a.node.pops.size(); ++p) {
    EXPECT_EQ(a.node.pops[p].center_id, b.node.pops[p].center_id);
    // Same process, same draws: the jittered coordinates must be
    // bit-equal, not merely close.
    EXPECT_EQ(a.node.pops[p].location.lat, b.node.pops[p].location.lat);
    EXPECT_EQ(a.node.pops[p].location.lon, b.node.pops[p].location.lon);
  }
  EXPECT_EQ(a.prefix_lens, b.prefix_lens);
  EXPECT_EQ(a.block_demand, b.block_demand);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t e = 0; e < a.edges.size(); ++e) {
    EXPECT_EQ(a.edges[e].peer, b.edges[e].peer);
    EXPECT_EQ(a.edges[e].rel, b.edges[e].rel);
    EXPECT_EQ(a.edges[e].local_pop, b.edges[e].local_pop);
    EXPECT_EQ(a.edges[e].remote_pop, b.edges[e].remote_pop);
  }
}

// The tentpole claim: for any thread count and any shard size, the
// generator emits the same topology bit for bit. 10 seeds x {1,2,8}
// threads x {1,16,257} shard sizes, each compared against the
// default-sharding single-thread reference by structural digest.
TEST(GeneratorDeterminism, DigestInvariantAcrossThreadsAndShards) {
  const unsigned kThreads[] = {1, 2, 8};
  const std::uint32_t kShardSizes[] = {1, 16, 257};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScaleConfig reference = small_config(seed);
    reference.threads = 1;
    const std::uint64_t want =
        topology::structural_digest(generate_scale_topology(reference));
    for (const unsigned threads : kThreads) {
      for (const std::uint32_t shard_size : kShardSizes) {
        ScaleConfig config = small_config(seed);
        config.threads = threads;
        config.shard_size = shard_size;
        EXPECT_EQ(want,
                  topology::structural_digest(generate_scale_topology(config)))
            << "seed " << seed << " threads " << threads << " shard_size "
            << shard_size;
      }
    }
  }
}

// Distinct seeds must actually produce distinct Internets — a digest
// that ignores the seed would make the invariance test above vacuous.
TEST(GeneratorDeterminism, SeedsProduceDistinctTopologies) {
  const std::uint64_t a =
      topology::structural_digest(generate_scale_topology(small_config(1)));
  const std::uint64_t b =
      topology::structural_digest(generate_scale_topology(small_config(2)));
  EXPECT_NE(a, b);
}

// Communication-free shard planning: one shard planned in isolation is
// bit-identical to its slice of a full plan — no draw anywhere depends
// on another shard's draws.
TEST(GeneratorDeterminism, ShardPlannedInIsolationMatchesFullRun) {
  ScaleConfig config = small_config(7);
  config.shard_size = 64;
  const ScaleGenerator gen{config};
  ASSERT_GT(gen.shard_count(), 2u);
  const std::uint32_t shard = gen.shard_count() / 2;
  const std::vector<AsPlan> isolated = gen.plan_shard(shard);
  ASSERT_EQ(isolated.size(), 64u);
  for (std::size_t i = 0; i < isolated.size(); ++i) {
    const auto v = static_cast<topology::AsId>(shard * 64 + i);
    expect_plans_equal(isolated[i], gen.plan_as(v));
  }
}

// The parallel hitlist build must splice to exactly the sequential
// result, entry for entry (paper-scale builds run sharded; every
// downstream consumer assumes the order is the block order).
TEST(GeneratorDeterminism, HitlistIdenticalAcrossThreadCounts) {
  const Topology topo = generate_scale_topology(small_config(3));
  sim::InternetConfig internet_config;
  const sim::InternetSim internet{topo, internet_config};
  const hitlist::HitlistConfig hitlist_config;
  const auto reference = hitlist::Hitlist::build(
      topo, internet.responsiveness(), hitlist_config, 1);
  ASSERT_GT(reference.size(), 1000u);
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = hitlist::Hitlist::build(
        topo, internet.responsiveness(), hitlist_config, threads);
    ASSERT_EQ(reference.size(), parallel.size()) << threads << " threads";
    EXPECT_EQ(reference.crc32(), parallel.crc32()) << threads << " threads";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference.entries()[i].block, parallel.entries()[i].block);
      ASSERT_EQ(reference.entries()[i].target, parallel.entries()[i].target);
    }
  }
}

// Serialization survives a round trip with the digest intact — what
// `vpctl gen --out` / `--load` rely on.
TEST(GeneratorDeterminism, SerializeRoundTripPreservesDigest) {
  const Topology topo = generate_scale_topology(small_config(5));
  const std::string bytes = topology::serialize_topology(topo);
  Topology restored;
  std::string error;
  ASSERT_TRUE(topology::deserialize_topology(bytes, restored, error))
      << error;
  EXPECT_EQ(topology::structural_digest(topo),
            topology::structural_digest(restored));
  EXPECT_EQ(topo.as_count(), restored.as_count());
  EXPECT_EQ(topo.block_count(), restored.block_count());
}

// Corruption anywhere in the image must be rejected, not deserialized.
TEST(GeneratorDeterminism, CorruptImageIsRejected) {
  const Topology topo = generate_scale_topology(small_config(5));
  std::string bytes = topology::serialize_topology(topo);
  bytes[bytes.size() / 2] ^= 0x40;
  Topology restored;
  std::string error;
  EXPECT_FALSE(topology::deserialize_topology(bytes, restored, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace vp
