// Kill-point crash harness: drives the real vpctl binary through a
// 6-round journaled campaign, crashing it at every journal write point
// (via the VP_JOURNAL_CRASH_AT hook in core/journal.cpp), then resumes
// and asserts the final catchment CSV is byte-identical to an
// uninterrupted run. A 6-round campaign has 7 write points (manifest +
// 6 round records); the hook's cut position cycles with k, so the sweep
// covers crash-before-write, torn mid-frame writes, and crash-after-
// durable-write at thread counts {1,4} and concurrency {1,2}.
//
// Also exercises the vpctl-level refusal exit codes: 4 for a journal
// written by a different config, 5 for a checksum failure.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

constexpr int kKilledExit = 86;      // VP_JOURNAL_CRASH_AT's _exit code
constexpr int kResumedExit = 3;      // vpctl: completed after a resume
constexpr int kMismatchExit = 4;     // vpctl: fingerprint mismatch
constexpr int kCorruptExit = 5;      // vpctl: corrupt journal

std::string test_dir() {
  static const std::string dir = [] {
    std::string d =
        "/tmp/vp_crash_recovery_" + std::to_string(static_cast<long>(getpid()));
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// Runs vpctl with the given arguments, optionally arming the kill-point
/// hook; returns the process exit code (-1 if it died to a signal).
int run_vpctl(const std::string& args, int crash_at = 0) {
  std::string cmd;
  if (crash_at > 0)
    cmd += "VP_JOURNAL_CRASH_AT=" + std::to_string(crash_at) + " ";
  cmd += std::string{VPCTL_PATH} + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string campaign_args(unsigned threads, unsigned concurrency,
                          const std::string& journal,
                          const std::string& out) {
  return "campaign --scale 0.03 --rounds 6 --seed 5 --threads " +
         std::to_string(threads) + " --concurrency " +
         std::to_string(concurrency) + " --journal " + journal + " --out " +
         out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

/// The uninterrupted run's combined catchment CSV — computed once,
/// byte-compared against every recovered run.
const std::string& baseline() {
  static const std::string text = [] {
    const std::string csv = test_dir() + "/base.csv";
    EXPECT_EQ(run_vpctl(campaign_args(1, 1, test_dir() + "/base.journal",
                                      csv)),
              0);
    return read_file(csv);
  }();
  return text;
}

TEST(CrashRecovery, UninterruptedRunsAgreeAcrossThreadCounts) {
  ASSERT_FALSE(baseline().empty());
  const std::string csv = test_dir() + "/agree.csv";
  for (const auto& [threads, concurrency] :
       {std::pair{4u, 1u}, {1u, 2u}, {4u, 2u}}) {
    ASSERT_EQ(run_vpctl(campaign_args(
                  threads, concurrency, test_dir() + "/agree.journal", csv)),
              0);
    EXPECT_EQ(read_file(csv), baseline())
        << "threads " << threads << " concurrency " << concurrency;
    std::remove(csv.c_str());
    std::remove((test_dir() + "/agree.journal").c_str());
  }
}

TEST(CrashRecovery, KillAtEveryJournalWriteThenResumeIsBitIdentical) {
  ASSERT_FALSE(baseline().empty());
  for (const unsigned threads : {1u, 4u}) {
    for (const unsigned concurrency : {1u, 2u}) {
      for (int k = 1; k <= 7; ++k) {
        const std::string tag = test_dir() + "/kill_" +
                                std::to_string(threads) + "_" +
                                std::to_string(concurrency) + "_" +
                                std::to_string(k);
        const std::string journal = tag + ".journal";
        const std::string csv = tag + ".csv";
        const std::string args =
            campaign_args(threads, concurrency, journal, csv);
        ASSERT_EQ(run_vpctl(args, k), kKilledExit) << tag;
        // The kill must have preempted the final CSV.
        EXPECT_TRUE(read_file(csv).empty()) << tag;
        const int resumed = run_vpctl(args + " --resume");
        // k=1 dies before any manifest byte lands, so the resume finds
        // no usable journal and legitimately reports a fresh run.
        if (k == 1) {
          EXPECT_EQ(resumed, 0) << tag;
        } else {
          EXPECT_EQ(resumed, kResumedExit) << tag;
        }
        EXPECT_EQ(read_file(csv), baseline()) << tag;
        std::remove(journal.c_str());
        std::remove(csv.c_str());
      }
    }
  }
}

TEST(CrashRecovery, ResumeOfCompleteJournalSkipsAllRounds) {
  const std::string journal = test_dir() + "/complete.journal";
  const std::string csv = test_dir() + "/complete.csv";
  const std::string args = campaign_args(1, 1, journal, csv);
  ASSERT_EQ(run_vpctl(args), 0);
  EXPECT_EQ(run_vpctl(args + " --resume"), kResumedExit);
  EXPECT_EQ(read_file(csv), baseline());
  std::remove(journal.c_str());
  std::remove(csv.c_str());
}

TEST(CrashRecovery, BitFlippedJournalIsRefusedWithDistinctExitCode) {
  const std::string journal = test_dir() + "/corrupt.journal";
  const std::string csv = test_dir() + "/corrupt.csv";
  const std::string args = campaign_args(1, 1, journal, csv);
  ASSERT_EQ(run_vpctl(args), 0);
  std::string data = read_file(journal);
  ASSERT_GT(data.size(), 100u);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x04);
  std::ofstream(journal, std::ios::binary | std::ios::trunc) << data;
  EXPECT_EQ(run_vpctl(args + " --resume"), kCorruptExit);
  // Refusal happens before any round runs or any artifact is replaced.
  EXPECT_EQ(read_file(journal), data);
  std::remove(journal.c_str());
  std::remove(csv.c_str());
}

TEST(CrashRecovery, DifferentConfigIsRefusedWithDistinctExitCode) {
  const std::string journal = test_dir() + "/mismatch.journal";
  const std::string csv = test_dir() + "/mismatch.csv";
  ASSERT_EQ(run_vpctl(campaign_args(1, 1, journal, csv)), 0);
  // Same journal, different interval / rounds / retry config: each must
  // refuse with the fingerprint-mismatch exit code.
  for (const char* change :
       {" --interval-min 20", " --rounds 5", " --retries 1"}) {
    EXPECT_EQ(run_vpctl(campaign_args(1, 1, journal, csv) + change +
                        " --resume"),
              kMismatchExit)
        << change;
  }
  std::remove(journal.c_str());
  std::remove(csv.c_str());
}

}  // namespace
