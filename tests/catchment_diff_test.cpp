#include <gtest/gtest.h>

#include "analysis/catchment_diff.hpp"
#include "analysis/load_analysis.hpp"
#include "analysis/scenario.hpp"

namespace vp::analysis {
namespace {

class DiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.seed = 9;
    config.scale = 0.08;
    scenario_ = new Scenario(config);
    load_ = new dnsload::LoadModel(scenario_->broot_load(1));
  }
  static void TearDownTestSuite() {
    delete load_;
    delete scenario_;
  }
  static const Scenario& scenario() { return *scenario_; }
  static const dnsload::LoadModel& load() { return *load_; }

  static core::CatchmentMap measure(const anycast::Deployment& deployment,
                                    std::uint64_t epoch,
                                    std::uint32_t round) {
    const auto routes_ptr = scenario().route(deployment, epoch);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id = 100 + round;
    return scenario().verfploeter().run(routes, {probe, round}).map;
  }

 private:
  static Scenario* scenario_;
  static dnsload::LoadModel* load_;
};

Scenario* DiffTest::scenario_ = nullptr;
dnsload::LoadModel* DiffTest::load_ = nullptr;

TEST_F(DiffTest, IdenticalMapsProduceNoMoves) {
  const auto map = measure(scenario().broot(), kMayEpoch, 0);
  const auto diff =
      diff_catchments(scenario().topo(), map, map, load());
  EXPECT_EQ(diff.moved_blocks, 0u);
  EXPECT_EQ(diff.appeared_blocks, 0u);
  EXPECT_EQ(diff.vanished_blocks, 0u);
  EXPECT_EQ(diff.stable_blocks, map.mapped_blocks());
  EXPECT_DOUBLE_EQ(diff.moved_fraction(), 0.0);
  EXPECT_TRUE(diff.flows.empty());
}

TEST_F(DiffTest, EpochChangeMovesSomeBlocks) {
  const auto april = measure(scenario().broot(), kAprilEpoch, 1);
  const auto may = measure(scenario().broot(), kMayEpoch, 2);
  const auto diff =
      diff_catchments(scenario().topo(), april, may, load());
  // Routing epochs differ (§5.5): some, but not most, blocks move.
  EXPECT_GT(diff.moved_blocks, 0u);
  EXPECT_LT(diff.moved_fraction(), 0.4);
  EXPECT_GT(diff.stable_blocks, diff.moved_blocks);
  // Churn shows up as appeared/vanished, not moves.
  EXPECT_GT(diff.appeared_blocks, 0u);
  EXPECT_GT(diff.vanished_blocks, 0u);
  // Flows account for every move.
  std::uint64_t flow_blocks = 0;
  for (const auto& flow : diff.flows) {
    EXPECT_NE(flow.from, flow.to);
    flow_blocks += flow.blocks;
  }
  EXPECT_EQ(flow_blocks, diff.moved_blocks);
  // Top-AS list is sorted and bounded.
  ASSERT_FALSE(diff.top_ases.empty());
  for (std::size_t i = 1; i < diff.top_ases.size(); ++i)
    EXPECT_GE(diff.top_ases[i - 1].moved_blocks,
              diff.top_ases[i].moved_blocks);
}

TEST_F(DiffTest, PrependingMovesTrafficTowardTheExpectedSite) {
  const auto before = measure(scenario().broot(), kAprilEpoch, 3);
  const auto after = measure(
      scenario().broot().with_prepend("MIA", 2), kAprilEpoch, 3);
  const auto diff =
      diff_catchments(scenario().topo(), before, after, load());
  // MIA+2 pushes blocks MIA -> LAX; the dominant flow must be that pair.
  ASSERT_FALSE(diff.flows.empty());
  const auto lax = *scenario().broot().site_by_code("LAX");
  const auto mia = *scenario().broot().site_by_code("MIA");
  EXPECT_EQ(diff.flows[0].from, mia);
  EXPECT_EQ(diff.flows[0].to, lax);
  EXPECT_GT(diff.flows[0].daily_queries, 0.0);
}

TEST_F(DiffTest, GoodReplyWeightingDiffersFromQueryWeighting) {
  const auto map = measure(scenario().broot(), kMayEpoch, 0);
  const auto by_queries =
      predict_load(load(), map, 2, LoadWeight::kQueries);
  const auto by_good =
      predict_load(load(), map, 2, LoadWeight::kGoodReplies);
  // Good replies are a strict subset of queries...
  EXPECT_LT(by_good.total(true), by_queries.total(true));
  EXPECT_NEAR(by_good.total(true) / by_queries.total(true),
              load().total_daily_good_replies() /
                  load().total_daily_queries(),
              0.05);
  // ...and the split is similar but not identical (per-block good
  // fractions vary), so the optimization target matters (§3.2).
  EXPECT_NEAR(by_good.fraction_to(0), by_queries.fraction_to(0), 0.1);
  EXPECT_NE(by_good.fraction_to(0), by_queries.fraction_to(0));
}

}  // namespace
}  // namespace vp::analysis
