#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "anycast/deployment.hpp"
#include "topology/generator.hpp"

namespace vp::anycast {
namespace {

topology::Topology small_topology() {
  topology::TopologyConfig config;
  config.seed = 12;
  config.target_blocks = 3'000;
  return topology::generate_topology(config);
}

TEST(Deployment, BRootMatchesTable3) {
  const auto topo = small_topology();
  const Deployment broot = make_broot(topo);
  EXPECT_EQ(broot.name, "B-Root");
  ASSERT_EQ(broot.sites.size(), 2u);
  EXPECT_EQ(broot.sites[0].code, "LAX");
  EXPECT_EQ(broot.sites[0].upstream.value, 226u);
  EXPECT_EQ(broot.sites[1].code, "MIA");
  EXPECT_EQ(broot.sites[1].upstream.value, 20080u);
  EXPECT_EQ(broot.active_site_count(), 2u);
  EXPECT_TRUE(broot.service_prefix.contains(broot.measurement_address));
  // Every upstream must exist in the generated topology.
  for (const AnycastSite& site : broot.sites)
    EXPECT_NE(topo.find_as(site.upstream), topology::kNoAs) << site.code;
}

TEST(Deployment, TangledMatchesTable3) {
  const auto topo = small_topology();
  const Deployment tangled = make_tangled(topo);
  ASSERT_EQ(tangled.sites.size(), 9u);
  // Table 3 upstream assignments.
  const std::pair<const char*, std::uint32_t> expected[] = {
      {"SYD", 20473}, {"CDG", 20473}, {"HND", 2500},  {"ENS", 1103},
      {"LHR", 20473}, {"MIA", 20080}, {"IAD", 1972},  {"GRU", 1251},
      {"CPH", 39839}};
  for (const auto& [code, asn] : expected) {
    const auto site = tangled.site_by_code(code);
    ASSERT_TRUE(site.has_value()) << code;
    EXPECT_EQ(tangled.sites[static_cast<std::size_t>(*site)].upstream.value,
              asn)
        << code;
    EXPECT_NE(topo.find_as(topology::AsNumber{asn}), topology::kNoAs);
  }
  // Sao Paulo's announcement is hidden behind Miami's link (§4.2).
  EXPECT_TRUE(
      tangled.sites[static_cast<std::size_t>(*tangled.site_by_code("GRU"))]
          .hidden);
  EXPECT_EQ(tangled.active_site_count(), 8u);
}

TEST(Deployment, SiteByCodeMissIsEmpty) {
  const auto topo = small_topology();
  const Deployment broot = make_broot(topo);
  EXPECT_FALSE(broot.site_by_code("XXX").has_value());
}

TEST(Deployment, WithPrependIsNonDestructive) {
  const auto topo = small_topology();
  const Deployment broot = make_broot(topo);
  const Deployment prepended = broot.with_prepend("MIA", 3);
  EXPECT_EQ(broot.sites[1].prepend, 0);
  EXPECT_EQ(prepended.sites[1].prepend, 3);
  EXPECT_EQ(prepended.sites[0].prepend, 0);
  // Unknown code: no change anywhere.
  const Deployment unchanged = broot.with_prepend("NOPE", 5);
  for (const auto& site : unchanged.sites) EXPECT_EQ(site.prepend, 0);
}

TEST(Scenario, EnvOverridesAreParsed) {
  setenv("VP_SCALE", "0.5", 1);
  setenv("VP_SEED", "123", 1);
  const auto config = analysis::ScenarioConfig::from_env();
  EXPECT_DOUBLE_EQ(config.scale, 0.5);
  EXPECT_EQ(config.seed, 123u);
  setenv("VP_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(analysis::ScenarioConfig::from_env().scale, 1.0);
  unsetenv("VP_SCALE");
  unsetenv("VP_SEED");
}

TEST(Scenario, BuildsAllComponentsCoherently) {
  analysis::ScenarioConfig config;
  config.seed = 5;
  config.scale = 0.04;
  const analysis::Scenario scenario{config};
  EXPECT_GT(scenario.topo().as_count(), 50u);
  EXPECT_GT(scenario.hitlist().size(), 3'000u);
  EXPECT_LE(scenario.hitlist().size(), scenario.topo().block_count());
  EXPECT_GE(scenario.atlas().vps().size(), 24u);
  EXPECT_LE(scenario.atlas_small().vps().size(),
            scenario.atlas().vps().size());
  // Load models for different dates share membership.
  const auto april = scenario.broot_load(1);
  const auto may = scenario.broot_load(2);
  EXPECT_EQ(april.blocks().size(), may.blocks().size());
  // Routing works for both presets.
  EXPECT_NO_THROW({
    const auto r1_ptr = scenario.route(scenario.broot());
    const auto& r1 = *r1_ptr;
    const auto r2_ptr = scenario.route(scenario.tangled());
    const auto& r2 = *r2_ptr;
    (void)r1;
    (void)r2;
  });
}

}  // namespace
}  // namespace vp::anycast
