#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/clock.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace vp::util {
namespace {

// --- rng -------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsUniformAndBounded) {
  Rng rng{9};
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) EXPECT_NEAR(count, 10000, 600);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{11};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 100000.0, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng{19};
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng{21};
  double small_sum = 0.0, large_sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    small_sum += static_cast<double>(rng.poisson(3.0));
    large_sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(small_sum / 20000.0, 3.0, 0.1);
  EXPECT_NEAR(large_sum / 20000.0, 200.0, 1.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{42};
  Rng forked = a.fork(1);
  Rng b{42};
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (forked() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Hashing, MixAndCombineAreStable) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// --- stats -----------------------------------------------------------------

TEST(Stats, OnlineStatsMatchesClosedForm) {
  OnlineStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, PercentileEdges) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, PercentileSingleton) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 30), 7.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, SummaryIsOrdered) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);
  const PercentileSummary s = summarize(v);
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
}

// --- format ----------------------------------------------------------------

TEST(Format, SiCount) {
  EXPECT_EQ(si_count(0), "0");
  EXPECT_EQ(si_count(999), "999");
  EXPECT_EQ(si_count(1234), "1.23k");
  EXPECT_EQ(si_count(27100), "27.1k");
  EXPECT_EQ(si_count(3786907), "3.79M");
  EXPECT_EQ(si_count(2.34e9), "2.34G");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.824), "82.4%");
  EXPECT_EQ(percent(1.0), "100.0%");
  EXPECT_EQ(percent(0.0), "0.0%");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(3786907), "3,786,907");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-to-even via printf
}

// --- table -----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t{{"name", "count"}, {Align::kLeft, Align::kRight}};
  t.add_row({"a", "1"});
  t.add_row({"longer", "12345"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name    count"), std::string::npos);
  EXPECT_NE(out.find("a           1"), std::string::npos);
  EXPECT_NE(out.find("longer  12345"), std::string::npos);
}

TEST(Table, SeparatorRendersDashes) {
  Table t{{"x"}};
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // Header separator + explicit separator.
  EXPECT_GE(std::count(out.begin(), out.end(), '-'), 2);
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

// --- clock -----------------------------------------------------------------

TEST(Clock, SimTimeArithmetic) {
  const SimTime t = SimTime::from_minutes(15);
  EXPECT_EQ(t.usec, 15ll * 60 * 1000000);
  EXPECT_DOUBLE_EQ(t.seconds(), 900.0);
  EXPECT_DOUBLE_EQ((t + t).minutes(), 30.0);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(2).hours(), 2.0);
}

TEST(Clock, AdvanceIsMonotonic) {
  SimClock clock;
  clock.advance(SimTime::from_seconds(5));
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 5.0);
  clock.advance_to(SimTime::from_seconds(3));  // must not go backwards
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 5.0);
  clock.advance_to(SimTime::from_seconds(9));
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 9.0);
}

TEST(Clock, FormatHms) {
  EXPECT_EQ(format_hms(SimTime::from_hours(1) + SimTime::from_minutes(2) +
                       SimTime::from_seconds(3)),
            "01:02:03");
}

// --- thread_pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsFirstError) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool{1};
  pool.wait_idle();  // nothing queued: must not hang
}

TEST(ThreadPool, ResolveThreadsKnob) {
  EXPECT_GE(resolve_threads(0), 1u);  // 0 = hardware concurrency, at least 1
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(100000), 256u);  // capped
}

TEST(RunShards, EveryShardRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  run_shards(8, [&hits](unsigned shard) {
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunShards, SingleShardRunsInline) {
  const auto caller = std::this_thread::get_id();
  run_shards(1, [caller](unsigned shard) {
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(RunShards, PropagatesWorkerException) {
  EXPECT_THROW(run_shards(4,
                          [](unsigned shard) {
                            if (shard == 2) throw std::runtime_error("boom");
                          }),
               std::runtime_error);
}

TEST(ParallelFor, ChunksCoverRangeExactlyOnce) {
  // Every index in [0, count) must be visited once, for chunk counts that
  // divide evenly, unevenly, and exceed the range.
  for (const unsigned threads : {1u, 3u, 8u, 100u}) {
    const std::size_t count = 37;
    std::vector<std::atomic<int>> visits(count);
    parallel_for(count, threads,
                 [&visits](std::size_t begin, std::size_t end) {
                   ASSERT_LE(begin, end);
                   for (std::size_t i = begin; i < end; ++i)
                     visits[i].fetch_add(1, std::memory_order_relaxed);
                 });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  parallel_for(0, 8, [](std::size_t, std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace vp::util
