// Cross-seed sweeps of the full measurement pipeline: the properties the
// library guarantees must not depend on one lucky seed.
#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "core/verfploeter.hpp"

namespace vp {
namespace {

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    analysis::ScenarioConfig config;
    config.seed = GetParam();
    config.scale = 0.06;  // ~7k blocks; six seeds stay fast
    scenario_.emplace(config);
  }
  std::optional<analysis::Scenario> scenario_;
};

TEST_P(PipelineSweep, MeasurementAgreesWithGroundTruthEverywhere) {
  const auto routes_ptr = scenario_->route(scenario_->broot());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 1;
  const auto round = scenario_->verfploeter().run(routes, {probe, 0});
  ASSERT_GT(round.map.mapped_blocks(), 1000u);
  for (const auto& [block, site] : round.map.entries()) {
    ASSERT_EQ(site,
              scenario_->internet().ground_truth_site(routes, block, 0))
        << "seed " << GetParam() << " block " << block.to_string();
  }
}

TEST_P(PipelineSweep, ResponseRateStaysInHitlistBand) {
  const auto routes_ptr = scenario_->route(scenario_->broot());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 2;
  const auto round = scenario_->verfploeter().run(routes, {probe, 0});
  const double rate =
      static_cast<double>(round.map.mapped_blocks()) /
      static_cast<double>(round.map.blocks_probed);
  EXPECT_GT(rate, 0.40) << "seed " << GetParam();
  EXPECT_LT(rate, 0.70) << "seed " << GetParam();
}

TEST_P(PipelineSweep, PrependingNeverDecreasesLaxShare) {
  double previous = -1.0;
  int step = 0;
  for (const auto& [site, amount] :
       std::vector<std::pair<const char*, int>>{
           {"LAX", 1}, {"LAX", 0}, {"MIA", 1}, {"MIA", 3}}) {
    const auto deployment = scenario_->broot().with_prepend(site, amount);
    const auto routes_ptr = scenario_->route(deployment);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id = static_cast<std::uint32_t>(10 + step++);
    const auto map =
        scenario_->verfploeter().run(routes, {probe, 0}).map;
    const double lax = map.fraction_to(0);
    EXPECT_GE(lax, previous - 1e-9)
        << "seed " << GetParam() << " at step " << step;
    previous = lax;
  }
}

TEST_P(PipelineSweep, TangledHidesGruAndServesTheRest) {
  const auto routes_ptr = scenario_->route(scenario_->tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 3;
  const auto map = scenario_->verfploeter().run(routes, {probe, 0}).map;
  const auto counts =
      map.per_site_counts(scenario_->tangled().sites.size());
  const auto gru = scenario_->tangled().site_by_code("GRU");
  EXPECT_EQ(counts[static_cast<std::size_t>(*gru)], 0u);
  std::size_t nonempty = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) nonempty += counts[s] > 0;
  EXPECT_GE(nonempty, 6u) << "seed " << GetParam();
}

TEST_P(PipelineSweep, CleaningDropsAreBounded) {
  const auto routes_ptr = scenario_->route(scenario_->broot());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 4;
  const auto round = scenario_->verfploeter().run(routes, {probe, 0});
  const auto& s = round.map.cleaning;
  // Drops exist but stay a small fraction of raw replies on every seed.
  EXPECT_GT(s.dropped(), 0u);
  EXPECT_LT(static_cast<double>(s.dropped()),
            0.12 * static_cast<double>(s.raw_replies));
  EXPECT_EQ(s.kept + s.dropped(), s.raw_replies);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace vp
