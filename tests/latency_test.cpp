#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "analysis/scenario.hpp"

namespace vp::analysis {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.seed = 3;
    config.scale = 0.08;
    scenario_ = new Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
    core::ProbeConfig probe;
    probe.measurement_id = 60;
    round_ = new core::RoundResult(
        scenario_->verfploeter().run(*routes_, {probe, 0}));
    load_ = new dnsload::LoadModel(scenario_->broot_load(1));
  }
  static void TearDownTestSuite() {
    delete load_;
    delete round_;
    routes_.reset();
    delete scenario_;
  }
  static const Scenario& scenario() { return *scenario_; }
  static const bgp::RoutingTable& routes() { return *routes_; }
  static const core::RoundResult& round() { return *round_; }
  static const dnsload::LoadModel& load() { return *load_; }

 private:
  static Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
  static core::RoundResult* round_;
  static dnsload::LoadModel* load_;
};

Scenario* LatencyTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> LatencyTest::routes_;
core::RoundResult* LatencyTest::round_ = nullptr;
dnsload::LoadModel* LatencyTest::load_ = nullptr;

TEST_F(LatencyTest, EveryMappedBlockHasAnRtt) {
  EXPECT_EQ(round().rtt_ms.size(), round().map.mapped_blocks());
  for (const auto& [block, rtt] : round().rtt_ms) {
    EXPECT_GT(rtt, 0.0f);
    EXPECT_LT(rtt, 15.0f * 60.0f * 1000.0f);  // under the late cutoff
    EXPECT_TRUE(round().map.contains(block));
  }
}

TEST_F(LatencyTest, RttTracksDistanceToSite) {
  // Blocks near their serving site should be faster than far ones.
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (const auto& [block, rtt] : round().rtt_ms) {
    const auto geo_record = scenario().topo().geodb().lookup(block);
    if (!geo_record) continue;
    const auto site = round().map.site_of(block);
    const double km = geo::distance_km(
        geo_record->location,
        scenario().broot().sites[static_cast<std::size_t>(site)].location);
    if (km < 2000) {
      near_sum += rtt;
      ++near_n;
    } else if (km > 9000) {
      far_sum += rtt;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 10);
  ASSERT_GT(far_n, 10);
  EXPECT_LT(near_sum / near_n, far_sum / far_n);
}

TEST_F(LatencyTest, ReportIsConsistent) {
  const auto report = analyze_latency(scenario().topo(), round(), load(),
                                      scenario().broot());
  ASSERT_EQ(report.per_site.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& site : report.per_site) {
    total += site.blocks;
    if (site.blocks > 0) {
      EXPECT_LE(site.rtt_ms.p5, site.rtt_ms.p95);
      EXPECT_GT(site.rtt_ms.p50, 0.0);
    }
  }
  EXPECT_EQ(total, round().map.mapped_blocks());
  EXPECT_GT(report.load_weighted_mean_ms, 0.0);
  EXPECT_GT(report.overall_rtt_ms.p50, 0.0);
}

TEST_F(LatencyTest, RecommenderFindsUsefulCandidates) {
  const auto candidates = recommend_sites(scenario().topo(), round(), load(),
                                          scenario().broot(), 5);
  ASSERT_FALSE(candidates.empty());
  ASSERT_LE(candidates.size(), 5u);
  // Ranked by weighted saving, descending.
  for (std::size_t i = 1; i < candidates.size(); ++i)
    EXPECT_GE(candidates[i - 1].weighted_saving,
              candidates[i].weighted_saving);
  // B-Root's two sites are both in the US: the best candidate should be
  // outside North America.
  const auto& best = geo::world_centers()[candidates[0].center_id];
  EXPECT_NE(best.continent, geo::Continent::kNorthAmerica)
      << candidates[0].center_name;
  EXPECT_GT(candidates[0].blocks_won, 100u);
  EXPECT_GT(candidates[0].mean_rtt_saving_ms, 0.0);
}

TEST_F(LatencyTest, RecommenderSkipsExistingSiteLocations) {
  const auto candidates = recommend_sites(scenario().topo(), round(), load(),
                                          scenario().broot(), 100);
  for (const auto& candidate : candidates) {
    const auto& center = geo::world_centers()[candidate.center_id];
    for (const auto& site : scenario().broot().sites) {
      EXPECT_GT(geo::distance_km(center.location, site.location), 299.0)
          << candidate.center_name << " overlaps " << site.code;
    }
  }
}

TEST(PredictedRtt, GrowsWithDistance) {
  const geo::LatLon la{34.1, -118.2};
  EXPECT_LT(predicted_rtt_ms(la, la), 15.0);
  EXPECT_LT(predicted_rtt_ms(la, {37.0, -122.0}),
            predicted_rtt_ms(la, {51.5, -0.1}));
}

}  // namespace
}  // namespace vp::analysis
