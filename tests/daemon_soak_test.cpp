// Daemon soak harness: drives the real vpd binary through a multi-round
// measurement soak under a seeded fault plan, kills it at a journal
// write point mid-soak, restarts it with --resume, and asserts the map
// it serves over HTTP is byte-identical to what an uninterrupted offline
// `vpctl campaign` run produces for the same configuration. Also proves
// the journal interchangeability contract directly: a journal written
// entirely by vpctl resumes into a serving daemon (and vice versa), and
// SIGTERM always lands a clean exit 0.
#include <gtest/gtest.h>

#include "daemon_test_util.hpp"

namespace vp {
namespace {

using namespace vp::daemon_test;

constexpr int kKilledExit = 86;  // VP_JOURNAL_CRASH_AT's _exit code
constexpr unsigned kRounds = 5;

std::string test_dir() {
  static const std::string dir = [] {
    std::string d =
        "/tmp/vp_daemon_soak_" + std::to_string(static_cast<long>(getpid()));
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// The one configuration every process in this file runs: same probe
/// policy, spacing, and fault plan, so vpctl and vpd journals carry the
/// same manifest fingerprint.
const std::string kCommon = "--scale 0.03 --seed 5 --fault-seed 7";

std::vector<std::string> vpd_args(const std::string& extra_journal,
                                  const std::string& port_file) {
  std::vector<std::string> args = {"--scale",      "0.03", "--seed", "5",
                                   "--fault-seed", "7",    "--rounds",
                                   std::to_string(kRounds)};
  if (!extra_journal.empty()) {
    args.push_back("--journal");
    args.push_back(extra_journal);
    args.push_back("--resume");
  }
  args.push_back("--listen");
  args.push_back("0");
  args.push_back("--port-file");
  args.push_back(port_file);
  return args;
}

/// The uninterrupted offline campaign — the ground truth every served
/// map is byte-compared against.
const std::string& baseline_csv() {
  static const std::string text = [] {
    const std::string csv = test_dir() + "/base.csv";
    EXPECT_EQ(run_blocking(VPCTL_PATH,
                           "campaign " + kCommon + " --rounds " +
                               std::to_string(kRounds) + " --journal " +
                               test_dir() + "/base.journal --out " + csv),
              0);
    return read_file(csv);
  }();
  return text;
}

TEST(DaemonSoak, KillMidSoakThenResumeServesByteIdenticalMap) {
  ASSERT_FALSE(baseline_csv().empty());
  const std::string journal = test_dir() + "/soak.journal";
  const std::string port_file = test_dir() + "/soak.port";

  // Phase 1: the soak run dies at the 4th journal write (rounds 0 and 1
  // durable, round 2's append torn away) — a crash mid-campaign.
  EXPECT_EQ(run_blocking(VPD_PATH,
                         kCommon + " --rounds " + std::to_string(kRounds) +
                             " --journal " + journal + " --exit-after-rounds",
                         "VP_JOURNAL_CRASH_AT=4 "),
            kKilledExit);

  // Phase 2: restart with --resume and a listener. The daemon must come
  // back, finish the remaining rounds, and serve round 4's map with the
  // exact bytes the uninterrupted offline run wrote.
  const pid_t pid = spawn_vpd(VPD_PATH, vpd_args(journal, port_file));
  const std::uint16_t port = wait_port(port_file);
  ASSERT_GT(port, 0);

  const std::string health = poll_for(
      port, "/healthz", "\"map_round\":" + std::to_string(kRounds - 1));
  ASSERT_FALSE(health.empty()) << "daemon never reached the final round";
  EXPECT_NE(health.find("\"state\":\"fresh\""), std::string::npos);

  const HttpReply map = http_get(port, "/map");
  EXPECT_EQ(map.status, 200);
  EXPECT_EQ(map.body, round_section(baseline_csv(), kRounds - 1));

  // A point query carries the bounded-staleness metadata.
  const HttpReply block = http_get(port, "/block/10.0.0.1");
  EXPECT_EQ(block.status, 200);
  EXPECT_NE(block.body.find("\"map_round\":" + std::to_string(kRounds - 1)),
            std::string::npos);

  EXPECT_EQ(terminate_vpd(pid), 0);
  std::remove(journal.c_str());
  std::remove(port_file.c_str());
}

TEST(DaemonSoak, VpctlJournalResumesIntoServingDaemon) {
  // Journal interchangeability, batch -> daemon: vpd adopts the journal
  // the offline vpctl campaign wrote (same manifest fingerprint), resumes
  // the live map from it without measuring anything, and serves the same
  // bytes.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string port_file = test_dir() + "/adopt.port";
  const pid_t pid =
      spawn_vpd(VPD_PATH, vpd_args(test_dir() + "/base.journal", port_file));
  const std::uint16_t port = wait_port(port_file);
  ASSERT_GT(port, 0);

  const std::string health = poll_for(
      port, "/healthz", "\"rounds_resumed\":" + std::to_string(kRounds));
  ASSERT_FALSE(health.empty()) << "daemon did not adopt the vpctl journal";
  EXPECT_NE(health.find("\"rounds_completed\":0"), std::string::npos);
  EXPECT_NE(health.find("\"journal\":\"resumed\""), std::string::npos);

  const HttpReply map = http_get(port, "/map");
  EXPECT_EQ(map.status, 200);
  EXPECT_EQ(map.body, round_section(baseline_csv(), kRounds - 1));

  EXPECT_EQ(terminate_vpd(pid), 0);
  std::remove(port_file.c_str());
}

TEST(DaemonSoak, VpdJournalCompletesUnderVpctl) {
  // Journal interchangeability, daemon -> batch: a journal produced by
  // the daemon (same 5-round budget, killed after round 1's append
  // landed intact) resumes under vpctl campaign, which completes it and
  // writes the same artifact as its own uninterrupted run.
  ASSERT_FALSE(baseline_csv().empty());
  const std::string journal = test_dir() + "/handoff.journal";
  const std::string csv = test_dir() + "/handoff.csv";
  EXPECT_EQ(run_blocking(VPD_PATH,
                         kCommon + " --rounds " + std::to_string(kRounds) +
                             " --journal " + journal + " --exit-after-rounds",
                         "VP_JOURNAL_CRASH_AT=3 "),
            kKilledExit);
  constexpr int kResumedExit = 3;  // vpctl's "resumed from journal" code
  EXPECT_EQ(run_blocking(VPCTL_PATH,
                         "campaign " + kCommon + " --rounds " +
                             std::to_string(kRounds) + " --journal " +
                             journal + " --resume --out " + csv),
            kResumedExit);
  EXPECT_EQ(read_file(csv), baseline_csv());
  std::remove(journal.c_str());
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace vp
