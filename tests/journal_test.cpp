// In-process tests for the campaign journal: round-trips, torn-tail
// recovery, bit-flip detection, fingerprint refusal, and the journaled
// Campaign resume path (including concurrency > 1). The out-of-process
// kill-point harness lives in crash_recovery_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "util/atomic_file.hpp"

namespace vp::core {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/vp_journal_test_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".bin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

/// A small synthetic result with every field populated, so round-trip
/// equality exercises the whole encoding.
RoundResult synthetic_round(std::uint32_t r) {
  RoundResult result;
  result.map.measurement_id = 100 + r;
  result.map.probes_sent = 1000 + r;
  result.map.blocks_probed = 990;
  result.map.cleaning = {900 + r, 1, 2, 3, 4, 5, 880};
  result.map.set(net::Block24{0x010200 + r}, 0);
  result.map.set(net::Block24{0x020300 + r}, 1);
  result.rtt_ms.emplace(net::Block24{0x010200 + r}, 12.5f + r);
  result.raw_replies_per_site = {400 + r, 500};
  result.started = util::SimTime::from_minutes(15.0 * r);
  result.probing_duration = util::SimTime::from_seconds(8.0);
  result.faults.probes_lost = 7 + r;
  result.faults.retries = 3;
  return result;
}

void expect_equal(const RoundResult& a, const RoundResult& b) {
  EXPECT_EQ(a.map.measurement_id, b.map.measurement_id);
  EXPECT_EQ(a.map.probes_sent, b.map.probes_sent);
  EXPECT_EQ(a.map.blocks_probed, b.map.blocks_probed);
  EXPECT_EQ(a.map.cleaning.raw_replies, b.map.cleaning.raw_replies);
  EXPECT_EQ(a.map.cleaning.kept, b.map.cleaning.kept);
  EXPECT_EQ(a.map.entries().size(), b.map.entries().size());
  for (const auto& [block, site] : a.map.entries())
    EXPECT_EQ(b.map.site_of(block), site);
  EXPECT_EQ(a.rtt_ms.size(), b.rtt_ms.size());
  for (const auto& [block, rtt] : a.rtt_ms) {
    ASSERT_TRUE(b.rtt_ms.count(block));
    EXPECT_EQ(b.rtt_ms.at(block), rtt);
  }
  EXPECT_EQ(a.raw_replies_per_site, b.raw_replies_per_site);
  EXPECT_EQ(a.started.usec, b.started.usec);
  EXPECT_EQ(a.probing_duration.usec, b.probing_duration.usec);
  EXPECT_EQ(a.faults.probes_lost, b.faults.probes_lost);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
}

const JournalManifest kManifest{0xfeedbeefcafe1234ull, 6};

std::string journal_with_rounds(const std::string& path,
                                std::uint32_t count) {
  CampaignJournal journal;
  const auto opened = journal.open(path, kManifest, false);
  EXPECT_EQ(opened.status, JournalStatus::kFresh);
  for (std::uint32_t r = 0; r < count; ++r)
    EXPECT_TRUE(journal.append_round(r, synthetic_round(r)));
  journal.close();
  return read_file(path);
}

TEST(Journal, RoundTripsAllFields) {
  const std::string path = temp_path("roundtrip");
  journal_with_rounds(path, 3);
  CampaignJournal journal;
  const auto opened = journal.open(path, kManifest, true);
  ASSERT_EQ(opened.status, JournalStatus::kResumed);
  EXPECT_EQ(opened.truncated_bytes, 0u);
  ASSERT_EQ(opened.completed.size(), 3u);
  for (std::uint32_t r = 0; r < 3; ++r)
    expect_equal(opened.completed.at(r), synthetic_round(r));
  // The reopened journal accepts further appends.
  EXPECT_TRUE(journal.append_round(3, synthetic_round(3)));
  journal.close();
  CampaignJournal again;
  EXPECT_EQ(again.open(path, kManifest, true).completed.size(), 4u);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedAndRecovers) {
  const std::string path = temp_path("torn");
  const std::string full = journal_with_rounds(path, 3);
  const std::string two = journal_with_rounds(path, 2);
  // Every proper prefix that still contains two whole rounds must
  // recover exactly those two and truncate the rest.
  for (std::size_t keep = two.size(); keep < full.size(); ++keep) {
    write_file(path, full.substr(0, keep));
    CampaignJournal journal;
    const auto opened = journal.open(path, kManifest, true);
    ASSERT_EQ(opened.status, JournalStatus::kResumed) << "keep " << keep;
    EXPECT_EQ(opened.completed.size(), 2u) << "keep " << keep;
    EXPECT_EQ(opened.truncated_bytes, keep - two.size());
    journal.close();
    EXPECT_EQ(read_file(path).size(), two.size());
  }
  std::remove(path.c_str());
}

TEST(Journal, TornManifestStartsFresh) {
  const std::string path = temp_path("tornmanifest");
  const std::string full = journal_with_rounds(path, 1);
  // Anything shorter than the whole manifest frame is "no usable state".
  for (const std::size_t keep : {std::size_t{0}, std::size_t{5}}) {
    write_file(path, full.substr(0, keep));
    CampaignJournal journal;
    EXPECT_EQ(journal.open(path, kManifest, true).status,
              JournalStatus::kFresh);
    journal.close();
  }
  std::remove(path.c_str());
}

TEST(Journal, EmptyFileResumesExactlyLikeMissing) {
  // The explicit 0-byte == missing contract: an empty journal is the
  // fingerprint of a crash before the manifest write, so a resume finds
  // no state to validate, reports kFresh, and recreates the file —
  // byte-for-byte the same outcome as resuming a path that never existed.
  const std::string missing = temp_path("missing");
  const std::string empty = temp_path("empty");
  std::remove(missing.c_str());
  write_file(empty, "");
  ASSERT_EQ(read_file(empty).size(), 0u);

  std::string contents[2];
  int i = 0;
  for (const std::string& path : {missing, empty}) {
    CampaignJournal journal;
    const auto opened = journal.open(path, kManifest, true);
    EXPECT_EQ(opened.status, JournalStatus::kFresh) << path;
    EXPECT_TRUE(opened.completed.empty()) << path;
    EXPECT_EQ(opened.truncated_bytes, 0u) << path;
    // The recreated journal accepts appends like any fresh one.
    EXPECT_TRUE(journal.append_round(0, synthetic_round(0))) << path;
    journal.close();
    contents[i++] = read_file(path);
  }
  EXPECT_FALSE(contents[0].empty());
  EXPECT_EQ(contents[0], contents[1]);
  std::remove(missing.c_str());
  std::remove(empty.c_str());
}

TEST(Journal, BitFlipInRecordBodyIsRejected) {
  const std::string path = temp_path("bitflip");
  const std::string full = journal_with_rounds(path, 3);
  const std::string manifest_only = journal_with_rounds(path, 0);
  // Flip one bit in the middle of the second round record's body.
  std::string flipped = full;
  const std::size_t target =
      manifest_only.size() + (full.size() - manifest_only.size()) / 2;
  flipped[target] = static_cast<char>(flipped[target] ^ 0x10);
  write_file(path, flipped);
  CampaignJournal journal;
  EXPECT_EQ(journal.open(path, kManifest, true).status,
            JournalStatus::kCorrupt);
  EXPECT_FALSE(journal.is_open());
  // Refusal must leave the file untouched (no truncation, no rewrite).
  EXPECT_EQ(read_file(path), flipped);
  std::remove(path.c_str());
}

TEST(Journal, BitFlipInManifestIsRejected) {
  const std::string path = temp_path("manifestflip");
  std::string data = journal_with_rounds(path, 1);
  data[10] = static_cast<char>(data[10] ^ 0x01);  // inside manifest payload
  write_file(path, data);
  CampaignJournal journal;
  EXPECT_EQ(journal.open(path, kManifest, true).status,
            JournalStatus::kCorrupt);
  std::remove(path.c_str());
}

TEST(Journal, FingerprintMismatchRefuses) {
  const std::string path = temp_path("mismatch");
  journal_with_rounds(path, 2);
  CampaignJournal journal;
  JournalManifest other = kManifest;
  other.fingerprint ^= 1;
  EXPECT_EQ(journal.open(path, other, true).status,
            JournalStatus::kFingerprintMismatch);
  JournalManifest fewer_rounds = kManifest;
  fewer_rounds.rounds = 4;
  EXPECT_EQ(journal.open(path, fewer_rounds, true).status,
            JournalStatus::kFingerprintMismatch);
  std::remove(path.c_str());
}

TEST(Journal, RoundIdBeyondManifestIsCorrupt) {
  const std::string path = temp_path("badround");
  {
    CampaignJournal journal;
    ASSERT_EQ(journal.open(path, kManifest, false).status,
              JournalStatus::kFresh);
    ASSERT_TRUE(journal.append_round(kManifest.rounds, synthetic_round(0)));
  }
  CampaignJournal journal;
  EXPECT_EQ(journal.open(path, kManifest, true).status,
            JournalStatus::kCorrupt);
  std::remove(path.c_str());
}

TEST(Journal, WithoutResumeOverwrites) {
  const std::string path = temp_path("overwrite");
  journal_with_rounds(path, 3);
  CampaignJournal journal;
  const auto opened = journal.open(path, kManifest, false);
  EXPECT_EQ(opened.status, JournalStatus::kFresh);
  EXPECT_TRUE(opened.completed.empty());
  journal.close();
  CampaignJournal again;
  EXPECT_TRUE(again.open(path, kManifest, true).completed.empty());
  std::remove(path.c_str());
}

// ---- Campaign integration: journal + resume against a real scenario ----

class JournaledCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analysis::ScenarioConfig config;
    config.seed = 7;
    config.scale = 0.03;
    scenario_ = new analysis::Scenario(config);
    routes_ = scenario_->route(scenario_->broot());
  }
  static void TearDownTestSuite() {
    routes_.reset();
    delete scenario_;
  }

  static Campaign make_campaign() {
    ProbeConfig probe;
    probe.measurement_id = 300;
    Campaign campaign{scenario_->verfploeter(), *routes_};
    campaign.probe(probe).rounds(4).journal(
        temp_path("campaign"), anycast::fingerprint(scenario_->broot()));
    return campaign;
  }

  static analysis::Scenario* scenario_;
  static std::shared_ptr<const bgp::RoutingTable> routes_;
};

analysis::Scenario* JournaledCampaignTest::scenario_ = nullptr;
std::shared_ptr<const bgp::RoutingTable> JournaledCampaignTest::routes_;

TEST_F(JournaledCampaignTest, ResumeSkipsJournaledRoundsBitIdentically) {
  const std::string path = temp_path("campaign");
  auto fresh = make_campaign().run_reported();
  EXPECT_EQ(fresh.journal, JournalStatus::kFresh);
  EXPECT_EQ(fresh.rounds_executed, 4u);

  // Resume with nothing missing: all four rounds load, none run.
  auto resumed = make_campaign().resume().run_reported();
  EXPECT_EQ(resumed.journal, JournalStatus::kResumed);
  EXPECT_EQ(resumed.rounds_loaded, 4u);
  EXPECT_EQ(resumed.rounds_executed, 0u);
  ASSERT_EQ(resumed.results.size(), fresh.results.size());
  for (std::size_t r = 0; r < fresh.results.size(); ++r)
    expect_equal(resumed.results[r], fresh.results[r]);

  // Chop the journal down to two rounds: resume re-runs the missing two
  // and the merged results still match the uninterrupted run.
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - (full.size() / 3)));
  auto partial = make_campaign().resume().run_reported();
  EXPECT_EQ(partial.journal, JournalStatus::kResumed);
  EXPECT_GT(partial.rounds_executed, 0u);
  EXPECT_LT(partial.rounds_executed, 4u);
  for (std::size_t r = 0; r < fresh.results.size(); ++r)
    expect_equal(partial.results[r], fresh.results[r]);
  std::remove(path.c_str());
}

TEST_F(JournaledCampaignTest, ConcurrentResumeMatchesSequential) {
  const std::string path = temp_path("campaign");
  auto fresh = make_campaign().run_reported();
  // Truncate to force a partial resume, then run it with overlapping
  // rounds: the journaled-set logic must cope with out-of-order
  // completion and still reproduce the sequential results.
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() / 2));
  auto concurrent = make_campaign().resume().concurrency(2).run_reported();
  EXPECT_EQ(concurrent.journal, JournalStatus::kResumed);
  for (std::size_t r = 0; r < fresh.results.size(); ++r)
    expect_equal(concurrent.results[r], fresh.results[r]);
  std::remove(path.c_str());
}

TEST_F(JournaledCampaignTest, PreSetCancelFlagRunsNothing) {
  const std::string path = temp_path("campaign");
  std::atomic<bool> flag{true};
  auto campaign = make_campaign();
  auto cancelled = campaign.cancel(&flag).run_reported();
  EXPECT_TRUE(cancelled.interrupted);
  EXPECT_EQ(cancelled.journal, JournalStatus::kFresh);
  for (const RoundResult& result : cancelled.results)
    EXPECT_EQ(result.map.blocks_probed, 0u);
  // The manifest-only journal is a valid (empty) prefix: a later resume
  // finishes the campaign as if nothing had happened.
  auto finished = make_campaign().resume().run_reported();
  EXPECT_FALSE(finished.interrupted);
  EXPECT_EQ(finished.journal, JournalStatus::kResumed);
  EXPECT_EQ(finished.rounds_loaded, 0u);
  EXPECT_EQ(finished.rounds_executed, 4u);
  std::remove(path.c_str());
}

TEST_F(JournaledCampaignTest, CancelMidRunLeavesResumablePrefix) {
  const std::string path = temp_path("campaign");
  const auto fresh = make_campaign().run_reported();
  std::remove(path.c_str());

  // Cancel as soon as the first round completes: the in-flight round and
  // its journal append finish, later rounds never start.
  std::atomic<bool> flag{false};
  struct CancelAfterFirst : RoundObserver {
    std::atomic<bool>* flag;
    void on_round_complete(const RoundSpec&, const RoundResult&) override {
      flag->store(true, std::memory_order_relaxed);
    }
  } observer;
  observer.flag = &flag;
  auto campaign = make_campaign();
  const auto cancelled =
      campaign.cancel(&flag).observe(observer).run_reported();
  EXPECT_TRUE(cancelled.interrupted);
  ASSERT_EQ(cancelled.results.size(), 4u);
  expect_equal(cancelled.results[0], fresh.results[0]);
  EXPECT_EQ(cancelled.results[1].map.blocks_probed, 0u);

  // The journal holds exactly the completed prefix; resuming it finishes
  // the campaign bit-identically to the uninterrupted run.
  const auto resumed = make_campaign().resume().run_reported();
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.journal, JournalStatus::kResumed);
  EXPECT_EQ(resumed.rounds_loaded, 1u);
  EXPECT_EQ(resumed.rounds_executed, 3u);
  for (std::size_t r = 0; r < fresh.results.size(); ++r)
    expect_equal(resumed.results[r], fresh.results[r]);
  std::remove(path.c_str());
}

TEST_F(JournaledCampaignTest, ChangedConfigRefusesResume) {
  const std::string path = temp_path("campaign");
  make_campaign().run_reported();
  auto refused = make_campaign().threads(2).resume().run_reported();
  EXPECT_EQ(refused.journal, JournalStatus::kFingerprintMismatch);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.results.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vp::core
