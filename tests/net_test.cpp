#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace vp::net {
namespace {

// --- addresses -------------------------------------------------------------

TEST(Ipv4Address, ParseAndPrintRoundTrip) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
  EXPECT_EQ(addr->octet(0), 192);
  EXPECT_EQ(addr->octet(3), 200);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, ConstructionFromOctets) {
  constexpr Ipv4Address addr{10, 0, 0, 1};
  static_assert(addr.value() == 0x0a000001u);
  EXPECT_EQ(addr.to_string(), "10.0.0.1");
}

// --- prefixes ---------------------------------------------------------------

TEST(Prefix, NormalizesHostBits) {
  const Prefix p{Ipv4Address{192, 168, 1, 200}, 24};
  EXPECT_EQ(p.base().to_string(), "192.168.1.0");
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
}

TEST(Prefix, ContainsAddress) {
  const auto p = Prefix::parse("10.20.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->contains(*Ipv4Address::parse("10.20.255.255")));
  EXPECT_FALSE(p->contains(*Ipv4Address::parse("10.21.0.0")));
}

TEST(Prefix, ContainsPrefix) {
  const auto outer = Prefix::parse("10.0.0.0/8");
  const auto inner = Prefix::parse("10.99.0.0/16");
  ASSERT_TRUE(outer && inner);
  EXPECT_TRUE(outer->contains(*inner));
  EXPECT_FALSE(inner->contains(*outer));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all{Ipv4Address{0}, 0};
  EXPECT_TRUE(all.contains(Ipv4Address{0xffffffff}));
  EXPECT_EQ(all.size(), 1ull << 32);
}

TEST(Prefix, SizesAndBlockCounts) {
  EXPECT_EQ(Prefix::parse("1.0.0.0/24")->block24_count(), 1u);
  EXPECT_EQ(Prefix::parse("1.0.0.0/16")->block24_count(), 256u);
  EXPECT_EQ(Prefix::parse("1.0.0.0/25")->block24_count(), 0u);
  EXPECT_EQ(Prefix::parse("1.0.0.0/30")->size(), 4u);
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("1.2.3.4"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33"));
  EXPECT_FALSE(Prefix::parse("1.2.3/24"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/-1"));
}

TEST(Block24, RoundTripsThroughAddress) {
  const Block24 block{0x010203};
  EXPECT_EQ(block.base_address().to_string(), "1.2.3.0");
  EXPECT_EQ(block.address(77).to_string(), "1.2.3.77");
  EXPECT_EQ(Block24::containing(block.address(255)), block);
  EXPECT_EQ(block.prefix().to_string(), "1.2.3.0/24");
}

// --- checksum ----------------------------------------------------------------

TEST(Checksum, KnownVector) {
  // RFC 1071 worked example: 0x0001, 0xf203, 0xf4f5, 0xf6f7.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03,
                                       0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0xffff - (0xddf2));
}

TEST(Checksum, ValidatesToZero) {
  // A buffer with its checksum appended sums to zero.
  std::vector<std::uint8_t> data{0x45, 0x00, 0x00, 0x1c, 0xbe, 0xef};
  const std::uint16_t sum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(sum >> 8));
  data.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, OddLengthHandled) {
  const std::vector<std::uint8_t> data{0xab};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xab00));
}

TEST(Checksum, AccumulatorMatchesSingleShot) {
  util::Rng rng{3};
  std::vector<std::uint8_t> data(301);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  // Split at an odd boundary to exercise the straddling-byte path.
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>{data.data(), 151});
  acc.add(std::span<const std::uint8_t>{data.data() + 151, 150});
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

// --- packets ------------------------------------------------------------------

ProbePayload test_payload() {
  ProbePayload p;
  p.measurement_id = 0xdeadbeef;
  p.tx_time_usec = 123456789;
  p.original_target = Ipv4Address{1, 2, 3, 4};
  return p;
}

TEST(Packet, EchoRequestRoundTrip) {
  const PacketBytes pkt = build_echo_request(
      Ipv4Address{192, 0, 2, 1}, Ipv4Address{1, 2, 3, 4}, 42, 7,
      test_payload());
  const auto ip = Ipv4Header::parse(pkt.data);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->source, (Ipv4Address{192, 0, 2, 1}));
  EXPECT_EQ(ip->destination, (Ipv4Address{1, 2, 3, 4}));
  EXPECT_EQ(ip->protocol, IpProtocol::kIcmp);
  EXPECT_EQ(ip->total_length, pkt.data.size());

  const auto icmp = IcmpEcho::parse(
      std::span<const std::uint8_t>{pkt.data}.subspan(Ipv4Header::kSize));
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, IcmpType::kEchoRequest);
  EXPECT_EQ(icmp->identifier, 42);
  EXPECT_EQ(icmp->sequence, 7);

  const auto payload = ProbePayload::parse(icmp->payload);
  ASSERT_TRUE(payload);
  EXPECT_EQ(payload->measurement_id, 0xdeadbeefu);
  EXPECT_EQ(payload->tx_time_usec, 123456789);
  EXPECT_EQ(payload->original_target, (Ipv4Address{1, 2, 3, 4}));
}

TEST(Packet, ReplyEchoesPayloadAndSwapsAddresses) {
  const PacketBytes request = build_echo_request(
      Ipv4Address{192, 0, 2, 1}, Ipv4Address{1, 2, 3, 4}, 1, 2,
      test_payload());
  const auto ip = Ipv4Header::parse(request.data);
  const auto icmp = IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(Ipv4Header::kSize));
  const PacketBytes reply =
      build_echo_reply(*ip, *icmp, Ipv4Address{1, 2, 3, 9});

  const auto parsed = parse_reply(reply.data);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ip.source, (Ipv4Address{1, 2, 3, 9}));
  EXPECT_EQ(parsed->ip.destination, (Ipv4Address{192, 0, 2, 1}));
  EXPECT_EQ(parsed->icmp.type, IcmpType::kEchoReply);
  EXPECT_EQ(parsed->probe.original_target, (Ipv4Address{1, 2, 3, 4}));
}

TEST(Packet, ParseReplyRejectsRequests) {
  const PacketBytes request = build_echo_request(
      Ipv4Address{192, 0, 2, 1}, Ipv4Address{1, 2, 3, 4}, 1, 2,
      test_payload());
  EXPECT_FALSE(parse_reply(request.data));
}

TEST(Packet, ParseRejectsTruncation) {
  const PacketBytes pkt = build_echo_request(
      Ipv4Address{192, 0, 2, 1}, Ipv4Address{1, 2, 3, 4}, 1, 2,
      test_payload());
  for (std::size_t len = 0; len < pkt.data.size(); len += 3) {
    EXPECT_FALSE(parse_reply(
        std::span<const std::uint8_t>{pkt.data.data(), len}))
        << "accepted truncated packet of " << len << " bytes";
  }
}

TEST(Packet, SingleBitCorruptionIsDetected) {
  const auto request = build_echo_request(Ipv4Address{192, 0, 2, 1},
                                          Ipv4Address{1, 2, 3, 4}, 1, 2,
                                          test_payload());
  const auto ip = Ipv4Header::parse(request.data);
  const auto icmp = IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(Ipv4Header::kSize));
  const PacketBytes good =
      build_echo_reply(*ip, *icmp, Ipv4Address{1, 2, 3, 4});
  ASSERT_TRUE(parse_reply(good.data));
  // Flip every byte (one at a time); the checksums must catch each one
  // except bits that only affect fields parse doesn't validate.
  int accepted = 0;
  for (std::size_t i = 0; i < good.data.size(); ++i) {
    PacketBytes bad = good;
    bad.data[i] ^= 0x01;
    if (parse_reply(bad.data)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Packet, ChecksumFieldsAreValid) {
  const PacketBytes pkt = build_echo_request(
      Ipv4Address{203, 0, 113, 7}, Ipv4Address{9, 9, 9, 9}, 3, 4,
      test_payload());
  // IPv4 header checksum validates to zero over the header.
  EXPECT_EQ(internet_checksum(
                std::span<const std::uint8_t>{pkt.data.data(),
                                              Ipv4Header::kSize}),
            0);
  // ICMP checksum validates to zero over the ICMP part.
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>{pkt.data}.subspan(
                Ipv4Header::kSize)),
            0);
}

// --- prefix trie -------------------------------------------------------------

TEST(PrefixTrie, LongestMatchWins) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  const auto hit = trie.lookup(*Ipv4Address::parse("10.1.2.3"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->second, 24);
  EXPECT_EQ(trie.lookup(*Ipv4Address::parse("10.1.9.9"))->second, 16);
  EXPECT_EQ(trie.lookup(*Ipv4Address::parse("10.9.9.9"))->second, 8);
  EXPECT_FALSE(trie.lookup(*Ipv4Address::parse("11.0.0.1")));
}

TEST(PrefixTrie, InsertReplaceSemantics) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("1.2.3.0/24"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("1.2.3.0/24"), 2));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(*Ipv4Address::parse("1.2.3.4"))->second, 2);
}

TEST(PrefixTrie, ExactFind) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("5.0.0.0/8"), 5);
  EXPECT_NE(trie.find(*Prefix::parse("5.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.find(*Prefix::parse("5.0.0.0/9")), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.insert(Prefix{Ipv4Address{0}, 0}, -1);
  EXPECT_EQ(trie.lookup(Ipv4Address{0xdeadbeef})->second, -1);
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("2.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("1.0.0.0/8"), 2);
  trie.insert(*Prefix::parse("1.128.0.0/9"), 3);
  std::vector<std::string> seen;
  trie.for_each([&](Prefix p, int) { seen.push_back(p.to_string()); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "1.0.0.0/8");
  EXPECT_EQ(seen[1], "1.128.0.0/9");
  EXPECT_EQ(seen[2], "2.0.0.0/8");
}

/// Property sweep: trie lookups agree with brute-force longest match over
/// random prefix sets.
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, AgreesWithBruteForce) {
  util::Rng rng{GetParam()};
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.range(4, 28));
    const Prefix p{Ipv4Address{static_cast<std::uint32_t>(rng())}, length};
    if (trie.insert(p, prefixes.size())) prefixes.push_back(p);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address addr{static_cast<std::uint32_t>(rng())};
    // Brute force: most specific containing prefix.
    const Prefix* expected = nullptr;
    for (const Prefix& p : prefixes) {
      if (p.contains(addr) &&
          (expected == nullptr || p.length() > expected->length())) {
        expected = &p;
      }
    }
    const auto actual = trie.lookup(addr);
    if (expected == nullptr) {
      EXPECT_FALSE(actual);
    } else {
      ASSERT_TRUE(actual);
      EXPECT_EQ(actual->first, *expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Property sweep: packet round trip with random payload contents.
class PacketRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketRoundTrip, SurvivesWire) {
  util::Rng rng{GetParam()};
  ProbePayload payload;
  payload.measurement_id = static_cast<std::uint32_t>(rng());
  payload.tx_time_usec = static_cast<std::int64_t>(rng() >> 1);
  payload.original_target = Ipv4Address{static_cast<std::uint32_t>(rng())};
  const Ipv4Address src{static_cast<std::uint32_t>(rng())};
  const Ipv4Address dst = payload.original_target;
  const auto id = static_cast<std::uint16_t>(rng());
  const auto seq = static_cast<std::uint16_t>(rng());

  const PacketBytes request = build_echo_request(src, dst, id, seq, payload);
  const auto ip = Ipv4Header::parse(request.data);
  ASSERT_TRUE(ip);
  const auto icmp = IcmpEcho::parse(
      std::span<const std::uint8_t>{request.data}.subspan(Ipv4Header::kSize));
  ASSERT_TRUE(icmp);
  const PacketBytes reply = build_echo_reply(*ip, *icmp, dst);
  const auto parsed = parse_reply(reply.data);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->probe.measurement_id, payload.measurement_id);
  EXPECT_EQ(parsed->probe.tx_time_usec, payload.tx_time_usec);
  EXPECT_EQ(parsed->probe.original_target, payload.original_target);
  EXPECT_EQ(parsed->icmp.identifier, id);
  EXPECT_EQ(parsed->icmp.sequence, seq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketRoundTrip,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace vp::net
