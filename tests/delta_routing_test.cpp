// The delta-routing contract: RoutingEngine::apply() must be
// *indistinguishable* from throwing the session away and recomputing the
// post-delta configuration from scratch — same candidates, same PoP
// catchments, same per-block sites — while doing strictly less work and
// structurally sharing the state of every untouched AS.
//
// The sweep drives ≥50 seeded topologies through random
// announce / withdraw / prepend sequences (plus no-op deltas and
// delta-then-revert round-trips) and compares every applied table
// bit-for-bit against a fresh full(). A concurrent case hammers one
// engine from writer and reader threads (the TSan lane runs it).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "topology/generator.hpp"

namespace vp::bgp {
namespace {

topology::Topology make_topo(std::uint64_t seed) {
  topology::TopologyConfig config;
  config.seed = seed;
  config.target_blocks = 2'000;
  return topology::generate_topology(config);
}

/// Asserts the two tables answer identically everywhere: per-AS
/// candidate lists (CandidateRoute ==), per-PoP sites, per-block sites.
void expect_identical(const topology::Topology& topo, const RoutingTable& got,
                      const RoutingTable& want, const char* context) {
  for (topology::AsId as = 0; as < topo.as_count(); ++as) {
    ASSERT_EQ(got.state(as).candidates, want.state(as).candidates)
        << context << ": AS " << as;
    const auto& node = topo.as_at(as);
    for (std::uint16_t pop = 0; pop < node.pops.size(); ++pop) {
      ASSERT_EQ(got.site_for_pop(as, pop), want.site_for_pop(as, pop))
          << context << ": AS " << as << " pop " << pop;
    }
  }
  for (const topology::BlockInfo& info : topo.blocks()) {
    ASSERT_EQ(got.site_for_block(info.block), want.site_for_block(info.block))
        << context << ": block " << info.block.index();
  }
}

/// One random mutation step, biased toward prepend changes (the paper's
/// sweep) with announce/withdraw mixed in.
anycast::ConfigDelta random_delta(std::mt19937_64& rng,
                                  const anycast::Deployment& current) {
  const auto site = static_cast<anycast::SiteId>(rng() % current.sites.size());
  switch (rng() % 4) {
    case 0:
      return anycast::ConfigDelta::withdraw(site);
    case 1:
      return anycast::ConfigDelta::announce(site);
    default:
      return anycast::ConfigDelta::set_prepend(site,
                                               static_cast<int>(rng() % 4));
  }
}

class DeltaRouting : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaRouting, ApplyMatchesFreshFullCompute) {
  const std::uint64_t seed = GetParam();
  const topology::Topology topo = make_topo(seed);
  const anycast::Deployment base = (seed % 2) ? anycast::make_tangled(topo)
                                              : anycast::make_broot(topo);
  RoutingOptions options;
  options.tiebreak_salt = seed * 0x9e3779b97f4a7c15ULL + 1;

  RoutingEngine engine{topo, base, options};
  const auto initial = engine.full();
  expect_identical(topo, *initial,
                   *RoutingEngine{topo, base, options}.full(), "initial");

  std::mt19937_64 rng{seed ^ 0xdeadbeef};
  auto previous = initial;
  for (int step = 0; step < 6; ++step) {
    const anycast::ConfigDelta delta = random_delta(rng, engine.deployment());
    const ApplyResult result = engine.apply(delta);
    ASSERT_NE(result.table, nullptr);
    ASSERT_LE(result.recomputed_ases, static_cast<std::size_t>(topo.as_count()));

    // Ground truth: a brand-new engine routing the post-delta config.
    RoutingEngine fresh{topo, engine.deployment(), options};
    expect_identical(topo, *result.table, *fresh.full(), "after delta");

    // Unchanged ASes must be structurally shared with the predecessor,
    // and the changed list must cover every AS whose routes differ.
    if (!result.full_recompute) {
      std::size_t changed_idx = 0;
      for (topology::AsId as = 0; as < topo.as_count(); ++as) {
        const bool listed = changed_idx < result.changed_ases.size() &&
                            result.changed_ases[changed_idx] == as;
        if (listed) ++changed_idx;
        if (!listed) {
          ASSERT_EQ(result.table->shared_state(as),
                    previous->shared_state(as))
              << "AS " << as << " not in changed set but state re-created";
        }
      }
    }
    previous = result.table;
  }
}

TEST_P(DeltaRouting, NoOpDeltaReturnsCurrentTable) {
  const std::uint64_t seed = GetParam();
  const topology::Topology topo = make_topo(seed);
  const anycast::Deployment base = anycast::make_tangled(topo);
  RoutingEngine engine{topo, base};
  const auto table = engine.full();

  // An empty delta and a field-level no-op (re-asserting the current
  // prepend) must both return the current table unchanged.
  EXPECT_EQ(engine.apply(anycast::ConfigDelta{}).table, table);
  const auto noop = anycast::ConfigDelta::set_prepend(0, base.sites[0].prepend);
  const ApplyResult result = engine.apply(noop);
  EXPECT_EQ(result.table, table);
  EXPECT_TRUE(result.changed_ases.empty());
}

TEST_P(DeltaRouting, DeltaThenRevertRoundTripsExactly) {
  const std::uint64_t seed = GetParam();
  const topology::Topology topo = make_topo(seed);
  const anycast::Deployment base = anycast::make_tangled(topo);
  RoutingOptions options;
  options.tiebreak_salt = seed + 7;
  RoutingEngine engine{topo, base, options};
  const auto before = engine.full();

  const auto site =
      static_cast<anycast::SiteId>(seed % base.sites.size());
  engine.apply(anycast::ConfigDelta::set_prepend(site, 3));
  engine.apply(anycast::ConfigDelta::withdraw(site));
  engine.apply(anycast::ConfigDelta::announce(site));
  const ApplyResult reverted =
      engine.apply(anycast::ConfigDelta::set_prepend(
          site, base.sites[static_cast<std::size_t>(site)].prepend));

  ASSERT_EQ(anycast::fingerprint(engine.deployment()),
            anycast::fingerprint(base));
  expect_identical(topo, *reverted.table, *before, "after revert");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRouting,
                         ::testing::Range<std::uint64_t>(1, 51));

// Writer threads push deltas through one engine while reader threads
// walk whatever table is current. Tables are immutable and apply() is
// serialized internally, so this must be clean under TSan and every
// observed table must be internally consistent.
TEST(DeltaRoutingConcurrency, ConcurrentApplyAndRead) {
  const topology::Topology topo = make_topo(99);
  const anycast::Deployment base = anycast::make_tangled(topo);
  RoutingEngine engine{topo, base};
  engine.full();

  constexpr int kThreads = 8;
  constexpr int kStepsPerWriter = 12;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> tables_read{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    if (t % 2 == 0) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng{static_cast<std::uint64_t>(t) * 1337 + 1};
        for (int step = 0; step < kStepsPerWriter; ++step) {
          const auto site =
              static_cast<anycast::SiteId>(rng() % base.sites.size());
          const auto delta =
              (rng() % 2) ? anycast::ConfigDelta::set_prepend(
                                site, static_cast<int>(rng() % 4))
                          : anycast::ConfigDelta::announce(site);
          const ApplyResult result = engine.apply(delta);
          ASSERT_NE(result.table, nullptr);
        }
      });
    } else {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const auto table = engine.current();
          ASSERT_NE(table, nullptr);
          for (topology::AsId as = 0; as < topo.as_count(); ++as) {
            const AsRoutingState& state = table->state(as);
            for (const CandidateRoute& cand : state.candidates)
              ASSERT_GE(cand.site, 0);
          }
          tables_read.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  for (int t = 0; t < kThreads; t += 2) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (int t = 1; t < kThreads; t += 2) threads[static_cast<std::size_t>(t)].join();
  EXPECT_GT(tables_read.load(), 0u);

  // The final state must still equal a fresh computation of wherever the
  // interleaved writers ended up.
  RoutingEngine fresh{topo, engine.deployment()};
  expect_identical(topo, *engine.current(), *fresh.full(), "post-concurrency");
}

}  // namespace
}  // namespace vp::bgp
