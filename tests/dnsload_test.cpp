#include <gtest/gtest.h>

#include <cmath>

#include "dnsload/load_model.hpp"
#include "sim/responsiveness.hpp"
#include "topology/generator.hpp"

namespace vp::dnsload {
namespace {

class LoadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::TopologyConfig config;
    config.seed = 91;
    config.target_blocks = 10'000;
    topo_ = new topology::Topology(topology::generate_topology(config));
    model_ = new sim::ResponsivenessModel(*topo_, {});
    LoadConfig load_config;
    load_config.seed = 5;
    load_ = new LoadModel(*topo_, *model_, load_config);
  }
  static void TearDownTestSuite() {
    delete load_;
    delete model_;
    delete topo_;
  }
  static const topology::Topology& topo() { return *topo_; }
  static const sim::ResponsivenessModel& model() { return *model_; }
  static const LoadModel& load() { return *load_; }

 private:
  static const topology::Topology* topo_;
  static const sim::ResponsivenessModel* model_;
  static const LoadModel* load_;
};

const topology::Topology* LoadTest::topo_ = nullptr;
const sim::ResponsivenessModel* LoadTest::model_ = nullptr;
const LoadModel* LoadTest::load_ = nullptr;

TEST_F(LoadTest, OnlyAMinorityOfBlocksQuery) {
  const double fraction = static_cast<double>(load().blocks().size()) /
                          static_cast<double>(topo().block_count());
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.50);
}

TEST_F(LoadTest, TotalsAreNormalized) {
  const double expected =
      load().config().mean_daily_per_block *
      static_cast<double>(load().blocks().size());
  EXPECT_NEAR(load().total_daily_queries(), expected, expected * 1e-9);
  EXPECT_GT(load().total_daily_good_replies(), 0.0);
  EXPECT_LT(load().total_daily_good_replies(), load().total_daily_queries());
}

TEST_F(LoadTest, DailyQueriesLookupAgreesWithBlocks) {
  double sum = 0.0;
  for (const BlockLoad& bl : load().blocks()) {
    EXPECT_DOUBLE_EQ(load().daily_queries(bl.block), bl.daily_queries);
    EXPECT_GT(bl.daily_queries, 0.0);
    EXPECT_GE(bl.good_fraction, 0.02f);
    EXPECT_LE(bl.good_fraction, 0.98f);
    sum += bl.daily_queries;
  }
  EXPECT_NEAR(sum, load().total_daily_queries(), sum * 1e-9);
  EXPECT_DOUBLE_EQ(load().daily_queries(net::Block24{0xffffff}), 0.0);
}

TEST_F(LoadTest, LoadIsHeavyTailed) {
  // Top 1% of querying blocks should carry a disproportionate share.
  std::vector<double> volumes;
  for (const BlockLoad& bl : load().blocks())
    volumes.push_back(bl.daily_queries);
  std::sort(volumes.begin(), volumes.end(), std::greater<>());
  const std::size_t top = volumes.size() / 100;
  double top_sum = 0, total = 0;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    if (i < top) top_sum += volumes[i];
    total += volumes[i];
  }
  EXPECT_GT(top_sum / total, 0.10);
}

TEST_F(LoadTest, QueryingBlocksBiasedTowardResponsive) {
  std::size_t querying_responsive = 0;
  for (const BlockLoad& bl : load().blocks())
    if (model().ever_responds(bl.block)) ++querying_responsive;
  const double fraction =
      static_cast<double>(querying_responsive) /
      static_cast<double>(load().blocks().size());
  // Resolvers live in ping-responsive networks (Table 5: ~87% mappable).
  EXPECT_GT(fraction, 0.80);
  EXPECT_LT(fraction, 0.98);
}

TEST_F(LoadTest, MembershipStableAcrossDates) {
  LoadConfig april;
  april.seed = 100;
  april.membership_seed = 42;
  LoadConfig may;
  may.seed = 200;
  may.membership_seed = 42;
  const LoadModel load_april{topo(), model(), april};
  const LoadModel load_may{topo(), model(), may};
  ASSERT_EQ(load_april.blocks().size(), load_may.blocks().size());
  bool volumes_differ = false;
  for (std::size_t i = 0; i < load_april.blocks().size(); ++i) {
    EXPECT_EQ(load_april.blocks()[i].block, load_may.blocks()[i].block);
    volumes_differ |= std::abs(load_april.blocks()[i].daily_queries -
                               load_may.blocks()[i].daily_queries) > 1e-9;
  }
  EXPECT_TRUE(volumes_differ);
}

TEST_F(LoadTest, HourlyWeightsSumToOne) {
  for (const double lon : {-120.0, 0.0, 77.0, 139.0}) {
    double sum = 0.0;
    for (int h = 0; h < 24; ++h) sum += LoadModel::hourly_weight(lon, h);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "lon " << lon;
  }
}

TEST_F(LoadTest, DiurnalPeakFollowsLongitude) {
  // Peak hour in UTC should differ by ~8h between lon 0 and lon -120.
  const auto peak_hour = [](double lon) {
    int best = 0;
    for (int h = 1; h < 24; ++h)
      if (LoadModel::hourly_weight(lon, h) >
          LoadModel::hourly_weight(lon, best))
        best = h;
    return best;
  };
  const int greenwich = peak_hour(0.0);
  const int california = peak_hour(-120.0);
  EXPECT_EQ((california - greenwich + 24) % 24, 8);
}

TEST_F(LoadTest, NatDenseCountriesCarryMoreLoadPerBlock) {
  EXPECT_GT(country_volume_multiplier(LoadProfile::kRootLike, "IN"), 2.0);
  EXPECT_EQ(country_volume_multiplier(LoadProfile::kRootLike, "US"), 1.0);
  EXPECT_GT(country_volume_multiplier(LoadProfile::kNlLike, "NL"), 100.0);
  EXPECT_GT(country_volume_multiplier(LoadProfile::kNlLike, "DE"), 10.0);
}

TEST_F(LoadTest, NlProfileConcentratesInEurope) {
  LoadConfig config;
  config.seed = 7;
  config.profile = LoadProfile::kNlLike;
  const LoadModel nl{topo(), model(), config};
  double europe = 0, total = 0;
  for (const BlockLoad& bl : nl.blocks()) {
    const auto geo_record = topo().geodb().lookup(bl.block);
    if (!geo_record) continue;
    total += bl.daily_queries;
    if (geo_record->continent == geo::Continent::kEurope)
      europe += bl.daily_queries;
  }
  EXPECT_GT(europe / total, 0.55);  // Figure 4b: majority EU traffic

  // And the root-like profile must NOT be Europe-dominated.
  double root_europe = 0, root_total = 0;
  for (const BlockLoad& bl : load().blocks()) {
    const auto geo_record = topo().geodb().lookup(bl.block);
    if (!geo_record) continue;
    root_total += bl.daily_queries;
    if (geo_record->continent == geo::Continent::kEurope)
      root_europe += bl.daily_queries;
  }
  EXPECT_LT(root_europe / root_total, 0.45);
}

TEST_F(LoadTest, DeterministicForSameConfig) {
  LoadConfig config;
  config.seed = 5;
  const LoadModel again{topo(), model(), config};
  ASSERT_EQ(again.blocks().size(), load().blocks().size());
  EXPECT_DOUBLE_EQ(again.total_daily_queries(), load().total_daily_queries());
}

}  // namespace
}  // namespace vp::dnsload
