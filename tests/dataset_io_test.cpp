#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "analysis/scenario.hpp"
#include "core/dataset_io.hpp"
#include "util/rng.hpp"

namespace vp::core {
namespace {

anycast::Deployment test_deployment() {
  topology::Topology empty;
  return anycast::make_broot(empty);
}

RoundResult small_round() {
  RoundResult round;
  round.map.set(net::Block24{0x010203}, 0);
  round.map.set(net::Block24{0x010204}, 1);
  round.map.set(net::Block24{0x0a0b0c}, 0);
  round.rtt_ms.emplace(net::Block24{0x010203}, 12.34f);
  round.rtt_ms.emplace(net::Block24{0x010204}, 256.5f);
  round.rtt_ms.emplace(net::Block24{0x0a0b0c}, 99.99f);
  return round;
}

TEST(DatasetIo, CatchmentCsvRoundTrip) {
  const auto deployment = test_deployment();
  const RoundResult round = small_round();
  std::stringstream stream;
  write_catchment_csv(stream, round, deployment);

  const auto loaded = read_catchment_csv(stream, deployment);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->map.mapped_blocks(), round.map.mapped_blocks());
  for (const auto& [block, site] : round.map.entries()) {
    EXPECT_EQ(loaded->map.site_of(block), site);
    ASSERT_TRUE(loaded->rtt_ms.count(block));
    EXPECT_NEAR(loaded->rtt_ms.at(block), round.rtt_ms.at(block), 0.01);
  }
}

TEST(DatasetIo, CatchmentCsvIsSortedAndStable) {
  const auto deployment = test_deployment();
  std::stringstream a, b;
  write_catchment_csv(a, small_round(), deployment);
  write_catchment_csv(b, small_round(), deployment);
  EXPECT_EQ(a.str(), b.str());
  // Sorted by block: 1.2.3.0 before 1.2.4.0 before 10.11.12.0.
  const std::string text = a.str();
  EXPECT_LT(text.find("1.2.3.0/24"), text.find("1.2.4.0/24"));
  EXPECT_LT(text.find("1.2.4.0/24"), text.find("10.11.12.0/24"));
}

TEST(DatasetIo, CatchmentRejectsMalformedInput) {
  const auto deployment = test_deployment();
  const auto reject = [&](const std::string& text) {
    std::stringstream stream{text};
    EXPECT_FALSE(read_catchment_csv(stream, deployment)) << text;
  };
  reject("");                                      // no header
  reject("wrong,header,row\n");                    // bad header
  reject("block,site,rtt_ms\n1.2.3.0/24,LAX\n");   // missing field
  reject("block,site,rtt_ms\n1.2.3.0/24,XXX,1\n"); // unknown site
  reject("block,site,rtt_ms\nnot-a-prefix,LAX,1\n");
  reject("block,site,rtt_ms\n1.2.0.0/16,LAX,1\n");  // not a /24
  reject("block,site,rtt_ms\n1.2.3.0/24,LAX,-5\n"); // negative RTT
  reject("block,site,rtt_ms\n1.2.3.0/24,LAX,abc\n");
  reject(
      "block,site,rtt_ms\n1.2.3.0/24,LAX,1\n1.2.3.0/24,MIA,2\n");  // dup
}

TEST(DatasetIo, LoadCsvRoundTrip) {
  analysis::ScenarioConfig config;
  config.scale = 0.03;
  const analysis::Scenario scenario{config};
  const auto load = scenario.broot_load(1);

  std::stringstream stream;
  write_load_csv(stream, load);
  const auto dataset = read_load_csv(stream);
  ASSERT_TRUE(dataset);
  ASSERT_EQ(dataset->blocks.size(), load.blocks().size());
  EXPECT_NEAR(dataset->total_daily_queries, load.total_daily_queries(),
              load.total_daily_queries() * 1e-4);
  for (std::size_t i = 0; i < dataset->blocks.size(); i += 13) {
    EXPECT_EQ(dataset->blocks[i].block, load.blocks()[i].block);
    EXPECT_NEAR(dataset->blocks[i].daily_queries,
                load.blocks()[i].daily_queries,
                load.blocks()[i].daily_queries * 1e-4 + 1e-9);
  }
}

TEST(DatasetIo, LoadCsvRejectsMalformed) {
  const auto reject = [&](const std::string& text) {
    std::stringstream stream{text};
    EXPECT_FALSE(read_load_csv(stream)) << text;
  };
  reject("");
  reject("block,daily_queries,good_fraction\n1.2.3.0/24,-1,0.5\n");
  reject("block,daily_queries,good_fraction\n1.2.3.0/24,10,1.5\n");
  reject("block,daily_queries,good_fraction\n1.2.3.0/24,10\n");
}

TEST(DatasetIo, FileRoundTrip) {
  const auto deployment = test_deployment();
  const RoundResult round = small_round();
  const std::string path = "/tmp/vp_dataset_io_test.csv";
  ASSERT_TRUE(save_catchment(path, round, deployment));
  const auto loaded = load_catchment(path, deployment);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->map.mapped_blocks(), 3u);
  EXPECT_FALSE(load_catchment("/nonexistent/nope.csv", deployment));
  std::remove(path.c_str());
}

TEST(DatasetIo, TruncatedCatchmentFileIsRejectedCleanly) {
  // A partially-written dataset (disk full, killed exporter) must fail
  // the load as a whole, never crash or return a half-read map.
  const auto deployment = test_deployment();
  std::stringstream full;
  write_catchment_csv(full, small_round(), deployment);
  const std::string text = full.str();
  const std::string path = "/tmp/vp_dataset_io_truncated.csv";
  // Chop so the surviving tail is a structurally broken row (losing
  // only trailing digits would still parse): mid-header, mid-prefix of
  // the last row, and right after the last row's site field.
  for (const std::size_t keep :
       {std::size_t{8}, text.rfind('\n', text.size() - 2) + 3,
        text.rfind(',')}) {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, keep);
    out.close();
    EXPECT_FALSE(load_catchment(path, deployment)) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, BadMagicIsRejectedCleanly) {
  // Wrong "magic" (header line) — including a load CSV handed to the
  // catchment reader and vice versa — must be a clean nullopt.
  const auto deployment = test_deployment();
  std::stringstream load_header{"block,daily_queries,good_fraction\n"};
  EXPECT_FALSE(read_catchment_csv(load_header, deployment));
  std::stringstream catchment_header{"block,site,rtt_ms\n"};
  EXPECT_FALSE(read_load_csv(catchment_header));
  std::stringstream bom{"\xef\xbb\xbf"
                        "block,site,rtt_ms\n"};
  EXPECT_FALSE(read_catchment_csv(bom, deployment));
  std::stringstream binary{std::string("\x89PNG\r\n\x1a\n\0\0\0", 11)};
  EXPECT_FALSE(read_catchment_csv(binary, deployment));
  EXPECT_FALSE(read_load_csv(binary));
}

TEST(DatasetIo, CorruptedRowsAreRejectedCleanly) {
  const auto deployment = test_deployment();
  const auto reject = [&](const std::string& row) {
    std::stringstream stream{"block,site,rtt_ms\n" + row + "\n"};
    EXPECT_FALSE(read_catchment_csv(stream, deployment)) << row;
  };
  reject("1.2.3.0/24,LAX,1.0,extra-field");
  reject("1.2.3.0/24,LAX,");                       // empty numeric field
  reject(",,");                                    // all fields empty
  reject("1.2.3.0/24,LAX,nan");                    // non-finite RTT
  reject("1.2.3.0/24,LAX,1e");                     // dangling exponent
  reject("999.2.3.0/24,LAX,1.0");                  // octet out of range
  reject(std::string("1.2.3.0/24,L\0X,1.0", 18));  // embedded NUL
  reject("1.2.3.0/24,LAX,1.0\r");                  // CRLF artifacts

  const auto reject_load = [&](const std::string& row) {
    std::stringstream stream{"block,daily_queries,good_fraction\n" + row +
                             "\n"};
    EXPECT_FALSE(read_load_csv(stream)) << row;
  };
  reject_load("1.2.3.0/24,abc,0.5");
  reject_load("1.2.3.0/24,10,0.5,extra");
  reject_load("garbage row with no commas at all");
}

TEST(DatasetIo, LoadCsvRejectsDuplicateBlockRows) {
  // A repeated block row must fail the load: silently accepting it would
  // double-count the block into total_daily_queries.
  std::stringstream dup{
      "block,daily_queries,good_fraction\n"
      "1.2.3.0/24,10,0.5\n"
      "4.5.6.0/24,20,0.5\n"
      "1.2.3.0/24,10,0.5\n"};
  EXPECT_FALSE(read_load_csv(dup));
  std::stringstream unique{
      "block,daily_queries,good_fraction\n"
      "1.2.3.0/24,10,0.5\n"
      "4.5.6.0/24,20,0.5\n"};
  const auto dataset = read_load_csv(unique);
  ASSERT_TRUE(dataset);
  EXPECT_DOUBLE_EQ(dataset->total_daily_queries, 30.0);
}

// ---- randomized round-trip properties ---------------------------------
//
// write_* → read_* must be the identity up to the declared formatting
// precision, and a second write must be byte-identical to the first
// (the formats are fixpoints of their own parse→print cycle).

TEST(DatasetIo, CatchmentRoundTripPropertyRandomized) {
  const auto deployment = test_deployment();
  util::Rng rng{2024};
  // RTT edge values the formatter must survive: zero, sub-precision
  // fractions (round to 0.00), large values, and exact fractions.
  const float edge_rtts[] = {0.0f, 0.004f, 0.25f, 123.456f, 987654.3f};
  for (int iteration = 0; iteration < 40; ++iteration) {
    RoundResult round;
    const int entries = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < entries; ++i) {
      const net::Block24 block{static_cast<std::uint32_t>(rng.below(1 << 24))};
      if (round.map.contains(block)) continue;
      round.map.set(block, static_cast<anycast::SiteId>(
                               rng.below(deployment.sites.size())));
      const float rtt = rng.chance(0.2)
                            ? edge_rtts[rng.below(std::size(edge_rtts))]
                            : static_cast<float>(rng.uniform(0.0, 500.0));
      if (rng.chance(0.9)) round.rtt_ms.emplace(block, rtt);
    }
    std::stringstream first;
    write_catchment_csv(first, round, deployment);
    const auto loaded = read_catchment_csv(first, deployment);
    ASSERT_TRUE(loaded) << "iteration " << iteration;
    ASSERT_EQ(loaded->map.mapped_blocks(), round.map.mapped_blocks());
    for (const auto& [block, site] : round.map.entries()) {
      EXPECT_EQ(loaded->map.site_of(block), site);
      const auto rtt = round.rtt_ms.find(block);
      // %.2f rounds to a hundredth; absent RTTs read back as 0.00.
      EXPECT_NEAR(loaded->rtt_ms.at(block),
                  rtt == round.rtt_ms.end() ? 0.0f : rtt->second, 0.0051)
          << "iteration " << iteration;
    }
    std::stringstream second;
    write_catchment_csv(second, *loaded, deployment);
    EXPECT_EQ(first.str(), second.str()) << "iteration " << iteration;
  }
}

TEST(DatasetIo, LoadRoundTripPropertyRandomized) {
  util::Rng rng{4711};
  const double edge_queries[] = {0.0, 0.25, 1.0, 9.87654e11, 1580.5};
  const float edge_good[] = {0.0f, 1.0f, 0.4567f};
  for (int iteration = 0; iteration < 40; ++iteration) {
    std::vector<dnsload::BlockLoad> blocks;
    std::unordered_set<std::uint32_t> used;
    const int entries = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < entries; ++i) {
      const auto index = static_cast<std::uint32_t>(rng.below(1 << 24));
      if (!used.insert(index).second) continue;
      dnsload::BlockLoad bl;
      bl.block = net::Block24{index};
      bl.daily_queries = rng.chance(0.2)
                             ? edge_queries[rng.below(std::size(edge_queries))]
                             : rng.pareto(1.0, 1.2);
      bl.good_fraction = rng.chance(0.2)
                             ? edge_good[rng.below(std::size(edge_good))]
                             : static_cast<float>(rng.uniform());
      blocks.push_back(bl);
    }
    std::stringstream first;
    write_load_csv(first, blocks);
    const auto loaded = read_load_csv(first);
    ASSERT_TRUE(loaded) << "iteration " << iteration;
    ASSERT_EQ(loaded->blocks.size(), blocks.size());
    double expected_total = 0.0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(loaded->blocks[i].block, blocks[i].block);
      // %.6g keeps six significant digits.
      EXPECT_NEAR(loaded->blocks[i].daily_queries, blocks[i].daily_queries,
                  blocks[i].daily_queries * 1e-5 + 1e-9);
      EXPECT_NEAR(loaded->blocks[i].good_fraction, blocks[i].good_fraction,
                  5.1e-5);
      expected_total += loaded->blocks[i].daily_queries;
    }
    EXPECT_DOUBLE_EQ(loaded->total_daily_queries, expected_total);
    std::stringstream second;
    write_load_csv(second, loaded->blocks);
    EXPECT_EQ(first.str(), second.str()) << "iteration " << iteration;
  }
}

TEST(DatasetIo, MeasuredRoundSurvivesExportImport) {
  analysis::ScenarioConfig config;
  config.scale = 0.03;
  const analysis::Scenario scenario{config};
  const auto routes_ptr = scenario.route(scenario.broot());
  const auto& routes = *routes_ptr;
  ProbeConfig probe;
  probe.measurement_id = 50;
  const auto round = scenario.verfploeter().run(routes, {probe, 0});

  std::stringstream stream;
  write_catchment_csv(stream, round, scenario.broot());
  const auto loaded = read_catchment_csv(stream, scenario.broot());
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->map.mapped_blocks(), round.map.mapped_blocks());
  EXPECT_NEAR(loaded->map.fraction_to(0), round.map.fraction_to(0), 1e-9);
}

}  // namespace
}  // namespace vp::core
