// Structural invariants of generated scale topologies: the properties
// every downstream layer assumes (connectivity, an acyclic provider
// hierarchy for incremental BGP, seal-ordering) plus the statistical
// knobs the Fig-7 reproduction depends on (multihoming degree, peering
// density, multi-site-AS fraction).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "anycast/deployment.hpp"
#include "bgp/routing_engine.hpp"
#include "topology/scale_generator.hpp"
#include "topology/topology.hpp"

namespace vp {
namespace {

using topology::AsId;
using topology::AsNode;
using topology::AsTier;
using topology::Relationship;
using topology::ScaleConfig;
using topology::Topology;

ScaleConfig test_config() {
  ScaleConfig config;
  config.seed = 11;
  config.as_count = 2'000;
  config.target_blocks = 24'000;
  config.transit_count = 12;
  return config;
}

std::size_t reachable_from(const Topology& topo, AsId start) {
  std::vector<bool> seen(topo.as_count(), false);
  std::queue<AsId> frontier;
  frontier.push(start);
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const AsId v = frontier.front();
    frontier.pop();
    for (const auto& link : topo.as_at(v).links) {
      if (!seen[link.neighbor]) {
        seen[link.neighbor] = true;
        ++count;
        frontier.push(link.neighbor);
      }
    }
  }
  return count;
}

// Every AS must reach the transit core — an unreachable island would be
// invisible to every anycast deployment and silently shrink the
// denominator of every figure.
TEST(ScaleInvariants, GraphIsConnected) {
  const Topology topo = generate_scale_topology(test_config());
  EXPECT_EQ(reachable_from(topo, 0), topo.as_count());
}

// The transit clique peers pairwise: any two tier-1s are one hop apart,
// which is what makes the core a default-free zone stand-in.
TEST(ScaleInvariants, TransitCoreIsAClique) {
  const ScaleConfig config = test_config();
  const Topology topo = generate_scale_topology(config);
  for (AsId u = 0; u < config.transit_count; ++u) {
    const AsNode& node = topo.as_at(u);
    EXPECT_EQ(node.tier, AsTier::kTransit);
    std::size_t transit_peers = 0;
    for (const auto& link : node.links) {
      if (link.neighbor < config.transit_count) {
        EXPECT_EQ(link.rel, Relationship::kPeer);
        ++transit_peers;
      }
    }
    EXPECT_EQ(transit_peers, config.transit_count - 1) << "transit " << u;
  }
}

// The customer->provider hierarchy is acyclic by construction (providers
// always have lower ids), so the routing engine must take its
// incremental path — never the cyclic-graph full-recompute fallback.
TEST(ScaleInvariants, ProviderHierarchyIsAcyclic) {
  const Topology topo = generate_scale_topology(test_config());
  const auto deployment = anycast::make_generated(topo, 4, 11);
  bgp::RoutingEngine engine{topo, deployment};
  EXPECT_TRUE(engine.incremental_supported());
  ASSERT_NE(engine.full(), nullptr);
  const auto result =
      engine.apply(anycast::ConfigDelta::set_prepend(/*site=*/1, 2));
  EXPECT_FALSE(result.full_recompute);
  EXPECT_LT(result.recomputed_ases, topo.as_count());
}

// Stub multihoming: mean provider degree of stubs tracks
// 1 + multihoming_mean (one primary provider plus a geometric number of
// extras with that mean).
TEST(ScaleInvariants, StubProviderDegreeTracksMultihomingKnob) {
  for (const double multihoming : {0.2, 0.8}) {
    ScaleConfig config = test_config();
    config.multihoming_mean = multihoming;
    const Topology topo = generate_scale_topology(config);
    std::size_t stubs = 0, providers = 0;
    for (AsId v = 0; v < topo.as_count(); ++v) {
      const AsNode& node = topo.as_at(v);
      if (node.tier != AsTier::kStub) continue;
      ++stubs;
      for (const auto& link : node.links)
        if (link.rel == Relationship::kProvider) ++providers;
    }
    ASSERT_GT(stubs, 1000u);
    const double mean =
        static_cast<double>(providers) / static_cast<double>(stubs);
    EXPECT_NEAR(mean, 1.0 + multihoming, 0.15)
        << "multihoming_mean " << multihoming;
  }
}

std::size_t regional_peer_links(const Topology& topo) {
  std::size_t peers = 0;
  for (AsId v = 0; v < topo.as_count(); ++v) {
    const AsNode& node = topo.as_at(v);
    if (node.tier != AsTier::kRegional) continue;
    for (const auto& link : node.links)
      if (link.rel == Relationship::kPeer) ++peers;
  }
  return peers;
}

// Lateral peering among regionals scales with the density knob.
TEST(ScaleInvariants, PeeringDensityKnobMovesPeerCount) {
  ScaleConfig sparse = test_config();
  sparse.peering_density = 0.05;
  ScaleConfig dense = test_config();
  dense.peering_density = 0.60;
  const std::size_t few = regional_peer_links(generate_scale_topology(sparse));
  const std::size_t many = regional_peer_links(generate_scale_topology(dense));
  EXPECT_GT(many, few * 4);
}

double multi_site_fraction(const Topology& topo,
                           const bgp::RoutingTable& routes) {
  std::size_t observed = 0, multi = 0;
  for (AsId v = 0; v < topo.as_count(); ++v) {
    if (topo.as_at(v).block_count == 0) continue;
    ++observed;
    if (routes.distinct_sites(v) > 1) ++multi;
  }
  return static_cast<double>(multi) / static_cast<double>(observed);
}

// The Fig-7 headline (12.7% of ASes served by more than one site) is
// driven by multihoming: more providers means more ties between sites,
// hence more hot-potato/multipath splits. The knob must move the
// fraction in the right direction, strictly.
TEST(ScaleInvariants, MultiSiteFractionIncreasesWithMultihoming) {
  double fractions[2] = {0, 0};
  const double knobs[2] = {0.1, 1.2};
  for (int i = 0; i < 2; ++i) {
    ScaleConfig config = test_config();
    config.multihoming_mean = knobs[i];
    const Topology topo = generate_scale_topology(config);
    const auto deployment = anycast::make_generated(topo, 9, 11);
    bgp::RoutingEngine engine{topo, deployment};
    const auto routes = engine.full();
    fractions[i] = multi_site_fraction(topo, *routes);
  }
  EXPECT_GT(fractions[0], 0.0);
  EXPECT_LT(fractions[0], fractions[1]);
}

// Seal-order invariants the resolver and probe engine rely on: blocks
// sorted by index and owned by the AS whose [first_block, block_count)
// range covers them.
TEST(ScaleInvariants, BlocksAreSealedInOrderAndOwned) {
  const Topology topo = generate_scale_topology(test_config());
  const auto blocks = topo.blocks();
  for (std::size_t i = 1; i < blocks.size(); ++i)
    ASSERT_LT(blocks[i - 1].block.index(), blocks[i].block.index());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const AsNode& owner = topo.as_at(blocks[i].as_id);
    ASSERT_GE(i, owner.first_block);
    ASSERT_LT(i, owner.first_block + owner.block_count);
    ASSERT_LT(blocks[i].pop, owner.pops.size());
  }
}

}  // namespace
}  // namespace vp
