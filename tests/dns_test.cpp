#include <gtest/gtest.h>

#include "anycast/deployment.hpp"
#include "atlas/atlas.hpp"
#include "dns/message.hpp"
#include "util/rng.hpp"

namespace vp::dns {
namespace {

// --- names -------------------------------------------------------------------

TEST(Name, EncodeParseRoundTrip) {
  const Name name{"hostname.bind"};
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(name.encode(wire));
  // 8"hostname" 4"bind" 0
  ASSERT_EQ(wire.size(), 1 + 8 + 1 + 4 + 1u);
  EXPECT_EQ(wire[0], 8);
  EXPECT_EQ(wire[9], 4);
  EXPECT_EQ(wire.back(), 0);

  std::size_t offset = 0;
  const auto parsed = Name::parse(wire, offset);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->text(), "hostname.bind");
  EXPECT_EQ(offset, wire.size());
}

TEST(Name, EncodeRejectsBadLabels) {
  std::vector<std::uint8_t> wire;
  EXPECT_FALSE(Name{"a..b"}.encode(wire));
  EXPECT_FALSE(Name{std::string(64, 'x') + ".com"}.encode(wire));
  EXPECT_TRUE(Name{std::string(63, 'x') + ".com"}.encode(wire));
}

TEST(Name, ParseRejectsTruncation) {
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(Name{"example.com"}.encode(wire));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::size_t offset = 0;
    EXPECT_FALSE(Name::parse(
        std::span<const std::uint8_t>{wire.data(), len}, offset))
        << "accepted truncated name of " << len << " bytes";
  }
}

TEST(Name, ParseFollowsCompressionPointer) {
  // "bind" at offset 0, then a name "host" + pointer to offset 0.
  std::vector<std::uint8_t> wire{4, 'b', 'i', 'n', 'd', 0,
                                 4, 'h', 'o', 's', 't', 0xc0, 0x00};
  std::size_t offset = 6;
  const auto parsed = Name::parse(wire, offset);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->text(), "host.bind");
  EXPECT_EQ(offset, wire.size());
}

TEST(Name, ParseRejectsPointerLoops) {
  // Pointer pointing at itself.
  std::vector<std::uint8_t> wire{0xc0, 0x00};
  std::size_t offset = 0;
  EXPECT_FALSE(Name::parse(wire, offset));
  // Forward pointer (not allowed: must point backwards).
  std::vector<std::uint8_t> forward{0xc0, 0x02, 4, 'b', 'i', 'n', 'd', 0};
  offset = 0;
  EXPECT_FALSE(Name::parse(forward, offset));
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_TRUE(Name{"HOSTNAME.BIND"}.equals_ignore_case(Name{"hostname.bind"}));
  EXPECT_FALSE(Name{"hostname.bind"}.equals_ignore_case(Name{"version.bind"}));
}

// --- records -------------------------------------------------------------------

TEST(ResourceRecord, TxtRoundTrip) {
  const auto rdata = ResourceRecord::txt_rdata("b1.lax.root");
  const auto text = ResourceRecord::txt_text(rdata);
  ASSERT_TRUE(text);
  EXPECT_EQ(*text, "b1.lax.root");
}

TEST(ResourceRecord, TxtRejectsMalformed) {
  EXPECT_FALSE(ResourceRecord::txt_text({}));
  const std::vector<std::uint8_t> overlong{10, 'a', 'b'};
  EXPECT_FALSE(ResourceRecord::txt_text(overlong));
}

// --- messages --------------------------------------------------------------------

TEST(Message, QueryRoundTrip) {
  const Message query = make_hostname_bind_query(0xbeef);
  const auto wire = query.serialize();
  ASSERT_TRUE(wire);
  const auto parsed = Message::parse(*wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->id, 0xbeef);
  EXPECT_FALSE(parsed->is_response);
  ASSERT_EQ(parsed->questions.size(), 1u);
  EXPECT_EQ(parsed->questions[0].name.text(), "hostname.bind");
  EXPECT_EQ(parsed->questions[0].type, Type::kTxt);
  EXPECT_EQ(parsed->questions[0].cls, Class::kChaos);
  EXPECT_TRUE(parsed->answers.empty());
}

TEST(Message, HostnameBindExchange) {
  const Message query = make_hostname_bind_query(7);
  const Message response = make_hostname_bind_response(query, "b1.mia.root");
  EXPECT_TRUE(response.is_response);
  EXPECT_TRUE(response.authoritative);
  EXPECT_EQ(response.id, 7);

  const auto wire = response.serialize();
  ASSERT_TRUE(wire);
  const auto parsed = Message::parse(*wire);
  ASSERT_TRUE(parsed);
  const auto hostname = parse_hostname_bind_response(*parsed);
  ASSERT_TRUE(hostname);
  EXPECT_EQ(*hostname, "b1.mia.root");
}

TEST(Message, WrongQuestionIsRefused) {
  Message query;
  query.id = 9;
  query.questions.push_back(
      Question{Name{"version.bind"}, Type::kTxt, Class::kChaos});
  const Message response = make_hostname_bind_response(query, "b1.lax.root");
  EXPECT_EQ(response.rcode, RCode::kRefused);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_FALSE(parse_hostname_bind_response(response));
}

TEST(Message, InQueryForHostnameBindIsAlsoRefused) {
  Message query;
  query.id = 9;
  query.questions.push_back(
      Question{Name{"hostname.bind"}, Type::kTxt, Class::kIn});
  EXPECT_EQ(make_hostname_bind_response(query, "x").rcode, RCode::kRefused);
}

TEST(Message, ParseRejectsTruncationEverywhere) {
  const Message response = make_hostname_bind_response(
      make_hostname_bind_query(1), "b1.lax.root");
  const auto wire = response.serialize();
  ASSERT_TRUE(wire);
  for (std::size_t len = 0; len < wire->size(); ++len) {
    EXPECT_FALSE(
        Message::parse(std::span<const std::uint8_t>{wire->data(), len}))
        << "accepted truncated message of " << len << " bytes";
  }
}

TEST(Message, ParseIsRobustToFuzz) {
  // No crashes, no acceptance of obviously broken random buffers with
  // impossible section counts.
  util::Rng rng{99};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    Message::parse(junk);  // must not crash
  }
}

// --- the full Atlas exchange -------------------------------------------------------

TEST(HostnameBind, ResolvesEverySiteOfTangled) {
  // Build the deployment presets without a topology (locations only).
  topology::Topology empty;
  // make_tangled only uses world geography, not the topology.
  const anycast::Deployment tangled = anycast::make_tangled(empty);
  for (std::size_t s = 0; s < tangled.sites.size(); ++s) {
    const auto resolved = atlas::resolve_site_via_dns(
        tangled, static_cast<anycast::SiteId>(s), 42);
    EXPECT_EQ(resolved, static_cast<anycast::SiteId>(s))
        << tangled.sites[s].code;
  }
  EXPECT_EQ(atlas::resolve_site_via_dns(tangled, anycast::kUnknownSite, 1),
            anycast::kUnknownSite);
}

}  // namespace
}  // namespace vp::dns
