// PlaybookOptimizer correctness properties (ISSUE 9 acceptance):
//
//  1. The playbook's chosen response equals the argmin of an exhaustive
//     sweep whose every candidate is routed and scored independently
//     through the reference path (Scenario::route + score_table) — on
//     small scenarios, across three attack seeds.
//  2. Delta-evaluated scores are bit-identical to full-recompute scores:
//     the whole ranked response list (use_delta = true vs false) matches
//     Score-for-Score under operator==, for every attack kind, on both
//     the exhaustive and the staged search.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "agility/attack.hpp"
#include "agility/playbook.hpp"
#include "analysis/scenario.hpp"

namespace vp::agility {
namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario* scenario = [] {
    analysis::ScenarioConfig config;
    config.scale = 0.04;
    return new analysis::Scenario{config};
  }();
  return *scenario;
}

constexpr std::uint64_t kDate = 0x20170515ull;

AttackSpec spec_for_seed(std::uint64_t seed) {
  AttackSpec spec;
  // Rotate the kind with the seed so the three runs cover different
  // generator paths too.
  constexpr AttackKind kKinds[] = {AttackKind::kPolarized,
                                   AttackKind::kVolumetric,
                                   AttackKind::kSpoofedFlood};
  spec.kind = kKinds[seed % 3];
  spec.seed = seed;
  spec.magnitude = 2.5;
  return spec;
}

TEST(PlaybookProperty, ExhaustiveSearchEqualsReferenceArgmin) {
  const analysis::Scenario& scenario = shared_scenario();
  const anycast::Deployment& base = scenario.broot();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    PlaybookConfig config;
    config.strategy = SearchStrategy::kExhaustive;
    config.max_prepend = 2;
    config.threads = 2;
    const PlaybookOptimizer optimizer{scenario, base, config, kDate};
    const AttackSpec attack = spec_for_seed(seed);

    // Reference sweep: every candidate routed independently through the
    // scenario (full computation path) and scored by the one-shot
    // reference scorer; argmin by the optimizer's own order.
    const dnsload::LoadModel load = scenario.broot_load(kDate);
    const auto base_table = scenario.route(base);
    const OfferedLoad offered =
        offered_load(scenario.topo(), load, *base_table, attack);
    const std::vector<Candidate> candidates = optimizer.enumerate_candidates();
    ASSERT_GT(candidates.size(), 4u);
    std::vector<Score> reference;
    for (const Candidate& candidate : candidates) {
      anycast::Deployment target = base;
      candidate.delta.apply_to(target);
      reference.push_back(
          optimizer.score_table(*scenario.route(target), offered));
    }
    std::size_t argmin = 0;
    for (std::size_t i = 1; i < reference.size(); ++i)
      if (better(reference[i], i, reference[argmin], argmin)) argmin = i;

    const PlaybookEntry entry = optimizer.respond(attack);
    ASSERT_FALSE(entry.responses.empty());
    EXPECT_EQ(entry.best().candidate_index, argmin) << "seed " << seed;
    EXPECT_EQ(entry.best().score, reference[argmin]) << "seed " << seed;
    EXPECT_EQ(entry.configs_evaluated, candidates.size());
    // Every ranked response's score must equal its reference score — the
    // delta-session evaluation is bit-identical to the reference path.
    for (const RankedResponse& response : entry.responses)
      EXPECT_EQ(response.score, reference[response.candidate_index])
          << "seed " << seed << " candidate " << response.candidate_index;
  }
}

void expect_same_playbook(const Playbook& a, const Playbook& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t e = 0; e < a.entries.size(); ++e) {
    const PlaybookEntry& ea = a.entries[e];
    const PlaybookEntry& eb = b.entries[e];
    EXPECT_EQ(ea.offered_milliq, eb.offered_milliq);
    EXPECT_EQ(ea.configs_evaluated, eb.configs_evaluated);
    EXPECT_EQ(ea.no_action, eb.no_action);
    ASSERT_EQ(ea.responses.size(), eb.responses.size());
    for (std::size_t r = 0; r < ea.responses.size(); ++r) {
      EXPECT_EQ(ea.responses[r].candidate_index,
                eb.responses[r].candidate_index);
      EXPECT_EQ(ea.responses[r].candidate.label, eb.responses[r].candidate.label);
      EXPECT_EQ(ea.responses[r].score, eb.responses[r].score);
    }
  }
}

TEST(PlaybookProperty, DeltaScoresBitIdenticalToFullRecompute) {
  const analysis::Scenario& scenario = shared_scenario();
  std::vector<AttackSpec> attacks;
  for (const AttackKind kind :
       {AttackKind::kPolarized, AttackKind::kFlashCrowd,
        AttackKind::kSpoofedFlood, AttackKind::kVolumetric}) {
    AttackSpec spec;
    spec.kind = kind;
    attacks.push_back(spec);
  }
  // Staged search on the nine-site Tangled deployment (the production
  // shape) and exhaustive on B-Root; both must be invariant to the
  // evaluation path.
  for (const bool exhaustive : {false, true}) {
    PlaybookConfig delta_config;
    delta_config.strategy = exhaustive ? SearchStrategy::kExhaustive
                                       : SearchStrategy::kStaged;
    delta_config.max_prepend = 2;
    delta_config.threads = 2;
    delta_config.use_delta = true;
    PlaybookConfig full_config = delta_config;
    full_config.use_delta = false;
    const anycast::Deployment& base =
        exhaustive ? scenario.broot() : scenario.tangled();
    const PlaybookOptimizer with_delta{scenario, base, delta_config, kDate};
    const PlaybookOptimizer with_full{scenario, base, full_config, kDate};
    expect_same_playbook(with_delta.build(attacks), with_full.build(attacks));
  }
}

}  // namespace
}  // namespace vp::agility
