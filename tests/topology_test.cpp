#include <gtest/gtest.h>

#include <queue>
#include <unordered_set>

#include "topology/generator.hpp"
#include "topology/topology.hpp"

namespace vp::topology {
namespace {

/// Small generated Internet shared across this file's tests.
class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TopologyConfig config;
    config.seed = 7;
    config.target_blocks = 12'000;
    topo_ = new Topology(generate_topology(config));
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }
  static const Topology& topo() { return *topo_; }

 private:
  static const Topology* topo_;
};

const Topology* TopologyTest::topo_ = nullptr;

TEST_F(TopologyTest, HitsBlockTarget) {
  EXPECT_GT(topo().block_count(), 10'000u);
  EXPECT_LT(topo().block_count(), 16'000u);
}

TEST_F(TopologyTest, BlocksAreUniqueAndIndexed) {
  std::unordered_set<std::uint32_t> seen;
  for (const BlockInfo& info : topo().blocks()) {
    EXPECT_TRUE(seen.insert(info.block.index()).second)
        << "duplicate block " << info.block.to_string();
    const BlockInfo* lookup = topo().block_info(info.block);
    ASSERT_NE(lookup, nullptr);
    EXPECT_EQ(lookup->as_id, info.as_id);
  }
  EXPECT_EQ(topo().block_info(net::Block24{0xffffff}), nullptr);
}

TEST_F(TopologyTest, EveryBlockInsideItsAnnouncedPrefix) {
  const auto prefixes = topo().announced_prefixes();
  for (const BlockInfo& info : topo().blocks()) {
    ASSERT_LT(info.prefix_index, prefixes.size());
    const AnnouncedPrefix& ap = prefixes[info.prefix_index];
    EXPECT_TRUE(ap.prefix.contains(info.block.base_address()))
        << info.block.to_string() << " not in " << ap.prefix.to_string();
    EXPECT_EQ(ap.origin, info.as_id);
  }
}

TEST_F(TopologyTest, RouteLookupFindsOwningPrefix) {
  for (std::size_t i = 0; i < topo().block_count(); i += 97) {
    const BlockInfo& info = topo().blocks()[i];
    const auto hit = topo().route_lookup(info.block.address(1));
    ASSERT_TRUE(hit) << info.block.to_string();
    EXPECT_EQ(hit->second, info.prefix_index);
  }
}

TEST_F(TopologyTest, PrefixRangesArePerAsContiguous) {
  for (const AsNode& node : topo().ases()) {
    const auto prefixes = topo().announced_prefixes();
    for (std::uint32_t i = 0; i < node.prefix_count; ++i) {
      EXPECT_EQ(prefixes[node.first_prefix + i].origin,
                static_cast<AsId>(&node - topo().ases().data()));
    }
    EXPECT_GE(node.prefix_count, 1u) << node.name;
  }
}

TEST_F(TopologyTest, PopsAreValid) {
  for (const AsNode& node : topo().ases()) {
    EXPECT_FALSE(node.pops.empty()) << node.name;
    for (const Pop& pop : node.pops)
      EXPECT_LT(pop.center_id, geo::world_centers().size());
    for (const Link& link : node.links) {
      EXPECT_LT(link.local_pop, node.pops.size());
      EXPECT_LT(link.remote_pop, topo().as_at(link.neighbor).pops.size());
    }
  }
}

TEST_F(TopologyTest, RelationshipsAreReciprocal) {
  for (AsId a = 0; a < topo().as_count(); ++a) {
    for (const Link& link : topo().as_at(a).links) {
      bool found = false;
      for (const Link& back : topo().as_at(link.neighbor).links) {
        if (back.neighbor != a) continue;
        found = true;
        const Relationship expected =
            link.rel == Relationship::kProvider ? Relationship::kCustomer
            : link.rel == Relationship::kCustomer ? Relationship::kProvider
                                                  : Relationship::kPeer;
        EXPECT_EQ(back.rel, expected);
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_F(TopologyTest, EveryAsClimbsToTheTransitClique) {
  // Valley-free reachability: following provider edges upward from any AS
  // must reach a transit (otherwise parts of the Internet are unroutable).
  std::vector<char> reaches(topo().as_count(), 0);
  std::queue<AsId> frontier;
  for (AsId a = 0; a < topo().as_count(); ++a) {
    if (topo().as_at(a).tier == AsTier::kTransit) {
      reaches[a] = 1;
      frontier.push(a);
    }
  }
  // Walk downward over customer edges.
  while (!frontier.empty()) {
    const AsId a = frontier.front();
    frontier.pop();
    for (const Link& link : topo().as_at(a).links) {
      if (link.rel == Relationship::kCustomer && !reaches[link.neighbor]) {
        reaches[link.neighbor] = 1;
        frontier.push(link.neighbor);
      }
    }
  }
  std::size_t unreachable = 0;
  for (AsId a = 0; a < topo().as_count(); ++a)
    if (!reaches[a]) ++unreachable;
  EXPECT_EQ(unreachable, 0u);
}

TEST_F(TopologyTest, TransitCliqueIsFullyMeshed) {
  std::vector<AsId> transits;
  for (AsId a = 0; a < topo().as_count(); ++a)
    if (topo().as_at(a).tier == AsTier::kTransit &&
        topo().as_at(a).asn.value < 50000 &&
        topo().as_at(a).asn.value != 20473)  // Vultr is transit-like
      transits.push_back(a);
  ASSERT_GE(transits.size(), 10u);
  for (const AsId a : transits) {
    for (const AsId b : transits) {
      if (a == b) continue;
      bool linked = false;
      for (const Link& link : topo().as_at(a).links)
        if (link.neighbor == b && link.rel == Relationship::kPeer)
          linked = true;
      EXPECT_TRUE(linked) << topo().as_at(a).name << " !~ "
                          << topo().as_at(b).name;
    }
  }
}

TEST_F(TopologyTest, SpecialAsesPresent) {
  // Table 3 upstreams and Table 7 giants must exist for the presets.
  for (const std::uint32_t asn :
       {226u, 20080u, 20473u, 2500u, 1103u, 1972u, 1251u, 39839u, 4134u,
        7922u, 4766u}) {
    EXPECT_NE(topo().find_as(AsNumber{asn}), kNoAs) << "AS" << asn;
  }
  const AsId chinanet = topo().find_as(AsNumber{4134});
  EXPECT_TRUE(topo().as_at(chinanet).load_balanced);
  const AsId kornet = topo().find_as(AsNumber{4766});
  EXPECT_LT(topo().as_at(kornet).icmp_response_scale, 0.5);
}

TEST_F(TopologyTest, GeolocationNearlyComplete) {
  std::size_t located = 0;
  for (const BlockInfo& info : topo().blocks())
    if (topo().geodb().lookup(info.block)) ++located;
  const double fraction =
      static_cast<double>(located) / static_cast<double>(topo().block_count());
  EXPECT_GT(fraction, 0.995);
  EXPECT_LT(fraction, 1.0);  // a few blocks must be unlocatable (Table 4)
}

TEST_F(TopologyTest, PrefixLengthsSpanWideRange) {
  std::unordered_set<int> lengths;
  for (const AnnouncedPrefix& ap : topo().announced_prefixes())
    lengths.insert(ap.prefix.length());
  // Figure 8 needs a spread of prefix sizes.
  EXPECT_GE(lengths.size(), 8u);
  EXPECT_TRUE(lengths.contains(24));
}

TEST_F(TopologyTest, MultiPopAsesExist) {
  std::size_t multi_pop = 0;
  for (const AsNode& node : topo().ases())
    if (node.pops.size() > 1) ++multi_pop;
  EXPECT_GT(multi_pop, 10u);
}

TEST(TopologyGenerator, DeterministicForSameSeed) {
  TopologyConfig config;
  config.seed = 99;
  config.target_blocks = 4'000;
  const Topology a = generate_topology(config);
  const Topology b = generate_topology(config);
  ASSERT_EQ(a.as_count(), b.as_count());
  ASSERT_EQ(a.block_count(), b.block_count());
  for (std::size_t i = 0; i < a.block_count(); i += 11) {
    EXPECT_EQ(a.blocks()[i].block, b.blocks()[i].block);
    EXPECT_EQ(a.blocks()[i].as_id, b.blocks()[i].as_id);
    EXPECT_EQ(a.blocks()[i].pop, b.blocks()[i].pop);
  }
  for (std::size_t i = 0; i < a.as_count(); i += 7) {
    EXPECT_EQ(a.as_at(i).asn, b.as_at(i).asn);
    EXPECT_EQ(a.as_at(i).links.size(), b.as_at(i).links.size());
  }
}

TEST(TopologyGenerator, DifferentSeedsDiffer) {
  TopologyConfig a_config, b_config;
  a_config.seed = 1;
  b_config.seed = 2;
  a_config.target_blocks = b_config.target_blocks = 4'000;
  const Topology a = generate_topology(a_config);
  const Topology b = generate_topology(b_config);
  // Some macro statistic should differ.
  EXPECT_NE(a.as_count() * 1000 + a.block_count(),
            b.as_count() * 1000 + b.block_count());
}

TEST(TopologyGenerator, ScaleControlsSize) {
  TopologyConfig small_config;
  small_config.target_blocks = 3'000;
  TopologyConfig large_config;
  large_config.target_blocks = 12'000;
  const Topology small = generate_topology(small_config);
  const Topology large = generate_topology(large_config);
  EXPECT_GT(large.block_count(), small.block_count() * 2);
}

TEST(TopologyGenerator, CenterByNameAbortsOnlyOnUnknown) {
  EXPECT_LT(center_by_name("Tokyo"), geo::world_centers().size());
  EXPECT_DEATH(center_by_name("Atlantis"), "unknown population center");
}

}  // namespace
}  // namespace vp::topology
