#include <gtest/gtest.h>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "sim/flips.hpp"
#include "sim/internet.hpp"
#include "sim/responsiveness.hpp"
#include "topology/generator.hpp"

namespace vp::sim {
namespace {

class SimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::TopologyConfig config;
    config.seed = 33;
    config.target_blocks = 10'000;
    topo_ = new topology::Topology(topology::generate_topology(config));
    deployment_ = new anycast::Deployment(anycast::make_broot(*topo_));
    routes_ = new bgp::RoutingTable(
        *bgp::RoutingEngine{*topo_, *deployment_}.full());
    internet_ = new InternetSim(*topo_, InternetConfig{});
  }
  static void TearDownTestSuite() {
    delete internet_;
    delete routes_;
    delete deployment_;
    delete topo_;
  }
  static const topology::Topology& topo() { return *topo_; }
  static const bgp::RoutingTable& routes() { return *routes_; }
  static const InternetSim& internet() { return *internet_; }

  /// A block whose representative host responds in round 0, plus that
  /// host's address.
  static std::pair<net::Block24, net::Ipv4Address> responsive_target() {
    const auto& model = internet().responsiveness();
    for (const topology::BlockInfo& info : topo().blocks()) {
      const ReplyBehavior b = model.behavior(info.block, 0);
      if (b.responds && b.copies == 1 && !b.alias && !b.late) {
        return {info.block,
                info.block.address(model.responsive_host(info.block))};
      }
    }
    ADD_FAILURE() << "no responsive block found";
    return {};
  }

  static net::PacketBytes make_probe(net::Ipv4Address target,
                                     std::uint32_t id = 1) {
    net::ProbePayload payload;
    payload.measurement_id = id;
    payload.tx_time_usec = 0;
    payload.original_target = target;
    return net::build_echo_request(
        routes().deployment().measurement_address, target,
        static_cast<std::uint16_t>(id), 1, payload);
  }

 private:
  static const topology::Topology* topo_;
  static const anycast::Deployment* deployment_;
  static const bgp::RoutingTable* routes_;
  static const InternetSim* internet_;
};

const topology::Topology* SimTest::topo_ = nullptr;
const anycast::Deployment* SimTest::deployment_ = nullptr;
const bgp::RoutingTable* SimTest::routes_ = nullptr;
const InternetSim* SimTest::internet_ = nullptr;

// --- responsiveness ----------------------------------------------------------

TEST_F(SimTest, GlobalResponseRateNearPaper) {
  const auto& model = internet().responsiveness();
  std::size_t responding = 0;
  for (const topology::BlockInfo& info : topo().blocks())
    if (model.responds_in_round(info.block, 0)) ++responding;
  const double rate = static_cast<double>(responding) /
                      static_cast<double>(topo().block_count());
  // Paper Table 4: ~55% of probed blocks respond.
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.68);
}

TEST_F(SimTest, ResponsivenessIsDeterministic) {
  const auto& model = internet().responsiveness();
  for (std::size_t i = 0; i < 500; ++i) {
    const net::Block24 block = topo().blocks()[i * 7].block;
    EXPECT_EQ(model.responds_in_round(block, 3),
              model.responds_in_round(block, 3));
    const ReplyBehavior a = model.behavior(block, 5);
    const ReplyBehavior b = model.behavior(block, 5);
    EXPECT_EQ(a.responds, b.responds);
    EXPECT_EQ(a.copies, b.copies);
    EXPECT_EQ(a.alias, b.alias);
    EXPECT_EQ(a.late, b.late);
  }
}

TEST_F(SimTest, RoundChurnIsSmall) {
  const auto& model = internet().responsiveness();
  std::size_t responsive = 0, churned = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    if (!model.ever_responds(info.block)) continue;
    ++responsive;
    if (model.responds_in_round(info.block, 1) !=
        model.responds_in_round(info.block, 2)) {
      ++churned;
    }
  }
  const double churn =
      static_cast<double>(churned) / static_cast<double>(responsive);
  // Two-sided churn of a ~2.4% down-rate process: ~4.7% of blocks differ
  // between rounds.
  EXPECT_GT(churn, 0.02);
  EXPECT_LT(churn, 0.09);
}

TEST_F(SimTest, UnresponsiveAsesAreSuppressed) {
  const auto& model = internet().responsiveness();
  const topology::AsId kornet = topo().find_as(topology::AsNumber{4766});
  ASSERT_NE(kornet, topology::kNoAs);
  const auto& node = topo().as_at(kornet);
  std::size_t responding = 0;
  for (std::uint32_t i = 0; i < node.block_count; ++i) {
    if (model.ever_responds(topo().blocks()[node.first_block + i].block))
      ++responding;
  }
  const double rate =
      static_cast<double>(responding) / static_cast<double>(node.block_count);
  EXPECT_LT(rate, 0.25);  // Korea filters ICMP (Figure 4a)
}

TEST_F(SimTest, RepresentativeHostIsAlive) {
  const auto& model = internet().responsiveness();
  for (std::size_t i = 0; i < 200; ++i) {
    const net::Block24 block = topo().blocks()[i * 11].block;
    EXPECT_TRUE(model.is_live_host(block, model.responsive_host(block)));
  }
}

TEST_F(SimTest, SecondaryHostsAreSparse) {
  const auto& model = internet().responsiveness();
  std::size_t live = 0, total = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const net::Block24 block = topo().blocks()[i * 13].block;
    const std::uint8_t representative = model.responsive_host(block);
    for (int host = 1; host < 251; ++host) {
      if (host == representative) continue;
      ++total;
      if (model.is_live_host(block, static_cast<std::uint8_t>(host))) ++live;
    }
  }
  const double rate = static_cast<double>(live) / static_cast<double>(total);
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.20);
}

// --- dataplane ---------------------------------------------------------------

TEST_F(SimTest, ProbeToResponsiveHostYieldsReplyAtCatchmentSite) {
  const auto [block, target] = responsive_target();
  const auto deliveries =
      internet().probe(routes(), make_probe(target).data, {}, 0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].site,
            internet().ground_truth_site(routes(), block, 0));
  const auto parsed = net::parse_reply(deliveries[0].packet.data);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ip.source, target);
  EXPECT_EQ(parsed->ip.destination, routes().deployment().measurement_address);
  EXPECT_GT(deliveries[0].arrival.usec, 0);
}

TEST_F(SimTest, ProbeToDeadHostYieldsNothing) {
  const auto [block, target] = responsive_target();
  const auto& model = internet().responsiveness();
  // Find a dead host offset in the same block.
  for (int host = 1; host < 251; ++host) {
    if (!model.is_live_host(block, static_cast<std::uint8_t>(host))) {
      const auto deliveries = internet().probe(
          routes(),
          make_probe(block.address(static_cast<std::uint8_t>(host))).data,
          {}, 0);
      EXPECT_TRUE(deliveries.empty());
      return;
    }
  }
}

TEST_F(SimTest, ProbeToUnallocatedSpaceYieldsNothing) {
  const auto target = *net::Ipv4Address::parse("223.255.255.1");
  EXPECT_TRUE(
      internet().probe(routes(), make_probe(target).data, {}, 0).empty());
}

TEST_F(SimTest, MalformedProbeIgnored) {
  const auto [block, target] = responsive_target();
  net::PacketBytes probe = make_probe(target);
  probe.data[10] ^= 0xff;  // corrupt the IP checksum
  EXPECT_TRUE(internet().probe(routes(), probe.data, {}, 0).empty());
  // Truncated.
  EXPECT_TRUE(internet()
                  .probe(routes(),
                         std::span<const std::uint8_t>{probe.data.data(), 10},
                         {}, 0)
                  .empty());
}

TEST_F(SimTest, RttScalesWithDistance) {
  // Replies from far blocks should (on average) arrive later than from
  // blocks near the site.
  const auto& model = internet().responsiveness();
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    const ReplyBehavior b = model.behavior(info.block, 0);
    if (!b.responds || b.alias || b.late || b.copies != 1) continue;
    const auto geo_record = topo().geodb().lookup(info.block);
    if (!geo_record) continue;
    const auto target =
        info.block.address(model.responsive_host(info.block));
    const auto deliveries =
        internet().probe(routes(), make_probe(target).data, {}, 0);
    if (deliveries.size() != 1) continue;
    const auto site = deliveries[0].site;
    const double km = geo::distance_km(
        geo_record->location,
        routes().deployment().sites[static_cast<std::size_t>(site)].location);
    if (km < 1500 && near_n < 200) {
      near_sum += deliveries[0].arrival.seconds();
      ++near_n;
    } else if (km > 8000 && far_n < 200) {
      far_sum += deliveries[0].arrival.seconds();
      ++far_n;
    }
    if (near_n >= 200 && far_n >= 200) break;
  }
  ASSERT_GT(near_n, 20);
  ASSERT_GT(far_n, 20);
  EXPECT_LT(near_sum / near_n, far_sum / far_n);
}

TEST_F(SimTest, DuplicateAliasAndLateBehaviorsOccur) {
  const auto& model = internet().responsiveness();
  std::size_t duplicates = 0, aliases = 0, lates = 0, responds = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    const ReplyBehavior b = model.behavior(info.block, 0);
    if (!b.responds) continue;
    ++responds;
    duplicates += b.copies > 1;
    aliases += b.alias;
    lates += b.late;
  }
  ASSERT_GT(responds, 1000u);
  const auto rate = [&](std::size_t n) {
    return static_cast<double>(n) / static_cast<double>(responds);
  };
  EXPECT_GT(rate(duplicates), 0.005);
  EXPECT_LT(rate(duplicates), 0.05);
  EXPECT_GT(rate(aliases), 0.003);
  EXPECT_LT(rate(aliases), 0.03);
  EXPECT_GT(rate(lates), 0.0005);
  EXPECT_LT(rate(lates), 0.01);
}

TEST_F(SimTest, AliasReplyComesFromDifferentAddress) {
  const auto& model = internet().responsiveness();
  for (const topology::BlockInfo& info : topo().blocks()) {
    const ReplyBehavior b = model.behavior(info.block, 0);
    if (!b.responds || !b.alias) continue;
    const auto target = info.block.address(model.responsive_host(info.block));
    const auto deliveries =
        internet().probe(routes(), make_probe(target).data, {}, 0);
    ASSERT_FALSE(deliveries.empty());
    const auto parsed = net::parse_reply(deliveries[0].packet.data);
    ASSERT_TRUE(parsed);
    EXPECT_NE(parsed->ip.source, target);
    EXPECT_EQ(parsed->probe.original_target, target);
    return;
  }
  FAIL() << "no alias block found";
}

TEST_F(SimTest, LateReplyArrivesAfterCutoff) {
  const auto& model = internet().responsiveness();
  for (const topology::BlockInfo& info : topo().blocks()) {
    const ReplyBehavior b = model.behavior(info.block, 0);
    if (!b.responds || !b.late || b.alias) continue;
    const auto target = info.block.address(model.responsive_host(info.block));
    const auto deliveries =
        internet().probe(routes(), make_probe(target).data, {}, 0);
    ASSERT_FALSE(deliveries.empty());
    EXPECT_GT(deliveries[0].arrival.minutes(), 15.0);
    return;
  }
  FAIL() << "no late block found";
}

// --- flips ---------------------------------------------------------------------

TEST_F(SimTest, FlappyBlocksRequireMultiSiteTies) {
  const FlipModel& flips = internet().flips();
  for (const topology::BlockInfo& info : topo().blocks()) {
    if (flips.is_flappy(routes(), info.block)) {
      EXPECT_TRUE(routes().state(info.as_id).multi_site());
    }
  }
}

TEST_F(SimTest, NonFlappyBlocksAlmostAlwaysKeepTheirSite) {
  // Transient routing events may divert any block for a single round,
  // but they must be rare: the hot-potato site should hold for ~99.9% of
  // (block, round) samples.
  const FlipModel& flips = internet().flips();
  std::uint64_t samples = 0, diverted = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    if (flips.is_flappy(routes(), info.block)) continue;
    // site_for_block includes the stable multipath split; only transient
    // events may diverge from it.
    const auto site = routes().site_for_block(info.block);
    for (std::uint32_t round : {0u, 1u, 7u}) {
      ++samples;
      diverted += flips.site_in_round(routes(), info.block, round) != site;
    }
  }
  ASSERT_GT(samples, 1000u);
  EXPECT_LT(static_cast<double>(diverted) / static_cast<double>(samples),
            0.002);
}

TEST_F(SimTest, SomeBlocksActuallyFlip) {
  const FlipModel& flips = internet().flips();
  std::uint64_t flippers = 0;
  for (const topology::BlockInfo& info : topo().blocks()) {
    std::uint32_t mask = 0;
    for (std::uint32_t round = 0; round < 8; ++round) {
      const auto site = flips.site_in_round(routes(), info.block, round);
      if (site >= 0) mask |= 1u << site;
    }
    flippers += std::popcount(mask) > 1;
  }
  // Both the load-balanced population and transient events contribute;
  // together they must exist but stay a sub-percent phenomenon.
  EXPECT_GT(flippers, 0u);
  EXPECT_LT(flippers, topo().block_count() / 50);
}

}  // namespace
}  // namespace vp::sim
