// Golden-stats regression test for the scale generator: a fixed-seed
// topology's summary statistics (AS counts, link count, per-tier degree
// histogram, hitlist CRC, structural digest) are compared line for line
// against a committed golden file. Any change to the generator's draw
// sequence — a reordered draw, a new knob consuming entropy, a changed
// phase tag — shows up as a diff here before it silently invalidates
// every seeded experiment.
//
// Regenerate after an *intentional* change with:
//   VP_UPDATE_GOLDEN=1 ./generator_golden_test
// and commit the updated tests/golden/scale_gen_seed42.txt with a note
// in the PR about why the stream moved.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"
#include "topology/scale_generator.hpp"
#include "topology/topo_io.hpp"

#ifndef VP_GOLDEN_DIR
#error "build must define VP_GOLDEN_DIR"
#endif

namespace vp {
namespace {

std::string golden_path() {
  return std::string{VP_GOLDEN_DIR} + "/scale_gen_seed42.txt";
}

std::string build_summary() {
  topology::ScaleConfig config;  // defaults: seed 42, 10k ASes, 130k blocks
  config.as_count = 1'200;
  config.target_blocks = 15'000;
  const topology::Topology topo = generate_scale_topology(config);

  std::size_t tier_counts[3] = {0, 0, 0};
  std::size_t link_records = 0;
  // Degree histogram per tier, bucketed by floor(log2(degree + 1)).
  constexpr std::size_t kBuckets = 12;
  std::size_t histogram[3][kBuckets] = {};
  for (topology::AsId v = 0; v < topo.as_count(); ++v) {
    const auto& node = topo.as_at(v);
    const auto tier = static_cast<std::size_t>(node.tier);
    tier_counts[tier]++;
    link_records += node.links.size();
    std::size_t bucket = 0;
    for (std::size_t d = node.links.size() + 1; d > 1; d >>= 1) ++bucket;
    histogram[tier][std::min(bucket, kBuckets - 1)]++;
  }

  sim::InternetConfig internet_config;
  const sim::InternetSim internet{topo, internet_config};
  const auto hitlist =
      hitlist::Hitlist::build(topo, internet.responsiveness(), {}, 1);

  std::ostringstream out;
  out << "as_count " << topo.as_count() << "\n";
  out << "transit " << tier_counts[0] << "\n";
  out << "regional " << tier_counts[1] << "\n";
  out << "stub " << tier_counts[2] << "\n";
  out << "links " << link_records / 2 << "\n";
  out << "prefixes " << topo.announced_prefixes().size() << "\n";
  out << "blocks " << topo.block_count() << "\n";
  out << "geo_blocks " << topo.geodb().size() << "\n";
  for (int tier = 0; tier < 3; ++tier) {
    out << "degree_hist_" << tier;
    for (std::size_t b = 0; b < kBuckets; ++b)
      out << " " << histogram[tier][b];
    out << "\n";
  }
  out << "hitlist_size " << hitlist.size() << "\n";
  out << std::hex;
  out << "hitlist_crc32 " << hitlist.crc32() << "\n";
  out << "structural_digest " << topology::structural_digest(topo) << "\n";
  return out.str();
}

TEST(GeneratorGolden, SummaryMatchesCommittedGolden) {
  const std::string summary = build_summary();
  if (std::getenv("VP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path(), std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << summary;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }
  std::ifstream in{golden_path(), std::ios::binary};
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " (run with VP_UPDATE_GOLDEN=1 to create it)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), summary)
      << "generator output drifted from the committed golden stats; if "
         "intentional, regenerate with VP_UPDATE_GOLDEN=1 and explain the "
         "stream change in the PR";
}

}  // namespace
}  // namespace vp
