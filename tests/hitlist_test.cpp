#include <gtest/gtest.h>

#include <unordered_set>

#include "hitlist/hitlist.hpp"
#include "sim/responsiveness.hpp"
#include "topology/generator.hpp"

namespace vp::hitlist {
namespace {

class HitlistTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::TopologyConfig config;
    config.seed = 55;
    config.target_blocks = 8'000;
    topo_ = new topology::Topology(topology::generate_topology(config));
    model_ = new sim::ResponsivenessModel(*topo_, {});
    hitlist_ = new Hitlist(Hitlist::build(*topo_, *model_));
  }
  static void TearDownTestSuite() {
    delete hitlist_;
    delete model_;
    delete topo_;
  }
  static const topology::Topology& topo() { return *topo_; }
  static const sim::ResponsivenessModel& model() { return *model_; }
  static const Hitlist& hitlist() { return *hitlist_; }

 private:
  static const topology::Topology* topo_;
  static const sim::ResponsivenessModel* model_;
  static const Hitlist* hitlist_;
};

const topology::Topology* HitlistTest::topo_ = nullptr;
const sim::ResponsivenessModel* HitlistTest::model_ = nullptr;
const Hitlist* HitlistTest::hitlist_ = nullptr;

TEST_F(HitlistTest, CoversMostAllocatedBlocks) {
  const double coverage = static_cast<double>(hitlist().size()) /
                          static_cast<double>(topo().block_count());
  EXPECT_GT(coverage, 0.94);
  EXPECT_LT(coverage, 1.0);  // some blocks are missing by design
}

TEST_F(HitlistTest, OneEntryPerBlockInsideThatBlock) {
  std::unordered_set<std::uint32_t> seen;
  for (const Entry& entry : hitlist().entries()) {
    EXPECT_TRUE(seen.insert(entry.block.index()).second);
    EXPECT_EQ(net::Block24::containing(entry.target), entry.block);
    const std::uint8_t host =
        static_cast<std::uint8_t>(entry.target.value() & 0xff);
    EXPECT_GE(host, 1);
    EXPECT_LE(host, 250);
  }
}

TEST_F(HitlistTest, MostEntriesPointAtTheLiveHost) {
  std::size_t fresh = 0;
  for (const Entry& entry : hitlist().entries()) {
    if (entry.target ==
        entry.block.address(model().responsive_host(entry.block)))
      ++fresh;
  }
  const double fraction =
      static_cast<double>(fresh) / static_cast<double>(hitlist().size());
  // stale_entry_rate defaults to 9%.
  EXPECT_GT(fraction, 0.87);
  EXPECT_LT(fraction, 0.95);
}

TEST_F(HitlistTest, ProbeOrderIsAPermutation) {
  const auto order = hitlist().probe_order(1);
  ASSERT_EQ(order.size(), hitlist().size());
  std::vector<bool> seen(order.size(), false);
  for (const std::uint32_t index : order) {
    ASSERT_LT(index, order.size());
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
}

TEST_F(HitlistTest, ProbeOrderVariesBySeedButIsStable) {
  const auto a1 = hitlist().probe_order(1);
  const auto a2 = hitlist().probe_order(1);
  const auto b = hitlist().probe_order(2);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST_F(HitlistTest, ProbeOrderIsNotSequential) {
  const auto order = hitlist().probe_order(3);
  std::size_t sequential = 0;
  for (std::size_t i = 1; i < order.size(); ++i)
    if (order[i] == order[i - 1] + 1) ++sequential;
  // A random permutation has ~1 ascending-adjacent pair in expectation.
  EXPECT_LT(sequential, order.size() / 100);
}

TEST_F(HitlistTest, ExtraTargetsStayInBlockAndDedupe) {
  const Entry& entry = hitlist().entries()[42];
  const auto targets = hitlist().targets_for(entry, 5, 77);
  ASSERT_GE(targets.size(), 2u);
  ASSERT_LE(targets.size(), 6u);
  EXPECT_EQ(targets[0], entry.target);
  std::unordered_set<std::uint32_t> unique;
  for (const net::Ipv4Address t : targets) {
    EXPECT_EQ(net::Block24::containing(t), entry.block);
    EXPECT_TRUE(unique.insert(t.value()).second);
  }
}

TEST_F(HitlistTest, ZeroExtraTargetsMeansSingleProbe) {
  const Entry& entry = hitlist().entries()[7];
  const auto targets = hitlist().targets_for(entry, 0, 1);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], entry.target);
}

TEST_F(HitlistTest, BuildIsDeterministic) {
  const Hitlist again = Hitlist::build(topo(), model());
  ASSERT_EQ(again.size(), hitlist().size());
  for (std::size_t i = 0; i < again.size(); i += 37) {
    EXPECT_EQ(again.entries()[i].block, hitlist().entries()[i].block);
    EXPECT_EQ(again.entries()[i].target, hitlist().entries()[i].target);
  }
}

}  // namespace
}  // namespace vp::hitlist
