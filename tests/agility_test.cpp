// Adversarial workload generators (agility/attack.hpp) and the playbook
// scoring primitives (agility/playbook.hpp): deterministic generation,
// shape invariants per attack kind, and the exact integer objective.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "agility/attack.hpp"
#include "agility/playbook.hpp"
#include "analysis/scenario.hpp"
#include "geo/world.hpp"

namespace vp::agility {
namespace {

const analysis::Scenario& shared_scenario() {
  static const analysis::Scenario* scenario = [] {
    analysis::ScenarioConfig config;
    config.scale = 0.05;
    return new analysis::Scenario{config};
  }();
  return *scenario;
}

struct Fixture {
  const analysis::Scenario& scenario = shared_scenario();
  const anycast::Deployment& tangled = scenario.tangled();
  dnsload::LoadModel load = scenario.broot_load(0x20170515ull);
  std::shared_ptr<const bgp::RoutingTable> routes =
      scenario.route(tangled);

  OfferedLoad offered(const AttackSpec& spec) const {
    return offered_load(scenario.topo(), load, *routes, spec);
  }

  /// The attack portion of row i: offered minus the block's legitimate
  /// baseline (both in exact integer milli-q/day).
  std::uint64_t attack_part(const OfferedLoad& out, std::size_t i) const {
    const auto& info = scenario.topo().blocks()[out.rows[i]];
    const auto legit = static_cast<std::uint64_t>(
        std::llround(load.daily_queries(info.block) * 1000.0));
    return out.milliq[i] > legit ? out.milliq[i] - legit : 0;
  }
};

TEST(AttackKind, RoundTripsThroughStrings) {
  for (const AttackKind kind :
       {AttackKind::kPolarized, AttackKind::kFlashCrowd,
        AttackKind::kSpoofedFlood, AttackKind::kVolumetric}) {
    const auto parsed = attack_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(attack_kind_from_string("flash"), AttackKind::kFlashCrowd);
  EXPECT_EQ(attack_kind_from_string("spoofed"), AttackKind::kSpoofedFlood);
  EXPECT_FALSE(attack_kind_from_string("syn-flood").has_value());
}

TEST(AttackGenerator, SameSpecSameBytesDifferentSeedDifferentLoad) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kPolarized;
  spec.seed = 7;
  const OfferedLoad a = f.offered(spec);
  const OfferedLoad b = f.offered(spec);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.milliq, b.milliq);
  EXPECT_EQ(a.total_milliq, b.total_milliq);
  spec.seed = 8;
  const OfferedLoad c = f.offered(spec);
  EXPECT_NE(a.milliq, c.milliq);
}

TEST(AttackGenerator, AttackVolumeMatchesMagnitude) {
  const Fixture f;
  for (const AttackKind kind :
       {AttackKind::kPolarized, AttackKind::kFlashCrowd,
        AttackKind::kSpoofedFlood, AttackKind::kVolumetric}) {
    AttackSpec spec;
    spec.kind = kind;
    spec.magnitude = 3.0;
    const OfferedLoad out = f.offered(spec);
    const double want = spec.magnitude * f.load.total_daily_queries() * 1000.0;
    EXPECT_NEAR(static_cast<double>(out.attack_milliq), want, want * 1e-3)
        << to_string(kind);
    EXPECT_NEAR(static_cast<double>(out.legit_milliq),
                f.load.total_daily_queries() * 1000.0,
                f.load.total_daily_queries() * 2.0)
        << to_string(kind);  // per-block llround, ±0.5 milli-q each
    EXPECT_EQ(out.total_milliq, out.legit_milliq + out.attack_milliq);
  }
}

TEST(AttackGenerator, PolarizedConcentratesInTargetCatchment) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kPolarized;
  spec.target_site = *f.tangled.site_by_code("MIA");
  const OfferedLoad out = f.offered(spec);
  EXPECT_EQ(out.resolved_target, spec.target_site);
  std::uint64_t on_target = 0;
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    const std::uint64_t attack = f.attack_part(out, i);
    if (attack == 0) continue;
    const auto& info = f.scenario.topo().blocks()[out.rows[i]];
    if (f.routes->site_for_block(info) == spec.target_site)
      on_target += attack;
  }
  // The bot population lives entirely inside the mapped catchment.
  EXPECT_GE(static_cast<double>(on_target),
            0.999 * static_cast<double>(out.attack_milliq));
  EXPECT_GT(out.attack_blocks, 10u);
}

TEST(AttackGenerator, SpoofedFloodSpreadsAcrossSites) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kSpoofedFlood;
  spec.spoof_fraction = 0.25;
  const OfferedLoad out = f.offered(spec);
  EXPECT_EQ(out.resolved_target, anycast::kUnknownSite);
  // Roughly spoof_fraction of all blocks appear as sources...
  const double blocks = static_cast<double>(f.scenario.topo().blocks().size());
  EXPECT_NEAR(static_cast<double>(out.attack_blocks), 0.25 * blocks,
              0.05 * blocks);
  // ...and the flood lands on several sites, not one catchment.
  std::vector<std::uint64_t> per_site(f.tangled.sites.size(), 0);
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    const std::uint64_t attack = f.attack_part(out, i);
    if (attack == 0) continue;
    const auto site =
        f.routes->site_for_block(f.scenario.topo().blocks()[out.rows[i]]);
    if (site >= 0) per_site[static_cast<std::size_t>(site)] += attack;
  }
  EXPECT_GE(std::count_if(per_site.begin(), per_site.end(),
                          [](std::uint64_t q) { return q > 0; }),
            3);
}

TEST(AttackGenerator, VolumetricUsesFewHeavySources) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kVolumetric;
  spec.source_count = 12;
  spec.target_site = *f.tangled.site_by_code("MIA");
  const OfferedLoad out = f.offered(spec);
  EXPECT_LE(out.attack_blocks, 12u);
  EXPECT_GT(out.attack_blocks, 0u);
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    if (f.attack_part(out, i) == 0) continue;
    const auto& info = f.scenario.topo().blocks()[out.rows[i]];
    EXPECT_EQ(f.routes->site_for_block(info), spec.target_site);
  }
}

TEST(AttackGenerator, FlashCrowdIsGeographicallyLocal) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kFlashCrowd;
  spec.radius_km = 1500.0;
  const OfferedLoad out = f.offered(spec);
  EXPECT_GT(out.attack_blocks, 0u);
  // All surging blocks fit in a disc of radius_km, so no two of them are
  // more than one diameter apart.
  std::optional<geo::LatLon> first;
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    if (f.attack_part(out, i) == 0) continue;
    const auto& info = f.scenario.topo().blocks()[out.rows[i]];
    const auto geo = f.scenario.topo().geodb().lookup(info.block);
    ASSERT_TRUE(geo.has_value());
    if (!first) first = geo->location;
    EXPECT_LE(geo::distance_km(*first, geo->location),
              2.0 * spec.radius_km + 1.0);
  }
}

TEST(AttackGenerator, ResolveTargetHonorsExplicitSiteAndFallsBack) {
  const Fixture f;
  AttackSpec spec;
  spec.kind = AttackKind::kPolarized;
  spec.target_site = *f.tangled.site_by_code("HND");
  EXPECT_EQ(resolve_target(spec, f.tangled), spec.target_site);
  // An out-of-range target falls back to a seed-chosen enabled site.
  spec.target_site = static_cast<anycast::SiteId>(f.tangled.sites.size());
  const anycast::SiteId chosen = resolve_target(spec, f.tangled);
  ASSERT_GE(chosen, 0);
  EXPECT_TRUE(f.tangled.sites[static_cast<std::size_t>(chosen)].enabled);
  // Untargeted kinds never resolve a site.
  spec.kind = AttackKind::kSpoofedFlood;
  EXPECT_EQ(resolve_target(spec, f.tangled), anycast::kUnknownSite);
}

TEST(Score, FinalizeAppliesBreakdownModel) {
  CapacityPlan capacity;
  capacity.site_milliq = {100, 100, 100};
  Score score;
  score.site_milliq = {90, 150, 0};  // site 1 past capacity
  score.unknown_milliq = 7;
  finalize(score, capacity);
  EXPECT_EQ(score.overloaded_sites, 1u);
  EXPECT_EQ(score.absorbed_milliq, 90u);
  // An overloaded site loses ALL of its traffic, and unreachable traffic
  // is always broken.
  EXPECT_EQ(score.broken_milliq, 150u + 7u);
  EXPECT_DOUBLE_EQ(score.overload_fraction(), 1.0 / 3.0);
  // Exactly at capacity is fine.
  score.site_milliq = {100, 100, 100};
  score.unknown_milliq = 0;
  finalize(score, capacity);
  EXPECT_EQ(score.overloaded_sites, 0u);
  EXPECT_EQ(score.broken_milliq, 0u);
  EXPECT_EQ(score.absorbed_milliq, 300u);
}

TEST(Score, BetterIsLexicographicAndTotal) {
  Score a, b;
  a.broken_milliq = 10;
  b.broken_milliq = 20;
  EXPECT_TRUE(better(a, 5, b, 0));
  b.broken_milliq = 10;
  a.overloaded_sites = 1;
  b.overloaded_sites = 2;
  EXPECT_TRUE(better(a, 5, b, 0));
  b.overloaded_sites = 1;
  a.shifted_blocks = 3;
  b.shifted_blocks = 4;
  EXPECT_TRUE(better(a, 5, b, 0));
  b.shifted_blocks = 3;
  // Full tie: enumeration index decides, so the order is total.
  EXPECT_TRUE(better(a, 0, b, 5));
  EXPECT_FALSE(better(a, 5, b, 0));
}

}  // namespace
}  // namespace vp::agility
