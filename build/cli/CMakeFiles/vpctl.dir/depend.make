# Empty dependencies file for vpctl.
# This may be replaced when dependencies are built.
