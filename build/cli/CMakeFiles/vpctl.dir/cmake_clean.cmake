file(REMOVE_RECURSE
  "CMakeFiles/vpctl.dir/vpctl.cpp.o"
  "CMakeFiles/vpctl.dir/vpctl.cpp.o.d"
  "vpctl"
  "vpctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
