file(REMOVE_RECURSE
  "CMakeFiles/vp_sim.dir/flips.cpp.o"
  "CMakeFiles/vp_sim.dir/flips.cpp.o.d"
  "CMakeFiles/vp_sim.dir/internet.cpp.o"
  "CMakeFiles/vp_sim.dir/internet.cpp.o.d"
  "CMakeFiles/vp_sim.dir/responsiveness.cpp.o"
  "CMakeFiles/vp_sim.dir/responsiveness.cpp.o.d"
  "libvp_sim.a"
  "libvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
