file(REMOVE_RECURSE
  "libvp_bgp.a"
)
