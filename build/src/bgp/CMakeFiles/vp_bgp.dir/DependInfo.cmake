
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/routing.cpp" "src/bgp/CMakeFiles/vp_bgp.dir/routing.cpp.o" "gcc" "src/bgp/CMakeFiles/vp_bgp.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/vp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/anycast/CMakeFiles/vp_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
