file(REMOVE_RECURSE
  "CMakeFiles/vp_bgp.dir/routing.cpp.o"
  "CMakeFiles/vp_bgp.dir/routing.cpp.o.d"
  "libvp_bgp.a"
  "libvp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
