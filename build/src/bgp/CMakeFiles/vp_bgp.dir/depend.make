# Empty dependencies file for vp_bgp.
# This may be replaced when dependencies are built.
