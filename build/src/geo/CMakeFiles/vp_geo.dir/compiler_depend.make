# Empty compiler generated dependencies file for vp_geo.
# This may be replaced when dependencies are built.
