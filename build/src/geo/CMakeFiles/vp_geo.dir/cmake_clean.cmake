file(REMOVE_RECURSE
  "CMakeFiles/vp_geo.dir/geodb.cpp.o"
  "CMakeFiles/vp_geo.dir/geodb.cpp.o.d"
  "CMakeFiles/vp_geo.dir/world.cpp.o"
  "CMakeFiles/vp_geo.dir/world.cpp.o.d"
  "libvp_geo.a"
  "libvp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
