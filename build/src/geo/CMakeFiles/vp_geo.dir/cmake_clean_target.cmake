file(REMOVE_RECURSE
  "libvp_geo.a"
)
