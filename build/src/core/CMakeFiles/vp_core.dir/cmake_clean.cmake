file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/catchment.cpp.o"
  "CMakeFiles/vp_core.dir/catchment.cpp.o.d"
  "CMakeFiles/vp_core.dir/collector.cpp.o"
  "CMakeFiles/vp_core.dir/collector.cpp.o.d"
  "CMakeFiles/vp_core.dir/dataset_io.cpp.o"
  "CMakeFiles/vp_core.dir/dataset_io.cpp.o.d"
  "CMakeFiles/vp_core.dir/verfploeter.cpp.o"
  "CMakeFiles/vp_core.dir/verfploeter.cpp.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
