file(REMOVE_RECURSE
  "libvp_net.a"
)
