file(REMOVE_RECURSE
  "CMakeFiles/vp_net.dir/checksum.cpp.o"
  "CMakeFiles/vp_net.dir/checksum.cpp.o.d"
  "CMakeFiles/vp_net.dir/ipv4.cpp.o"
  "CMakeFiles/vp_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/vp_net.dir/packet.cpp.o"
  "CMakeFiles/vp_net.dir/packet.cpp.o.d"
  "libvp_net.a"
  "libvp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
