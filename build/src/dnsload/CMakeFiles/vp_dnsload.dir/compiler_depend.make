# Empty compiler generated dependencies file for vp_dnsload.
# This may be replaced when dependencies are built.
