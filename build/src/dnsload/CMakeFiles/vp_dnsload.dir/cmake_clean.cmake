file(REMOVE_RECURSE
  "CMakeFiles/vp_dnsload.dir/load_model.cpp.o"
  "CMakeFiles/vp_dnsload.dir/load_model.cpp.o.d"
  "libvp_dnsload.a"
  "libvp_dnsload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_dnsload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
