file(REMOVE_RECURSE
  "libvp_dnsload.a"
)
