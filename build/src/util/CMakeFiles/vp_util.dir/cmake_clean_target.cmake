file(REMOVE_RECURSE
  "libvp_util.a"
)
