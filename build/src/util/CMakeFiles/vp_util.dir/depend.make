# Empty dependencies file for vp_util.
# This may be replaced when dependencies are built.
