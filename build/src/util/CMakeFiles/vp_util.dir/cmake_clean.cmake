file(REMOVE_RECURSE
  "CMakeFiles/vp_util.dir/clock.cpp.o"
  "CMakeFiles/vp_util.dir/clock.cpp.o.d"
  "CMakeFiles/vp_util.dir/format.cpp.o"
  "CMakeFiles/vp_util.dir/format.cpp.o.d"
  "CMakeFiles/vp_util.dir/stats.cpp.o"
  "CMakeFiles/vp_util.dir/stats.cpp.o.d"
  "CMakeFiles/vp_util.dir/table.cpp.o"
  "CMakeFiles/vp_util.dir/table.cpp.o.d"
  "libvp_util.a"
  "libvp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
