file(REMOVE_RECURSE
  "libvp_hitlist.a"
)
