# Empty dependencies file for vp_hitlist.
# This may be replaced when dependencies are built.
