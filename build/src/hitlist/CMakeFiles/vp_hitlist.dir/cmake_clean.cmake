file(REMOVE_RECURSE
  "CMakeFiles/vp_hitlist.dir/hitlist.cpp.o"
  "CMakeFiles/vp_hitlist.dir/hitlist.cpp.o.d"
  "libvp_hitlist.a"
  "libvp_hitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_hitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
