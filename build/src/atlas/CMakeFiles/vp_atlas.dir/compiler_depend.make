# Empty compiler generated dependencies file for vp_atlas.
# This may be replaced when dependencies are built.
