file(REMOVE_RECURSE
  "CMakeFiles/vp_atlas.dir/atlas.cpp.o"
  "CMakeFiles/vp_atlas.dir/atlas.cpp.o.d"
  "libvp_atlas.a"
  "libvp_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
