file(REMOVE_RECURSE
  "libvp_atlas.a"
)
