file(REMOVE_RECURSE
  "libvp_analysis.a"
)
