# Empty compiler generated dependencies file for vp_analysis.
# This may be replaced when dependencies are built.
