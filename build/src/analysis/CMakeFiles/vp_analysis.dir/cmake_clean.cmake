file(REMOVE_RECURSE
  "CMakeFiles/vp_analysis.dir/catchment_diff.cpp.o"
  "CMakeFiles/vp_analysis.dir/catchment_diff.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/coverage.cpp.o"
  "CMakeFiles/vp_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/divisions.cpp.o"
  "CMakeFiles/vp_analysis.dir/divisions.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/geomaps.cpp.o"
  "CMakeFiles/vp_analysis.dir/geomaps.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/latency.cpp.o"
  "CMakeFiles/vp_analysis.dir/latency.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/load_analysis.cpp.o"
  "CMakeFiles/vp_analysis.dir/load_analysis.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/scenario.cpp.o"
  "CMakeFiles/vp_analysis.dir/scenario.cpp.o.d"
  "CMakeFiles/vp_analysis.dir/stability.cpp.o"
  "CMakeFiles/vp_analysis.dir/stability.cpp.o.d"
  "libvp_analysis.a"
  "libvp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
