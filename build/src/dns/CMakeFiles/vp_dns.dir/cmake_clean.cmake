file(REMOVE_RECURSE
  "CMakeFiles/vp_dns.dir/message.cpp.o"
  "CMakeFiles/vp_dns.dir/message.cpp.o.d"
  "libvp_dns.a"
  "libvp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
