# Empty dependencies file for vp_dns.
# This may be replaced when dependencies are built.
