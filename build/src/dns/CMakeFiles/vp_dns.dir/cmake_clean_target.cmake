file(REMOVE_RECURSE
  "libvp_dns.a"
)
