file(REMOVE_RECURSE
  "libvp_anycast.a"
)
