file(REMOVE_RECURSE
  "CMakeFiles/vp_anycast.dir/deployment.cpp.o"
  "CMakeFiles/vp_anycast.dir/deployment.cpp.o.d"
  "libvp_anycast.a"
  "libvp_anycast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_anycast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
