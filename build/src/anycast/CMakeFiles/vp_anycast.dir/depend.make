# Empty dependencies file for vp_anycast.
# This may be replaced when dependencies are built.
