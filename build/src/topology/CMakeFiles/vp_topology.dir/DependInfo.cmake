
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/vp_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/vp_topology.dir/generator.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/vp_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/vp_topology.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
