file(REMOVE_RECURSE
  "CMakeFiles/vp_topology.dir/generator.cpp.o"
  "CMakeFiles/vp_topology.dir/generator.cpp.o.d"
  "CMakeFiles/vp_topology.dir/topology.cpp.o"
  "CMakeFiles/vp_topology.dir/topology.cpp.o.d"
  "libvp_topology.a"
  "libvp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
