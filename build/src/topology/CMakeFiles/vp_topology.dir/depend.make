# Empty dependencies file for vp_topology.
# This may be replaced when dependencies are built.
