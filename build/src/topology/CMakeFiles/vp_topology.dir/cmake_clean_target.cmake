file(REMOVE_RECURSE
  "libvp_topology.a"
)
