file(REMOVE_RECURSE
  "CMakeFiles/hitlist_test.dir/hitlist_test.cpp.o"
  "CMakeFiles/hitlist_test.dir/hitlist_test.cpp.o.d"
  "hitlist_test"
  "hitlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
