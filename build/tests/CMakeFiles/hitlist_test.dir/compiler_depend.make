# Empty compiler generated dependencies file for hitlist_test.
# This may be replaced when dependencies are built.
