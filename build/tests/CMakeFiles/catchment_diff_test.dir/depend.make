# Empty dependencies file for catchment_diff_test.
# This may be replaced when dependencies are built.
