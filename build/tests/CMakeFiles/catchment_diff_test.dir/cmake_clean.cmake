file(REMOVE_RECURSE
  "CMakeFiles/catchment_diff_test.dir/catchment_diff_test.cpp.o"
  "CMakeFiles/catchment_diff_test.dir/catchment_diff_test.cpp.o.d"
  "catchment_diff_test"
  "catchment_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catchment_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
