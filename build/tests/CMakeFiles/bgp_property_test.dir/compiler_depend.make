# Empty compiler generated dependencies file for bgp_property_test.
# This may be replaced when dependencies are built.
