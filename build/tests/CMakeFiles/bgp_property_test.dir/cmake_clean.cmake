file(REMOVE_RECURSE
  "CMakeFiles/bgp_property_test.dir/bgp_property_test.cpp.o"
  "CMakeFiles/bgp_property_test.dir/bgp_property_test.cpp.o.d"
  "bgp_property_test"
  "bgp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
