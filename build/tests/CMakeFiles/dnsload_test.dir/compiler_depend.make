# Empty compiler generated dependencies file for dnsload_test.
# This may be replaced when dependencies are built.
