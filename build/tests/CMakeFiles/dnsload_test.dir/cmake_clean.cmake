file(REMOVE_RECURSE
  "CMakeFiles/dnsload_test.dir/dnsload_test.cpp.o"
  "CMakeFiles/dnsload_test.dir/dnsload_test.cpp.o.d"
  "dnsload_test"
  "dnsload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
