# Empty compiler generated dependencies file for bench_table5_traffic_coverage.
# This may be replaced when dependencies are built.
