# Empty compiler generated dependencies file for bench_table7_flip_ases.
# This may be replaced when dependencies are built.
