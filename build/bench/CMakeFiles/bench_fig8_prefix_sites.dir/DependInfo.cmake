
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_prefix_sites.cpp" "bench/CMakeFiles/bench_fig8_prefix_sites.dir/bench_fig8_prefix_sites.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_prefix_sites.dir/bench_fig8_prefix_sites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/vp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/vp_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/vp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dnsload/CMakeFiles/vp_dnsload.dir/DependInfo.cmake"
  "/root/repo/build/src/hitlist/CMakeFiles/vp_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/vp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/anycast/CMakeFiles/vp_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
