# Empty compiler generated dependencies file for bench_fig8_prefix_sites.
# This may be replaced when dependencies are built.
