file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_prefix_sites.dir/bench_fig8_prefix_sites.cpp.o"
  "CMakeFiles/bench_fig8_prefix_sites.dir/bench_fig8_prefix_sites.cpp.o.d"
  "bench_fig8_prefix_sites"
  "bench_fig8_prefix_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_prefix_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
