file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_placement.dir/bench_ext_placement.cpp.o"
  "CMakeFiles/bench_ext_placement.dir/bench_ext_placement.cpp.o.d"
  "bench_ext_placement"
  "bench_ext_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
