# Empty compiler generated dependencies file for bench_fig2_broot_maps.
# This may be replaced when dependencies are built.
