# Empty dependencies file for bench_fig5_prepending.
# This may be replaced when dependencies are built.
