file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_prepending.dir/bench_fig5_prepending.cpp.o"
  "CMakeFiles/bench_fig5_prepending.dir/bench_fig5_prepending.cpp.o.d"
  "bench_fig5_prepending"
  "bench_fig5_prepending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_prepending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
