# Empty dependencies file for bench_fig7_as_divisions.
# This may be replaced when dependencies are built.
