file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_as_divisions.dir/bench_fig7_as_divisions.cpp.o"
  "CMakeFiles/bench_fig7_as_divisions.dir/bench_fig7_as_divisions.cpp.o.d"
  "bench_fig7_as_divisions"
  "bench_fig7_as_divisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_as_divisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
