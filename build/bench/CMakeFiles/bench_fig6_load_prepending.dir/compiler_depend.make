# Empty compiler generated dependencies file for bench_fig6_load_prepending.
# This may be replaced when dependencies are built.
