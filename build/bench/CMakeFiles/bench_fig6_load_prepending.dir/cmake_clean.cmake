file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_load_prepending.dir/bench_fig6_load_prepending.cpp.o"
  "CMakeFiles/bench_fig6_load_prepending.dir/bench_fig6_load_prepending.cpp.o.d"
  "bench_fig6_load_prepending"
  "bench_fig6_load_prepending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_load_prepending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
