# Empty dependencies file for bench_fig3_tangled_maps.
# This may be replaced when dependencies are built.
