# Empty dependencies file for bench_ablation_cleaning.
# This may be replaced when dependencies are built.
