# Empty dependencies file for bench_table4_coverage.
# This may be replaced when dependencies are built.
