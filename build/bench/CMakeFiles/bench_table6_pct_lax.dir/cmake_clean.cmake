file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pct_lax.dir/bench_table6_pct_lax.cpp.o"
  "CMakeFiles/bench_table6_pct_lax.dir/bench_table6_pct_lax.cpp.o.d"
  "bench_table6_pct_lax"
  "bench_table6_pct_lax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pct_lax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
