# Empty compiler generated dependencies file for bench_table6_pct_lax.
# This may be replaced when dependencies are built.
