# Empty compiler generated dependencies file for bench_fig4_load_maps.
# This may be replaced when dependencies are built.
