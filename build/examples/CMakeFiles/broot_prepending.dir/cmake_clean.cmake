file(REMOVE_RECURSE
  "CMakeFiles/broot_prepending.dir/broot_prepending.cpp.o"
  "CMakeFiles/broot_prepending.dir/broot_prepending.cpp.o.d"
  "broot_prepending"
  "broot_prepending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broot_prepending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
