# Empty dependencies file for broot_prepending.
# This may be replaced when dependencies are built.
