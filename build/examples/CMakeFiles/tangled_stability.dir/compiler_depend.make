# Empty compiler generated dependencies file for tangled_stability.
# This may be replaced when dependencies are built.
