file(REMOVE_RECURSE
  "CMakeFiles/tangled_stability.dir/tangled_stability.cpp.o"
  "CMakeFiles/tangled_stability.dir/tangled_stability.cpp.o.d"
  "tangled_stability"
  "tangled_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangled_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
