file(REMOVE_RECURSE
  "CMakeFiles/debug_routes.dir/__/tools/debug_routes.cpp.o"
  "CMakeFiles/debug_routes.dir/__/tools/debug_routes.cpp.o.d"
  "debug_routes"
  "debug_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
