# Empty dependencies file for debug_routes.
# This may be replaced when dependencies are built.
