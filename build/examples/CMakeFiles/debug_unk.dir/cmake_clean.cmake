file(REMOVE_RECURSE
  "CMakeFiles/debug_unk.dir/__/tools/debug_unk.cpp.o"
  "CMakeFiles/debug_unk.dir/__/tools/debug_unk.cpp.o.d"
  "debug_unk"
  "debug_unk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_unk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
