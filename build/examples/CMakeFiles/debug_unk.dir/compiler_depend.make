# Empty compiler generated dependencies file for debug_unk.
# This may be replaced when dependencies are built.
