# Empty dependencies file for load_prediction.
# This may be replaced when dependencies are built.
