file(REMOVE_RECURSE
  "CMakeFiles/load_prediction.dir/load_prediction.cpp.o"
  "CMakeFiles/load_prediction.dir/load_prediction.cpp.o.d"
  "load_prediction"
  "load_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
