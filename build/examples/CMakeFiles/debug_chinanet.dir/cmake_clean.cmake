file(REMOVE_RECURSE
  "CMakeFiles/debug_chinanet.dir/__/tools/debug_chinanet.cpp.o"
  "CMakeFiles/debug_chinanet.dir/__/tools/debug_chinanet.cpp.o.d"
  "debug_chinanet"
  "debug_chinanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_chinanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
