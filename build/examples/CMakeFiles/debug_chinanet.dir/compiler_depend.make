# Empty compiler generated dependencies file for debug_chinanet.
# This may be replaced when dependencies are built.
