file(REMOVE_RECURSE
  "CMakeFiles/debug_prepend.dir/__/tools/debug_prepend.cpp.o"
  "CMakeFiles/debug_prepend.dir/__/tools/debug_prepend.cpp.o.d"
  "debug_prepend"
  "debug_prepend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_prepend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
