# Empty dependencies file for debug_prepend.
# This may be replaced when dependencies are built.
