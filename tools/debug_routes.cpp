#include <cstdio>
#include <cstdlib>
#include "analysis/scenario.hpp"
using namespace vp;
int main() {
  analysis::ScenarioConfig config;
  config.scale = (getenv("DBG_SCALE") ? atof(getenv("DBG_SCALE")) : 0.25);
  analysis::Scenario scenario{config};
  const auto& topo = scenario.topo();
  const auto routes_ptr = scenario.route(scenario.broot());
  const auto& routes = *routes_ptr;
  int multi = 0;
  for (topology::AsId a = 0; a < topo.as_count(); ++a) {
    const auto& node = topo.as_at(a);
    const auto& st = routes.state(a);
    if (node.tier != topology::AsTier::kTransit && node.asn.value > 50000) continue;
    if (!st.reachable()) { printf("%-16s unreachable\n", node.name.c_str()); continue; }
    printf("%-16s tier=%d cand=%zu best site=%d len=%d cls=%d multi=%d\n",
      node.name.c_str(), (int)node.tier, st.candidates.size(),
      (int)st.best().site, st.best().path_len, (int)st.best().cls, st.multi_site());
  }
  for (topology::AsId a = 0; a < topo.as_count(); ++a)
    if (routes.state(a).multi_site()) multi++;
  printf("multi-site ASes: %d of %zu\n", multi, topo.as_count());
}
