#!/usr/bin/env python3
"""Compare google-benchmark JSON results against a committed baseline.

CI runs the Release benchmarks (bench_micro, bench_metrics) with pinned
repetitions, then gates the PR on this script:

    tools/bench_compare.py --baseline bench/baseline.json out1.json out2.json

A benchmark slower than baseline by more than --fail-pct (default 25%)
fails the job; more than --warn-pct (default 10%) prints a warning. The
wide default band is deliberate: shared 1-CPU CI runners jitter by tens
of percent, so the gate catches step-change regressions (an accidental
lock on the probe path), not single-digit drift. Benchmarks missing from
the baseline are reported and pass; refresh with:

    tools/bench_compare.py --baseline bench/baseline.json --update out*.json

The baseline is a distilled map of benchmark name -> real_time so diffs
stay reviewable, plus the machine context it was recorded on.

Also computes the metrics-layer overhead from bench_metrics'
BM_RoundMetrics/1 (metrics on) vs BM_RoundMetrics/0 (off) and fails when
it exceeds --overhead-fail-pct (default 10%; the design budget is 2% —
see DESIGN.md §11 — but CI noise needs headroom).

The baseline's "cache_gates" section records minimum cached-vs-uncached
speedup ratios for the catchment/route caches (DESIGN.md §12). Each gate
names a slow and a fast benchmark from the same run; the job fails when
slow/fast drops below min_ratio. Ratios within one run are immune to
runner-speed differences, so these gates are much tighter than the
absolute-time band. --update preserves the section verbatim.

"delta_gates" works the same way for incremental routing (DESIGN.md
§13): each gate pins a minimum full-recompute vs delta-apply ratio from
bench_delta_routing — e.g. a one-site prepend delta must stay >= 10x
faster than rerouting from scratch. Also preserved verbatim by --update.

"agility_gates" is the same slow/fast ratio form over bench_playbook
(DESIGN.md §16): the delta-session playbook search must stay the gated
factor faster than per-candidate full recomputation, both on one site's
prepend menu and on the 28-config staged sweep. Preserved verbatim by
--update.

"scale_gates" gates user counters from bench_scale_sweep (DESIGN.md
§14). Two forms:

  absolute  {"bench": ..., "counter": ..., "min_value"/"max_value": x}
            e.g. table_bytes_per_as at 6.4M blocks must stay bounded
  ratio     {"numerator": ..., "denominator": ..., "counter": ...,
             "min_ratio": r}
            e.g. per-block probe throughput at 6.4M blocks must stay
            within a constant factor of the 120k figure — probe rounds
            scale near memory bandwidth, not super-linearly in topology
            size. Same-run ratios, so runner speed cancels out.

Also preserved verbatim by --update.

"serve_gates" gates the daemon serving path from bench_serve (DESIGN.md
§15) with the same absolute-counter form: /block lookups/s on an idle
daemon and while a measurement round is running must both stay above the
100k/s bar. Preserved verbatim by --update as well.
"""
import argparse
import json
import sys

# Keys of a google-benchmark result object that are *not* user counters.
KNOWN_FIELDS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "label", "error_occurred", "error_message",
    "big_o", "rms",
}


def load_results(paths):
    """name -> {"real_time": ns, "time_unit": str, "counters": {...}}."""
    results = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate" and b.get(
                    "aggregate_name") != "median":
                continue  # keep only the median when repetitions aggregate
            name = b["run_name"] if "run_name" in b else b["name"]
            counters = {k: v for k, v in b.items()
                        if k not in KNOWN_FIELDS
                        and isinstance(v, (int, float))}
            results[name] = {
                "real_time": b["real_time"],
                "time_unit": b.get("time_unit", "ns"),
            }
            if counters:
                results[name]["counters"] = counters
    return results


TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def in_ns(entry):
    return entry["real_time"] * TO_NS[entry["time_unit"]]


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def compare(baseline, current, warn_pct, fail_pct):
    failures, warnings, missing = [], [], []
    for name, entry in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            missing.append(name)
            continue
        base_ns, cur_ns = in_ns(base), in_ns(entry)
        delta = (cur_ns - base_ns) / base_ns * 100.0
        line = (f"{name}: {fmt(cur_ns)} vs baseline {fmt(base_ns)} "
                f"({delta:+.1f}%)")
        if delta > fail_pct:
            failures.append(line)
            print(f"FAIL  {line}")
        elif delta > warn_pct:
            warnings.append(line)
            print(f"WARN  {line}")
        else:
            print(f"ok    {line}")
    for name in missing:
        print(f"new   {name}: not in baseline (run --update to record)")
    return failures, warnings


def cache_speedups(current, gates):
    """(gate name, measured slow/fast ratio, min_ratio) per cache gate."""
    rows = []
    for name, gate in sorted(gates.items()):
        slow = current.get(gate["slow"])
        fast = current.get(gate["fast"])
        if not slow or not fast:
            continue  # gate's benchmarks not in this run
        rows.append((name, in_ns(slow) / in_ns(fast), gate["min_ratio"]))
    return rows


def counter_of(current, bench, counter):
    entry = current.get(bench)
    if not entry:
        return None
    return entry.get("counters", {}).get(counter)


def scale_gate_rows(current, gates):
    """(gate name, description, measured, ok?) per scale gate in this run."""
    rows = []
    for name, gate in sorted(gates.items()):
        counter = gate["counter"]
        if "bench" in gate:  # absolute form
            value = counter_of(current, gate["bench"], counter)
            if value is None:
                continue  # gate's benchmark not in this run
            ok = True
            bounds = []
            if "min_value" in gate:
                ok = ok and value >= gate["min_value"]
                bounds.append(f">= {gate['min_value']:g}")
            if "max_value" in gate:
                ok = ok and value <= gate["max_value"]
                bounds.append(f"<= {gate['max_value']:g}")
            desc = (f"{gate['bench']} {counter} = {value:.4g} "
                    f"(gate {' and '.join(bounds)})")
            rows.append((name, desc, ok))
        else:  # ratio form
            num = counter_of(current, gate["numerator"], counter)
            den = counter_of(current, gate["denominator"], counter)
            if num is None or den is None or den == 0:
                continue
            ratio = num / den
            ok = ratio >= gate["min_ratio"]
            desc = (f"{counter} {gate['numerator']} / {gate['denominator']} "
                    f"= {ratio:.3g} (gate >= {gate['min_ratio']:g}, "
                    f"same-run ratio)")
            rows.append((name, desc, ok))
    return rows


def metrics_overhead(current):
    """Percent overhead of BM_RoundMetrics with metrics on vs off."""
    off = current.get("BM_RoundMetrics/0")
    on = current.get("BM_RoundMetrics/1")
    if not off or not on:
        return None
    return (in_ns(on) - in_ns(off)) / in_ns(off) * 100.0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", nargs="+",
                    help="google-benchmark JSON output files")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (bench/baseline.json)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from these results")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    ap.add_argument("--overhead-fail-pct", type=float, default=10.0)
    ap.add_argument("--context", default="",
                    help="free-form note recorded with --update")
    args = ap.parse_args()

    current = load_results(args.results)
    if not current:
        print("error: no benchmarks found in the given result files")
        return 2

    if args.update:
        doc = {"context": args.context, "benchmarks": current}
        try:  # the speedup gates are hand-set; carry them through refreshes
            with open(args.baseline) as f:
                old = json.load(f)
            for section in ("cache_gates", "delta_gates", "agility_gates",
                            "scale_gates", "serve_gates"):
                if old.get(section):
                    doc[section] = old[section]
        except (OSError, json.JSONDecodeError):
            pass
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {len(current)} benchmarks "
              f"-> {args.baseline}")
        return 0

    with open(args.baseline) as f:
        doc = json.load(f)
    baseline = doc["benchmarks"]

    failures, warnings = compare(baseline, current,
                                 args.warn_pct, args.fail_pct)

    overhead = metrics_overhead(current)
    if overhead is not None:
        status = "ok" if overhead <= args.overhead_fail_pct else "FAIL"
        print(f"{status:5} metrics-layer overhead on a full round: "
              f"{overhead:+.2f}% (budget 2%, CI gate "
              f"{args.overhead_fail_pct:.0f}%)")
        if overhead > args.overhead_fail_pct:
            failures.append(f"metrics overhead {overhead:+.2f}%")

    for name, ratio, need in cache_speedups(current,
                                            doc.get("cache_gates", {})):
        status = "ok" if ratio >= need else "FAIL"
        print(f"{status:5} {name}: cached path {ratio:.1f}x faster than "
              f"uncached (gate >= {need:g}x, same-run ratio)")
        if ratio < need:
            failures.append(f"{name} speedup {ratio:.1f}x < {need:g}x")

    for name, ratio, need in cache_speedups(current,
                                            doc.get("delta_gates", {})):
        status = "ok" if ratio >= need else "FAIL"
        print(f"{status:5} {name}: delta apply {ratio:.1f}x faster than "
              f"full recompute (gate >= {need:g}x, same-run ratio)")
        if ratio < need:
            failures.append(f"{name} delta speedup {ratio:.1f}x < {need:g}x")

    for name, ratio, need in cache_speedups(current,
                                            doc.get("agility_gates", {})):
        status = "ok" if ratio >= need else "FAIL"
        print(f"{status:5} {name}: delta-session playbook search {ratio:.1f}x "
              f"faster than full recompute (gate >= {need:g}x, "
              f"same-run ratio)")
        if ratio < need:
            failures.append(f"{name} search speedup {ratio:.1f}x < {need:g}x")

    for section in ("scale_gates", "serve_gates"):
        for name, desc, ok in scale_gate_rows(current,
                                              doc.get(section, {})):
            status = "ok" if ok else "FAIL"
            print(f"{status:5} {name}: {desc}")
            if not ok:
                failures.append(f"{name}: {desc}")

    print(f"\n{len(failures)} failure(s), {len(warnings)} warning(s), "
          f"{len(current)} benchmark(s) compared")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
