#include <cstdio>
#include <cstdlib>
#include "analysis/scenario.hpp"
using namespace vp;
int main() {
  analysis::ScenarioConfig config; config.scale = 0.5;
  analysis::Scenario sc{config};
  for (auto dep : {&sc.tangled(), &sc.broot()}) {
    const auto routes_ptr = sc.route(*dep);
    const auto& routes = *routes_ptr;
    printf("== %s ==\n", dep->name.c_str());
    for (unsigned asn : {4134u, 7922u, 6983u, 37963u}) {
      auto id = sc.topo().find_as(topology::AsNumber{asn});
      const auto& st = routes.state(id);
      printf("AS%-6u cand=%zu sites:", asn, st.candidates.size());
      for (const auto& c : st.candidates) printf(" %d(len%d,b%d)", (int)c.site, c.path_len, c.local_pref_bonus);
      printf(" multi=%d\n", st.multi_site());
    }
  }
}
