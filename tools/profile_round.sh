#!/usr/bin/env bash
# Cache profile of the probe hot path (DESIGN.md §17).
#
# Runs one full Verfploeter round (`vpctl gen --probe`) at 120k, 1.3M and
# 6.4M /24 blocks under `perf stat -e cache-misses,LLC-load-misses` and
# prints a per-scale table, so the effect of the block-range tiling and
# the SoA reply buffers shows up as counter deltas instead of vibes.
# Containers without perf (or without perf_event_paranoid access) fall
# back to `/usr/bin/time -v`, which still reports wall time and page
# faults. Compare a before/after pair by running the script on both
# builds:
#
#   tools/profile_round.sh build-release/cli/vpctl > /tmp/after.txt
#
# The 6.4M run generates the paper-scale topology in-process and needs
# ~10 GB of RAM and a few minutes; trim SCALES for a quick look.
set -u

VPCTL="${1:-build-release/cli/vpctl}"
SCALES="${SCALES:-120000 1300000 6400000}"
EVENTS="cache-misses,LLC-load-misses"

if [[ ! -x "$VPCTL" ]]; then
  echo "error: vpctl not found at '$VPCTL'" >&2
  echo "usage: $0 [path/to/vpctl]   (build the Release tree first)" >&2
  exit 2
fi

profiler=wall
if command -v perf >/dev/null 2>&1 &&
   perf stat -e cache-misses true >/dev/null 2>&1; then
  profiler=perf
elif [[ -x /usr/bin/time ]]; then
  profiler=gnutime
fi

echo "probe-round cache profile: $VPCTL"
case "$profiler" in
  perf)
    echo "profiler: perf stat -e $EVENTS"
    printf '%-10s %14s %16s %12s\n' \
      "blocks" "cache-misses" "LLC-load-misses" "elapsed_s"
    ;;
  gnutime)
    echo "profiler: /usr/bin/time -v (perf unavailable — counters limited" \
         "to faults + wall time)"
    printf '%-10s %14s %16s %12s\n' \
      "blocks" "major_faults" "minor_faults" "elapsed_s"
    ;;
  wall)
    echo "profiler: wall clock only (neither perf nor /usr/bin/time found)"
    printf '%-10s %12s\n' "blocks" "elapsed_s"
    ;;
esac

for blocks in $SCALES; do
  # 13 blocks per AS mirrors bench_scale_sweep's paper-like allocation.
  ases=$((blocks / 13))
  cmd=("$VPCTL" gen --gen-ases "$ases" --gen-blocks "$blocks" --probe)
  log="$(mktemp)"
  case "$profiler" in
    perf)
      perf stat -e "$EVENTS" -x, -o "$log" -- "${cmd[@]}" >/dev/null 2>&1
      status=$?
      # perf -x, CSV: value,unit,event,... ; elapsed appears as
      # "<nanoseconds>,,duration_time" on recent perf; fall back to "-".
      misses=$(awk -F, '$3 == "cache-misses" {print $1}' "$log")
      llc=$(awk -F, '$3 == "LLC-load-misses" {print $1}' "$log")
      secs=$(awk -F, '$3 == "duration_time" {printf "%.2f", $1 / 1e9}' "$log")
      printf '%-10s %14s %16s %12s\n' \
        "$blocks" "${misses:--}" "${llc:--}" "${secs:--}"
      ;;
    gnutime)
      /usr/bin/time -v "${cmd[@]}" >/dev/null 2>"$log"
      status=$?
      major=$(awk -F: '/Major .*page faults/ {gsub(/ /,"",$2); print $2}' "$log")
      minor=$(awk -F: '/Minor .*page faults/ {gsub(/ /,"",$2); print $2}' "$log")
      secs=$(awk -F'): ' '/Elapsed \(wall clock\)/ {print $2}' "$log")
      printf '%-10s %14s %16s %12s\n' \
        "$blocks" "${major:--}" "${minor:--}" "${secs:--}"
      ;;
    wall)
      start=$(date +%s.%N)
      "${cmd[@]}" >/dev/null 2>"$log"
      status=$?
      secs=$(awk -v a="$start" -v b="$(date +%s.%N)" \
               'BEGIN {printf "%.2f", b - a}')
      printf '%-10s %12s\n' "$blocks" "$secs"
      ;;
  esac
  rm -f "$log"
  if [[ $status -ne 0 ]]; then
    echo "warning: run at $blocks blocks exited with status $status" >&2
  fi
done
