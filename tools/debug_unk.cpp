#include <cstdio>
#include <algorithm>
#include <map>
#include <vector>
#include <string>
#include "analysis/scenario.hpp"
#include "core/verfploeter.hpp"
using namespace vp;
int main() {
  analysis::Scenario sc{analysis::ScenarioConfig{42, 1.0}};
  const auto routes_ptr = sc.route(sc.broot(), analysis::kAprilEpoch);
  const auto& routes = *routes_ptr;
  core::RoundSpec spec; spec.probe.measurement_id = 412;
  auto map = sc.verfploeter().run(routes, spec).map;
  auto load = sc.broot_load(0x20170412);
  std::map<std::string,double> unk; double total=0;
  std::map<std::string,double> unk_dark;
  for (auto& bl : load.blocks()) {
    if (map.contains(bl.block)) continue;
    auto g = sc.topo().geodb().lookup(bl.block);
    std::string c = g ? std::string(g->country,2) : "??";
    unk[c]+=bl.daily_queries; total+=bl.daily_queries;
    if (!sc.internet().responsiveness().ever_responds(bl.block)) unk_dark[c]+=bl.daily_queries;
  }
  std::vector<std::pair<double,std::string>> v;
  for (auto& [c,q]:unk) v.push_back({q,c});
  std::sort(v.rbegin(), v.rend());
  for (size_t i=0;i<v.size()&&i<12;i++) printf("%s %5.1f%%  (dark %4.1f%%)\n", v[i].second.c_str(), 100*v[i].first/total, 100*unk_dark[v[i].second]/total);
}
