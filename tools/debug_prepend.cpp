#include <cstdio>
#include "analysis/scenario.hpp"
#include "analysis/divisions.hpp"
using namespace vp;
int main() {
  analysis::ScenarioConfig config; config.scale = 0.25;
  analysis::Scenario sc{config};
  struct Cfg { const char* label; const char* site; int n; };
  const Cfg cfgs[] = {{"+1 LAX","LAX",1},{"equal","LAX",0},{"+1 MIA","MIA",1},{"+2 MIA","MIA",2},{"+3 MIA","MIA",3}};
  // Walk the sweep as one delta session: each config is reached by an
  // incremental apply that recomputes only the affected ASes.
  auto session = sc.delta_session(sc.broot(), analysis::kAprilEpoch);
  for (const auto& c : cfgs) {
    auto dep = sc.broot().with_prepend(c.site, c.n);
    const auto result = session.apply(
        anycast::ConfigDelta::diff(session.deployment(), dep));
    core::RoundSpec spec;
    auto r = sc.verfploeter().run(*result.table, spec);
    printf("%-7s frac LAX = %.3f (mapped %zu, recomputed %zu/%zu ASes)\n",
           c.label, r.map.fraction_to(0), r.map.mapped_blocks(),
           result.recomputed_ases, (size_t)sc.topo().as_count());
  }
  // Tangled
  const auto routes_ptr = sc.route(sc.tangled());
  const auto& routes = *routes_ptr;
  core::RoundSpec spec;
  auto r = sc.verfploeter().run(routes, spec);
  auto counts = r.map.per_site_counts(sc.tangled().sites.size());
  printf("\nTangled:\n");
  for (size_t s = 0; s < counts.size(); ++s)
    printf("  %-4s %6llu (%.1f%%)\n", sc.tangled().sites[s].code.c_str(),
           (unsigned long long)counts[s], 100.0*counts[s]/r.map.mapped_blocks());
  // multi-site ASes in tangled map
  auto report = analysis::analyze_divisions(sc.topo(), r.map);
  printf("  ases observed %llu multi-site %llu (%.1f%%)\n",
         (unsigned long long)report.ases_observed,
         (unsigned long long)report.ases_multi_site, 100*report.multi_site_fraction());
}
