#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace vp::obs {

unsigned Counter::stripe() noexcept {
  // Each thread gets a fixed stripe on first use; with more threads than
  // stripes the wrap-around only costs occasional cache-line sharing.
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return index;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), enabled_(enabled) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram needs at least one bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) ||
        (i > 0 && bounds_[i] <= bounds_[i - 1])) {
      throw std::invalid_argument(
          "histogram bounds must be finite and strictly ascending");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (std::isnan(v)) {
    nan_rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Bucket i counts v <= bounds[i] (Prometheus `le` semantics), so the
  // first bound >= v is the right bucket; past the end is the +Inf one.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n =
      count_.fetch_add(1, std::memory_order_relaxed) + 1;
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (n == 1) {
    // First observation seeds min/max; racing first observers fall
    // through to the CAS loops below, so no update is lost.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  nan_rejected_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, MetricKind kind, std::span<const double> bounds) {
  Shard& shard = shard_for(name);
  std::lock_guard lock{shard.mutex};
  const auto it = shard.metrics.find(name);
  if (it != shard.metrics.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>(&enabled_);
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>(&enabled_);
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(&enabled_, bounds);
      break;
  }
  return shard.metrics.emplace(std::string(name), std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  return *find_or_create(name, MetricKind::kHistogram, bounds).histogram;
}

void MetricsRegistry::reset_values() {
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (auto& [name, entry] : shard.metrics) {
      switch (entry.kind) {
        case MetricKind::kCounter: entry.counter->reset(); break;
        case MetricKind::kGauge: entry.gauge->reset(); break;
        case MetricKind::kHistogram: entry.histogram->reset(); break;
      }
    }
  }
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (const auto& [name, entry] : shard.metrics) {
      MetricSnapshot m;
      m.name = name;
      m.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          m.counter_value = entry.counter->value();
          break;
        case MetricKind::kGauge:
          m.gauge_value = entry.gauge->value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *entry.histogram;
          m.bounds.assign(h.bounds().begin(), h.bounds().end());
          m.cumulative.resize(m.bounds.size() + 1);
          std::uint64_t running = 0;
          for (std::size_t i = 0; i <= m.bounds.size(); ++i) {
            running += h.bucket(i);
            m.cumulative[i] = running;
          }
          m.count = h.count();
          m.nan_rejected = h.nan_rejected();
          m.sum = h.sum();
          m.min = h.min();
          m.max = h.max();
          break;
        }
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::span<const double> latency_buckets_ms() {
  static const double kBuckets[] = {0.01, 0.02, 0.05, 0.1,  0.2,  0.5,
                                    1,    2,    5,    10,   20,   50,
                                    100,  200,  500,  1000, 2000, 5000,
                                    10000, 20000, 50000, 100000};
  return kBuckets;
}

}  // namespace vp::obs
