// Observability: a lock-sharded metrics registry for the probe pipeline.
//
// The engine now runs sharded, fault-injected, crash-safe campaigns —
// and was a black box while doing it. This registry gives every layer
// (probe engine, fault injector, campaign/journal, BGP, the simulated
// dataplane, collectors) cheap counters, gauges, and fixed-bucket
// histograms, exported as JSON or Prometheus text (obs/export.hpp) and
// surfaced live through RoundObserver::on_metrics.
//
// Determinism contract: metrics are OBSERVE-ONLY. Nothing on the probe
// path may ever read a metric to make a decision — measurement results
// (catchment maps, CSVs, journals) are bit-identical with metrics
// enabled or disabled, for any thread count. Wall-clock time enters
// metrics (Span, obs/span.hpp) but never flows back into simulated time.
// tests/metrics_determinism_test.cpp enforces this.
//
// Cost model (budget: < 2% of a full measurement round, bench_metrics):
//  * handle acquisition (counter()/gauge()/histogram()) takes a shard
//    mutex and hashes the name — do it once per round or per object,
//    never per probe;
//  * Counter::add is a relaxed load of the enabled flag plus a relaxed
//    fetch_add on a per-thread stripe — no sharing between probe
//    workers, so the per-probe hot path stays in the low nanoseconds;
//  * Histogram::observe is a branch, a bounds scan, and two relaxed
//    atomic RMWs — keep it off the per-probe path (the engine observes
//    RTTs once per kept reply, during the serial cleaning pass).
//
// Naming scheme (DESIGN.md §11): vp_<subsystem>_<what>[_total|_ms],
// with optional Prometheus-style labels embedded in the name, e.g.
// vp_engine_shard_probes_total{shard="3"}. Counters end in _total,
// durations are histograms in milliseconds ending in _ms.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vp::obs {

/// Monotonic event count. Increments are striped across cache-line-sized
/// cells indexed by thread, so concurrent probe workers never contend;
/// value() sums the stripes (exact, but only quiescently consistent
/// while writers are active).
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t delta = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[stripe()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_)
      sum += cell.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kStripes = 16;  // power of two
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  static unsigned stripe() noexcept;

  std::array<Cell, kStripes> cells_;
  const std::atomic<bool>* enabled_;
};

/// A value that goes up and down (queue depths, in-flight rounds).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram: finite ascending upper bounds plus an
/// implicit +Inf overflow bucket. observe() is thread-safe (relaxed
/// atomics per bucket); NaN is rejected and counted separately rather
/// than poisoning sum/min/max.
class Histogram {
 public:
  Histogram(const std::atomic<bool>* enabled, std::span<const double> bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t nan_rejected() const noexcept {
    return nan_rejected_.load(std::memory_order_relaxed);
  }
  std::span<const double> bounds() const noexcept { return bounds_; }
  /// Count in bucket i (0..bounds().size(): the last is +Inf overflow).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nan_rejected_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  const std::atomic<bool>* enabled_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric, for export. Sorted by name in a
/// Snapshot so both export formats are deterministic.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  // Histogram fields (kind == kHistogram only).
  std::vector<double> bounds;                 // finite upper bounds
  std::vector<std::uint64_t> cumulative;      // size bounds.size() + 1 (+Inf)
  std::uint64_t count = 0;
  std::uint64_t nan_rejected = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by name
};

/// Name-keyed registry of metrics, sharded by name hash so concurrent
/// handle lookups from different subsystems rarely contend. Handles
/// (Counter&/Gauge&/Histogram&) are stable for the registry's lifetime;
/// reset_values() zeroes values without invalidating them. A name maps
/// to exactly one kind — re-registering under a different kind is a
/// programming error and throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// When disabled, every add/set/observe is a cheap no-op; handle
  /// lookups still work. Measurement results never depend on this.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be finite and strictly ascending; ignored (the
  /// existing buckets win) when the histogram already exists.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Zeroes every metric's value; handles stay valid. For tests and for
  /// per-run exports from long-lived processes.
  void reset_values();

  Snapshot snapshot() const;

  /// The process-wide registry the pipeline reports into.
  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry, std::less<>> metrics;
  };

  Shard& shard_for(std::string_view name);
  Entry& find_or_create(std::string_view name, MetricKind kind,
                        std::span<const double> bounds = {});

  static constexpr std::size_t kShards = 8;
  std::array<Shard, kShards> shards_;
  std::atomic<bool> enabled_{true};
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// Default duration buckets, in milliseconds: 1-2-5 decades from 10µs to
/// 100s. Wide enough for per-probe RTTs and whole-round wall times.
std::span<const double> latency_buckets_ms();

}  // namespace vp::obs
