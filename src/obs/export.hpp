// Metric export: deterministic JSON and Prometheus text renderings of a
// registry snapshot, plus an atomic file writer for `--metrics-out`.
//
// Both formats render the snapshot's name-sorted metric list, so two
// exports of the same state are byte-identical (golden-file tested).
// Histogram buckets are cumulative in both formats (Prometheus `le`
// semantics); names may embed labels — `vp_x_total{site="LAX"}` — and
// the Prometheus renderer folds them correctly into histogram series
// (`vp_x_bucket{site="LAX",le="5"}`).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace vp::obs {

std::string to_json(const Snapshot& snapshot);
std::string to_prometheus(const Snapshot& snapshot);

/// Writes a snapshot through util::atomic_write_file. Format follows the
/// extension: `.prom` / `.txt` get Prometheus text, anything else JSON.
/// Returns false on I/O failure (target untouched).
bool write_metrics_file(const std::string& path, const Snapshot& snapshot);

}  // namespace vp::obs
