#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.hpp"

namespace vp::obs {

namespace {

/// Shortest round-trippable rendering of a double; integral values print
/// without a trailing ".0" so goldens stay readable.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Metric names can embed label syntax (`{site="LAX"}`), so the quotes
/// must be escaped when the name becomes a JSON string.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Splits "base{labels}" into its parts; labels come back without braces
/// (empty when the name carries none).
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// "base_suffix{labels,le=\"bound\"}" with correct comma placement.
std::string series(const std::string& base, const std::string& suffix,
                   const std::string& labels, const std::string& extra = {}) {
  std::string out = base + suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << json_escape(m.name) << "\", ";
    switch (m.kind) {
      case MetricKind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << m.counter_value << '}';
        break;
      case MetricKind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << fmt_double(m.gauge_value)
            << '}';
        break;
      case MetricKind::kHistogram: {
        out << "\"type\": \"histogram\", \"count\": " << m.count
            << ", \"sum\": " << fmt_double(m.sum)
            << ", \"min\": " << fmt_double(m.min)
            << ", \"max\": " << fmt_double(m.max)
            << ", \"nan_rejected\": " << m.nan_rejected << ", \"buckets\": [";
        for (std::size_t i = 0; i < m.cumulative.size(); ++i) {
          if (i > 0) out << ", ";
          out << "{\"le\": ";
          if (i < m.bounds.size())
            out << fmt_double(m.bounds[i]);
          else
            out << "\"+Inf\"";
          out << ", \"count\": " << m.cumulative[i] << '}';
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  std::string base, labels, last_base;
  for (const MetricSnapshot& m : snapshot.metrics) {
    split_labels(m.name, base, labels);
    // The snapshot is name-sorted, so labeled series of one base metric
    // are adjacent: one TYPE line covers them all.
    const bool new_base = base != last_base;
    last_base = base;
    switch (m.kind) {
      case MetricKind::kCounter:
        if (new_base) out << "# TYPE " << base << " counter\n";
        out << m.name << ' ' << m.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        if (new_base) out << "# TYPE " << base << " gauge\n";
        out << m.name << ' ' << fmt_double(m.gauge_value) << '\n';
        break;
      case MetricKind::kHistogram: {
        if (new_base) out << "# TYPE " << base << " histogram\n";
        for (std::size_t i = 0; i < m.cumulative.size(); ++i) {
          const std::string le =
              i < m.bounds.size() ? fmt_double(m.bounds[i]) : "+Inf";
          out << series(base, "_bucket", labels, "le=\"" + le + "\"") << ' '
              << m.cumulative[i] << '\n';
        }
        out << series(base, "_sum", labels) << ' ' << fmt_double(m.sum)
            << '\n';
        out << series(base, "_count", labels) << ' ' << m.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

bool write_metrics_file(const std::string& path, const Snapshot& snapshot) {
  const bool prom = path.ends_with(".prom") || path.ends_with(".txt");
  return util::atomic_write_file(path,
                                 prom ? to_prometheus(snapshot)
                                      : to_json(snapshot));
}

}  // namespace vp::obs
