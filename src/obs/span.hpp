// RAII wall-clock timing spans that record into a Histogram.
//
// A Span measures real (steady-clock) time, the one clock the virtual
// SimTime world deliberately hides — which is exactly what operators
// need: how long a round, a journal fsync, or a route computation takes
// on this hardware. Wall time flows OUT into metrics only; it must never
// feed back into probe decisions or simulated timestamps (see the
// determinism contract in obs/metrics.hpp).
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace vp::obs {

class Span {
 public:
  /// Starts timing; records into `hist` (milliseconds) when stopped or
  /// destroyed. A null histogram makes the span inert.
  explicit Span(Histogram* hist) noexcept
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  explicit Span(Histogram& hist) noexcept : Span(&hist) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Stops the span (idempotent) and returns the elapsed milliseconds.
  double stop() noexcept {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ms_ = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
      if (hist_ != nullptr) hist_->observe(elapsed_ms_);
    }
    return elapsed_ms_;
  }

  /// Elapsed time so far without stopping (for progress reporting).
  double elapsed_ms() const noexcept {
    if (stopped_) return elapsed_ms_;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
  double elapsed_ms_ = 0.0;
  bool stopped_ = false;
};

}  // namespace vp::obs
