// Anycast stability analysis across measurement rounds (paper §6.3,
// Figure 9, Table 7).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/verfploeter.hpp"
#include "topology/topology.hpp"

namespace vp::analysis {

/// Transition counts between two consecutive rounds (Figure 9's series).
struct RoundTransition {
  std::uint64_t stable = 0;    // same site in both rounds
  std::uint64_t flipped = 0;   // different site
  std::uint64_t to_nr = 0;     // responded before, silent now
  std::uint64_t from_nr = 0;   // silent before, responding now
};

/// Per-AS flip totals (Table 7).
struct AsFlipCount {
  std::uint32_t asn = 0;
  std::string name;
  std::uint64_t flipping_blocks = 0;  // distinct blocks that ever flipped
  std::uint64_t flips = 0;            // total flip events
};

struct StabilityReport {
  std::vector<RoundTransition> transitions;  // rounds-1 entries
  std::vector<AsFlipCount> by_as;            // descending by flips
  std::uint64_t total_flips = 0;
  std::uint64_t flipping_ases = 0;
  /// Blocks that flipped at least once (input to §6.2's exclusion).
  std::unordered_set<std::uint32_t> unstable_blocks;

  double median_stable() const;
  double median_flipped() const;
  double median_to_nr() const;
  double median_from_nr() const;
};

/// Streaming classifier: feed catchment maps round by round so a 96-round
/// campaign never needs to be held in memory at once.
class StabilityAccumulator {
 public:
  explicit StabilityAccumulator(const topology::Topology& topo)
      : topo_(&topo) {}

  void add_round(const core::CatchmentMap& map);

  /// Finalizes the report (sorts the per-AS table).
  StabilityReport finish();

 private:
  struct AsAccumulator {
    std::uint64_t flips = 0;
    std::unordered_set<std::uint32_t> blocks;
  };

  const topology::Topology* topo_;
  std::unordered_map<net::Block24, anycast::SiteId> previous_;
  bool have_previous_ = false;
  std::unordered_map<std::uint32_t, AsAccumulator> per_as_;  // by ASN
  StabilityReport report_;
};

/// Classifies every block across a campaign of rounds.
StabilityReport analyze_stability(
    const topology::Topology& topo,
    std::span<const core::RoundResult> rounds);

}  // namespace vp::analysis
