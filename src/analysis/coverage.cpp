#include "analysis/coverage.hpp"

#include <unordered_set>

namespace vp::analysis {

CoverageReport compute_coverage(const topology::Topology& topo,
                                const atlas::AtlasPlatform& platform,
                                const atlas::Campaign& campaign,
                                const core::CatchmentMap& verfploeter_map) {
  CoverageReport report;
  report.atlas_vps_considered = campaign.considered;
  report.atlas_vps_responding = campaign.responding;
  report.atlas_vps_nonresponding = campaign.considered - campaign.responding;

  std::unordered_set<std::uint32_t> atlas_blocks;
  std::unordered_set<std::uint32_t> atlas_responding_blocks;
  const auto vps = platform.vps();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    atlas_blocks.insert(vps[i].block.index());
    if (campaign.vp_site[i] >= 0)
      atlas_responding_blocks.insert(vps[i].block.index());
  }
  report.atlas_blocks_considered = atlas_blocks.size();
  report.atlas_blocks_responding = atlas_responding_blocks.size();
  for (const std::uint32_t b : atlas_responding_blocks)
    if (topo.geodb().lookup(net::Block24{b})) ++report.atlas_blocks_geolocatable;

  report.verf_blocks_considered = verfploeter_map.blocks_probed;
  report.verf_blocks_responding = verfploeter_map.mapped_blocks();
  report.verf_blocks_nonresponding =
      verfploeter_map.blocks_probed - verfploeter_map.mapped_blocks();
  for (const auto& [block, site] : verfploeter_map.entries()) {
    if (topo.geodb().lookup(block)) {
      ++report.verf_blocks_geolocatable;
    } else {
      ++report.verf_blocks_no_location;
    }
  }

  for (const std::uint32_t b : atlas_responding_blocks) {
    if (verfploeter_map.contains(net::Block24{b})) {
      ++report.shared_blocks;
    } else {
      ++report.atlas_unique_blocks;
    }
  }
  report.verf_unique_blocks =
      verfploeter_map.mapped_blocks() - report.shared_blocks;
  return report;
}

}  // namespace vp::analysis
