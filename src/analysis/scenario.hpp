// Scenario: one-stop wiring of the full simulation stack, shared by the
// benchmark harnesses, examples, and integration tests.
//
// Builds the simulated Internet once, then hands out the pieces every
// experiment needs: the B-Root and Tangled deployments (Table 3), routing
// epochs for the paper's two measurement dates (April/May 2017 — same
// topology, different tie-break salt, §5.5), the Verfploeter instance, the
// Atlas platform, and the load models (B-Root-like and .nl-like).
//
// Scale: the paper probes 6.4M blocks; the default scenario builds ~120k
// and keeps every ratio (Atlas VP share, responsiveness, load skew) so the
// paper's *shapes* reproduce. Set VP_SCALE=4 (etc.) in the environment to
// run larger.
#pragma once

#include <cstdint>
#include <memory>

#include "anycast/deployment.hpp"
#include "atlas/atlas.hpp"
#include "bgp/route_cache.hpp"
#include "bgp/routing.hpp"
#include "bgp/routing_engine.hpp"
#include "core/verfploeter.hpp"
#include "dnsload/load_model.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"
#include "topology/generator.hpp"

namespace vp::analysis {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  double scale = 1.0;  // multiplies the default 120k-block Internet
  /// When non-zero, build the Internet with the sharded scale generator
  /// (topology/scale_generator.hpp) at this many ASes instead of the
  /// paper-shaped generator, with block count scaled by `scale`. The
  /// B-Root/Tangled deployment slots are filled by generated 2- and
  /// 9-site deployments hosted at the synthetic transit core.
  std::uint32_t generated_ases = 0;
  /// Memoize route computation across deployment sweeps and precompute the
  /// per-table block->site catchment tables. Results are byte-identical
  /// either way (vpctl --no-route-cache / route_cache_test A/B).
  bool route_cache = true;
  /// Byte cap on retained route-cache tables (0 = unbounded); LRU
  /// eviction by RoutingTable::memory_bytes() accounting.
  std::size_t route_cache_bytes = 0;
  /// Reads VP_SCALE, VP_SEED, VP_NO_ROUTE_CACHE, and VP_ROUTE_CACHE_BYTES
  /// from the environment (bench knobs).
  static ScenarioConfig from_env();
};

/// Routing-epoch salts for the paper's two measurement dates.
inline constexpr std::uint64_t kAprilEpoch = 0x20170421;
inline constexpr std::uint64_t kMayEpoch = 0x20170515;

/// A stateful routing session for configuration sweeps: owns a
/// bgp::RoutingEngine seeded at a base deployment under one routing epoch
/// and walks the sweep by incremental deltas. On Tangled-scale
/// topologies a one-site change recomputes only the affected-AS set
/// instead of re-routing the whole Internet (vpctl --delta-sweep,
/// bench_delta_routing). Not thread-safe across route_to calls; the
/// returned tables are immutable and freely shared.
class DeltaSession {
 public:
  DeltaSession(const topology::Topology& topo, const anycast::Deployment& base,
               const bgp::RoutingOptions& options)
      : engine_(topo, base, options) {}

  /// Applies `delta` to the session's current configuration and returns
  /// the new table plus the changed-AS summary.
  bgp::ApplyResult apply(const anycast::ConfigDelta& delta) {
    return engine_.apply(delta);
  }

  /// Routes for `target`, reached by diffing the session's current
  /// configuration against it and applying only that delta.
  std::shared_ptr<const bgp::RoutingTable> route_to(
      const anycast::Deployment& target) {
    return engine_.apply(anycast::ConfigDelta::diff(engine_.deployment(),
                                                    target))
        .table;
  }

  /// The session's current configuration.
  anycast::Deployment deployment() const { return engine_.deployment(); }

  bgp::RoutingEngine& engine() { return engine_; }

 private:
  bgp::RoutingEngine engine_;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config = {});

  const ScenarioConfig& config() const { return config_; }
  const topology::Topology& topo() const { return *topo_; }
  const sim::InternetSim& internet() const { return *internet_; }
  const hitlist::Hitlist& hitlist() const { return *hitlist_; }
  const core::Verfploeter& verfploeter() const { return *verfploeter_; }
  const atlas::AtlasPlatform& atlas() const { return *atlas_; }
  /// The small Atlas deployment of the April B-Root measurements
  /// (Table 6: 967 VPs vs 9,682 in May).
  const atlas::AtlasPlatform& atlas_small() const { return *atlas_small_; }

  const anycast::Deployment& broot() const { return broot_; }
  const anycast::Deployment& tangled() const { return tangled_; }

  /// Routes for a deployment under a routing epoch. Served from the
  /// scenario's route cache when enabled (sweeps that re-route the same
  /// deployment pay the route computation once); the returned pointer keeps its
  /// own deployment copy alive, so short-lived deployment values are fine.
  std::shared_ptr<const bgp::RoutingTable> route(
      const anycast::Deployment& deployment,
      std::uint64_t epoch_salt = kMayEpoch) const;

  /// Routes for `base` with `delta` applied, served through the route
  /// cache (keyed on the post-delta configuration, so delta-derived and
  /// directly-routed lookups of the same configuration unify).
  std::shared_ptr<const bgp::RoutingTable> route_delta(
      const anycast::Deployment& base, const anycast::ConfigDelta& delta,
      std::uint64_t epoch_salt = kMayEpoch) const;

  /// A delta-routing session seeded at `base` under `epoch_salt` — the
  /// sweep-oriented counterpart of route(): subsequent configurations
  /// are reached by incremental delta application instead of full
  /// recomputation.
  DeltaSession delta_session(const anycast::Deployment& base,
                             std::uint64_t epoch_salt = kMayEpoch) const;

  /// The scenario's memoized routing front-end (stats, clear,
  /// enable/disable, byte cap).
  const bgp::RouteCache& route_cache() const { return *route_cache_; }

  /// B-Root-like load for a "date" (seed); .nl-like load for Figure 4b.
  dnsload::LoadModel broot_load(std::uint64_t date_seed) const;
  dnsload::LoadModel nl_load() const;

 private:
  ScenarioConfig config_;
  std::unique_ptr<topology::Topology> topo_;
  std::unique_ptr<sim::InternetSim> internet_;
  std::unique_ptr<hitlist::Hitlist> hitlist_;
  std::unique_ptr<core::Verfploeter> verfploeter_;
  std::unique_ptr<atlas::AtlasPlatform> atlas_;
  std::unique_ptr<atlas::AtlasPlatform> atlas_small_;
  std::unique_ptr<bgp::RouteCache> route_cache_;
  anycast::Deployment broot_;
  anycast::Deployment tangled_;
};

}  // namespace vp::analysis
