#include "analysis/geomaps.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"
#include "util/table.hpp"

namespace vp::analysis {

geo::GeoBinner bin_catchment(const topology::Topology& topo,
                             const core::CatchmentMap& map,
                             std::size_t site_count) {
  geo::GeoBinner binner{site_count + 1};
  for (const auto& [block, site] : map.entries()) {
    const auto geo_record = topo.geodb().lookup(block);
    if (!geo_record) continue;
    const std::size_t category =
        site >= 0 && static_cast<std::size_t>(site) < site_count
            ? static_cast<std::size_t>(site)
            : site_count;
    binner.add(geo_record->location, category);
  }
  return binner;
}

geo::GeoBinner bin_atlas(const atlas::AtlasPlatform& platform,
                         const atlas::Campaign& campaign,
                         std::size_t site_count) {
  geo::GeoBinner binner{site_count + 1};
  const auto vps = platform.vps();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const anycast::SiteId site = campaign.vp_site[i];
    if (site == anycast::kUnknownSite) continue;  // down probes invisible
    const std::size_t category =
        site >= 0 && static_cast<std::size_t>(site) < site_count
            ? static_cast<std::size_t>(site)
            : site_count;
    binner.add(vps[i].location, category);
  }
  return binner;
}

geo::GeoBinner bin_load(const topology::Topology& topo,
                        const dnsload::LoadModel& load,
                        const core::CatchmentMap& map,
                        std::size_t site_count) {
  geo::GeoBinner binner{site_count + 1};
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    const auto geo_record = topo.geodb().lookup(bl.block);
    if (!geo_record) continue;
    const anycast::SiteId site = map.site_of(bl.block);
    const std::size_t category =
        site >= 0 && static_cast<std::size_t>(site) < site_count
            ? static_cast<std::size_t>(site)
            : site_count;
    // Weight: average queries/second across the day.
    binner.add(geo_record->location, category,
               bl.daily_queries / 86400.0);
  }
  return binner;
}

geo::GeoBinner bin_load_plain(const topology::Topology& topo,
                              const dnsload::LoadModel& load) {
  geo::GeoBinner binner{1};
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    const auto geo_record = topo.geodb().lookup(bl.block);
    if (!geo_record) continue;
    binner.add(geo_record->location, 0, bl.daily_queries / 86400.0);
  }
  return binner;
}

std::string render_map_summary(const geo::GeoBinner& binner,
                               const std::vector<std::string>& categories,
                               std::size_t top_bins) {
  std::ostringstream os;

  // Continent totals.
  std::vector<std::string> header{"continent"};
  header.insert(header.end(), categories.begin(), categories.end());
  header.push_back("total");
  util::Table continent_table{header, {util::Align::kLeft}};
  for (const auto& [continent, weights] : binner.by_continent()) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total <= 0) continue;
    std::vector<std::string> row{std::string(geo::to_string(continent))};
    for (const double w : weights) row.push_back(util::si_count(w));
    row.push_back(util::si_count(total));
    continent_table.add_row(std::move(row));
  }
  os << continent_table.to_string();

  // Heaviest bins.
  os << "\ntop " << top_bins << " two-degree bins:\n";
  util::Table bin_table{
      {"lat", "lon", "total", "dominant", "share"},
      {util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kLeft, util::Align::kRight}};
  const auto rows = binner.rows();
  for (std::size_t i = 0; i < rows.size() && i < top_bins; ++i) {
    const auto& row = rows[i];
    const auto center = row.bin.center();
    const auto dominant = static_cast<std::size_t>(
        std::max_element(row.category_weights.begin(),
                         row.category_weights.end()) -
        row.category_weights.begin());
    bin_table.add_row(
        {util::fixed(center.lat, 0), util::fixed(center.lon, 0),
         util::si_count(row.total),
         dominant < categories.size() ? categories[dominant] : "?",
         util::percent(row.category_weights[dominant] / row.total)});
  }
  os << bin_table.to_string();
  return os.str();
}

}  // namespace vp::analysis
