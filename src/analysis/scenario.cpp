#include "analysis/scenario.hpp"

#include <cstdlib>

#include "bgp/catchment_resolver.hpp"
#include "topology/scale_generator.hpp"
#include "util/rng.hpp"

namespace vp::analysis {

ScenarioConfig ScenarioConfig::from_env() {
  ScenarioConfig config;
  if (const char* scale = std::getenv("VP_SCALE")) {
    const double parsed = std::atof(scale);
    if (parsed > 0) config.scale = parsed;
  }
  if (const char* seed = std::getenv("VP_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* off = std::getenv("VP_NO_ROUTE_CACHE")) {
    if (off[0] != '\0' && off[0] != '0') config.route_cache = false;
  }
  if (const char* cap = std::getenv("VP_ROUTE_CACHE_BYTES")) {
    config.route_cache_bytes = std::strtoull(cap, nullptr, 10);
  }
  if (const char* ases = std::getenv("VP_GEN_ASES")) {
    config.generated_ases = static_cast<std::uint32_t>(
        std::strtoull(ases, nullptr, 10));
  }
  return config;
}

Scenario::Scenario(const ScenarioConfig& config) : config_(config) {
  if (config.generated_ases > 0) {
    // Scale-generator path: the full stack runs unchanged over a
    // synthetic Internet of arbitrary size (VP_GEN_ASES).
    topology::ScaleConfig gen;
    gen.seed = config.seed;
    gen.as_count = config.generated_ases;
    gen.target_blocks = static_cast<std::uint64_t>(
        std::max(2000.0, 13.0 * config.generated_ases * config.scale));
    topo_ = std::make_unique<topology::Topology>(
        topology::generate_scale_topology(gen));
  } else {
    topology::TopologyConfig topo_config =
        topology::TopologyConfig::scaled(config.scale);
    topo_config.seed = config.seed;
    topo_ = std::make_unique<topology::Topology>(
        topology::generate_topology(topo_config));
  }

  sim::InternetConfig internet_config;
  internet_config.responsiveness.seed = util::hash_combine(config.seed, 1);
  internet_config.flips.seed = util::hash_combine(config.seed, 2);
  internet_ = std::make_unique<sim::InternetSim>(*topo_, internet_config);

  hitlist::HitlistConfig hitlist_config;
  hitlist_config.seed = util::hash_combine(config.seed, 3);
  hitlist_ = std::make_unique<hitlist::Hitlist>(hitlist::Hitlist::build(
      *topo_, internet_->responsiveness(), hitlist_config));

  verfploeter_ = std::make_unique<core::Verfploeter>(*internet_, *hitlist_);

  // Atlas VP count: sized so the Verfploeter/Atlas responding-block ratio
  // lands near the paper's 430x (Table 4). Expected responding blocks
  // ~ 0.53 x allocated; the 1.10 compensates for shared blocks and
  // down probes.
  atlas::AtlasConfig atlas_config;
  atlas_config.seed = util::hash_combine(config.seed, 4);
  atlas_config.vp_count = static_cast<std::uint32_t>(
      std::max<double>(24.0, 0.53 * static_cast<double>(topo_->block_count()) /
                                 430.0 * 1.10));
  atlas_ = std::make_unique<atlas::AtlasPlatform>(
      *topo_, internet_->responsiveness(), atlas_config);

  atlas::AtlasConfig small = atlas_config;
  small.seed = util::hash_combine(config.seed, 5);
  small.vp_count = std::max<std::uint32_t>(20, atlas_config.vp_count / 10);
  atlas_small_ = std::make_unique<atlas::AtlasPlatform>(
      *topo_, internet_->responsiveness(), small);

  route_cache_ = std::make_unique<bgp::RouteCache>(
      *topo_, config.route_cache, config.route_cache_bytes);
  bgp::set_catchment_cache_enabled(config.route_cache);

  if (config.generated_ases > 0) {
    // Same site counts as the paper's deployments (Table 3), hosted at
    // the generated transit core instead of the hand-built upstreams.
    broot_ = anycast::make_generated(*topo_, 2, config.seed);
    tangled_ = anycast::make_generated(*topo_, 9,
                                       util::hash_combine(config.seed, 9));
    tangled_.name = "Generated-9";
  } else {
    broot_ = anycast::make_broot(*topo_);
    tangled_ = anycast::make_tangled(*topo_);
  }
}

std::shared_ptr<const bgp::RoutingTable> Scenario::route(
    const anycast::Deployment& deployment, std::uint64_t epoch_salt) const {
  bgp::RoutingOptions options;
  options.tiebreak_salt = util::hash_combine(config_.seed, epoch_salt);
  return route_cache_->routes(deployment, options);
}

std::shared_ptr<const bgp::RoutingTable> Scenario::route_delta(
    const anycast::Deployment& base, const anycast::ConfigDelta& delta,
    std::uint64_t epoch_salt) const {
  bgp::RoutingOptions options;
  options.tiebreak_salt = util::hash_combine(config_.seed, epoch_salt);
  return route_cache_->routes_delta(base, delta, options);
}

DeltaSession Scenario::delta_session(const anycast::Deployment& base,
                                     std::uint64_t epoch_salt) const {
  bgp::RoutingOptions options;
  options.tiebreak_salt = util::hash_combine(config_.seed, epoch_salt);
  return DeltaSession{*topo_, base, options};
}

dnsload::LoadModel Scenario::broot_load(std::uint64_t date_seed) const {
  dnsload::LoadConfig load_config;
  load_config.seed = util::hash_combine(config_.seed, date_seed);
  // The resolver population is the same on both dates; only volumes drift.
  load_config.membership_seed = util::hash_combine(config_.seed, 0x6d656d);
  load_config.profile = dnsload::LoadProfile::kRootLike;
  return dnsload::LoadModel{*topo_, internet_->responsiveness(), load_config};
}

dnsload::LoadModel Scenario::nl_load() const {
  dnsload::LoadConfig load_config;
  load_config.seed = util::hash_combine(config_.seed, 0x6e6c);
  load_config.profile = dnsload::LoadProfile::kNlLike;
  return dnsload::LoadModel{*topo_, internet_->responsiveness(), load_config};
}

}  // namespace vp::analysis
