// Geographic catchment/load maps (paper Figures 2-4), rendered as
// 2-degree-binned data plus continent-level summaries — the textual
// equivalent of the paper's world maps.
#pragma once

#include <string>
#include <vector>

#include "atlas/atlas.hpp"
#include "core/catchment.hpp"
#include "dnsload/load_model.hpp"
#include "geo/geodb.hpp"
#include "topology/topology.hpp"

namespace vp::analysis {

/// Figure 2b/3b: bins Verfploeter-mapped blocks by location; categories
/// are site ids, one extra for "unknown site".
geo::GeoBinner bin_catchment(const topology::Topology& topo,
                             const core::CatchmentMap& map,
                             std::size_t site_count);

/// Figure 2a/3a: bins responding Atlas VPs by location.
geo::GeoBinner bin_atlas(const atlas::AtlasPlatform& platform,
                         const atlas::Campaign& campaign,
                         std::size_t site_count);

/// Figure 4a: bins *load* (q/s) by location and site; unmapped querying
/// blocks land in the last category (the paper's red "UNK" slices).
geo::GeoBinner bin_load(const topology::Topology& topo,
                        const dnsload::LoadModel& load,
                        const core::CatchmentMap& map,
                        std::size_t site_count);

/// Figure 4b: bins load with no catchment attribution (single category) —
/// the .nl operator's view of where its clients are.
geo::GeoBinner bin_load_plain(const topology::Topology& topo,
                              const dnsload::LoadModel& load);

/// Renders a binner as two tables: per-continent totals per category, and
/// the `top_bins` heaviest 2-degree bins with their dominant category.
std::string render_map_summary(const geo::GeoBinner& binner,
                               const std::vector<std::string>& categories,
                               std::size_t top_bins = 12);

}  // namespace vp::analysis
