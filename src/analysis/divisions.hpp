// Intra-AS catchment divisions (paper §6.2, Figures 7-8): do anycast
// catchments align with AS boundaries? (Mostly not, for large ASes.)
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/catchment.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"

namespace vp::analysis {

/// Figure 7: per number-of-sites bucket, the distribution of announced
/// prefix counts of the ASes in that bucket.
struct SiteCountBucket {
  int sites_seen = 0;
  std::uint64_t as_count = 0;
  util::PercentileSummary announced_prefixes;
  double mean_prefixes = 0.0;
};

struct DivisionsReport {
  std::vector<SiteCountBucket> buckets;       // sites_seen = 1, 2, ...
  std::uint64_t ases_observed = 0;            // ASes with >= 1 mapped VP
  std::uint64_t ases_multi_site = 0;          // seen at > 1 site
  /// Fraction of observed ASes that are split across sites (~12.7% in
  /// the paper for Tangled).
  double multi_site_fraction() const {
    return ases_observed ? static_cast<double>(ases_multi_site) /
                               static_cast<double>(ases_observed)
                         : 0.0;
  }
};

/// Computes Figure 7 from one catchment map, excluding blocks known to be
/// unstable (the paper removes flipping VPs first; without the exclusion
/// divisions are over-counted by ~2%).
DivisionsReport analyze_divisions(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks = {});

/// Figure 8: per announced-prefix-length row, the distribution of how
/// many sites a prefix's blocks reach. fraction_by_sites[k-1] = fraction
/// of prefixes of this length seeing exactly k sites (k capped at 6+).
struct PrefixLengthRow {
  std::uint8_t prefix_length = 0;
  std::uint64_t prefix_count = 0;       // prefixes of this length observed
  std::array<double, 6> fraction_by_sites{};  // 1..5 sites, 6 = "6 or more"
  double mean_sites = 0.0;
};

std::vector<PrefixLengthRow> analyze_prefix_sites(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks = {});

/// Share of the measured address space needing multiple VPs (the paper's
/// "multiple VPs are required in prefixes that account for approximately
/// 38% of the measured address space").
struct AddressSpaceShare {
  std::uint64_t multi_site_blocks = 0;
  std::uint64_t observed_blocks = 0;
  double fraction() const {
    return observed_blocks ? static_cast<double>(multi_site_blocks) /
                                 static_cast<double>(observed_blocks)
                           : 0.0;
  }
};

AddressSpaceShare multi_vp_address_share(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks = {});

}  // namespace vp::analysis
