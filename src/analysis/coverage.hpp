// Coverage comparison between Atlas and Verfploeter (paper §5.3, Table 4).
#pragma once

#include <cstdint>

#include "atlas/atlas.hpp"
#include "core/catchment.hpp"
#include "topology/topology.hpp"

namespace vp::analysis {

/// Table 4: who sees how much of the Internet.
struct CoverageReport {
  // Atlas, in VPs.
  std::uint64_t atlas_vps_considered = 0;
  std::uint64_t atlas_vps_nonresponding = 0;
  std::uint64_t atlas_vps_responding = 0;
  // Atlas, in /24 blocks.
  std::uint64_t atlas_blocks_considered = 0;
  std::uint64_t atlas_blocks_responding = 0;
  std::uint64_t atlas_blocks_geolocatable = 0;
  // Verfploeter, in /24 blocks.
  std::uint64_t verf_blocks_considered = 0;   // hitlist size
  std::uint64_t verf_blocks_nonresponding = 0;
  std::uint64_t verf_blocks_responding = 0;
  std::uint64_t verf_blocks_no_location = 0;
  std::uint64_t verf_blocks_geolocatable = 0;
  // Overlap.
  std::uint64_t atlas_unique_blocks = 0;  // Atlas sees, Verfploeter misses
  std::uint64_t verf_unique_blocks = 0;   // Verfploeter sees, Atlas misses
  std::uint64_t shared_blocks = 0;

  /// Verfploeter responding blocks / Atlas responding blocks (the 430x).
  double coverage_ratio() const {
    return atlas_blocks_responding == 0
               ? 0.0
               : static_cast<double>(verf_blocks_responding) /
                     static_cast<double>(atlas_blocks_responding);
  }
  /// Fraction of Atlas blocks also seen by Verfploeter (~77% in Table 4).
  double atlas_overlap_fraction() const {
    return atlas_blocks_responding == 0
               ? 0.0
               : static_cast<double>(shared_blocks) /
                     static_cast<double>(atlas_blocks_responding);
  }
};

CoverageReport compute_coverage(const topology::Topology& topo,
                                const atlas::AtlasPlatform& platform,
                                const atlas::Campaign& campaign,
                                const core::CatchmentMap& verfploeter_map);

}  // namespace vp::analysis
