#include "analysis/load_analysis.hpp"

#include <numeric>

namespace vp::analysis {

TrafficCoverage compute_traffic_coverage(const dnsload::LoadModel& load,
                                         const core::CatchmentMap& map) {
  TrafficCoverage out;
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    ++out.blocks_seen;
    out.queries_seen += bl.daily_queries;
    if (map.contains(bl.block)) {
      ++out.blocks_mapped;
      out.queries_mapped += bl.daily_queries;
    } else {
      ++out.blocks_unmapped;
      out.queries_unmapped += bl.daily_queries;
    }
  }
  return out;
}

double LoadSplit::total(bool include_unknown) const {
  double sum = std::accumulate(site_queries.begin(), site_queries.end(), 0.0);
  if (include_unknown) sum += unknown_queries;
  return sum;
}

double LoadSplit::fraction_to(anycast::SiteId site,
                              bool include_unknown) const {
  const double denominator = total(include_unknown);
  if (denominator <= 0 || site < 0 ||
      static_cast<std::size_t>(site) >= site_queries.size()) {
    return 0.0;
  }
  return site_queries[static_cast<std::size_t>(site)] / denominator;
}

LoadSplit predict_load(const dnsload::LoadModel& load,
                       const core::CatchmentMap& map,
                       std::size_t site_count, LoadWeight weight) {
  LoadSplit out;
  out.site_queries.assign(site_count, 0.0);
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    const double volume =
        weight == LoadWeight::kQueries
            ? bl.daily_queries
            : bl.daily_queries * static_cast<double>(bl.good_fraction);
    const anycast::SiteId site = map.site_of(bl.block);
    if (site >= 0 && static_cast<std::size_t>(site) < site_count) {
      out.site_queries[static_cast<std::size_t>(site)] += volume;
    } else {
      out.unknown_queries += volume;
    }
  }
  return out;
}

LoadSplit actual_load(const dnsload::LoadModel& load,
                      const bgp::RoutingTable& routes,
                      const sim::FlipModel& flips, std::uint32_t round) {
  LoadSplit out;
  out.site_queries.assign(routes.deployment().sites.size(), 0.0);
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    const anycast::SiteId site = flips.site_in_round(routes, bl.block, round);
    if (site >= 0) {
      out.site_queries[static_cast<std::size_t>(site)] += bl.daily_queries;
    } else {
      out.unknown_queries += bl.daily_queries;  // unreachable AS (rare)
    }
  }
  return out;
}

std::vector<std::vector<double>> hourly_load_by_site(
    const topology::Topology& topo, const dnsload::LoadModel& load,
    const core::CatchmentMap& map, std::size_t site_count) {
  std::vector<std::vector<double>> hours(
      24, std::vector<double>(site_count + 1, 0.0));
  for (const dnsload::BlockLoad& bl : load.blocks()) {
    const anycast::SiteId site = map.site_of(bl.block);
    const std::size_t column =
        site >= 0 && static_cast<std::size_t>(site) < site_count
            ? static_cast<std::size_t>(site)
            : site_count;  // UNKNOWN
    double lon = 0.0;
    if (const auto geo = topo.geodb().lookup(bl.block)) lon = geo->location.lon;
    for (int h = 0; h < 24; ++h) {
      const double queries_this_hour =
          bl.daily_queries * dnsload::LoadModel::hourly_weight(lon, h);
      hours[static_cast<std::size_t>(h)][column] +=
          queries_this_hour / 3600.0;  // average q/s in the hour
    }
  }
  return hours;
}

}  // namespace vp::analysis
