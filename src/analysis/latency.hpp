// RTT analysis and anycast site placement (paper §7, future work:
// "it is possible that RTTs of Verfploeter measurements can be used to
// suggest where new anycast sites would be helpful [43]").
//
// Verfploeter's probe replies carry transmit timestamps, so every mapped
// block comes with a measured RTT for free. This module turns those RTTs
// into (a) a per-site / per-continent latency report and (b) a greedy,
// load-weighted site-placement recommender: for each candidate location
// (a population center), estimate how much query-weighted RTT a new site
// there would save, assuming catchments follow proximity for the blocks
// it would win.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "anycast/deployment.hpp"
#include "core/verfploeter.hpp"
#include "dnsload/load_model.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"

namespace vp::analysis {

/// Latency summary of a measured deployment.
struct LatencyReport {
  struct PerSite {
    anycast::SiteId site = anycast::kUnknownSite;
    std::string code;
    std::uint64_t blocks = 0;
    util::PercentileSummary rtt_ms;
  };
  std::vector<PerSite> per_site;
  util::PercentileSummary overall_rtt_ms;
  /// Load-weighted mean RTT (what a user query experiences on average).
  double load_weighted_mean_ms = 0.0;
};

LatencyReport analyze_latency(
    const topology::Topology& topo, const core::RoundResult& round,
    const dnsload::LoadModel& load, const anycast::Deployment& deployment);

/// One candidate location for a new anycast site.
struct PlacementCandidate {
  std::uint16_t center_id = 0;
  std::string center_name;
  /// Blocks expected to move to the new site (nearer to it than their
  /// currently measured RTT suggests their site is).
  std::uint64_t blocks_won = 0;
  /// Estimated reduction in load-weighted mean RTT across the service.
  double mean_rtt_saving_ms = 0.0;
  /// Estimated total query-milliseconds saved per second of traffic.
  double weighted_saving = 0.0;
};

/// Ranks candidate centers by estimated load-weighted RTT saving. The
/// model assumes a new site would serve blocks whose predicted RTT to the
/// candidate (propagation at ~1 ms / 100 km round trip) is lower than
/// their measured RTT today.
std::vector<PlacementCandidate> recommend_sites(
    const topology::Topology& topo, const core::RoundResult& round,
    const dnsload::LoadModel& load, const anycast::Deployment& deployment,
    std::size_t max_candidates = 5);

/// Predicted RTT from a location to a block, mirroring the simulator's
/// propagation model (analysis-side estimate, not ground truth).
double predicted_rtt_ms(geo::LatLon from, geo::LatLon to);

}  // namespace vp::analysis
