#include "analysis/catchment_diff.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace vp::analysis {

CatchmentDiff diff_catchments(const topology::Topology& topo,
                              const core::CatchmentMap& before,
                              const core::CatchmentMap& after,
                              const dnsload::LoadModel& load,
                              std::size_t top_as_count) {
  CatchmentDiff diff;
  std::map<std::pair<anycast::SiteId, anycast::SiteId>, SitePairFlow> flows;
  std::unordered_map<std::uint32_t, std::uint64_t> moved_by_asn;

  for (const auto& [block, before_site] : before.entries()) {
    const anycast::SiteId after_site = after.site_of(block);
    if (after_site == anycast::kUnknownSite) {
      ++diff.vanished_blocks;
      continue;
    }
    if (after_site == before_site) {
      ++diff.stable_blocks;
      continue;
    }
    ++diff.moved_blocks;
    const double queries = load.daily_queries(block);
    diff.moved_queries += queries;
    auto& flow = flows[{before_site, after_site}];
    flow.from = before_site;
    flow.to = after_site;
    ++flow.blocks;
    flow.daily_queries += queries;
    if (const auto* info = topo.block_info(block))
      ++moved_by_asn[topo.as_at(info->as_id).asn.value];
  }
  for (const auto& [block, site] : after.entries()) {
    if (!before.contains(block)) ++diff.appeared_blocks;
  }

  diff.flows.reserve(flows.size());
  for (const auto& [key, flow] : flows) diff.flows.push_back(flow);
  std::sort(diff.flows.begin(), diff.flows.end(),
            [](const SitePairFlow& a, const SitePairFlow& b) {
              return a.blocks > b.blocks;
            });

  diff.top_ases.reserve(moved_by_asn.size());
  for (const auto& [asn, count] : moved_by_asn) {
    MovedAs moved;
    moved.asn = asn;
    const auto id = topo.find_as(topology::AsNumber{asn});
    if (id != topology::kNoAs) moved.name = topo.as_at(id).name;
    moved.moved_blocks = count;
    diff.top_ases.push_back(std::move(moved));
  }
  std::sort(diff.top_ases.begin(), diff.top_ases.end(),
            [](const MovedAs& a, const MovedAs& b) {
              return a.moved_blocks > b.moved_blocks;
            });
  if (diff.top_ases.size() > top_as_count)
    diff.top_ases.resize(top_as_count);
  return diff;
}

}  // namespace vp::analysis
