#include "analysis/stability.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/stats.hpp"

namespace vp::analysis {

namespace {
double median_of(const std::vector<RoundTransition>& transitions,
                 std::uint64_t RoundTransition::* field) {
  std::vector<double> values;
  values.reserve(transitions.size());
  for (const auto& t : transitions)
    values.push_back(static_cast<double>(t.*field));
  return util::median(values);
}
}  // namespace

double StabilityReport::median_stable() const {
  return median_of(transitions, &RoundTransition::stable);
}
double StabilityReport::median_flipped() const {
  return median_of(transitions, &RoundTransition::flipped);
}
double StabilityReport::median_to_nr() const {
  return median_of(transitions, &RoundTransition::to_nr);
}
double StabilityReport::median_from_nr() const {
  return median_of(transitions, &RoundTransition::from_nr);
}

void StabilityAccumulator::add_round(const core::CatchmentMap& map) {
  if (have_previous_) {
    RoundTransition t;
    for (const auto& [block, prev_site] : previous_) {
      const anycast::SiteId cur_site = map.site_of(block);
      if (cur_site == anycast::kUnknownSite) {
        ++t.to_nr;
      } else if (cur_site == prev_site) {
        ++t.stable;
      } else {
        ++t.flipped;
        ++report_.total_flips;
        report_.unstable_blocks.insert(block.index());
        if (const auto* info = topo_->block_info(block)) {
          auto& acc = per_as_[topo_->as_at(info->as_id).asn.value];
          ++acc.flips;
          acc.blocks.insert(block.index());
        }
      }
    }
    for (const auto& [block, site] : map.entries()) {
      if (previous_.find(block) == previous_.end()) ++t.from_nr;
    }
    report_.transitions.push_back(t);
  }
  previous_.clear();
  for (const auto& [block, site] : map.entries()) previous_[block] = site;
  have_previous_ = true;
}

StabilityReport StabilityAccumulator::finish() {
  report_.flipping_ases = per_as_.size();
  report_.by_as.clear();
  report_.by_as.reserve(per_as_.size());
  for (const auto& [asn, acc] : per_as_) {
    AsFlipCount c;
    c.asn = asn;
    const topology::AsId id = topo_->find_as(topology::AsNumber{asn});
    if (id != topology::kNoAs) c.name = topo_->as_at(id).name;
    c.flips = acc.flips;
    c.flipping_blocks = acc.blocks.size();
    report_.by_as.push_back(std::move(c));
  }
  std::sort(report_.by_as.begin(), report_.by_as.end(),
            [](const AsFlipCount& a, const AsFlipCount& b) {
              return a.flips > b.flips;
            });
  return report_;
}

StabilityReport analyze_stability(
    const topology::Topology& topo,
    std::span<const core::RoundResult> rounds) {
  StabilityAccumulator accumulator{topo};
  for (const core::RoundResult& round : rounds)
    accumulator.add_round(round.map);
  return accumulator.finish();
}

}  // namespace vp::analysis
