// Catchment comparison: what changed between two measurements?
//
// The paper compares scans taken weeks apart (§5.5) and before/after
// traffic-engineering changes (§6.1). An operator's first question after
// any such pair is "which blocks moved, and how much traffic do they
// carry?" — this module answers it, per site pair and per AS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/catchment.hpp"
#include "dnsload/load_model.hpp"
#include "topology/topology.hpp"

namespace vp::analysis {

/// Movement between one ordered pair of sites.
struct SitePairFlow {
  anycast::SiteId from = anycast::kUnknownSite;  // kUnknownSite = unmapped
  anycast::SiteId to = anycast::kUnknownSite;
  std::uint64_t blocks = 0;
  double daily_queries = 0.0;  // traffic carried by the moved blocks
};

/// An AS with many moved blocks (who to investigate after a change).
struct MovedAs {
  std::uint32_t asn = 0;
  std::string name;
  std::uint64_t moved_blocks = 0;
};

struct CatchmentDiff {
  std::uint64_t stable_blocks = 0;
  std::uint64_t moved_blocks = 0;    // mapped in both, different site
  std::uint64_t appeared_blocks = 0; // only in `after`
  std::uint64_t vanished_blocks = 0; // only in `before`
  double moved_queries = 0.0;
  std::vector<SitePairFlow> flows;   // sorted by blocks desc, moves only
  std::vector<MovedAs> top_ases;     // sorted by moved blocks desc

  /// Fraction of blocks (mapped in both rounds) that changed site.
  double moved_fraction() const {
    const std::uint64_t in_both = stable_blocks + moved_blocks;
    return in_both ? static_cast<double>(moved_blocks) /
                         static_cast<double>(in_both)
                   : 0.0;
  }
};

/// Diffs two catchment maps. `load` weights moved blocks by traffic;
/// blocks that send no queries weigh zero.
CatchmentDiff diff_catchments(const topology::Topology& topo,
                              const core::CatchmentMap& before,
                              const core::CatchmentMap& after,
                              const dnsload::LoadModel& load,
                              std::size_t top_as_count = 10);

}  // namespace vp::analysis
