#include "analysis/latency.hpp"

#include <algorithm>

namespace vp::analysis {

double predicted_rtt_ms(geo::LatLon from, geo::LatLon to) {
  // Same propagation model as the simulator (~1 ms per 100 km, round
  // trip) plus a typical queuing allowance; an analyst would calibrate
  // this constant from the measured RTTs.
  return geo::distance_km(from, to) / 100.0 * 2.0 + 12.0;
}

LatencyReport analyze_latency(const topology::Topology& /*topo*/,
                              const core::RoundResult& round,
                              const dnsload::LoadModel& load,
                              const anycast::Deployment& deployment) {
  LatencyReport report;
  std::vector<std::vector<double>> per_site(deployment.sites.size());
  std::vector<double> all;
  all.reserve(round.rtt_ms.size());
  double weighted_sum = 0.0, weight_total = 0.0;
  for (const auto& [block, rtt] : round.rtt_ms) {
    const anycast::SiteId site = round.map.site_of(block);
    if (site < 0) continue;
    per_site[static_cast<std::size_t>(site)].push_back(rtt);
    all.push_back(rtt);
    const double queries = load.daily_queries(block);
    if (queries > 0) {
      weighted_sum += queries * rtt;
      weight_total += queries;
    }
  }
  for (std::size_t s = 0; s < per_site.size(); ++s) {
    LatencyReport::PerSite entry;
    entry.site = static_cast<anycast::SiteId>(s);
    entry.code = deployment.sites[s].code;
    entry.blocks = per_site[s].size();
    entry.rtt_ms = util::summarize(per_site[s]);
    report.per_site.push_back(std::move(entry));
  }
  report.overall_rtt_ms = util::summarize(all);
  report.load_weighted_mean_ms =
      weight_total > 0 ? weighted_sum / weight_total : 0.0;
  return report;
}

std::vector<PlacementCandidate> recommend_sites(
    const topology::Topology& topo, const core::RoundResult& round,
    const dnsload::LoadModel& load, const anycast::Deployment& deployment,
    std::size_t max_candidates) {
  const auto centers = geo::world_centers();

  // Pre-resolve block locations once.
  struct BlockSample {
    geo::LatLon location;
    double rtt = 0.0;
    double weight = 1.0;  // load weight; 1 block minimum
  };
  std::vector<BlockSample> samples;
  samples.reserve(round.rtt_ms.size());
  double total_weight = 0.0;
  for (const auto& [block, rtt] : round.rtt_ms) {
    const auto geo_record = topo.geodb().lookup(block);
    if (!geo_record) continue;
    BlockSample sample;
    sample.location = geo_record->location;
    sample.rtt = rtt;
    sample.weight = std::max(load.daily_queries(block), 1.0);
    total_weight += sample.weight;
    samples.push_back(sample);
  }
  if (samples.empty()) return {};

  std::vector<PlacementCandidate> candidates;
  for (std::uint16_t c = 0; c < centers.size(); ++c) {
    // Skip centers that already host a site.
    bool taken = false;
    for (const auto& site : deployment.sites) {
      if (!site.enabled || site.hidden) continue;
      if (geo::distance_km(site.location, centers[c].location) < 300.0)
        taken = true;
    }
    if (taken) continue;

    PlacementCandidate candidate;
    candidate.center_id = c;
    candidate.center_name = std::string(centers[c].name);
    double saving = 0.0;
    for (const BlockSample& sample : samples) {
      const double new_rtt =
          predicted_rtt_ms(centers[c].location, sample.location);
      if (new_rtt < sample.rtt) {
        ++candidate.blocks_won;
        saving += (sample.rtt - new_rtt) * sample.weight;
      }
    }
    candidate.weighted_saving = saving;
    candidate.mean_rtt_saving_ms = saving / total_weight;
    if (candidate.blocks_won > 0) candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              return a.weighted_saving > b.weighted_saving;
            });
  if (candidates.size() > max_candidates)
    candidates.resize(max_candidates);
  return candidates;
}

}  // namespace vp::analysis
