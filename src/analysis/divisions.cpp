#include "analysis/divisions.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace vp::analysis {

namespace {

/// Per-AS (or per-prefix) site bitmask accumulated from a catchment map.
template <typename Key>
using SiteMaskMap = std::unordered_map<Key, std::uint32_t>;

int mask_popcount(std::uint32_t mask) {
  return std::popcount(mask);
}

}  // namespace

DivisionsReport analyze_divisions(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks) {
  SiteMaskMap<std::uint32_t> sites_by_as;  // key: AsId
  for (const auto& [block, site] : map.entries()) {
    if (site < 0 || unstable_blocks.count(block.index())) continue;
    const topology::BlockInfo* info = topo.block_info(block);
    if (info == nullptr) continue;
    sites_by_as[info->as_id] |= 1u << site;
  }

  DivisionsReport report;
  report.ases_observed = sites_by_as.size();
  std::unordered_map<int, std::vector<double>> prefixes_by_bucket;
  for (const auto& [as_id, mask] : sites_by_as) {
    const int sites = mask_popcount(mask);
    if (sites > 1) ++report.ases_multi_site;
    prefixes_by_bucket[sites].push_back(
        static_cast<double>(topo.as_at(as_id).prefix_count));
  }
  std::vector<int> bucket_keys;
  bucket_keys.reserve(prefixes_by_bucket.size());
  for (const auto& [sites, values] : prefixes_by_bucket)
    bucket_keys.push_back(sites);
  std::sort(bucket_keys.begin(), bucket_keys.end());
  for (const int sites : bucket_keys) {
    const auto& values = prefixes_by_bucket[sites];
    SiteCountBucket bucket;
    bucket.sites_seen = sites;
    bucket.as_count = values.size();
    bucket.announced_prefixes = util::summarize(values);
    for (const double v : values) bucket.mean_prefixes += v;
    bucket.mean_prefixes /= static_cast<double>(values.size());
    report.buckets.push_back(bucket);
  }
  return report;
}

std::vector<PrefixLengthRow> analyze_prefix_sites(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks) {
  // Mask of sites seen per announced prefix (index into topo prefixes).
  SiteMaskMap<std::uint32_t> sites_by_prefix;
  for (const auto& [block, site] : map.entries()) {
    if (site < 0 || unstable_blocks.count(block.index())) continue;
    const topology::BlockInfo* info = topo.block_info(block);
    if (info == nullptr) continue;
    sites_by_prefix[info->prefix_index] |= 1u << site;
  }

  // Group by prefix length.
  struct Accumulator {
    std::uint64_t count = 0;
    std::array<std::uint64_t, 6> by_sites{};
    std::uint64_t total_sites = 0;
  };
  std::unordered_map<std::uint8_t, Accumulator> by_length;
  const auto prefixes = topo.announced_prefixes();
  for (const auto& [prefix_index, mask] : sites_by_prefix) {
    const std::uint8_t length = prefixes[prefix_index].prefix.length();
    Accumulator& acc = by_length[length];
    ++acc.count;
    const int sites = std::min(mask_popcount(mask), 6);
    ++acc.by_sites[static_cast<std::size_t>(sites - 1)];
    acc.total_sites += static_cast<std::uint64_t>(mask_popcount(mask));
  }

  std::vector<PrefixLengthRow> rows;
  rows.reserve(by_length.size());
  for (const auto& [length, acc] : by_length) {
    PrefixLengthRow row;
    row.prefix_length = length;
    row.prefix_count = acc.count;
    for (std::size_t k = 0; k < row.fraction_by_sites.size(); ++k) {
      row.fraction_by_sites[k] =
          static_cast<double>(acc.by_sites[k]) /
          static_cast<double>(acc.count);
    }
    row.mean_sites = static_cast<double>(acc.total_sites) /
                     static_cast<double>(acc.count);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const PrefixLengthRow& a, const PrefixLengthRow& b) {
              return a.prefix_length < b.prefix_length;
            });
  return rows;
}

AddressSpaceShare multi_vp_address_share(
    const topology::Topology& topo, const core::CatchmentMap& map,
    const std::unordered_set<std::uint32_t>& unstable_blocks) {
  SiteMaskMap<std::uint32_t> sites_by_prefix;
  std::unordered_map<std::uint32_t, std::uint64_t> blocks_by_prefix;
  for (const auto& [block, site] : map.entries()) {
    if (site < 0 || unstable_blocks.count(block.index())) continue;
    const topology::BlockInfo* info = topo.block_info(block);
    if (info == nullptr) continue;
    sites_by_prefix[info->prefix_index] |= 1u << site;
    ++blocks_by_prefix[info->prefix_index];
  }
  AddressSpaceShare share;
  for (const auto& [prefix_index, mask] : sites_by_prefix) {
    const std::uint64_t blocks = blocks_by_prefix[prefix_index];
    share.observed_blocks += blocks;
    if (mask_popcount(mask) > 1) share.multi_site_blocks += blocks;
  }
  return share;
}

}  // namespace vp::analysis
