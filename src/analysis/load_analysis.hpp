// Load estimation and prediction (paper §3.2, §5.4, §5.5; Tables 5-6,
// Figure 6).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/routing.hpp"
#include "core/catchment.hpp"
#include "dnsload/load_model.hpp"
#include "sim/flips.hpp"

namespace vp::analysis {

/// Table 5: how much of the service's real traffic Verfploeter can map.
struct TrafficCoverage {
  std::uint64_t blocks_seen = 0;    // blocks sending queries to the service
  std::uint64_t blocks_mapped = 0;  // of those, in the catchment map
  std::uint64_t blocks_unmapped = 0;
  double queries_seen = 0.0;  // q/day
  double queries_mapped = 0.0;
  double queries_unmapped = 0.0;

  double mapped_block_fraction() const {
    return blocks_seen ? static_cast<double>(blocks_mapped) /
                             static_cast<double>(blocks_seen)
                       : 0.0;
  }
  double mapped_query_fraction() const {
    return queries_seen > 0 ? queries_mapped / queries_seen : 0.0;
  }
};

TrafficCoverage compute_traffic_coverage(const dnsload::LoadModel& load,
                                         const core::CatchmentMap& map);

/// Per-site load split (q/day). `unknown` holds traffic from querying
/// blocks outside the catchment map.
struct LoadSplit {
  std::vector<double> site_queries;
  double unknown_queries = 0.0;

  double total(bool include_unknown = true) const;
  /// Fraction of traffic to `site`. Per the paper (§5.4) unknown-block
  /// traffic is assumed to split "in similar proportion to blocks in
  /// known catchments", so the default excludes unknown from the
  /// denominator.
  double fraction_to(anycast::SiteId site,
                     bool include_unknown = false) const;
};

/// What to weight blocks by when splitting load across sites. The paper
/// (§3.2) separates query volume from *good* replies because root
/// traffic is mostly junk names — an operator may provision for either.
enum class LoadWeight {
  kQueries,      // all incoming queries
  kGoodReplies,  // queries that produce useful answers
};

/// Prediction: catchment map (measured) x load model (historical logs).
LoadSplit predict_load(const dnsload::LoadModel& load,
                       const core::CatchmentMap& map,
                       std::size_t site_count,
                       LoadWeight weight = LoadWeight::kQueries);

/// Ground truth: where each querying block's traffic actually lands under
/// the given routing epoch and round — what the operator's own server
/// logs would report (the "Act. Load" row of Table 6).
LoadSplit actual_load(const dnsload::LoadModel& load,
                      const bgp::RoutingTable& routes,
                      const sim::FlipModel& flips, std::uint32_t round);

/// Figure 6: hourly (24 bins) load per site; last column is UNKNOWN.
/// Result is [hour][site_count + 1], in queries/second averaged per hour.
std::vector<std::vector<double>> hourly_load_by_site(
    const topology::Topology& topo, const dnsload::LoadModel& load,
    const core::CatchmentMap& map, std::size_t site_count);

}  // namespace vp::analysis
