// Anycast deployment descriptions: the service prefix, and the set of
// sites (each attached to an upstream AS from the simulated topology,
// optionally AS-path prepending its announcement — §6.1).
//
// Presets mirror the paper's Table 3: B-Root (LAX via AS226, MIA via
// AS20080/AMPATH) and the nine-site Tangled testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topology/as_node.hpp"
#include "topology/topology.hpp"

namespace vp::anycast {

/// Index of a site within a deployment. -1 / kUnknownSite means "catchment
/// unknown" (the UNK bucket in the paper's figures).
using SiteId = std::int8_t;
inline constexpr SiteId kUnknownSite = -1;

/// One anycast site.
struct AnycastSite {
  std::string code;              // e.g. "LAX"
  topology::AsNumber upstream;   // Table 3 upstream AS
  geo::LatLon location;
  int prepend = 0;   // times the origin AS is prepended at this site
  bool enabled = true;
  /// True for sites whose announcement is not visible in BGP (the paper's
  /// Sao Paulo site routes via the same link as Miami, hiding its
  /// announcement — §4.2 Limitations).
  bool hidden = false;
};

/// A deployment: service prefix plus its sites.
struct Deployment {
  std::string name;
  net::Prefix service_prefix;
  net::Ipv4Address measurement_address;  // within service_prefix, §3.1
  topology::AsNumber origin_asn;
  std::vector<AnycastSite> sites;

  std::size_t active_site_count() const;
  /// Site index by code; nullopt if absent.
  std::optional<SiteId> site_by_code(std::string_view code) const;

  /// Returns a copy with per-site prepending set; unknown codes ignored.
  Deployment with_prepend(std::string_view site_code, int prepend) const;
};

/// Order-sensitive 64-bit hash of everything about a deployment that can
/// change measurement results (prefix, sites, prepends, locations,
/// enabled/hidden flags). Campaign journals fold it into their manifest
/// fingerprint so a journal is never resumed against different sites.
std::uint64_t fingerprint(const Deployment& deployment);

/// B-Root after its May 2017 anycast deployment: LAX + MIA (Table 3).
Deployment make_broot(const topology::Topology& topo);

/// The nine-site Tangled testbed (Table 3). The Sao Paulo site is created
/// hidden (its announcement is masked by Miami's shared link).
Deployment make_tangled(const topology::Topology& topo);

}  // namespace vp::anycast
