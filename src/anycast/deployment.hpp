// Anycast deployment descriptions: the service prefix, and the set of
// sites (each attached to an upstream AS from the simulated topology,
// optionally AS-path prepending its announcement — §6.1).
//
// Presets mirror the paper's Table 3: B-Root (LAX via AS226, MIA via
// AS20080/AMPATH) and the nine-site Tangled testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topology/as_node.hpp"
#include "topology/topology.hpp"

namespace vp::anycast {

/// Index of a site within a deployment. -1 / kUnknownSite means "catchment
/// unknown" (the UNK bucket in the paper's figures).
using SiteId = std::int8_t;
inline constexpr SiteId kUnknownSite = -1;

/// One anycast site.
struct AnycastSite {
  std::string code;              // e.g. "LAX"
  topology::AsNumber upstream;   // Table 3 upstream AS
  geo::LatLon location;
  int prepend = 0;   // times the origin AS is prepended at this site
  bool enabled = true;
  /// True for sites whose announcement is not visible in BGP (the paper's
  /// Sao Paulo site routes via the same link as Miami, hiding its
  /// announcement — §4.2 Limitations).
  bool hidden = false;
};

/// A deployment: service prefix plus its sites.
struct Deployment {
  std::string name;
  net::Prefix service_prefix;
  net::Ipv4Address measurement_address;  // within service_prefix, §3.1
  topology::AsNumber origin_asn;
  std::vector<AnycastSite> sites;

  std::size_t active_site_count() const;
  /// Site index by code; nullopt if absent.
  std::optional<SiteId> site_by_code(std::string_view code) const;

  /// Returns a copy with per-site prepending set; unknown codes ignored.
  Deployment with_prepend(std::string_view site_code, int prepend) const;
};

/// Order-sensitive 64-bit hash of everything about a deployment that can
/// change measurement results (prefix, sites, prepends, locations,
/// enabled/hidden flags). Campaign journals fold it into their manifest
/// fingerprint so a journal is never resumed against different sites.
std::uint64_t fingerprint(const Deployment& deployment);

/// One site's worth of configuration change. Fields left unset keep the
/// site's current value; the delta machinery only reacts to fields that
/// actually change something (setting prepend to its current value is a
/// no-op and recomputes nothing).
struct SiteDelta {
  SiteId site = kUnknownSite;
  std::optional<int> prepend;
  std::optional<bool> enabled;
  std::optional<bool> hidden;
};

/// A batch of per-site changes applied atomically between two routing
/// states — the unit `bgp::RoutingEngine::apply` consumes. Operational
/// knobs only: site membership, prepend depth, enable/hide toggles. The
/// prefix, origin ASN, and site *locations* are fixed for a deployment's
/// lifetime (changing those is a new deployment, not a delta).
struct ConfigDelta {
  std::vector<SiteDelta> sites;

  bool empty() const { return sites.empty(); }

  /// Convenience single-change builders.
  static ConfigDelta set_prepend(SiteId site, int prepend);
  static ConfigDelta announce(SiteId site);  // enabled = true
  static ConfigDelta withdraw(SiteId site);  // enabled = false

  /// The change set turning `base` into `target`. Site lists must match
  /// in size, codes, upstreams, and locations — only the mutable knobs
  /// may differ. Returns an empty delta for identical configs.
  static ConfigDelta diff(const Deployment& base, const Deployment& target);

  /// Mutates `deployment` in place. Out-of-range site ids are ignored.
  void apply_to(Deployment& deployment) const;

  /// Order-sensitive hash of the change set (used for cache keys and
  /// metrics labels; distinct from the post-delta deployment fingerprint).
  std::uint64_t fingerprint() const;
};

/// B-Root after its May 2017 anycast deployment: LAX + MIA (Table 3).
Deployment make_broot(const topology::Topology& topo);

/// The nine-site Tangled testbed (Table 3). The Sao Paulo site is created
/// hidden (its announcement is masked by Miami's shared link).
Deployment make_tangled(const topology::Topology& topo);

/// A deployment for generated (scale) topologies: `site_count` sites
/// hosted at transit ASes of `topo`, assigned round-robin over the
/// transits in id order with deterministic per-site PoP choice from
/// `seed`. Uses the TEST-NET-1 prefix 192.0.2.0/24 (disjoint from the
/// generated address space, which grows up from 1.0.0.0) and a private
/// origin ASN. Site codes are "S00", "S01", ...
Deployment make_generated(const topology::Topology& topo,
                          std::size_t site_count, std::uint64_t seed = 42);

}  // namespace vp::anycast
