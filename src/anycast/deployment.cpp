#include "anycast/deployment.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace vp::anycast {

std::uint64_t fingerprint(const Deployment& d) {
  const auto mix_str = [](std::uint64_t f, std::string_view s) {
    f = util::hash_combine(f, s.size());
    for (const char c : s)
      f = util::hash_combine(f, static_cast<unsigned char>(c));
    return f;
  };
  std::uint64_t f = mix_str(0x6465706c6f79ULL, d.name);  // "deploy"
  f = util::hash_combine(
      f, (std::uint64_t{d.service_prefix.base().value()} << 8) |
             d.service_prefix.length());
  f = util::hash_combine(f, d.measurement_address.value());
  f = util::hash_combine(f, d.origin_asn.value);
  f = util::hash_combine(f, d.sites.size());
  for (const AnycastSite& site : d.sites) {
    f = mix_str(f, site.code);
    f = util::hash_combine(f, site.upstream.value);
    f = util::hash_combine(f, std::bit_cast<std::uint64_t>(site.location.lat));
    f = util::hash_combine(f, std::bit_cast<std::uint64_t>(site.location.lon));
    f = util::hash_combine(f, static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(site.prepend)));
    f = util::hash_combine(f, (site.enabled ? 2u : 0u) |
                                  (site.hidden ? 1u : 0u));
  }
  return f;
}

ConfigDelta ConfigDelta::set_prepend(SiteId site, int prepend) {
  SiteDelta change;
  change.site = site;
  change.prepend = prepend;
  ConfigDelta delta;
  delta.sites.push_back(change);
  return delta;
}

ConfigDelta ConfigDelta::announce(SiteId site) {
  SiteDelta change;
  change.site = site;
  change.enabled = true;
  ConfigDelta delta;
  delta.sites.push_back(change);
  return delta;
}

ConfigDelta ConfigDelta::withdraw(SiteId site) {
  SiteDelta change;
  change.site = site;
  change.enabled = false;
  ConfigDelta delta;
  delta.sites.push_back(change);
  return delta;
}

ConfigDelta ConfigDelta::diff(const Deployment& base,
                              const Deployment& target) {
  ConfigDelta delta;
  const std::size_t n = std::min(base.sites.size(), target.sites.size());
  for (std::size_t i = 0; i < n; ++i) {
    const AnycastSite& from = base.sites[i];
    const AnycastSite& to = target.sites[i];
    SiteDelta change;
    change.site = static_cast<SiteId>(i);
    if (from.prepend != to.prepend) change.prepend = to.prepend;
    if (from.enabled != to.enabled) change.enabled = to.enabled;
    if (from.hidden != to.hidden) change.hidden = to.hidden;
    if (change.prepend || change.enabled || change.hidden)
      delta.sites.push_back(change);
  }
  return delta;
}

void ConfigDelta::apply_to(Deployment& deployment) const {
  for (const SiteDelta& change : sites) {
    if (change.site < 0 ||
        static_cast<std::size_t>(change.site) >= deployment.sites.size())
      continue;
    AnycastSite& site = deployment.sites[static_cast<std::size_t>(change.site)];
    if (change.prepend) site.prepend = *change.prepend;
    if (change.enabled) site.enabled = *change.enabled;
    if (change.hidden) site.hidden = *change.hidden;
  }
}

std::uint64_t ConfigDelta::fingerprint() const {
  std::uint64_t f = 0x64656c7461ULL;  // "delta"
  f = util::hash_combine(f, sites.size());
  for (const SiteDelta& change : sites) {
    f = util::hash_combine(f, static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(change.site)));
    f = util::hash_combine(
        f, change.prepend
               ? 0x100u | static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(*change.prepend) & 0xff)
               : 0u);
    f = util::hash_combine(f, change.enabled ? (2u | (*change.enabled ? 1u : 0u))
                                             : 0u);
    f = util::hash_combine(f, change.hidden ? (2u | (*change.hidden ? 1u : 0u))
                                            : 0u);
  }
  return f;
}

std::size_t Deployment::active_site_count() const {
  return static_cast<std::size_t>(
      std::count_if(sites.begin(), sites.end(), [](const AnycastSite& s) {
        return s.enabled && !s.hidden;
      }));
}

std::optional<SiteId> Deployment::site_by_code(std::string_view code) const {
  for (std::size_t i = 0; i < sites.size(); ++i)
    if (sites[i].code == code) return static_cast<SiteId>(i);
  return std::nullopt;
}

Deployment Deployment::with_prepend(std::string_view site_code,
                                    int prepend) const {
  Deployment copy = *this;
  for (AnycastSite& site : copy.sites)
    if (site.code == site_code) site.prepend = prepend;
  return copy;
}

namespace {

geo::LatLon center_location(std::string_view name) {
  return geo::world_centers()[topology::center_by_name(name)].location;
}

}  // namespace

Deployment make_broot(const topology::Topology&) {
  Deployment d;
  d.name = "B-Root";
  // B-Root's real service prefix; safely outside the generated space.
  d.service_prefix = *net::Prefix::parse("192.228.79.0/24");
  d.measurement_address = *net::Ipv4Address::parse("192.228.79.77");
  d.origin_asn = topology::AsNumber{394353};
  d.sites = {
      AnycastSite{"LAX", topology::AsNumber{226},
                  center_location("Los Angeles")},
      AnycastSite{"MIA", topology::AsNumber{20080},
                  center_location("Miami")},
  };
  return d;
}

Deployment make_tangled(const topology::Topology&) {
  Deployment d;
  d.name = "Tangled";
  d.service_prefix = *net::Prefix::parse("145.100.118.0/24");
  d.measurement_address = *net::Ipv4Address::parse("145.100.118.1");
  d.origin_asn = topology::AsNumber{1149};
  d.sites = {
      AnycastSite{"SYD", topology::AsNumber{20473},
                  center_location("Sydney")},
      AnycastSite{"CDG", topology::AsNumber{20473},
                  center_location("Paris")},
      AnycastSite{"HND", topology::AsNumber{2500}, center_location("Tokyo")},
      AnycastSite{"ENS", topology::AsNumber{1103},
                  center_location("Enschede")},
      AnycastSite{"LHR", topology::AsNumber{20473},
                  center_location("London")},
      AnycastSite{"MIA", topology::AsNumber{20080}, center_location("Miami")},
      AnycastSite{"IAD", topology::AsNumber{1972},
                  center_location("Washington")},
      AnycastSite{"GRU", topology::AsNumber{1251},
                  center_location("Sao Paulo"), 0, true, /*hidden=*/true},
      AnycastSite{"CPH", topology::AsNumber{39839},
                  center_location("Copenhagen")},
  };
  return d;
}

Deployment make_generated(const topology::Topology& topo,
                          std::size_t site_count, std::uint64_t seed) {
  Deployment d;
  d.name = "Generated";
  d.service_prefix = *net::Prefix::parse("192.0.2.0/24");
  d.measurement_address = *net::Ipv4Address::parse("192.0.2.1");
  d.origin_asn = topology::AsNumber{64500};  // private-use ASN
  std::vector<topology::AsId> transits;
  for (topology::AsId v = 0; v < topo.as_count(); ++v)
    if (topo.as_at(v).tier == topology::AsTier::kTransit)
      transits.push_back(v);
  if (transits.empty()) return d;
  // SiteId is int8 and distinct_sites() tracks at most 128 sites.
  site_count = std::min<std::size_t>(site_count, 120);
  d.sites.reserve(site_count);
  for (std::size_t k = 0; k < site_count; ++k) {
    const topology::AsNode& host =
        topo.as_at(transits[k % transits.size()]);
    const std::uint64_t h = util::mix64(util::hash_combine(seed, k));
    const topology::Pop& pop = host.pops[h % host.pops.size()];
    char code[8];
    std::snprintf(code, sizeof(code), "S%02zu", k);
    d.sites.push_back(AnycastSite{code, host.asn, pop.location});
  }
  return d;
}

}  // namespace vp::anycast
