#include "agility/attack.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geo/world.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace vp::agility {

namespace {

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Stateless per-block uniform draw for a named substream of the attack.
double block_unit(std::uint64_t seed, std::uint64_t stream,
                  std::uint32_t block_index) {
  return to_unit(util::hash_combine(util::hash_combine(seed, stream),
                                    block_index));
}

/// Bounded Pareto draw from a unit sample: heavy-tailed per-source
/// volume without letting one source carry the whole attack.
double pareto_weight(double u, double alpha, double cap) {
  return std::min(cap, 1.0 / std::pow(1.0 - u, 1.0 / alpha));
}

}  // namespace

std::string_view to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kPolarized: return "polarized";
    case AttackKind::kFlashCrowd: return "flash-crowd";
    case AttackKind::kSpoofedFlood: return "spoofed-flood";
    case AttackKind::kVolumetric: return "volumetric";
  }
  return "?";
}

std::optional<AttackKind> attack_kind_from_string(std::string_view name) {
  if (name == "polarized") return AttackKind::kPolarized;
  if (name == "flash" || name == "flash-crowd") return AttackKind::kFlashCrowd;
  if (name == "spoofed" || name == "spoofed-flood")
    return AttackKind::kSpoofedFlood;
  if (name == "volumetric") return AttackKind::kVolumetric;
  return std::nullopt;
}

anycast::SiteId resolve_target(const AttackSpec& spec,
                               const anycast::Deployment& deployment) {
  if (spec.kind == AttackKind::kFlashCrowd ||
      spec.kind == AttackKind::kSpoofedFlood) {
    return anycast::kUnknownSite;
  }
  std::vector<anycast::SiteId> enabled;
  for (std::size_t s = 0; s < deployment.sites.size(); ++s)
    if (deployment.sites[s].enabled)
      enabled.push_back(static_cast<anycast::SiteId>(s));
  if (enabled.empty()) return anycast::kUnknownSite;
  if (spec.target_site >= 0 &&
      static_cast<std::size_t>(spec.target_site) < deployment.sites.size() &&
      deployment.sites[static_cast<std::size_t>(spec.target_site)].enabled) {
    return spec.target_site;
  }
  return enabled[util::hash_combine(spec.seed, 0x7a26) % enabled.size()];
}

OfferedLoad offered_load(const topology::Topology& topo,
                         const dnsload::LoadModel& base,
                         const bgp::RoutingTable& baseline_routes,
                         const AttackSpec& spec) {
  OfferedLoad out;
  out.resolved_target = resolve_target(spec, baseline_routes.deployment());

  // Flash crowds surge a geographic region around a seeded world center.
  geo::LatLon epicenter{};
  if (spec.kind == AttackKind::kFlashCrowd) {
    const auto centers = geo::world_centers();
    epicenter = centers[util::hash_combine(spec.seed, 0xf1a5) %
                        centers.size()]
                    .location;
  }

  // Pass 1: per-block legitimate volume and raw attack weight. Weights
  // are relative; pass 2 normalizes the attack to magnitude x baseline.
  // Everything is a stateless hash of (seed, stream, block index), so
  // the result is independent of evaluation order.
  struct Touched {
    std::uint32_t row;
    double legit;
    double weight;
  };
  std::vector<Touched> touched;
  touched.reserve(base.blocks().size());
  double weight_sum = 0.0;
  // Volumetric attacks pick the source_count lowest-hashing blocks of
  // the target catchment — a deterministic k-of-n sample.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> volumetric_pool;

  const auto blocks = topo.blocks();
  for (std::uint32_t row = 0; row < blocks.size(); ++row) {
    const topology::BlockInfo& info = blocks[row];
    const double legit = base.daily_queries(info.block);
    double weight = 0.0;
    switch (spec.kind) {
      case AttackKind::kPolarized: {
        if (baseline_routes.site_for_block(info) != out.resolved_target)
          break;
        if (block_unit(spec.seed, 0xb07, row) >= spec.attacker_fraction)
          break;
        weight = pareto_weight(block_unit(spec.seed, 0xb08, row), 1.5, 200.0);
        break;
      }
      case AttackKind::kFlashCrowd: {
        const auto geo = topo.geodb().lookup(info.block);
        if (!geo || geo::distance_km(geo->location, epicenter) > spec.radius_km)
          break;
        // Querying blocks surge in proportion to their usual volume;
        // silent blocks join at a fraction of the mean (new eyeballs).
        weight = legit > 0.0
                     ? legit
                     : 0.2 * base.config().mean_daily_per_block;
        break;
      }
      case AttackKind::kSpoofedFlood: {
        if (block_unit(spec.seed, 0x5f0, row) >= spec.spoof_fraction) break;
        weight = 0.5 + block_unit(spec.seed, 0x5f1, row);  // thin, even
        break;
      }
      case AttackKind::kVolumetric: {
        if (baseline_routes.site_for_block(info) != out.resolved_target)
          break;
        volumetric_pool.emplace_back(
            util::hash_combine(util::hash_combine(spec.seed, 0x701), row),
            row);
        break;
      }
    }
    if (legit > 0.0 || weight > 0.0) {
      touched.push_back({row, legit, weight});
      weight_sum += weight;
    }
  }

  if (spec.kind == AttackKind::kVolumetric && !volumetric_pool.empty()) {
    const std::size_t k = std::min<std::size_t>(
        std::max<std::uint32_t>(1, spec.source_count),
        volumetric_pool.size());
    std::nth_element(volumetric_pool.begin(), volumetric_pool.begin() + (k - 1),
                     volumetric_pool.end());
    volumetric_pool.resize(k);
    std::sort(volumetric_pool.begin(), volumetric_pool.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    // Merge the sources into `touched` (both are row-ascending).
    std::vector<Touched> merged;
    merged.reserve(touched.size() + k);
    std::size_t ti = 0;
    for (const auto& [hash, row] : volumetric_pool) {
      while (ti < touched.size() && touched[ti].row < row)
        merged.push_back(touched[ti++]);
      const double w =
          pareto_weight(to_unit(util::mix64(hash)), 0.8, 10'000.0);
      if (ti < touched.size() && touched[ti].row == row) {
        Touched t = touched[ti++];
        t.weight = w;
        merged.push_back(t);
      } else {
        merged.push_back({row, 0.0, w});
      }
      weight_sum += w;
    }
    while (ti < touched.size()) merged.push_back(touched[ti++]);
    touched = std::move(merged);
  }

  // Pass 2: normalize and fix to integer milli-queries. llround is the
  // only double->int step, applied once per block in row order.
  const double attack_total = spec.magnitude * base.total_daily_queries();
  const double factor = weight_sum > 0.0 ? attack_total / weight_sum : 0.0;
  out.rows.reserve(touched.size());
  out.milliq.reserve(touched.size());
  for (const Touched& t : touched) {
    const auto legit_milli =
        static_cast<std::uint64_t>(std::llround(t.legit * 1000.0));
    const auto attack_milli =
        static_cast<std::uint64_t>(std::llround(t.weight * factor * 1000.0));
    const std::uint64_t total = legit_milli + attack_milli;
    if (total == 0) continue;
    out.rows.push_back(t.row);
    out.milliq.push_back(total);
    out.legit_milliq += legit_milli;
    out.attack_milliq += attack_milli;
    if (attack_milli > 0) ++out.attack_blocks;
  }
  out.total_milliq = out.legit_milliq + out.attack_milliq;
  static std::atomic<std::uint64_t> next_memo_id{1};
  out.memo_id = next_memo_id.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::string describe(const AttackSpec& spec,
                     const anycast::Deployment& deployment) {
  std::string text{to_string(spec.kind)};
  text += " x" + util::fixed(spec.magnitude, 1);
  const anycast::SiteId target = resolve_target(spec, deployment);
  if (target >= 0 &&
      static_cast<std::size_t>(target) < deployment.sites.size()) {
    text += " @" + deployment.sites[static_cast<std::size_t>(target)].code;
  }
  text += " (seed " + std::to_string(spec.seed) + ")";
  return text;
}

}  // namespace vp::agility
