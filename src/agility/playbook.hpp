// PlaybookOptimizer: load-aware search over the TE configuration space.
//
// Given an attack shape (attack.hpp) and per-site capacities, find the
// best traffic-engineering response — per-site prepend depth, site
// withdrawal, selective (re-)announcement — and report the
// absorb/break-down tradeoff of each candidate, Agility-paper style.
// Ranked over a catalog of attack shapes, the results form a *playbook*:
// the precomputed response an operator deploys when an attack of that
// shape arrives.
//
// Objective. A site offered more than its capacity breaks down and loses
// ALL of its traffic (the Agility paper's breakdown model); traffic to
// withdrawn/unreachable destinations is lost outright. A candidate is
// scored by (in lexicographic order):
//   1. broken traffic, ascending    — serve as much as possible;
//   2. overloaded site count        — fewer melted sites;
//   3. shifted blocks vs base       — prefer the least disruptive move;
//   4. enumeration index            — a total, deterministic order.
// All four keys are integers (loads are milli-queries/day, see
// attack.hpp), so the argmin is exact: no float tie can make two runs
// disagree.
//
// Search. Two strategies over the per-site action set {prepend 0..P,
// withdraw, re-announce}:
//   kExhaustive — the full cartesian product; for small deployments and
//                 for the property test that proves optimizer == argmin.
//   kStaged     — every single-site action, then pairwise combinations
//                 of the best single moves; linear in sites, and how the
//                 search stays tractable at Tangled scale and beyond.
//
// Evaluation. Candidates are scored against per-site integer load sums.
// The delta path walks each worker's contiguous candidate chunk through
// one bgp::RoutingEngine session (Scenario::delta_session): step i
// reuses step i-1's table and recomputes only the affected-AS set, and
// the score is updated incrementally from the table's
// changed_block_ranges() — exact, because the sums are integers. The
// full path (use_delta = false, vpctl --no-route-cache) recomputes every
// candidate's table and score from scratch. Both paths are bit-identical
// by construction and by test (tests/playbook_property_test.cpp), at any
// thread count (tests/playbook_determinism_test.cpp, raced under TSan).
//
// Metrics: vp_agility_configs_evaluated_total,
// vp_agility_search_ms (histogram), vp_agility_attacks_total.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "agility/attack.hpp"
#include "analysis/scenario.hpp"
#include "anycast/deployment.hpp"

namespace vp::agility {

/// Per-site capacity in milli-queries/day, indexed like the deployment's
/// site list.
struct CapacityPlan {
  std::vector<std::uint64_t> site_milliq;
};

/// One scored configuration. The raw fields (site sums, unknown,
/// shifted) are pure integer functions of (offered load, routing table);
/// the derived fields follow from the capacity plan.
struct Score {
  std::vector<std::uint64_t> site_milliq;  // offered load per site
  std::uint64_t unknown_milliq = 0;        // unreachable / withdrawn-to
  std::uint64_t shifted_blocks = 0;        // offered blocks moved vs base
  // Derived (finalize()):
  std::uint64_t absorbed_milliq = 0;  // served within capacity
  std::uint64_t broken_milliq = 0;    // lost at overloaded sites + unknown
  std::uint32_t overloaded_sites = 0;

  double absorbed_fraction(std::uint64_t total) const {
    return total ? static_cast<double>(absorbed_milliq) /
                       static_cast<double>(total)
                 : 0.0;
  }
  double broken_fraction(std::uint64_t total) const {
    return total ? static_cast<double>(broken_milliq) /
                       static_cast<double>(total)
                 : 0.0;
  }
  /// Fraction of sites past capacity (the overload fraction the
  /// optimizer's constraint tracks).
  double overload_fraction() const {
    return site_milliq.empty()
               ? 0.0
               : static_cast<double>(overloaded_sites) /
                     static_cast<double>(site_milliq.size());
  }

  bool operator==(const Score&) const = default;
};

/// Fills the derived fields from the capacity plan: a site past its
/// capacity contributes all of its traffic to `broken`.
void finalize(Score& score, const CapacityPlan& capacity);

/// Strict deterministic candidate order: lexicographic on (broken,
/// overloaded sites, shifted blocks, enumeration index).
bool better(const Score& a, std::size_t index_a, const Score& b,
            std::size_t index_b);

/// One TE response candidate: the change set vs the base deployment.
struct Candidate {
  anycast::ConfigDelta delta;  // empty = "no action" baseline
  std::string label;           // e.g. "baseline", "MIA+2", "SYD withdraw"
};

struct RankedResponse {
  Candidate candidate;
  Score score;
  std::size_t candidate_index = 0;  // enumeration order (stable across runs)
};

struct PlaybookEntry {
  AttackSpec attack;
  std::string attack_label;
  anycast::SiteId target = anycast::kUnknownSite;
  std::uint64_t offered_milliq = 0;
  std::uint64_t attack_milliq = 0;
  Score no_action;                       // baseline config under attack
  std::vector<RankedResponse> responses; // best-first, top_k entries
  std::size_t configs_evaluated = 0;
  double search_ms = 0.0;

  const RankedResponse& best() const { return responses.front(); }
};

struct Playbook {
  anycast::Deployment base;
  CapacityPlan capacity;
  std::vector<PlaybookEntry> entries;
};

enum class SearchStrategy : std::uint8_t {
  kStaged,
  kExhaustive,
};

struct PlaybookConfig {
  /// Per-site prepend depths searched: 0..max_prepend.
  int max_prepend = 3;
  bool allow_withdraw = true;
  SearchStrategy strategy = SearchStrategy::kStaged;
  /// Parallel candidate-evaluation workers (0 = hardware threads). The
  /// playbook is bit-identical for any value.
  unsigned threads = 1;
  /// Delta-session evaluation (default) vs full per-candidate
  /// recomputation — the vpctl --no-route-cache A/B escape hatch.
  /// Results are bit-identical either way.
  bool use_delta = true;
  /// Per-site capacity = headroom x (baseline legit total / active
  /// sites) — fair-share provisioning with a safety factor.
  double capacity_headroom = 1.6;
  /// Ranked responses kept per attack.
  std::size_t top_k = 5;
  /// kStaged: how many of the best single-site moves to combine pairwise.
  std::size_t stage_combine = 3;
  /// kExhaustive refuses (falls back to kStaged) beyond this many
  /// candidates; (max_prepend + 2)^sites grows fast.
  std::size_t max_exhaustive = 65536;
};

class PlaybookOptimizer {
 public:
  /// The scenario must outlive the optimizer. `base` is the deployment
  /// the operator runs before the attack; capacities derive from its
  /// legitimate baseline load (date_seed picks the query-log dataset).
  PlaybookOptimizer(const analysis::Scenario& scenario,
                    const anycast::Deployment& base,
                    const PlaybookConfig& config = {},
                    std::uint64_t date_seed = 0x20170515ull);

  const PlaybookConfig& config() const { return config_; }
  const CapacityPlan& capacity() const { return capacity_; }
  const anycast::Deployment& base() const { return base_; }

  /// The candidate set the configured strategy starts from (exhaustive
  /// product or stage-1 single moves). Exposed for the property tests.
  std::vector<Candidate> enumerate_candidates() const;

  /// Reference scoring path: one configuration's full table, one full
  /// pass over the offered load. The optimizer's delta-evaluated scores
  /// must equal this bit for bit.
  Score score_table(const bgp::RoutingTable& table,
                    const OfferedLoad& offered) const;

  /// Scores every candidate against an offered load, through the
  /// configured evaluation path (delta session or full recompute) at the
  /// configured thread count. Public for bench_playbook, which gates the
  /// delta-vs-full search speedup without the attack-generation cost.
  std::vector<Score> evaluate(const std::vector<Candidate>& candidates,
                              const OfferedLoad& offered) const;

  /// Search the response space for one attack shape.
  PlaybookEntry respond(const AttackSpec& attack) const;

  /// A playbook over a catalog of attack shapes.
  Playbook build(std::span<const AttackSpec> attacks) const;

 private:
  /// Per-offered-load precomputation shared by every candidate: the base
  /// catchment of each offered block and the base config's raw sums.
  /// One pass over the offered rows, memoized so repeated evaluate()
  /// calls against the same load (stage 1 + stage 2 of a search, or a
  /// bench loop) don't re-pay it. Pure function of the offered load, so
  /// the memo can't change any result.
  struct Prepared {
    std::vector<anycast::SiteId> base_sites;
    Score base_raw;  // site sums before finalize()
  };
  std::shared_ptr<const Prepared> prepare(const OfferedLoad& offered) const;
  std::vector<Score> evaluate(const std::vector<Candidate>& candidates,
                              const OfferedLoad& offered,
                              const Prepared& prep) const;

  const analysis::Scenario* scenario_;
  anycast::Deployment base_;
  PlaybookConfig config_;
  CapacityPlan capacity_;
  bgp::RoutingOptions routing_options_;
  std::shared_ptr<const bgp::RoutingTable> base_table_;
  dnsload::LoadModel base_load_;

  /// Recycled routing sessions for the delta evaluation path. A fresh
  /// engine pays one from-scratch propagation before its first delta; a
  /// parked one resumes exactly where it stopped — its configuration,
  /// table, and that table's raw sums ride along — so repeated
  /// evaluate() calls (one per attack shape, times worker chunks) never
  /// pay a rewind-to-base apply. Resuming mid-space is safe because
  /// every candidate's score is a pure function of (its table, the
  /// offered load); the session state only decides how much work the
  /// *next* delta costs, not what it computes. Guarded by
  /// sessions_mutex_.
  struct ParkedSession {
    std::unique_ptr<bgp::RoutingEngine> engine;
    anycast::Deployment config;  // the engine's current configuration
    std::shared_ptr<const bgp::RoutingTable> table;
    Score raw;                // `table`'s sums, valid for memo_id's load
    std::uint64_t memo_id = 0;
  };
  mutable std::mutex sessions_mutex_;
  mutable std::vector<ParkedSession> sessions_;

  /// prepare() memo (guarded by memo_mutex_), keyed on
  /// OfferedLoad::memo_id; a miss just recomputes.
  mutable std::mutex memo_mutex_;
  mutable std::uint64_t memo_key_ = 0;
  mutable std::shared_ptr<const Prepared> memo_;
};

}  // namespace vp::agility
