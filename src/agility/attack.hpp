// Adversarial load workloads for anycast agility experiments.
//
// The paper's load-aware mapping (Figs 5-6) measures how prepending
// shifts *normal* traffic; "Anycast Agility: Network Playbooks to Fight
// DDoS" asks the operational question behind it — when an attack
// concentrates load on part of the deployment, which TE response keeps
// the most traffic served? This module supplies the attack side: four
// deterministic, seeded workload shapes layered on the legitimate
// dnsload::LoadModel baseline:
//
//  * kPolarized   — a bot population spread through one site's catchment
//                   (the Agility paper's polarized attacker scenario);
//  * kFlashCrowd  — legitimate clients in one geographic region surge,
//                   including previously silent blocks (new eyeballs);
//  * kSpoofedFlood— spoofed sources scattered thinly over the whole
//                   allocated address space, so every site absorbs some;
//  * kVolumetric  — a handful of very heavy sources inside one site's
//                   catchment (booter-style per-site flood).
//
// The output is an OfferedLoad: per-block offered traffic (legitimate +
// attack) in integer milli-queries/day. Integer units are deliberate:
// per-site sums become exact, order-independent arithmetic, which is
// what lets the playbook optimizer score candidates incrementally from
// routing deltas and still produce bit-identical results to a full
// rescore at any thread count (see playbook.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"
#include "dnsload/load_model.hpp"
#include "topology/topology.hpp"

namespace vp::agility {

enum class AttackKind : std::uint8_t {
  kPolarized,
  kFlashCrowd,
  kSpoofedFlood,
  kVolumetric,
};

std::string_view to_string(AttackKind kind);
/// Parses "polarized" / "flash" / "spoofed" / "volumetric" (also accepts
/// the long forms "flash-crowd", "spoofed-flood"); nullopt on anything else.
std::optional<AttackKind> attack_kind_from_string(std::string_view name);

/// One attack shape: everything the generator needs, and nothing more —
/// two specs with equal fields produce byte-identical OfferedLoads on
/// the same scenario. Per-kind knobs are ignored by the other kinds.
struct AttackSpec {
  AttackKind kind = AttackKind::kPolarized;
  std::uint64_t seed = 1;
  /// Attack volume as a multiple of the baseline's total daily queries.
  double magnitude = 4.0;
  /// Site whose catchment the attack concentrates in (polarized and
  /// volumetric); kUnknownSite picks an enabled site from the seed.
  anycast::SiteId target_site = anycast::kUnknownSite;
  /// Polarized: fraction of target-catchment blocks hosting attackers.
  double attacker_fraction = 0.05;
  /// Spoofed flood: fraction of all allocated blocks that appear as
  /// (spoofed) sources.
  double spoof_fraction = 0.25;
  /// Volumetric: number of distinct heavy sources.
  std::uint32_t source_count = 12;
  /// Flash crowd: radius around the seeded epicenter that surges.
  double radius_km = 1500.0;
};

/// Offered traffic under one attack: parallel arrays over the blocks
/// that send anything, sorted by topology block row. Loads are integer
/// milli-queries/day (fixed-point x1000) so per-site aggregation is
/// exact — see the determinism notes in playbook.hpp.
struct OfferedLoad {
  /// Indices into Topology::blocks(), strictly ascending.
  std::vector<std::uint32_t> rows;
  /// Offered load (legitimate + attack) per row, milli-q/day.
  std::vector<std::uint64_t> milliq;

  std::uint64_t total_milliq = 0;
  std::uint64_t legit_milliq = 0;
  std::uint64_t attack_milliq = 0;
  /// Blocks carrying any attack traffic.
  std::uint64_t attack_blocks = 0;
  /// The concrete site the attack concentrated on (polarized and
  /// volumetric; kUnknownSite for the untargeted kinds).
  anycast::SiteId resolved_target = anycast::kUnknownSite;

  /// Distinguishes offered_load() results from each other without
  /// comparing contents (PlaybookOptimizer's prepare() memo). Unique per
  /// construction, shared by copies (which are identical anyway);
  /// 0 = hand-built, never matches a memo.
  std::uint64_t memo_id = 0;
};

/// The site a spec's target resolves to under `deployment`: the spec's
/// own target_site when it names an enabled site, otherwise a
/// seed-chosen enabled site. kUnknownSite for untargeted attack kinds.
anycast::SiteId resolve_target(const AttackSpec& spec,
                               const anycast::Deployment& deployment);

/// Builds the offered load for `spec`: the legitimate baseline plus the
/// attack traffic, normalized so the attack totals spec.magnitude x the
/// baseline. `baseline_routes` supplies the catchment the attacker is
/// assumed to have mapped (polarized/volumetric target selection) — the
/// pre-response table, exactly what a real attacker observes.
OfferedLoad offered_load(const topology::Topology& topo,
                         const dnsload::LoadModel& base,
                         const bgp::RoutingTable& baseline_routes,
                         const AttackSpec& spec);

/// Human-readable one-liner, e.g. "polarized x4.0 @MIA (seed 1)".
std::string describe(const AttackSpec& spec,
                     const anycast::Deployment& deployment);

}  // namespace vp::agility
