#include "agility/playbook.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace vp::agility {

namespace {

/// Adds `q` to the bucket `site` addresses: a real site's sum, or the
/// unknown (unreachable) bucket.
void bucket_add(Score& score, anycast::SiteId site, std::uint64_t q) {
  if (site >= 0 && static_cast<std::size_t>(site) < score.site_milliq.size())
    score.site_milliq[static_cast<std::size_t>(site)] += q;
  else
    score.unknown_milliq += q;
}

void bucket_sub(Score& score, anycast::SiteId site, std::uint64_t q) {
  if (site >= 0 && static_cast<std::size_t>(site) < score.site_milliq.size())
    score.site_milliq[static_cast<std::size_t>(site)] -= q;
  else
    score.unknown_milliq -= q;
}

std::string label_for(const anycast::ConfigDelta& delta,
                      const anycast::Deployment& base) {
  if (delta.empty()) return "baseline";
  std::string label;
  for (const anycast::SiteDelta& change : delta.sites) {
    if (!label.empty()) label += " & ";
    const std::string& code =
        base.sites[static_cast<std::size_t>(change.site)].code;
    if (change.enabled && !*change.enabled) {
      label += code + " withdraw";
    } else if (change.enabled && *change.enabled) {
      label += code + " announce";
      if (change.prepend && *change.prepend > 0)
        label += "+" + std::to_string(*change.prepend);
    } else if (change.prepend) {
      label += code + "+" + std::to_string(*change.prepend);
    } else {
      label += code + " ?";
    }
  }
  return label;
}

struct AgilityMetrics {
  obs::Counter& configs;
  obs::Counter& attacks;
  obs::Histogram& search_ms;

  static AgilityMetrics& get() {
    static AgilityMetrics m{
        obs::metrics().counter("vp_agility_configs_evaluated_total"),
        obs::metrics().counter("vp_agility_attacks_total"),
        obs::metrics().histogram("vp_agility_search_ms",
                                 obs::latency_buckets_ms())};
    return m;
  }
};

}  // namespace

void finalize(Score& score, const CapacityPlan& capacity) {
  score.absorbed_milliq = 0;
  score.broken_milliq = score.unknown_milliq;
  score.overloaded_sites = 0;
  for (std::size_t s = 0; s < score.site_milliq.size(); ++s) {
    const std::uint64_t cap =
        s < capacity.site_milliq.size() ? capacity.site_milliq[s] : 0;
    if (score.site_milliq[s] > cap) {
      score.broken_milliq += score.site_milliq[s];
      ++score.overloaded_sites;
    } else {
      score.absorbed_milliq += score.site_milliq[s];
    }
  }
}

bool better(const Score& a, std::size_t index_a, const Score& b,
            std::size_t index_b) {
  if (a.broken_milliq != b.broken_milliq)
    return a.broken_milliq < b.broken_milliq;
  if (a.overloaded_sites != b.overloaded_sites)
    return a.overloaded_sites < b.overloaded_sites;
  if (a.shifted_blocks != b.shifted_blocks)
    return a.shifted_blocks < b.shifted_blocks;
  return index_a < index_b;
}

PlaybookOptimizer::PlaybookOptimizer(const analysis::Scenario& scenario,
                                     const anycast::Deployment& base,
                                     const PlaybookConfig& config,
                                     std::uint64_t date_seed)
    : scenario_(&scenario),
      base_(base),
      config_(config),
      routing_options_(scenario.delta_session(base).engine().options()),
      base_table_(scenario.route(base)),
      base_load_(scenario.broot_load(date_seed)) {
  // Fair-share provisioning: every site (announced or held in reserve)
  // is built for an equal slice of the legitimate baseline, padded by
  // the headroom factor. Integer capacities keep finalize() exact.
  const std::size_t active = std::max<std::size_t>(1, base.active_site_count());
  const auto per_site = static_cast<std::uint64_t>(std::llround(
      config.capacity_headroom * base_load_.total_daily_queries() * 1000.0 /
      static_cast<double>(active)));
  capacity_.site_milliq.assign(base.sites.size(), per_site);
}

std::vector<Candidate> PlaybookOptimizer::enumerate_candidates() const {
  // Per-site action menu. For an announced site: every prepend depth
  // 0..max_prepend (the site's current depth doubles as "keep") plus
  // withdrawal. For a withdrawn site: keep it dark, or re-announce it
  // (selective announcement).
  struct Action {
    bool enabled = true;
    int prepend = 0;
  };
  std::vector<std::vector<Action>> menus;
  for (const anycast::AnycastSite& site : base_.sites) {
    std::vector<Action> menu;
    if (site.enabled) {
      for (int d = 0; d <= config_.max_prepend; ++d)
        menu.push_back({true, d});
      if (site.prepend > config_.max_prepend)
        menu.push_back({true, site.prepend});  // "keep" must stay reachable
      if (config_.allow_withdraw) menu.push_back({false, site.prepend});
    } else {
      menu.push_back({false, site.prepend});  // keep dark
      menu.push_back({true, 0});              // selective announcement
    }
    menus.push_back(std::move(menu));
  }

  std::vector<Candidate> out;
  const auto push_target = [&](const anycast::Deployment& target) {
    Candidate c;
    c.delta = anycast::ConfigDelta::diff(base_, target);
    c.label = label_for(c.delta, base_);
    out.push_back(std::move(c));
  };

  if (config_.strategy == SearchStrategy::kExhaustive) {
    double combos = 1.0;
    for (const auto& menu : menus) combos *= static_cast<double>(menu.size());
    if (combos <= static_cast<double>(config_.max_exhaustive)) {
      // Odometer walk over the cartesian product, site 0 fastest — a
      // fixed enumeration order that the ranking tie-break relies on.
      std::vector<std::size_t> pick(menus.size(), 0);
      anycast::Deployment target = base_;
      for (;;) {
        for (std::size_t s = 0; s < menus.size(); ++s) {
          target.sites[s].enabled = menus[s][pick[s]].enabled;
          target.sites[s].prepend = menus[s][pick[s]].prepend;
        }
        push_target(target);
        std::size_t s = 0;
        while (s < pick.size() && ++pick[s] == menus[s].size()) pick[s++] = 0;
        if (s == pick.size()) break;
      }
      // Put the baseline (empty delta) first so index 0 is "no action"
      // in both strategies.
      const auto baseline = std::find_if(
          out.begin(), out.end(),
          [](const Candidate& c) { return c.delta.empty(); });
      if (baseline != out.end()) std::rotate(out.begin(), baseline,
                                             baseline + 1);
      return out;
    }
    // Too many combos to enumerate — degrade to the staged menu below.
  }

  // Stage 1: no action, then every single-site action that changes
  // something, in site order.
  out.push_back({anycast::ConfigDelta{}, "baseline"});
  for (std::size_t s = 0; s < menus.size(); ++s) {
    for (const auto& action : menus[s]) {
      anycast::Deployment target = base_;
      target.sites[s].enabled = action.enabled;
      target.sites[s].prepend = action.prepend;
      anycast::ConfigDelta delta = anycast::ConfigDelta::diff(base_, target);
      if (delta.empty()) continue;
      out.push_back({delta, label_for(delta, base_)});
    }
  }
  return out;
}

std::shared_ptr<const PlaybookOptimizer::Prepared> PlaybookOptimizer::prepare(
    const OfferedLoad& offered) const {
  {
    std::lock_guard lock{memo_mutex_};
    if (memo_ != nullptr && offered.memo_id != 0 &&
        memo_key_ == offered.memo_id)
      return memo_;
  }
  const auto blocks = scenario_->topo().blocks();
  auto prep = std::make_shared<Prepared>();
  prep->base_sites.resize(offered.rows.size());
  prep->base_raw.site_milliq.assign(base_.sites.size(), 0);
  for (std::size_t i = 0; i < offered.rows.size(); ++i) {
    const anycast::SiteId site =
        base_table_->site_for_block(blocks[offered.rows[i]]);
    prep->base_sites[i] = site;
    bucket_add(prep->base_raw, site, offered.milliq[i]);
  }
  std::lock_guard lock{memo_mutex_};
  memo_key_ = offered.memo_id;
  memo_ = prep;
  return prep;
}

Score PlaybookOptimizer::score_table(const bgp::RoutingTable& table,
                                     const OfferedLoad& offered) const {
  const auto prep = prepare(offered);
  const auto blocks = scenario_->topo().blocks();
  Score score;
  score.site_milliq.assign(base_.sites.size(), 0);
  for (std::size_t i = 0; i < offered.rows.size(); ++i) {
    const anycast::SiteId site =
        table.site_for_block(blocks[offered.rows[i]]);
    bucket_add(score, site, offered.milliq[i]);
    if (site != prep->base_sites[i]) ++score.shifted_blocks;
  }
  finalize(score, capacity_);
  return score;
}

namespace {

/// Full rescore with the base catchment already in hand (the parallel
/// pool's cold path; also the entire use_delta = false path).
Score full_score(const bgp::RoutingTable& table, const OfferedLoad& offered,
                 std::span<const anycast::SiteId> base_sites,
                 std::span<const topology::BlockInfo> blocks,
                 std::size_t site_count) {
  Score score;
  score.site_milliq.assign(site_count, 0);
  for (std::size_t i = 0; i < offered.rows.size(); ++i) {
    const anycast::SiteId site = table.site_for_block(blocks[offered.rows[i]]);
    bucket_add(score, site, offered.milliq[i]);
    if (site != base_sites[i]) ++score.shifted_blocks;
  }
  return score;
}

/// Per-site action vector of a configuration, for estimating how much a
/// transition between two candidate configs will cost the routing
/// engine (nothing else — scores never depend on this).
struct ActionVec {
  std::vector<std::int16_t> depth;  // -1 = withdrawn
};

ActionVec actions_of(const anycast::Deployment& config) {
  ActionVec v;
  v.depth.reserve(config.sites.size());
  for (const anycast::AnycastSite& site : config.sites)
    v.depth.push_back(site.enabled ? static_cast<std::int16_t>(site.prepend)
                                   : std::int16_t{-1});
  return v;
}

/// Estimated engine cost of moving between two configs: differing sites
/// first (each one re-converges its upstream cone), then total depth
/// movement (shallower depths hold bigger catchments, so longer ladders
/// flip more ASes). Only an ordering heuristic.
std::pair<int, int> transition_cost(const ActionVec& a, const ActionVec& b) {
  int differing = 0;
  int movement = 0;
  for (std::size_t s = 0; s < a.depth.size(); ++s) {
    if (a.depth[s] == b.depth[s]) continue;
    ++differing;
    // Announce/withdraw flips re-flood the whole cone; weigh them like
    // a full ladder.
    if (a.depth[s] < 0 || b.depth[s] < 0)
      movement += 16;
    else
      movement += std::abs(a.depth[s] - b.depth[s]);
  }
  return {differing, movement};
}

/// The order a worker walks its chunk: greedy nearest-neighbor by
/// estimated transition cost, starting from the session's parked
/// configuration. Consecutive candidates then differ as little as
/// possible (walking a prepend ladder step by step instead of jumping
/// across it), which is what keeps each delta apply's frontier small.
/// Larger chunks keep enumeration order — it is already site-major
/// adjacent and the O(n^2) planning would start to show.
std::vector<std::size_t> plan_walk(const std::vector<Candidate>& candidates,
                                   std::size_t begin, std::size_t end,
                                   const anycast::Deployment& parked,
                                   const anycast::Deployment& base) {
  const std::size_t n = end - begin;
  std::vector<std::size_t> order(n);
  for (std::size_t k = 0; k < n; ++k) order[k] = begin + k;
  constexpr std::size_t kMaxPlanned = 64;
  if (n <= 1 || n > kMaxPlanned) return order;

  std::vector<ActionVec> vecs(n);
  for (std::size_t k = 0; k < n; ++k) {
    anycast::Deployment target = base;
    candidates[begin + k].delta.apply_to(target);
    vecs[k] = actions_of(target);
  }
  ActionVec cur = actions_of(parked);
  std::vector<bool> used(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::pair<int, int> best_cost{};
    for (std::size_t k = 0; k < n; ++k) {
      if (used[k]) continue;
      const auto cost = transition_cost(cur, vecs[k]);
      if (best == n || cost < best_cost) {
        best = k;
        best_cost = cost;
      }
    }
    used[best] = true;
    order[step] = begin + best;
    cur = vecs[best];
  }
  return order;
}

/// Incremental rescore: start from the previous candidate's sums and
/// re-answer only the offered blocks inside the new table's
/// changed-block ranges. Integer arithmetic makes this bit-identical to
/// full_score of the same table (playbook_property_test proves it).
Score delta_score(const Score& prev_score,
                  const bgp::RoutingTable& prev_table,
                  const bgp::RoutingTable& table, const OfferedLoad& offered,
                  std::span<const anycast::SiteId> base_sites,
                  std::span<const topology::BlockInfo> blocks) {
  Score score = prev_score;
  for (const bgp::BlockRange& range : table.changed_block_ranges()) {
    const auto lo = std::lower_bound(offered.rows.begin(), offered.rows.end(),
                                     range.first);
    const auto hi = std::lower_bound(lo, offered.rows.end(), range.second);
    for (auto it = lo; it != hi; ++it) {
      const auto i = static_cast<std::size_t>(it - offered.rows.begin());
      const topology::BlockInfo& info = blocks[offered.rows[i]];
      const anycast::SiteId old_site = prev_table.site_for_block(info);
      const anycast::SiteId new_site = table.site_for_block(info);
      if (old_site == new_site) continue;
      const std::uint64_t q = offered.milliq[i];
      bucket_sub(score, old_site, q);
      bucket_add(score, new_site, q);
      if (new_site != base_sites[i] && old_site == base_sites[i])
        ++score.shifted_blocks;
      else if (new_site == base_sites[i] && old_site != base_sites[i])
        --score.shifted_blocks;
    }
  }
  return score;
}

}  // namespace

std::vector<Score> PlaybookOptimizer::evaluate(
    const std::vector<Candidate>& candidates,
    const OfferedLoad& offered) const {
  return evaluate(candidates, offered, *prepare(offered));
}

std::vector<Score> PlaybookOptimizer::evaluate(
    const std::vector<Candidate>& candidates, const OfferedLoad& offered,
    const Prepared& prep) const {
  const auto blocks = scenario_->topo().blocks();
  const std::size_t site_count = base_.sites.size();
  const std::span<const anycast::SiteId> base_sites = prep.base_sites;
  std::vector<Score> results(candidates.size());

  // The base config's raw sums, shared by every worker as its chunk's
  // starting point (each delta session also starts at the base config).
  const Score& base_score = prep.base_raw;

  util::parallel_for(
      candidates.size(), util::resolve_threads(config_.threads),
      [&](std::size_t begin, std::size_t end) {
        if (!config_.use_delta) {
          // A/B escape hatch: every candidate routed and scored from
          // scratch, no session, no sharing.
          for (std::size_t i = begin; i < end; ++i) {
            anycast::Deployment target = base_;
            candidates[i].delta.apply_to(target);
            auto session = scenario_->delta_session(target);
            const auto table = session.engine().full();
            Score score =
                full_score(*table, offered, base_sites, blocks, site_count);
            finalize(score, capacity_);
            results[i] = std::move(score);
          }
          return;
        }
        // Delta path: one routing session walks the chunk; each step
        // recomputes only the affected-AS set and the score update
        // touches only the changed block ranges. Sessions come from the
        // recycle pool and resume from wherever they were parked — the
        // walk order below starts at the parked configuration, so no
        // rewind apply is ever paid.
        ParkedSession session;
        {
          std::lock_guard lock{sessions_mutex_};
          if (!sessions_.empty()) {
            session = std::move(sessions_.back());
            sessions_.pop_back();
          }
        }
        if (session.engine == nullptr) {
          session.engine = std::make_unique<bgp::RoutingEngine>(
              scenario_->topo(), base_, routing_options_);
          session.table = session.engine->full();
          session.config = base_;
          session.raw = base_score;
          session.memo_id = offered.memo_id;
        } else if (session.memo_id != offered.memo_id ||
                   offered.memo_id == 0) {
          // Parked sums belong to a different offered load: one full
          // pass re-bases them (much cheaper than a rewind apply).
          session.raw = full_score(*session.table, offered, base_sites,
                                   blocks, site_count);
          session.memo_id = offered.memo_id;
        }

        const std::vector<std::size_t> order =
            plan_walk(candidates, begin, end, session.config, base_);
        // Only this worker touches the engine, so its configuration is
        // tracked locally instead of copied out under the engine mutex
        // per candidate.
        anycast::Deployment current = std::move(session.config);
        std::shared_ptr<const bgp::RoutingTable> prev =
            std::move(session.table);
        Score prev_score = std::move(session.raw);
        for (const std::size_t i : order) {
          anycast::Deployment target = base_;
          candidates[i].delta.apply_to(target);
          const bgp::ApplyResult result = session.engine->apply(
              anycast::ConfigDelta::diff(current, target));
          current = std::move(target);
          Score score;
          if (result.table.get() == prev.get()) {
            score = prev_score;  // no-op delta: same table, same sums
          } else if (!result.full_recompute &&
                     result.table->parent().get() == prev.get()) {
            score = delta_score(prev_score, *prev, *result.table, offered,
                                base_sites, blocks);
          } else {
            score = full_score(*result.table, offered, base_sites, blocks,
                               site_count);
          }
          prev = result.table;
          prev_score = score;
          finalize(score, capacity_);
          results[i] = std::move(score);
        }
        session.config = std::move(current);
        session.table = std::move(prev);
        session.raw = std::move(prev_score);
        std::lock_guard lock{sessions_mutex_};
        sessions_.push_back(std::move(session));
      });

  AgilityMetrics::get().configs.add(candidates.size());
  return results;
}

PlaybookEntry PlaybookOptimizer::respond(const AttackSpec& attack) const {
  const auto t0 = std::chrono::steady_clock::now();

  const OfferedLoad offered =
      offered_load(scenario_->topo(), base_load_, *base_table_, attack);
  const auto prep = prepare(offered);

  std::vector<Candidate> candidates = enumerate_candidates();
  std::vector<Score> scores = evaluate(candidates, offered, *prep);

  // Stage 2 (staged strategy only): combine the best single-site moves
  // pairwise. Selection uses the same deterministic order as the final
  // ranking, so the stage-2 candidate set is a pure function of the
  // stage-1 scores.
  if (config_.strategy == SearchStrategy::kStaged && config_.stage_combine > 1) {
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return better(scores[a], a, scores[b], b);
    });
    std::vector<std::size_t> top;
    for (const std::size_t i : order) {
      if (candidates[i].delta.sites.size() != 1) continue;  // singles only
      top.push_back(i);
      if (top.size() >= config_.stage_combine) break;
    }
    std::vector<Candidate> combos;
    for (std::size_t a = 0; a < top.size(); ++a) {
      for (std::size_t b = a + 1; b < top.size(); ++b) {
        const auto& da = candidates[top[a]].delta;
        const auto& db = candidates[top[b]].delta;
        if (da.sites[0].site == db.sites[0].site) continue;
        anycast::ConfigDelta merged;
        merged.sites = da.sites;
        merged.sites.push_back(db.sites[0]);
        std::sort(merged.sites.begin(), merged.sites.end(),
                  [](const anycast::SiteDelta& x, const anycast::SiteDelta& y) {
                    return x.site < y.site;
                  });
        combos.push_back({merged, label_for(merged, base_)});
      }
    }
    if (!combos.empty()) {
      std::vector<Score> combo_scores = evaluate(combos, offered, *prep);
      candidates.insert(candidates.end(),
                        std::make_move_iterator(combos.begin()),
                        std::make_move_iterator(combos.end()));
      scores.insert(scores.end(),
                    std::make_move_iterator(combo_scores.begin()),
                    std::make_move_iterator(combo_scores.end()));
    }
  }

  // Rank everything by the deterministic objective order.
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return better(scores[a], a, scores[b], b);
  });

  PlaybookEntry entry;
  entry.attack = attack;
  entry.attack_label = describe(attack, base_);
  entry.target = offered.resolved_target;
  entry.offered_milliq = offered.total_milliq;
  entry.attack_milliq = offered.attack_milliq;
  entry.configs_evaluated = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].delta.empty()) {
      entry.no_action = scores[i];
      break;
    }
  }
  const std::size_t keep = std::min(config_.top_k, order.size());
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t i = order[r];
    entry.responses.push_back({candidates[i], scores[i], i});
  }
  entry.search_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  AgilityMetrics& metrics = AgilityMetrics::get();
  metrics.attacks.add();
  metrics.search_ms.observe(entry.search_ms);
  return entry;
}

Playbook PlaybookOptimizer::build(std::span<const AttackSpec> attacks) const {
  Playbook playbook;
  playbook.base = base_;
  playbook.capacity = capacity_;
  for (const AttackSpec& attack : attacks)
    playbook.entries.push_back(respond(attack));
  return playbook;
}

}  // namespace vp::agility
