#include "bgp/routing.hpp"

#include <algorithm>
#include <bitset>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>

#include "bgp/catchment_resolver.hpp"
#include "bgp/routing_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace vp::bgp {

using topology::AsNode;
using topology::Topology;

bool AsRoutingState::multi_site() const {
  if (candidates.size() < 2) return false;
  const SiteId first = candidates.front().site;
  return std::any_of(
      candidates.begin() + 1, candidates.end(),
      [first](const CandidateRoute& c) { return c.site != first; });
}

/// Holds the lazily-built CatchmentResolver. Lives behind a shared_ptr
/// so RoutingTable stays cheaply movable/copyable (copies of an
/// identical table legitimately share one resolver) and std::once_flag
/// never has to move.
struct RoutingTable::ResolverSlot {
  std::once_flag once;
  std::unique_ptr<const CatchmentResolver> resolver;
};

namespace {

/// Non-owning deployment handle for the legacy one-shot constructor:
/// the caller keeps the deployment alive, exactly as before tables
/// could own their configuration.
std::shared_ptr<const anycast::Deployment> borrow(
    const anycast::Deployment& deployment) {
  return {std::shared_ptr<const anycast::Deployment>{}, &deployment};
}

std::vector<std::shared_ptr<const AsRoutingState>> share_states(
    std::vector<AsRoutingState> states) {
  std::vector<std::shared_ptr<const AsRoutingState>> shared;
  shared.reserve(states.size());
  for (AsRoutingState& state : states)
    shared.push_back(
        std::make_shared<const AsRoutingState>(std::move(state)));
  return shared;
}

std::shared_ptr<const std::vector<std::uint32_t>> build_pop_offsets(
    const Topology& topo) {
  auto offsets = std::make_shared<std::vector<std::uint32_t>>();
  offsets->resize(topo.as_count() + 1, 0);
  std::uint64_t total = 0;
  for (AsId as = 0; as < topo.as_count(); ++as) {
    total += topo.as_at(as).pops.size();
    // Width audit: the flat pop-site table is uint32-indexed. Even 500k
    // ASes at max PoP fan-out stay far below 2^32, but generated inputs
    // are now arbitrary — fail loudly instead of wrapping.
    assert(total <= 0xffffffffULL);
    (*offsets)[as + 1] = static_cast<std::uint32_t>(total);
  }
  return offsets;
}

}  // namespace

/// Hot-potato: each PoP selects, among the tied candidates, the one whose
/// egress attachment is geographically closest (§6.2 — "routing policies
/// like hot-potato routing are a likely cause for these divisions").
void RoutingTable::resolve_pop_sites(AsId as) {
  const AsRoutingState& state = *states_[as];
  const AsNode& node = topo_->as_at(as);
  const std::uint32_t base = (*pop_offsets_)[as];
  if (!state.reachable()) {
    for (std::size_t p = 0; p < node.pops.size(); ++p)
      pop_sites_[base + p] = anycast::kUnknownSite;
    return;
  }
  for (std::size_t p = 0; p < node.pops.size(); ++p) {
    const CandidateRoute* chosen = &state.best();
    if (state.candidates.size() > 1) {
      double best_distance = std::numeric_limits<double>::max();
      std::uint64_t best_tiebreak = 0;
      for (const CandidateRoute& cand : state.candidates) {
        const double d = geo::distance_km(
            node.pops[p].location, node.pops[cand.egress_pop].location);
        if (d < best_distance - 1e-9 ||
            (std::abs(d - best_distance) <= 1e-9 &&
             cand.tiebreak < best_tiebreak)) {
          best_distance = d;
          best_tiebreak = cand.tiebreak;
          chosen = &cand;
        }
      }
    }
    pop_sites_[base + p] = chosen->site;
  }
}

/// Rebuilds the SoA row for one AS: flag byte (spray bit + tied count)
/// and, for multipath multi-site ASes, the fixed-width spray row the
/// flow-hash path reads instead of chasing the shared state pointer.
void RoutingTable::index_spray(AsId as) {
  const AsRoutingState& state = *states_[as];
  std::uint8_t flags = 0;
  if (topo_->as_at(as).multipath && state.multi_site()) {
    if (state.candidates.size() <= kMaxTiedRoutes) {
      const auto count = static_cast<std::uint8_t>(state.candidates.size());
      flags = static_cast<std::uint8_t>(kSprayFlag | (count << 4));
      if (spray_sites_.empty()) {
        spray_sites_.assign(states_.size() * kMaxTiedRoutes,
                            anycast::kUnknownSite);
      }
      SiteId* row = &spray_sites_[as * kMaxTiedRoutes];
      for (std::uint8_t k = 0; k < count; ++k)
        row[k] = state.candidates[k].site;
    } else {
      // The engine's reduce step caps candidate sets at kMaxTiedRoutes,
      // but hand-built states can tie more sites than the fixed-width
      // row holds (route_cache_test's 40-site deployment). A zero count
      // marks them: the lookup chases the shared state instead, so no
      // tied site is silently truncated away.
      flags = kSprayFlag;
    }
  }
  as_flags_[as] = flags;
}

RoutingTable::RoutingTable(const Topology& topo,
                           const anycast::Deployment& deployment,
                           std::vector<AsRoutingState> states,
                           std::uint64_t epoch_salt)
    : RoutingTable(topo, borrow(deployment), share_states(std::move(states)),
                   epoch_salt, nullptr, {}) {}

RoutingTable::RoutingTable(
    const Topology& topo,
    std::shared_ptr<const anycast::Deployment> deployment,
    std::vector<std::shared_ptr<const AsRoutingState>> states,
    std::uint64_t epoch_salt, std::shared_ptr<const RoutingTable> parent,
    std::vector<AsId> changed_ases)
    : topo_(&topo),
      deployment_(std::move(deployment)),
      epoch_salt_(epoch_salt),
      states_(std::move(states)),
      parent_(parent),
      changed_ases_(std::move(changed_ases)),
      resolver_slot_(std::make_shared<ResolverSlot>()) {
  if (parent != nullptr) {
    // Incremental: reuse the parent's hot-potato resolution and SoA rows
    // everywhere the final route is unchanged; copy-and-patch only the
    // changed ASes.
    pop_offsets_ = parent->pop_offsets_;
    pop_sites_ = parent->pop_sites_;
    as_flags_ = parent->as_flags_;
    spray_sites_ = parent->spray_sites_;
    for (const AsId as : changed_ases_) {
      resolve_pop_sites(as);
      index_spray(as);
    }
  } else {
    pop_offsets_ = build_pop_offsets(topo);
    pop_sites_.assign(pop_offsets_->back(), anycast::kUnknownSite);
    as_flags_.assign(topo.as_count(), 0);
    for (AsId as = 0; as < topo.as_count(); ++as) {
      resolve_pop_sites(as);
      index_spray(as);
    }
  }
  // Blocks owned by changed ASes, as merged sorted ranges into
  // topo.blocks() — the invalidation unit for warm CatchmentResolver
  // rebuilds.
  changed_block_ranges_.reserve(changed_ases_.size());
  for (const AsId as : changed_ases_) {
    const AsNode& node = topo.as_at(as);
    if (node.block_count == 0) continue;
    changed_block_ranges_.emplace_back(node.first_block,
                                       node.first_block + node.block_count);
  }
  std::sort(changed_block_ranges_.begin(), changed_block_ranges_.end());
  std::size_t merged = 0;
  for (const BlockRange& range : changed_block_ranges_) {
    if (merged > 0 && changed_block_ranges_[merged - 1].second >= range.first)
      changed_block_ranges_[merged - 1].second =
          std::max(changed_block_ranges_[merged - 1].second, range.second);
    else
      changed_block_ranges_[merged++] = range;
  }
  changed_block_ranges_.resize(merged);
}

SiteId RoutingTable::site_for_block(net::Block24 block) const {
  const topology::BlockInfo* info = topo_->block_info(block);
  if (info == nullptr) return anycast::kUnknownSite;
  return site_for_block(*info);
}

SiteId RoutingTable::site_for_block(const topology::BlockInfo& info) const {
  const std::uint8_t flags = as_flags_[info.as_id];
  if (flags & kSprayFlag) {
    // Flow-hash load balancing: each block stably picks one of the tied
    // routes. Stable across rounds (same hash), so this creates lasting
    // intra-AS divisions, not flapping — but the hash seed drifts across
    // routing epochs (router restarts, ECMP rehash), which is part of the
    // paper's April-to-May catchment shift (section 5.5). The stored
    // count equals candidates.size(), so the SoA read reproduces the
    // state-chasing path bit for bit.
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(util::mix64(0x6d70617468), epoch_salt_),
        info.block.index());
    const std::uint8_t count = flags >> 4;
    if (count != 0) [[likely]]
      return spray_sites_[info.as_id * kMaxTiedRoutes + h % count];
    // Wide tie set (count 0 sentinel): the fixed row can't hold it;
    // spray over the full candidate list in the shared state.
    const auto& candidates = states_[info.as_id]->candidates;
    return candidates[h % candidates.size()].site;
  }
  return pop_sites_[(*pop_offsets_)[info.as_id] + info.pop];
}

std::size_t RoutingTable::distinct_sites(AsId as) const {
  const AsNode& node = topo_->as_at(as);
  // SiteId is int8, so 128 covers every representable site; a plain
  // `1u << site` mask is UB (and silently wrong) past 32 sites.
  std::bitset<128> seen;
  for (std::size_t p = 0; p < node.pops.size(); ++p) {
    const SiteId site = site_for_pop(as, static_cast<std::uint16_t>(p));
    if (site >= 0) seen.set(static_cast<std::size_t>(site));
  }
  if (node.multipath && states_[as]->multi_site()) {
    for (const CandidateRoute& cand : states_[as]->candidates)
      if (cand.site >= 0) seen.set(static_cast<std::size_t>(cand.site));
  }
  return seen.count();
}

const CatchmentResolver* RoutingTable::catchment_resolver(
    std::uint64_t flip_signature,
    const std::function<std::unique_ptr<const CatchmentResolver>()>& build)
    const {
  ResolverSlot& slot = *resolver_slot_;
  std::call_once(slot.once, [&] { slot.resolver = build(); });
  const CatchmentResolver* resolver = slot.resolver.get();
  return resolver != nullptr && resolver->flip_signature() == flip_signature
             ? resolver
             : nullptr;
}

const CatchmentResolver* RoutingTable::catchment_resolver() const {
  return resolver_slot_->resolver.get();
}

std::size_t RoutingTable::memory_bytes() const {
  std::size_t bytes =
      sizeof(*this) + pop_sites_.capacity() * sizeof(SiteId) +
      pop_offsets_->capacity() * sizeof(std::uint32_t) +
      states_.capacity() * sizeof(states_[0]) +
      as_flags_.capacity() +
      spray_sites_.capacity() * sizeof(SiteId) +
      changed_ases_.capacity() * sizeof(AsId) +
      changed_block_ranges_.capacity() * sizeof(BlockRange);
  for (const auto& state : states_) {
    bytes += sizeof(AsRoutingState) +
             state->candidates.capacity() * sizeof(CandidateRoute);
  }
  if (resolver_slot_->resolver) bytes += resolver_slot_->resolver->bytes();
  return bytes;
}

RoutingTable compute_routes(const Topology& topo,
                            const anycast::Deployment& deployment,
                            const RoutingOptions& options) {
  auto& registry = obs::metrics();
  registry.counter("vp_bgp_route_computations_total").add();
  obs::Span span{&registry.histogram("vp_bgp_compute_routes_ms",
                                     obs::latency_buckets_ms())};
  return RoutingTable{topo, deployment,
                      detail::compute_states(topo, deployment, options),
                      options.tiebreak_salt};
}

}  // namespace vp::bgp
