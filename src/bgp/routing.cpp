#include "bgp/routing.hpp"

#include <algorithm>
#include <bit>
#include <bitset>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>

#include "bgp/catchment_resolver.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace vp::bgp {

using topology::AsNode;
using topology::Link;
using topology::Relationship;
using topology::Topology;

namespace {

constexpr std::uint8_t kMaxPathLen = 250;
constexpr std::size_t kMaxCandidates = 12;  // tied-route retention cap

/// BGP decision order: relationship class (local-pref), then per-link
/// policy bonus (higher wins — local-pref beats path length, as in real
/// BGP), then AS-path length. Returns <0 if a better, 0 tied, >0 worse.
int compare_route(const CandidateRoute& a, const CandidateRoute& b) {
  if (a.cls != b.cls) return static_cast<int>(a.cls) - static_cast<int>(b.cls);
  if (a.local_pref_bonus != b.local_pref_bonus)
    return b.local_pref_bonus - a.local_pref_bonus;
  return static_cast<int>(a.path_len) - static_cast<int>(b.path_len);
}

/// Propagation engine state.
class Propagation {
 public:
  Propagation(const Topology& topo, const anycast::Deployment& deployment,
              const RoutingOptions& options)
      : topo_(topo),
        deployment_(deployment),
        options_(options),
        states_(topo.as_count()) {}

  std::vector<AsRoutingState> run() {
    inject_origin_routes();
    propagate_up();
    propagate_peers();
    propagate_down();
    for (auto& state : states_) pick_canonical(state);
    return std::move(states_);
  }

 private:
  std::uint64_t tiebreak(AsId receiver, AsId sender, SiteId site) const {
    // Salted so a different epoch (salt) re-rolls which tied candidate an
    // AS canonically prefers — the §5.5 routing shift.
    return util::hash_combine(
        options_.tiebreak_salt,
        util::hash_combine(
            util::hash_combine(topo_.as_at(receiver).asn.value,
                               topo_.as_at(sender).asn.value),
            static_cast<std::uint64_t>(site) + 1));
  }

  /// Offers a candidate to `receiver`; returns true if the receiver's best
  /// (class, length) improved (not merely tied).
  bool offer(AsId receiver, CandidateRoute cand) {
    auto& state = states_[receiver];
    if (state.candidates.empty()) {
      state.candidates.push_back(cand);
      return true;
    }
    const auto& best = state.candidates.front();
    const int cmp = compare_route(cand, best);
    if (cmp < 0) {
      state.candidates.clear();
      state.candidates.push_back(cand);
      return true;
    }
    if (cmp == 0 && state.candidates.size() < kMaxCandidates) {
      // Drop exact duplicates (same neighbor offering the same site).
      for (const auto& existing : state.candidates) {
        if (existing.egress_neighbor == cand.egress_neighbor &&
            existing.site == cand.site) {
          return false;
        }
      }
      state.candidates.push_back(cand);
    }
    return false;
  }

  void pick_canonical(AsRoutingState& state) const {
    std::uint32_t best_index = 0;
    for (std::uint32_t i = 1; i < state.candidates.size(); ++i) {
      if (state.candidates[i].tiebreak <
          state.candidates[best_index].tiebreak) {
        best_index = i;
      }
    }
    state.canonical = best_index;
  }

  /// The origin AS announces the prefix to each enabled site's upstream.
  /// The upstream hears a customer route whose AS path already contains
  /// the origin (1 hop) plus any prepending configured at that site.
  void inject_origin_routes() {
    for (std::size_t s = 0; s < deployment_.sites.size(); ++s) {
      const auto& site = deployment_.sites[s];
      if (!site.enabled || site.hidden) continue;
      const AsId upstream = topo_.find_as(site.upstream);
      assert(upstream != topology::kNoAs &&
             "deployment upstream AS missing from topology");
      const AsNode& node = topo_.as_at(upstream);
      // Attach the site at the upstream's PoP nearest the site location.
      std::uint16_t pop = 0;
      double best = std::numeric_limits<double>::max();
      for (std::size_t p = 0; p < node.pops.size(); ++p) {
        const double d =
            geo::distance_km(node.pops[p].location, site.location);
        if (d < best) {
          best = d;
          pop = static_cast<std::uint16_t>(p);
        }
      }
      CandidateRoute cand;
      cand.site = static_cast<SiteId>(s);
      cand.path_len = static_cast<std::uint8_t>(1 + site.prepend);
      cand.cls = RouteClass::kCustomer;
      cand.egress_neighbor = topology::kNoAs;  // directly attached service
      cand.egress_pop = pop;
      cand.tiebreak = tiebreak(upstream, upstream, cand.site);
      offer(upstream, cand);
    }
  }

  /// Sends `sender`'s route to one neighbor as class `cls`. What a real
  /// multi-PoP network advertises at an interconnect is the route *its
  /// routers at that PoP* selected (hot-potato), so among equal-best
  /// candidates we pick the one whose egress is nearest the sender-side
  /// attachment PoP of this link. This is how catchment diversity at tied
  /// transits propagates into their customer cones (§6.2).
  /// Returns whether the receiver's best improved.
  bool advertise(AsId sender, const Link& link, RouteClass cls) {
    const auto& state = states_[sender];
    if (!state.reachable()) return false;
    const AsNode& sender_node = topo_.as_at(sender);
    const geo::LatLon here = sender_node.pops[link.local_pop].location;
    const CandidateRoute* chosen = nullptr;
    double best_distance = std::numeric_limits<double>::max();
    std::uint32_t tied_count = 0;
    for (const CandidateRoute& candidate : state.candidates) {
      if (compare_route(candidate, state.candidates.front()) != 0) continue;
      ++tied_count;
      const double d = geo::distance_km(
          here, sender_node.pops[candidate.egress_pop].location);
      const bool closer =
          d < best_distance - 1e-9 ||
          (std::abs(d - best_distance) <= 1e-9 && chosen != nullptr &&
           candidate.tiebreak < chosen->tiebreak);
      if (chosen == nullptr || closer) {
        chosen = &candidate;
        best_distance = d;
      }
    }
    // Epoch jitter: a small fraction of tied decisions deviates from
    // hot-potato this epoch (IGP re-weighting, maintenance, TE). This is
    // what shifts whole customer cones between measurement dates (§5.5).
    if (tied_count > 1) {
      const std::uint64_t jitter = util::hash_combine(
          options_.tiebreak_salt,
          util::hash_combine(topo_.as_at(sender).asn.value,
                             topo_.as_at(link.neighbor).asn.value));
      if (static_cast<double>(jitter >> 11) * 0x1.0p-53 <
          options_.epoch_jitter_rate) {
        std::uint32_t pick = static_cast<std::uint32_t>(
            util::mix64(jitter) % tied_count);
        for (const CandidateRoute& candidate : state.candidates) {
          if (compare_route(candidate, state.candidates.front()) != 0)
            continue;
          if (pick-- == 0) {
            chosen = &candidate;
            break;
          }
        }
      }
    }
    CandidateRoute cand;
    cand.site = chosen->site;
    cand.path_len = static_cast<std::uint8_t>(
        std::min<int>(chosen->path_len + 1, kMaxPathLen));
    cand.cls = cls;
    // The receiver's policy bonus for routes learned over this link,
    // mirrored onto the sender's directed link by the topology builder so
    // advertising is O(1) instead of O(degree(receiver)).
    cand.local_pref_bonus = link.reverse_local_pref_bonus;
    cand.egress_neighbor = sender;
    cand.egress_pop = link.remote_pop;  // receiver-local PoP of this link
    cand.tiebreak = tiebreak(link.neighbor, sender, cand.site);
    return offer(link.neighbor, cand);
  }

  /// Stage 1: customer routes climb provider edges, BFS by path length so
  /// all equal-length ties are collected before an AS advertises.
  void propagate_up() {
    std::vector<std::vector<AsId>> frontier(kMaxPathLen + 2);
    std::vector<bool> advertised(topo_.as_count(), false);
    for (AsId as = 0; as < topo_.as_count(); ++as) {
      if (states_[as].reachable())
        frontier[states_[as].best().path_len].push_back(as);
    }
    for (std::uint8_t len = 0; len <= kMaxPathLen; ++len) {
      for (std::size_t i = 0; i < frontier[len].size(); ++i) {
        const AsId as = frontier[len][i];
        if (advertised[as]) continue;
        const auto& state = states_[as];
        if (!state.reachable() ||
            state.candidates.front().cls != RouteClass::kCustomer ||
            state.candidates.front().path_len != len) {
          continue;  // superseded or not a customer route
        }
        advertised[as] = true;
        for (const Link& link : topo_.as_at(as).links) {
          if (link.rel != Relationship::kProvider) continue;  // only up
          if (advertise(as, link, RouteClass::kCustomer)) {
            frontier[std::min<std::size_t>(len + 1, kMaxPathLen + 1)]
                .push_back(link.neighbor);
          } else if (!advertised[link.neighbor]) {
            // A tie was possibly added; ensure the neighbor is queued.
            const auto& ns = states_[link.neighbor];
            if (ns.reachable() &&
                ns.candidates.front().cls == RouteClass::kCustomer) {
              frontier[ns.candidates.front().path_len].push_back(
                  link.neighbor);
            }
          }
        }
      }
    }
  }

  /// Stage 2: every AS holding a customer route offers it to its peers.
  /// Peer routes are not re-exported to other peers or providers.
  void propagate_peers() {
    std::vector<AsId> holders;
    for (AsId as = 0; as < topo_.as_count(); ++as) {
      const auto& state = states_[as];
      if (state.reachable() &&
          state.candidates.front().cls == RouteClass::kCustomer) {
        holders.push_back(as);
      }
    }
    for (const AsId as : holders) {
      for (const Link& link : topo_.as_at(as).links) {
        if (link.rel == Relationship::kPeer)
          advertise(as, link, RouteClass::kPeer);
      }
    }
  }

  /// Stage 3: routes descend customer edges, BFS by resulting length.
  void propagate_down() {
    std::vector<std::vector<AsId>> frontier(
        static_cast<std::size_t>(kMaxPathLen) + 2);
    std::vector<bool> advertised(topo_.as_count(), false);
    for (AsId as = 0; as < topo_.as_count(); ++as) {
      if (states_[as].reachable())
        frontier[states_[as].best().path_len].push_back(as);
    }
    for (std::size_t len = 0; len <= kMaxPathLen; ++len) {
      for (std::size_t i = 0; i < frontier[len].size(); ++i) {
        const AsId as = frontier[len][i];
        if (advertised[as]) continue;
        const auto& state = states_[as];
        if (!state.reachable() || state.candidates.front().path_len != len)
          continue;  // superseded by a shorter route; re-queued elsewhere
        advertised[as] = true;
        for (const Link& link : topo_.as_at(as).links) {
          if (link.rel != Relationship::kCustomer) continue;  // only down
          if (advertise(as, link, RouteClass::kProvider)) {
            frontier[std::min<std::size_t>(len + 1, kMaxPathLen + 1)]
                .push_back(link.neighbor);
          }
        }
      }
    }
  }

  const Topology& topo_;
  const anycast::Deployment& deployment_;
  RoutingOptions options_;
  std::vector<AsRoutingState> states_;
};

}  // namespace

bool AsRoutingState::multi_site() const {
  if (candidates.size() < 2) return false;
  const SiteId first = candidates.front().site;
  return std::any_of(
      candidates.begin() + 1, candidates.end(),
      [first](const CandidateRoute& c) { return c.site != first; });
}

/// Holds the lazily-built CatchmentResolver. Lives behind a shared_ptr
/// so RoutingTable stays cheaply movable/copyable (copies of an
/// identical table legitimately share one resolver) and std::once_flag
/// never has to move.
struct RoutingTable::ResolverSlot {
  std::once_flag once;
  std::unique_ptr<const CatchmentResolver> resolver;
};

RoutingTable::RoutingTable(const Topology& topo,
                           const anycast::Deployment& deployment,
                           std::vector<AsRoutingState> states,
                           std::uint64_t epoch_salt)
    : topo_(&topo),
      deployment_(&deployment),
      epoch_salt_(epoch_salt),
      states_(std::move(states)),
      resolver_slot_(std::make_shared<ResolverSlot>()) {
  // Hot-potato: each PoP selects, among the tied candidates, the one whose
  // egress attachment is geographically closest (§6.2 — "routing policies
  // like hot-potato routing are a likely cause for these divisions").
  pop_offsets_.resize(topo.as_count() + 1, 0);
  for (AsId as = 0; as < topo.as_count(); ++as) {
    pop_offsets_[as + 1] =
        pop_offsets_[as] +
        static_cast<std::uint32_t>(topo.as_at(as).pops.size());
  }
  pop_sites_.assign(pop_offsets_.back(), anycast::kUnknownSite);
  for (AsId as = 0; as < topo.as_count(); ++as) {
    const AsRoutingState& state = states_[as];
    if (!state.reachable()) continue;
    const AsNode& node = topo.as_at(as);
    for (std::size_t p = 0; p < node.pops.size(); ++p) {
      const CandidateRoute* chosen = &state.best();
      if (state.candidates.size() > 1) {
        double best_distance = std::numeric_limits<double>::max();
        std::uint64_t best_tiebreak = 0;
        for (const CandidateRoute& cand : state.candidates) {
          const double d = geo::distance_km(
              node.pops[p].location, node.pops[cand.egress_pop].location);
          if (d < best_distance - 1e-9 ||
              (std::abs(d - best_distance) <= 1e-9 &&
               cand.tiebreak < best_tiebreak)) {
            best_distance = d;
            best_tiebreak = cand.tiebreak;
            chosen = &cand;
          }
        }
      }
      pop_sites_[pop_offsets_[as] + p] = chosen->site;
    }
  }
}

SiteId RoutingTable::site_for_block(net::Block24 block) const {
  const topology::BlockInfo* info = topo_->block_info(block);
  if (info == nullptr) return anycast::kUnknownSite;
  return site_for_block(*info);
}

SiteId RoutingTable::site_for_block(const topology::BlockInfo& info) const {
  const AsNode& node = topo_->as_at(info.as_id);
  const AsRoutingState& state = states_[info.as_id];
  if (node.multipath && state.multi_site()) {
    // Flow-hash load balancing: each block stably picks one of the tied
    // routes. Stable across rounds (same hash), so this creates lasting
    // intra-AS divisions, not flapping — but the hash seed drifts across
    // routing epochs (router restarts, ECMP rehash), which is part of the
    // paper's April-to-May catchment shift (section 5.5).
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(util::mix64(0x6d70617468), epoch_salt_),
        info.block.index());
    return state.candidates[h % state.candidates.size()].site;
  }
  return site_for_pop(info.as_id, info.pop);
}

std::size_t RoutingTable::distinct_sites(AsId as) const {
  const AsNode& node = topo_->as_at(as);
  // SiteId is int8, so 128 covers every representable site; a plain
  // `1u << site` mask is UB (and silently wrong) past 32 sites.
  std::bitset<128> seen;
  for (std::size_t p = 0; p < node.pops.size(); ++p) {
    const SiteId site = site_for_pop(as, static_cast<std::uint16_t>(p));
    if (site >= 0) seen.set(static_cast<std::size_t>(site));
  }
  if (node.multipath && states_[as].multi_site()) {
    for (const CandidateRoute& cand : states_[as].candidates)
      if (cand.site >= 0) seen.set(static_cast<std::size_t>(cand.site));
  }
  return seen.count();
}

const CatchmentResolver* RoutingTable::catchment_resolver(
    std::uint64_t flip_signature,
    const std::function<std::unique_ptr<const CatchmentResolver>()>& build)
    const {
  ResolverSlot& slot = *resolver_slot_;
  std::call_once(slot.once, [&] { slot.resolver = build(); });
  const CatchmentResolver* resolver = slot.resolver.get();
  return resolver != nullptr && resolver->flip_signature() == flip_signature
             ? resolver
             : nullptr;
}

const CatchmentResolver* RoutingTable::catchment_resolver() const {
  return resolver_slot_->resolver.get();
}

std::size_t RoutingTable::memory_bytes() const {
  std::size_t bytes = sizeof(*this) +
                      pop_offsets_.capacity() * sizeof(std::uint32_t) +
                      pop_sites_.capacity() * sizeof(SiteId) +
                      states_.capacity() * sizeof(AsRoutingState);
  for (const AsRoutingState& state : states_)
    bytes += state.candidates.capacity() * sizeof(CandidateRoute);
  if (resolver_slot_->resolver) bytes += resolver_slot_->resolver->bytes();
  return bytes;
}

RoutingTable compute_routes(const Topology& topo,
                            const anycast::Deployment& deployment,
                            const RoutingOptions& options) {
  auto& registry = obs::metrics();
  registry.counter("vp_bgp_route_computations_total").add();
  obs::Span span{&registry.histogram("vp_bgp_compute_routes_ms",
                                     obs::latency_buckets_ms())};
  Propagation propagation(topo, deployment, options);
  return RoutingTable{topo, deployment, propagation.run(),
                      options.tiebreak_salt};
}

}  // namespace vp::bgp
