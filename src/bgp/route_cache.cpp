#include "bgp/route_cache.hpp"

#include <bit>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp::bgp {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Gauge& bytes;
  obs::Gauge& entries;

  static CacheMetrics& get() {
    auto& r = obs::metrics();
    static CacheMetrics m{r.counter("vp_bgp_route_cache_hits_total"),
                          r.counter("vp_bgp_route_cache_misses_total"),
                          r.gauge("vp_bgp_route_cache_bytes"),
                          r.gauge("vp_bgp_route_cache_entries")};
    return m;
  }
};

}  // namespace

struct RouteCache::Holder {
  anycast::Deployment deployment;
  std::optional<RoutingTable> table;
};

std::size_t RouteCache::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(util::hash_combine(
      util::hash_combine(k.fingerprint, k.salt), k.jitter_bits));
}

std::shared_ptr<const RoutingTable> RouteCache::routes(
    const anycast::Deployment& deployment,
    const RoutingOptions& options) const {
  const auto compute = [&](const anycast::Deployment& dep) {
    auto holder = std::make_shared<Holder>();
    holder->deployment = dep;  // the table must point at a copy we own
    holder->table.emplace(compute_routes(*topo_, holder->deployment, options));
    // Aliasing: the returned pointer keeps the whole holder (table +
    // deployment copy) alive for as long as any caller retains it.
    const RoutingTable* table = &*holder->table;
    return std::shared_ptr<const RoutingTable>(std::move(holder), table);
  };

  if (!enabled()) return compute(deployment);

  const Key key{anycast::fingerprint(deployment), options.tiebreak_salt,
                std::bit_cast<std::uint64_t>(options.epoch_jitter_rate)};
  CacheMetrics& cm = CacheMetrics::get();
  // The mutex is held across the compute so concurrent callers of the
  // same key block on one computation instead of racing duplicates —
  // exactly what campaign rounds resuming in parallel want.
  std::lock_guard lock{mutex_};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    cm.hits.add();
    return it->second;
  }
  ++misses_;
  cm.misses.add();
  auto table = compute(deployment);
  bytes_ += table->memory_bytes();
  entries_.emplace(key, table);
  cm.bytes.set(static_cast<double>(bytes_));
  cm.entries.set(static_cast<double>(entries_.size()));
  return table;
}

RouteCacheStats RouteCache::stats() const {
  std::lock_guard lock{mutex_};
  return RouteCacheStats{hits_, misses_, entries_.size(), bytes_};
}

void RouteCache::clear() {
  std::lock_guard lock{mutex_};
  entries_.clear();
  bytes_ = 0;
  CacheMetrics& cm = CacheMetrics::get();
  cm.bytes.set(0.0);
  cm.entries.set(0.0);
}

}  // namespace vp::bgp
