#include "bgp/route_cache.hpp"

#include <bit>
#include <utility>

#include "bgp/routing_engine.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp::bgp {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& bytes;
  obs::Gauge& entries;

  static CacheMetrics& get() {
    auto& r = obs::metrics();
    static CacheMetrics m{r.counter("vp_bgp_route_cache_hits_total"),
                          r.counter("vp_bgp_route_cache_misses_total"),
                          r.counter("vp_bgp_route_cache_evictions_total"),
                          r.gauge("vp_bgp_route_cache_bytes"),
                          r.gauge("vp_bgp_route_cache_entries")};
    return m;
  }
};

}  // namespace

std::size_t RouteCache::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(util::hash_combine(
      util::hash_combine(k.fingerprint, k.salt), k.jitter_bits));
}

void RouteCache::enforce_limit_locked() const {
  if (byte_limit_ == 0) return;
  CacheMetrics& cm = CacheMetrics::get();
  // Never evict the hottest entry: a cap smaller than one table must not
  // turn the cache into a compute-every-time path.
  while (bytes_ > byte_limit_ && entries_.size() > 1) {
    const Key victim = lru_.back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    cm.evictions.add();
  }
  cm.bytes.set(static_cast<double>(bytes_));
  cm.entries.set(static_cast<double>(entries_.size()));
}

std::shared_ptr<const RoutingTable> RouteCache::routes(
    const anycast::Deployment& deployment,
    const RoutingOptions& options) const {
  const auto compute = [&] {
    // A one-shot engine session: the produced table owns its deployment
    // copy and shares no state with any other table.
    RoutingEngine engine{*topo_, deployment, options};
    return engine.full();
  };

  if (!enabled()) return compute();

  const Key key{anycast::fingerprint(deployment), options.tiebreak_salt,
                std::bit_cast<std::uint64_t>(options.epoch_jitter_rate)};
  CacheMetrics& cm = CacheMetrics::get();
  // The mutex is held across the compute so concurrent callers of the
  // same key block on one computation instead of racing duplicates —
  // exactly what campaign rounds resuming in parallel want.
  std::lock_guard lock{mutex_};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    cm.hits.add();
    lru_.splice(lru_.begin(), lru_, it->second.lru);  // mark hottest
    return it->second.table;
  }
  ++misses_;
  cm.misses.add();
  auto table = compute();
  lru_.push_front(key);
  const std::size_t table_bytes = table->memory_bytes();
  bytes_ += table_bytes;
  entries_.emplace(key, Entry{table, table_bytes, lru_.begin()});
  enforce_limit_locked();
  return table;
}

std::shared_ptr<const RoutingTable> RouteCache::routes_delta(
    const anycast::Deployment& base, const anycast::ConfigDelta& delta,
    const RoutingOptions& options) const {
  anycast::Deployment target = base;
  delta.apply_to(target);
  // Keying on the post-delta fingerprint (not the (base, delta) pair)
  // unifies delta-derived lookups with direct ones: however a
  // configuration is reached, it has one cache entry.
  return routes(target, options);
}

void RouteCache::set_byte_limit(std::size_t bytes) {
  std::lock_guard lock{mutex_};
  byte_limit_ = bytes;
  enforce_limit_locked();
}

std::size_t RouteCache::byte_limit() const {
  std::lock_guard lock{mutex_};
  return byte_limit_;
}

RouteCacheStats RouteCache::stats() const {
  std::lock_guard lock{mutex_};
  return RouteCacheStats{hits_, misses_, evictions_, entries_.size(), bytes_};
}

void RouteCache::clear() {
  std::lock_guard lock{mutex_};
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  CacheMetrics& cm = CacheMetrics::get();
  cm.bytes.set(0.0);
  cm.entries.set(0.0);
}

}  // namespace vp::bgp
