// Memoized route computation for deployment sweeps.
//
// Prepending and placement searches (analysis::Scenario, bench_fig5/6,
// bench_ext_placement, bench_table6/7, tools/debug_prepend) re-route the
// same topology over and over — Anycast-Agility-style playbook searches
// do it hundreds of times — and a full routing computation is the single
// most expensive call in those loops. Catchments are a pure function of
// (topology, deployment, routing options), so the cache keys each
// computed RoutingTable by (anycast::fingerprint(deployment),
// tiebreak_salt, epoch_jitter_rate) and hands out one shared immutable
// table per distinct configuration — shared across rounds, probe worker
// threads, and campaign resumes. Computation goes through a one-shot
// bgp::RoutingEngine; the delta-aware entry point `routes_delta` keys on
// the *post-delta* fingerprint, so a table reached by delta and the same
// configuration routed directly unify on one cache entry.
//
// Bounded: an optional byte cap (vpctl --route-cache-bytes /
// VP_ROUTE_CACHE_BYTES) evicts least-recently-used entries by
// RoutingTable::memory_bytes() accounting. The most recent entry is
// never evicted; outstanding shared_ptrs always stay valid.
//
// Lifetime: tables own a copy of their deployment, so callers may pass
// short-lived Deployment values — e.g.
// `cache.routes(broot.with_prepend("MIA", 2), opts)` — and hold only the
// table. One cache per Topology; the topology must outlive it.
//
// Determinism: a hit returns a table whose every answer is identical to
// a fresh computation (tests/route_cache_test.cpp byte-compares whole
// campaigns cache-on vs cache-off). Hit/miss/bytes/evictions are
// surfaced through obs::MetricsRegistry (vp_bgp_route_cache_*).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"

namespace vp::bgp {

struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  // approximate retained table memory
};

class RouteCache {
 public:
  /// `byte_limit` caps retained table memory (0 = unbounded).
  explicit RouteCache(const topology::Topology& topo, bool enabled = true,
                      std::size_t byte_limit = 0)
      : topo_(&topo), enabled_(enabled), byte_limit_(byte_limit) {}

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// The routing table for (deployment, options): a shared cached table
  /// on a hit, a freshly computed (and, when enabled, retained) one on a
  /// miss. Thread-safe; concurrent callers of the same key compute once.
  std::shared_ptr<const RoutingTable> routes(
      const anycast::Deployment& deployment,
      const RoutingOptions& options = {}) const;

  /// The table for `base` with `delta` applied. Keys on the post-delta
  /// deployment fingerprint, so sweeps expressed as deltas and the same
  /// configurations routed directly share cache entries.
  std::shared_ptr<const RoutingTable> routes_delta(
      const anycast::Deployment& base, const anycast::ConfigDelta& delta,
      const RoutingOptions& options = {}) const;

  /// When disabled every call computes fresh and retains nothing —
  /// results are identical (vpctl --no-route-cache A/B).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adjusts the byte cap (0 = unbounded); evicts immediately if the
  /// retained set now exceeds it.
  void set_byte_limit(std::size_t bytes);
  std::size_t byte_limit() const;

  RouteCacheStats stats() const;

  /// Drops every retained table (outstanding shared_ptrs stay valid).
  void clear();

 private:
  struct Key {
    std::uint64_t fingerprint;   // anycast::fingerprint(deployment)
    std::uint64_t salt;          // RoutingOptions::tiebreak_salt
    std::uint64_t jitter_bits;   // bit pattern of epoch_jitter_rate
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    std::shared_ptr<const RoutingTable> table;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;  // position in lru_ (front = hottest)
  };

  /// Evicts LRU entries until within the cap; requires mutex_ held.
  void enforce_limit_locked() const;

  const topology::Topology* topo_;
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  mutable std::size_t byte_limit_;
  mutable std::unordered_map<Key, Entry, KeyHash> entries_;
  mutable std::list<Key> lru_;  // most recently used first
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable std::size_t bytes_ = 0;
};

}  // namespace vp::bgp
