#include "bgp/catchment_resolver.hpp"

#include <algorithm>

#include "bgp/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace vp::bgp {

namespace {
std::atomic<bool> g_catchment_cache_enabled{true};
}  // namespace

void set_catchment_cache_enabled(bool on) noexcept {
  g_catchment_cache_enabled.store(on, std::memory_order_relaxed);
}

bool catchment_cache_enabled() noexcept {
  return g_catchment_cache_enabled.load(std::memory_order_relaxed);
}

CatchmentResolver::CatchmentResolver(const RoutingTable& routes,
                                     std::uint64_t flip_signature,
                                     const FlappyPredicate& is_flappy)
    : flip_signature_(flip_signature) {
  auto& registry = obs::metrics();
  obs::Span span{&registry.histogram("vp_bgp_resolver_build_ms",
                                     obs::latency_buckets_ms())};

  const topology::Topology& topo = routes.topology();
  const auto blocks = topo.blocks();
  if (!blocks.empty()) {
    // The generator hands out near-contiguous /24 runs, so a
    // direct-mapped table over [min, max] costs ~1 byte per allocated
    // block and turns resolution into one bounds check + one load.
    std::uint32_t lo = 0xffffffff, hi = 0;
    for (const topology::BlockInfo& info : blocks) {
      lo = std::min(lo, info.block.index());
      hi = std::max(hi, info.block.index());
    }
    first_ = lo;
    sites_.assign(hi - lo + 1, anycast::kUnknownSite);
    flappy_bits_.assign((sites_.size() + 63) / 64, 0);
    for (const topology::BlockInfo& info : blocks) {
      const std::uint32_t off = info.block.index() - first_;
      sites_[off] = routes.site_for_block(info);
      if (is_flappy(info.block)) {
        flappy_bits_[off >> 6] |= std::uint64_t{1} << (off & 63);
        ++flappy_count_;
      }
    }
  }

  const auto& sites = routes.deployment().sites;
  visible_pos_.assign(sites.size(), 0xffff);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    if (!sites[s].enabled || sites[s].hidden) continue;
    visible_pos_[s] = static_cast<std::uint16_t>(visible_.size());
    visible_.push_back(static_cast<anycast::SiteId>(s));
  }

  registry.counter("vp_bgp_resolver_builds_total").add();
  registry.gauge("vp_bgp_resolver_bytes").add(static_cast<double>(bytes()));
}

CatchmentResolver::CatchmentResolver(
    const RoutingTable& routes, std::uint64_t flip_signature,
    const FlappyPredicate& is_flappy, const CatchmentResolver& parent,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> changed_ranges)
    : first_(parent.first_),
      flip_signature_(flip_signature),
      flappy_count_(parent.flappy_count_),
      sites_(parent.sites_),
      flappy_bits_(parent.flappy_bits_) {
  auto& registry = obs::metrics();
  obs::Span span{&registry.histogram("vp_bgp_resolver_build_ms",
                                     obs::latency_buckets_ms())};

  // Only blocks of ASes whose best route changed can resolve
  // differently; everything else is inherited from the parent verbatim.
  // Flappy membership can also change (it reads the new candidate set),
  // so the bit is re-derived for the same blocks.
  const auto blocks = routes.topology().blocks();
  for (const auto& [begin, end] : changed_ranges) {
    const std::uint32_t stop =
        std::min<std::uint32_t>(end, static_cast<std::uint32_t>(blocks.size()));
    for (std::uint32_t i = begin; i < stop; ++i) {
      const topology::BlockInfo& info = blocks[i];
      const std::uint32_t off = info.block.index() - first_;
      if (off >= sites_.size()) continue;
      sites_[off] = routes.site_for_block(info);
      const std::uint64_t bit = std::uint64_t{1} << (off & 63);
      const bool was_flappy = (flappy_bits_[off >> 6] & bit) != 0;
      const bool now_flappy = is_flappy(info.block);
      if (was_flappy != now_flappy) {
        flappy_bits_[off >> 6] ^= bit;
        if (now_flappy)
          ++flappy_count_;
        else
          --flappy_count_;
      }
    }
  }

  // The visible-site list is cheap and deployment-dependent (announce /
  // withdraw deltas change it): always rebuilt from scratch.
  const auto& sites = routes.deployment().sites;
  visible_pos_.assign(sites.size(), 0xffff);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    if (!sites[s].enabled || sites[s].hidden) continue;
    visible_pos_[s] = static_cast<std::uint16_t>(visible_.size());
    visible_.push_back(static_cast<anycast::SiteId>(s));
  }

  registry.counter("vp_bgp_resolver_warm_builds_total").add();
  registry.gauge("vp_bgp_resolver_bytes").add(static_cast<double>(bytes()));
}

std::size_t CatchmentResolver::bytes() const {
  return sizeof(*this) + sites_.capacity() * sizeof(anycast::SiteId) +
         flappy_bits_.capacity() * sizeof(std::uint64_t) +
         visible_.capacity() * sizeof(anycast::SiteId) +
         visible_pos_.capacity() * sizeof(std::uint16_t);
}

void CatchmentResolver::warm_touch(net::Block24 lo, net::Block24 hi) const {
  if (hi.index() < lo.index()) return;
  const std::uint32_t begin = lo.index() - first_;
  if (begin >= sites_.size()) return;  // also catches lo < first_ (wraps)
  const std::size_t end =
      std::min<std::size_t>(hi.index() - first_ + 1, sites_.size());
  constexpr std::size_t kLine = 64;
  for (std::size_t off = begin; off < end; off += kLine)
    __builtin_prefetch(sites_.data() + off, 0 /*read*/, 1 /*low locality*/);
  for (std::size_t word = begin >> 6; word <= (end - 1) >> 6;
       word += kLine / sizeof(std::uint64_t))
    __builtin_prefetch(flappy_bits_.data() + word, 0, 1);
}

}  // namespace vp::bgp
