// Gao-Rexford policy routing over the simulated topology.
//
// This computes, for every (AS, PoP), which anycast site BGP selects —
// the simulation's *ground truth* catchment. Verfploeter never reads this
// table (paper §3.1: "we do not model BGP routing ... we measure actual
// deployment"); the measurement pipeline discovers catchments purely from
// which collector receives each reply, and tests validate the measured map
// against this ground truth.
//
// Model:
//  * Valley-free export (Gao-Rexford): customer routes are exported to
//    everyone; peer/provider routes only to customers.
//  * Selection: local-pref by relationship (customer > peer > provider),
//    then shortest AS path (site prepending counts, §6.1), then a
//    deterministic tie-break hash (salted, so distinct "routing epochs"
//    can be generated — the paper's April vs May shift, §5.5).
//  * Equal-best candidates are retained per AS; multi-PoP ASes resolve
//    them per-PoP by hot-potato (nearest egress), producing the intra-AS
//    catchment divisions of §6.2.
//
// Computation lives in bgp::RoutingEngine (bgp/routing_engine.hpp): a
// session object that produces immutable, structurally shared
// RoutingTables and supports incremental recomputation of configuration
// deltas. The free function compute_routes survives as a deprecated
// one-shot wrapper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "anycast/deployment.hpp"
#include "topology/topology.hpp"

namespace vp::bgp {

class CatchmentResolver;

using anycast::SiteId;
using topology::AsId;

/// Preference class of a route by the relationship it was learned over.
/// Order matters: lower value = preferred (BGP local-pref convention).
enum class RouteClass : std::uint8_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
  kNone = 3,
};

/// Upper bound on equal-best routes retained per AS. The engine's reduce
/// step truncates candidate sets to this, and RoutingTable's fixed-width
/// spray rows (one SiteId row of this width per multipath AS) rely on the
/// bound — the multipath flow hash mods by the stored count, which always
/// equals candidates.size() under this cap.
inline constexpr std::size_t kMaxTiedRoutes = 12;

/// One candidate best route at an AS.
struct CandidateRoute {
  SiteId site = anycast::kUnknownSite;
  std::uint8_t path_len = 0;  // AS hops from the origin, incl. prepending
  RouteClass cls = RouteClass::kNone;
  std::int8_t local_pref_bonus = 0;  // per-link policy boost (see Link)
  AsId egress_neighbor = topology::kNoAs;
  std::uint16_t egress_pop = 0;  // local PoP where the route was learned
  std::uint64_t tiebreak = 0;    // deterministic; lowest wins

  bool operator==(const CandidateRoute&) const = default;
};

/// Routing state of one AS: all equal-best candidates plus the canonical
/// (advertised) choice among them. Candidates are kept in canonical
/// order (ascending tiebreak), so the same inputs yield the same bytes
/// whether the state was computed from scratch or by delta propagation.
struct AsRoutingState {
  std::vector<CandidateRoute> candidates;
  std::uint32_t canonical = 0;  // index into candidates

  bool reachable() const { return !candidates.empty(); }
  const CandidateRoute& best() const { return candidates[canonical]; }
  /// True when the tied candidates span more than one site (the raw
  /// material for both hot-potato divisions and route flapping).
  bool multi_site() const;
};

/// Knobs for a routing computation.
struct RoutingOptions {
  /// Salt mixed into the tie-break hash. Different salts model different
  /// routing epochs: ASes with tied candidates may flip their canonical
  /// choice, reproducing the April-to-May catchment shift of §5.5.
  std::uint64_t tiebreak_salt = 0;
  /// Fraction of tied advertisement decisions that are re-rolled per
  /// epoch instead of following nearest-egress hot-potato. Models IGP
  /// re-weighting, maintenance, and TE changes between measurement dates
  /// — the mechanism behind the paper's 82.4% -> 87.8% block shift over
  /// one month (§5.5). Deterministic per salt.
  double epoch_jitter_rate = 0.25;
};

/// A [begin, end) index range into Topology::blocks() whose site answers
/// may differ between a table and its parent.
using BlockRange = std::pair<std::uint32_t, std::uint32_t>;

/// The computed routing outcome for one deployment.
///
/// Tables are immutable. Tables produced by a RoutingEngine share the
/// unchanged per-AS states with their predecessor (`&a.state(as) ==
/// &b.state(as)` for every AS whose routes did not change) and record
/// delta provenance: the predecessor (`parent()`), the ASes whose final
/// route changed, and the affected block ranges — what CatchmentResolver
/// uses to rebuild only the invalidated slice of its block->site table.
class RoutingTable {
 public:
  /// Legacy one-shot construction from plain per-AS states. The
  /// deployment is borrowed (caller keeps it alive); no provenance.
  RoutingTable(const topology::Topology& topo,
               const anycast::Deployment& deployment,
               std::vector<AsRoutingState> states,
               std::uint64_t epoch_salt = 0);

  /// Engine construction: shared per-AS states, owned deployment, and
  /// (for delta-produced tables) the parent plus the changed-AS set.
  /// Hot-potato PoP resolution is copied from the parent and recomputed
  /// only for the changed ASes.
  RoutingTable(const topology::Topology& topo,
               std::shared_ptr<const anycast::Deployment> deployment,
               std::vector<std::shared_ptr<const AsRoutingState>> states,
               std::uint64_t epoch_salt,
               std::shared_ptr<const RoutingTable> parent,
               std::vector<AsId> changed_ases);

  const topology::Topology& topology() const { return *topo_; }
  const anycast::Deployment& deployment() const { return *deployment_; }

  const AsRoutingState& state(AsId as) const { return *states_[as]; }

  /// The shared state object itself — lets tests assert structural
  /// sharing between a delta table and its parent.
  const std::shared_ptr<const AsRoutingState>& shared_state(AsId as) const {
    return states_[as];
  }

  /// Hot-potato-resolved site for a specific PoP of an AS.
  SiteId site_for_pop(AsId as, std::uint16_t pop) const {
    return pop_sites_[(*pop_offsets_)[as] + pop];
  }

  /// Site for a /24 block (via its owning AS + PoP); kUnknownSite if the
  /// block is unallocated or its AS is unreachable.
  SiteId site_for_block(net::Block24 block) const;

  /// Same, with the ownership record already in hand — the hot-path
  /// variant: callers that looked a BlockInfo up once thread it through
  /// instead of re-hashing the block per question.
  SiteId site_for_block(const topology::BlockInfo& info) const;

  /// Number of distinct sites chosen across an AS's PoPs and tied routes.
  std::size_t distinct_sites(AsId as) const;

  /// Delta provenance: the table this one was derived from by a
  /// RoutingEngine::apply, if it is still alive; nullptr for tables
  /// computed from scratch (or whose parent has been dropped).
  std::shared_ptr<const RoutingTable> parent() const {
    return parent_.lock();
  }

  /// ASes whose final route differs from parent(); empty for scratch
  /// tables. Sorted ascending.
  std::span<const AsId> changed_ases() const { return changed_ases_; }

  /// Merged, sorted [begin, end) ranges into topology().blocks() owned
  /// by the changed ASes — the slice of the block->site relation a
  /// warm CatchmentResolver rebuild must recompute.
  std::span<const BlockRange> changed_block_ranges() const {
    return changed_block_ranges_;
  }

  /// This table's lazily-built catchment resolver (block -> site table +
  /// flappy bitset, see bgp/catchment_resolver.hpp). The first caller
  /// builds via `build`; concurrent callers wait, later callers get the
  /// built resolver for free. Returns nullptr when the installed
  /// resolver was built under a different `flip_signature` (callers then
  /// use the uncached path — answers are identical either way).
  const CatchmentResolver* catchment_resolver(
      std::uint64_t flip_signature,
      const std::function<std::unique_ptr<const CatchmentResolver>()>& build)
      const;

  /// The resolver if one has been built; nullptr otherwise.
  const CatchmentResolver* catchment_resolver() const;

  /// Approximate heap footprint (route-cache accounting). Structurally
  /// shared states are counted in full for every table holding them.
  std::size_t memory_bytes() const;

 private:
  struct ResolverSlot;  // once-flag + resolver; shared so moves are cheap

  static constexpr std::uint8_t kSprayFlag = 1;  // bits 4..7: tied count

  void resolve_pop_sites(AsId as);
  void index_spray(AsId as);

  const topology::Topology* topo_;
  std::shared_ptr<const anycast::Deployment> deployment_;
  std::uint64_t epoch_salt_ = 0;
  std::vector<std::shared_ptr<const AsRoutingState>> states_;
  std::shared_ptr<const std::vector<std::uint32_t>> pop_offsets_;
  std::vector<SiteId> pop_sites_;
  // SoA hot path for site_for_block: one flag byte per AS (bit 0 = spray
  // across tied routes, bits 4..7 = tied-route count) plus fixed-width
  // SiteId spray rows — the CatchmentResolver direct-mapped layout
  // generalized to per-AS routing state. Replaces a pointer chase through
  // shared_ptr<AsRoutingState> + a candidates-vector scan per block, which
  // dominated uncached probe rounds at millions of blocks.
  std::vector<std::uint8_t> as_flags_;
  std::vector<SiteId> spray_sites_;  // lazily as_count * kMaxTiedRoutes
  std::weak_ptr<const RoutingTable> parent_;
  std::vector<AsId> changed_ases_;
  std::vector<BlockRange> changed_block_ranges_;
  std::shared_ptr<ResolverSlot> resolver_slot_;
};

/// One-shot valley-free propagation and hot-potato resolution.
[[deprecated(
    "construct a bgp::RoutingEngine and call full() / apply() instead")]]
RoutingTable compute_routes(const topology::Topology& topo,
                            const anycast::Deployment& deployment,
                            const RoutingOptions& options = {});

}  // namespace vp::bgp
