#include "bgp/routing_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace vp::bgp {

using topology::AsNode;
using topology::Link;
using topology::Relationship;
using topology::Topology;

namespace {

constexpr std::uint8_t kMaxPathLen = 250;

std::span<const double> frontier_buckets() {
  static constexpr double kBounds[] = {1,    2,    4,    8,     16,   32,
                                       64,   128,  256,  512,   1024, 2048,
                                       4096, 8192, 16384, 32768, 65536};
  return kBounds;
}

/// BGP decision order: relationship class (local-pref), then per-link
/// policy bonus (higher wins — local-pref beats path length, as in real
/// BGP), then AS-path length. Returns <0 if a better, 0 tied, >0 worse.
int compare_route(const CandidateRoute& a, const CandidateRoute& b) {
  if (a.cls != b.cls) return static_cast<int>(a.cls) - static_cast<int>(b.cls);
  if (a.local_pref_bonus != b.local_pref_bonus)
    return b.local_pref_bonus - a.local_pref_bonus;
  return static_cast<int>(a.path_len) - static_cast<int>(b.path_len);
}

/// Canonical candidate order. Tiebreak hashes are effectively unique per
/// (receiver, sender, site), so sorting by them makes the list a pure
/// function of the *set* of offers — independent of propagation order,
/// which is what lets delta recomputation be bit-identical to a full one.
bool canonical_less(const CandidateRoute& a, const CandidateRoute& b) {
  if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
  if (a.egress_neighbor != b.egress_neighbor)
    return a.egress_neighbor < b.egress_neighbor;
  if (a.site != b.site) return a.site < b.site;
  return a.egress_pop < b.egress_pop;
}

/// Reduces a pile of offers to the canonical equal-best candidate list:
/// keep only routes tying the best, order canonically, collapse parallel
/// links offering the same (neighbor, site), cap retention.
void reduce(std::vector<CandidateRoute>& offers) {
  if (offers.empty()) return;
  CandidateRoute best = offers.front();
  for (const CandidateRoute& c : offers)
    if (compare_route(c, best) < 0) best = c;
  std::erase_if(offers, [&best](const CandidateRoute& c) {
    return compare_route(c, best) != 0;
  });
  std::sort(offers.begin(), offers.end(), canonical_less);
  offers.erase(std::unique(offers.begin(), offers.end(),
                           [](const CandidateRoute& a,
                              const CandidateRoute& b) {
                             return a.egress_neighbor == b.egress_neighbor &&
                                    a.site == b.site;
                           }),
               offers.end());
  // The retention cap is shared with RoutingTable's fixed-width spray
  // rows (routing.hpp) — the SoA layout depends on it.
  if (offers.size() > kMaxTiedRoutes) offers.resize(kMaxTiedRoutes);
}

/// The three per-class candidate lists of one AS. The final (selected)
/// routes are the best non-empty class — class strictly dominates in
/// compare_route, so no cross-class comparison is needed.
struct ClassLists {
  std::vector<CandidateRoute> cust;
  std::vector<CandidateRoute> peer;
  std::vector<CandidateRoute> prov;

  const std::vector<CandidateRoute>& final_list() const {
    if (!cust.empty()) return cust;
    if (!peer.empty()) return peer;
    return prov;
  }
};

/// The propagation kernel: canonical per-AS state plus the stratified
/// (customer->provider DAG rank) recomputation passes, shared by full
/// and delta computation.
class Kernel {
 public:
  Kernel(const Topology& topo, const anycast::Deployment& deployment,
         const RoutingOptions& options)
      : topo_(topo),
        options_(options),
        deployment_(deployment),
        lists_(topo.as_count()) {
    build_ranks();
  }

  const anycast::Deployment& deployment() const { return deployment_; }
  bool incremental_supported() const { return incremental_ok_; }

  /// Recomputes every AS (initial computation, or the fallback when the
  /// hierarchy is cyclic). Converges to the canonical fixpoint.
  void run_full() {
    refresh_upstreams();
    touched_.clear();
    for (const AsId v : up_order_) recompute_cust(v);
    for (AsId v = 0; v < topo_.as_count(); ++v) recompute_peer(v);
    for (auto it = up_order_.rbegin(); it != up_order_.rend(); ++it)
      recompute_prov(*it);
  }

  /// Affected-set delta propagation: recomputes only ASes reachable from
  /// the changed announcements through the three valley-free stages,
  /// stopping wherever a recomputed candidate list comes out unchanged.
  /// `seed_upstreams` are the upstream ASes of the touched sites.
  void run_delta(std::span<const AsId> seed_upstreams) {
    refresh_upstreams();
    touched_.clear();
    const AsId n = topo_.as_count();

    // Stage 1: customer routes climb provider edges. Buckets by DAG rank
    // guarantee every AS sees its customers' settled state exactly once.
    std::vector<std::vector<AsId>> up_buckets(rank_count_);
    std::vector<bool> queued_up(n, false);
    const auto enqueue_up = [&](AsId v) {
      if (!queued_up[v]) {
        queued_up[v] = true;
        up_buckets[up_rank_[v]].push_back(v);
      }
    };
    for (const AsId v : seed_upstreams) enqueue_up(v);
    std::vector<AsId> cust_changed;
    for (std::uint32_t r = 0; r < rank_count_; ++r) {
      for (std::size_t i = 0; i < up_buckets[r].size(); ++i) {
        const AsId v = up_buckets[r][i];
        touch(v);
        if (!recompute_cust(v)) continue;
        cust_changed.push_back(v);
        for (const Link& l : topo_.as_at(v).links)
          if (l.rel == Relationship::kProvider) enqueue_up(l.neighbor);
      }
    }

    // Stage 2: peers of every AS whose customer routes changed re-derive
    // their peer-learned candidates (peer routes are never re-exported,
    // so this never cascades).
    std::vector<bool> queued_peer(n, false);
    std::vector<AsId> peer_dirty;
    for (const AsId v : cust_changed) {
      for (const Link& l : topo_.as_at(v).links) {
        if (l.rel != Relationship::kPeer || queued_peer[l.neighbor]) continue;
        queued_peer[l.neighbor] = true;
        peer_dirty.push_back(l.neighbor);
      }
    }
    for (const AsId v : peer_dirty) {
      touch(v);
      recompute_peer(v);
    }

    // Stage 3: every AS whose *final* selection changed re-advertises to
    // its customer cone; descend in reverse rank order so providers are
    // settled before their customers recompute.
    std::vector<std::vector<AsId>> down_buckets(rank_count_);
    std::vector<bool> queued_down(n, false);
    const auto notify_customers = [&](AsId v) {
      for (const Link& l : topo_.as_at(v).links) {
        if (l.rel != Relationship::kCustomer || queued_down[l.neighbor])
          continue;
        queued_down[l.neighbor] = true;
        down_buckets[up_rank_[l.neighbor]].push_back(l.neighbor);
      }
    };
    std::vector<AsId> sorted_touched = touched_keys();
    for (const AsId v : sorted_touched)
      if (lists_[v].final_list() != touched_.at(v)) notify_customers(v);
    for (std::uint32_t r = rank_count_; r-- > 0;) {
      for (std::size_t i = 0; i < down_buckets[r].size(); ++i) {
        const AsId v = down_buckets[r][i];
        touch(v);
        if (!recompute_prov(v)) continue;
        if (lists_[v].final_list() != touched_.at(v)) notify_customers(v);
      }
    }
  }

  /// ASes visited (and snapshotted) by the last run, sorted.
  std::vector<AsId> touched_keys() const {
    std::vector<AsId> keys;
    keys.reserve(touched_.size());
    for (const auto& [v, unused] : touched_) keys.push_back(v);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  const std::vector<CandidateRoute>& final_list(AsId v) const {
    return lists_[v].final_list();
  }

  /// Applies `delta` to the session deployment, returning the indices of
  /// sites whose configuration actually changed (no-op fields ignored).
  std::vector<std::uint32_t> apply_config(const anycast::ConfigDelta& delta) {
    std::vector<std::uint32_t> changed_sites;
    for (const anycast::SiteDelta& change : delta.sites) {
      if (change.site < 0 ||
          static_cast<std::size_t>(change.site) >= deployment_.sites.size())
        continue;
      anycast::AnycastSite& site =
          deployment_.sites[static_cast<std::size_t>(change.site)];
      bool changes = false;
      if (change.prepend && *change.prepend != site.prepend) {
        site.prepend = *change.prepend;
        changes = true;
      }
      if (change.enabled && *change.enabled != site.enabled) {
        site.enabled = *change.enabled;
        changes = true;
      }
      if (change.hidden && *change.hidden != site.hidden) {
        site.hidden = *change.hidden;
        changes = true;
      }
      if (changes)
        changed_sites.push_back(static_cast<std::uint32_t>(change.site));
    }
    return changed_sites;
  }

  AsId upstream_as(std::uint32_t site_index) const {
    return topo_.find_as(deployment_.sites[site_index].upstream);
  }

  /// Plain final states in AS order (the legacy compute_routes shape).
  std::vector<AsRoutingState> plain_states() const {
    std::vector<AsRoutingState> states(topo_.as_count());
    for (AsId v = 0; v < topo_.as_count(); ++v)
      states[v].candidates = lists_[v].final_list();
    return states;
  }

 private:
  /// Kahn layering of the customer->provider DAG: up_rank_[provider] >
  /// up_rank_[customer] for every transit edge, so processing by rank
  /// (ascending for customer-route ascent, descending for the descent)
  /// visits each AS after all the neighbors it learns from. A cycle
  /// leaves some ASes unprocessed; the engine then disables incremental
  /// mode (apply falls back to run_full — correct, just not fast).
  void build_ranks() {
    const AsId n = topo_.as_count();
    up_rank_.assign(n, 0);
    std::vector<std::uint32_t> pending(n, 0);
    for (AsId v = 0; v < n; ++v)
      for (const Link& l : topo_.as_at(v).links)
        if (l.rel == Relationship::kCustomer) ++pending[v];
    up_order_.clear();
    up_order_.reserve(n);
    for (AsId v = 0; v < n; ++v)
      if (pending[v] == 0) up_order_.push_back(v);
    for (std::size_t head = 0; head < up_order_.size(); ++head) {
      const AsId v = up_order_[head];
      for (const Link& l : topo_.as_at(v).links) {
        if (l.rel != Relationship::kProvider) continue;
        up_rank_[l.neighbor] =
            std::max(up_rank_[l.neighbor], up_rank_[v] + 1);
        if (--pending[l.neighbor] == 0) up_order_.push_back(l.neighbor);
      }
    }
    incremental_ok_ = up_order_.size() == n;
    if (!incremental_ok_) {
      // Keep a deterministic order anyway: append cycle members by id.
      std::vector<bool> placed(n, false);
      for (const AsId v : up_order_) placed[v] = true;
      for (AsId v = 0; v < n; ++v)
        if (!placed[v]) up_order_.push_back(v);
    }
    rank_count_ = 1;
    for (const std::uint32_t r : up_rank_)
      rank_count_ = std::max(rank_count_, r + 1);
  }

  void refresh_upstreams() {
    upstreams_.clear();
    for (std::size_t s = 0; s < deployment_.sites.size(); ++s) {
      const anycast::AnycastSite& site = deployment_.sites[s];
      if (!site.enabled || site.hidden) continue;
      const AsId upstream = topo_.find_as(site.upstream);
      assert(upstream != topology::kNoAs &&
             "deployment upstream AS missing from topology");
      if (upstream != topology::kNoAs)
        upstreams_.emplace_back(upstream, static_cast<std::uint32_t>(s));
    }
  }

  /// Snapshots an AS's pre-delta final routes on first visit so stage 3
  /// and the publish step can tell whether the selection really changed.
  void touch(AsId v) { touched_.try_emplace(v, lists_[v].final_list()); }

  std::uint64_t tiebreak(AsId receiver, AsId sender, SiteId site) const {
    // Salted so a different epoch (salt) re-rolls which tied candidate an
    // AS canonically prefers — the §5.5 routing shift.
    return util::hash_combine(
        options_.tiebreak_salt,
        util::hash_combine(
            util::hash_combine(topo_.as_at(receiver).asn.value,
                               topo_.as_at(sender).asn.value),
            static_cast<std::uint64_t>(site) + 1));
  }

  /// The route the neighbor on `lv` advertises to `receiver`: what a
  /// real multi-PoP network announces at an interconnect is the route
  /// *its routers at that PoP* selected (hot-potato), so among the
  /// sender's equal-best candidates we pick the one whose egress is
  /// nearest the sender-side attachment PoP. This is how catchment
  /// diversity at tied transits propagates into their customer cones
  /// (§6.2). Epoch jitter re-rolls a fraction of tied decisions per salt
  /// (IGP re-weighting, maintenance, TE — the §5.5 shift mechanism).
  CandidateRoute make_offer(AsId receiver, const Link& lv, RouteClass cls,
                            const std::vector<CandidateRoute>& fl) const {
    const AsId sender = lv.neighbor;
    const AsNode& sender_node = topo_.as_at(sender);
    const geo::LatLon here = sender_node.pops[lv.remote_pop].location;
    const CandidateRoute* chosen = nullptr;
    double best_distance = std::numeric_limits<double>::max();
    for (const CandidateRoute& candidate : fl) {
      const double d = geo::distance_km(
          here, sender_node.pops[candidate.egress_pop].location);
      const bool closer =
          d < best_distance - 1e-9 ||
          (std::abs(d - best_distance) <= 1e-9 && chosen != nullptr &&
           candidate.tiebreak < chosen->tiebreak);
      if (chosen == nullptr || closer) {
        chosen = &candidate;
        best_distance = d;
      }
    }
    if (fl.size() > 1) {
      const std::uint64_t jitter = util::hash_combine(
          options_.tiebreak_salt,
          util::hash_combine(sender_node.asn.value,
                             topo_.as_at(receiver).asn.value));
      if (static_cast<double>(jitter >> 11) * 0x1.0p-53 <
          options_.epoch_jitter_rate) {
        chosen = &fl[util::mix64(jitter) % fl.size()];
      }
    }
    CandidateRoute cand;
    cand.site = chosen->site;
    cand.path_len = static_cast<std::uint8_t>(
        std::min<int>(chosen->path_len + 1, kMaxPathLen));
    cand.cls = cls;
    // The receiver's policy bonus for routes learned over this link.
    cand.local_pref_bonus = lv.local_pref_bonus;
    cand.egress_neighbor = sender;
    cand.egress_pop = lv.local_pop;  // receiver-local PoP of this link
    cand.tiebreak = tiebreak(receiver, sender, cand.site);
    return cand;
  }

  /// The origin AS announces the prefix to each enabled site's upstream.
  /// The upstream hears a customer route whose AS path already contains
  /// the origin (1 hop) plus any prepending configured at that site,
  /// attached at the upstream's PoP nearest the site location.
  void origin_offers(AsId v, std::vector<CandidateRoute>& out) const {
    for (const auto& [upstream, s] : upstreams_) {
      if (upstream != v) continue;
      const anycast::AnycastSite& site = deployment_.sites[s];
      const AsNode& node = topo_.as_at(v);
      std::uint16_t pop = 0;
      double best = std::numeric_limits<double>::max();
      for (std::size_t p = 0; p < node.pops.size(); ++p) {
        const double d =
            geo::distance_km(node.pops[p].location, site.location);
        if (d < best) {
          best = d;
          pop = static_cast<std::uint16_t>(p);
        }
      }
      CandidateRoute cand;
      cand.site = static_cast<SiteId>(s);
      cand.path_len = static_cast<std::uint8_t>(1 + site.prepend);
      cand.cls = RouteClass::kCustomer;
      cand.egress_neighbor = topology::kNoAs;  // directly attached service
      cand.egress_pop = pop;
      cand.tiebreak = tiebreak(v, v, cand.site);
      out.push_back(cand);
    }
  }

  /// Each recompute_* derives one class list of `v` purely from the
  /// current neighbor states, reduces it canonically, and reports
  /// whether it changed — the delta passes' stopping condition.
  bool recompute_cust(AsId v) {
    scratch_.clear();
    origin_offers(v, scratch_);
    for (const Link& lv : topo_.as_at(v).links) {
      if (lv.rel != Relationship::kCustomer) continue;
      const std::vector<CandidateRoute>& nl = lists_[lv.neighbor].cust;
      if (nl.empty()) continue;  // customers export only customer routes
      scratch_.push_back(make_offer(v, lv, RouteClass::kCustomer, nl));
    }
    reduce(scratch_);
    if (scratch_ == lists_[v].cust) return false;
    std::swap(lists_[v].cust, scratch_);
    return true;
  }

  bool recompute_peer(AsId v) {
    scratch_.clear();
    for (const Link& lv : topo_.as_at(v).links) {
      if (lv.rel != Relationship::kPeer) continue;
      const std::vector<CandidateRoute>& nl = lists_[lv.neighbor].cust;
      if (nl.empty()) continue;  // peers export only customer routes
      scratch_.push_back(make_offer(v, lv, RouteClass::kPeer, nl));
    }
    reduce(scratch_);
    if (scratch_ == lists_[v].peer) return false;
    std::swap(lists_[v].peer, scratch_);
    return true;
  }

  bool recompute_prov(AsId v) {
    scratch_.clear();
    for (const Link& lv : topo_.as_at(v).links) {
      if (lv.rel != Relationship::kProvider) continue;
      // Providers export their best route of any class to customers.
      const std::vector<CandidateRoute>& nl =
          lists_[lv.neighbor].final_list();
      if (nl.empty()) continue;
      scratch_.push_back(make_offer(v, lv, RouteClass::kProvider, nl));
    }
    reduce(scratch_);
    if (scratch_ == lists_[v].prov) return false;
    std::swap(lists_[v].prov, scratch_);
    return true;
  }

  const Topology& topo_;
  RoutingOptions options_;
  anycast::Deployment deployment_;
  std::vector<ClassLists> lists_;
  std::vector<std::uint32_t> up_rank_;
  std::vector<AsId> up_order_;  // ascending rank, then id
  std::uint32_t rank_count_ = 1;
  bool incremental_ok_ = true;
  std::vector<std::pair<AsId, std::uint32_t>> upstreams_;  // (AS, site)
  std::vector<CandidateRoute> scratch_;
  /// AS -> pre-delta final list, snapshotted on first visit per run.
  std::unordered_map<AsId, std::vector<CandidateRoute>> touched_;

 public:
  /// Published, structurally shared per-AS states — the storage handed
  /// to RoutingTables. Maintained by the engine across applies.
  std::vector<std::shared_ptr<const AsRoutingState>> published;
  std::shared_ptr<const RoutingTable> current;
};

struct DeltaMetrics {
  obs::Counter& applies;
  obs::Histogram& frontier;
  obs::Gauge& affected_fraction;
  obs::Histogram& apply_ms;

  static DeltaMetrics& get() {
    auto& r = obs::metrics();
    static DeltaMetrics m{
        r.counter("vp_bgp_delta_applies_total"),
        r.histogram("vp_bgp_delta_frontier_ases", frontier_buckets()),
        r.gauge("vp_bgp_delta_affected_as_fraction"),
        r.histogram("vp_bgp_delta_apply_ms", obs::latency_buckets_ms())};
    return m;
  }
};

}  // namespace

struct RoutingEngine::Impl : Kernel {
  using Kernel::Kernel;

  /// Replaces the published state of every AS whose final routes differ
  /// from what was last published; returns those ASes, sorted. States
  /// that did not change keep their exact object (structural sharing).
  std::vector<AsId> publish(const Topology& topo) {
    std::vector<AsId> changed;
    const bool first = published.empty();
    if (first) {
      // Arena publish: the first full() materializes every AS's state, so
      // put them in one contiguous vector and hand out aliasing
      // shared_ptrs into it. At 500k ASes this replaces 500k control
      // blocks + allocations with one, keeps the states cache-adjacent
      // for the table's resolve pass, and preserves pointer identity for
      // the structural-sharing contract (delta publishes still replace
      // individual entries with their own allocations).
      published.resize(topo.as_count());
      auto arena =
          std::make_shared<std::vector<AsRoutingState>>(topo.as_count());
      changed.reserve(topo.as_count());
      for (AsId v = 0; v < topo.as_count(); ++v) {
        AsRoutingState& state = (*arena)[v];
        state.candidates = final_list(v);
        state.canonical = 0;  // canonical order: lowest tiebreak first
        published[v] = std::shared_ptr<const AsRoutingState>(arena, &state);
        changed.push_back(v);
      }
      return changed;
    }
    for (AsId v = 0; v < topo.as_count(); ++v) {
      const std::vector<CandidateRoute>& fl = final_list(v);
      if (published[v] != nullptr && published[v]->candidates == fl)
        continue;
      auto state = std::make_shared<AsRoutingState>();
      state->candidates = fl;
      state->canonical = 0;  // canonical order puts the lowest tiebreak first
      published[v] = std::move(state);
      changed.push_back(v);
    }
    return changed;
  }

  /// Delta fast path: only ASes the propagation visited can differ, so
  /// the publish scan is restricted to them (`touched` sorted).
  std::vector<AsId> publish_touched(const std::vector<AsId>& touched) {
    std::vector<AsId> changed;
    for (const AsId v : touched) {
      const std::vector<CandidateRoute>& fl = final_list(v);
      if (published[v] != nullptr && published[v]->candidates == fl) continue;
      auto state = std::make_shared<AsRoutingState>();
      state->candidates = fl;
      state->canonical = 0;
      published[v] = std::move(state);
      changed.push_back(v);
    }
    return changed;
  }

  std::shared_ptr<const RoutingTable> make_table(
      const Topology& topo, const RoutingOptions& options,
      std::shared_ptr<const RoutingTable> parent,
      std::vector<AsId> changed) {
    auto table = std::make_shared<const RoutingTable>(
        topo, std::make_shared<const anycast::Deployment>(deployment()),
        published, options.tiebreak_salt, std::move(parent),
        std::move(changed));
    current = table;
    return table;
  }
};

RoutingEngine::RoutingEngine(const Topology& topo,
                             const anycast::Deployment& deployment,
                             const RoutingOptions& options)
    : topo_(&topo),
      options_(options),
      impl_(std::make_unique<Impl>(topo, deployment, options)) {}

RoutingEngine::~RoutingEngine() = default;

std::shared_ptr<const RoutingTable> RoutingEngine::full() {
  std::lock_guard lock{mutex_};
  auto& registry = obs::metrics();
  registry.counter("vp_bgp_route_computations_total").add();
  obs::Span span{&registry.histogram("vp_bgp_compute_routes_ms",
                                     obs::latency_buckets_ms())};
  impl_->run_full();
  impl_->publish(*topo_);
  // A from-scratch table: no parent, no delta provenance.
  return impl_->make_table(*topo_, options_, nullptr, {});
}

ApplyResult RoutingEngine::apply(const anycast::ConfigDelta& delta) {
  std::lock_guard lock{mutex_};
  DeltaMetrics& dm = DeltaMetrics::get();
  obs::Span span{&dm.apply_ms};
  dm.applies.add();

  // Seed the frontier with the upstreams adjacent to every site whose
  // configuration actually changes. The upstream set is identical before
  // and after the change (upstream attachment is immutable), so one seed
  // per touched site covers announce, withdraw, and prepend alike.
  const std::vector<std::uint32_t> changed_sites =
      impl_->apply_config(delta);

  ApplyResult result;
  if (impl_->current == nullptr || !impl_->incremental_supported()) {
    // No base state to delta from (or a cyclic hierarchy): recompute
    // everything. Correct, reported as such, just not incremental.
    impl_->run_full();
    result.full_recompute = true;
    result.recomputed_ases = topo_->as_count();
    result.changed_ases = impl_->publish(*topo_);
    result.table = impl_->make_table(*topo_, options_, impl_->current,
                                     result.changed_ases);
  } else if (changed_sites.empty()) {
    // Every field was a no-op: the current table already answers.
    result.table = impl_->current;
  } else {
    std::vector<AsId> seeds;
    seeds.reserve(changed_sites.size());
    for (const std::uint32_t s : changed_sites) {
      const AsId upstream = impl_->upstream_as(s);
      if (upstream != topology::kNoAs) seeds.push_back(upstream);
    }
    impl_->run_delta(seeds);
    const std::vector<AsId> touched = impl_->touched_keys();
    result.recomputed_ases = touched.size();
    result.changed_ases = impl_->publish_touched(touched);
    result.table = impl_->make_table(*topo_, options_, impl_->current,
                                     result.changed_ases);
  }

  dm.frontier.observe(static_cast<double>(result.recomputed_ases));
  dm.affected_fraction.set(
      topo_->as_count() == 0
          ? 0.0
          : static_cast<double>(result.changed_ases.size()) /
                static_cast<double>(topo_->as_count()));
  return result;
}

anycast::Deployment RoutingEngine::deployment() const {
  std::lock_guard lock{mutex_};
  return impl_->deployment();
}

std::shared_ptr<const RoutingTable> RoutingEngine::current() const {
  std::lock_guard lock{mutex_};
  return impl_->current;
}

bool RoutingEngine::incremental_supported() const {
  return impl_->incremental_supported();
}

namespace detail {

std::vector<AsRoutingState> compute_states(
    const Topology& topo, const anycast::Deployment& deployment,
    const RoutingOptions& options) {
  Kernel kernel{topo, deployment, options};
  kernel.run_full();
  return kernel.plain_states();
}

}  // namespace detail

}  // namespace vp::bgp
