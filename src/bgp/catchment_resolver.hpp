// Precomputed catchment resolution: one flat block -> site table per
// routing table.
//
// The paper's core economy is that catchments are a near-static function
// of BGP state (§5.5 finds week-scale stability), so resolving a block's
// site is worth doing once, not once per probe. Before this cache the
// per-probe path did three hash-map lookups of the same BlockInfo
// (FlipModel::site_in_round, is_flappy, RoutingTable::site_for_block)
// plus the multipath flow-hash; PR 4 instrumented that path
// (vp_bgp_block_site_lookups_total) precisely to size this table.
//
// The resolver materializes, at routing-table granularity:
//  * a direct-mapped std::vector<SiteId> over the allocated /24 index
//    range — the *stable* answer for every block, folding hot-potato PoP
//    choice and the stable multipath split, so the hot path is a single
//    O(1) array read;
//  * a bitset of *flappy* blocks (the per-round re-roll population of
//    §6.3) — only this minority still pays hash math per probe;
//  * the deployment's visible-site list, so the transient-flip picker is
//    O(1) instead of rebuilding the list per event.
//
// Invariant: the resolver is a pure materialization — cached and uncached
// resolution give byte-identical catchment CSVs for any thread count
// (tests/route_cache_test.cpp). Flappy membership depends on the flip
// model's configuration, so each resolver records the `flip_signature`
// it was built under and is bypassed on mismatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "anycast/deployment.hpp"
#include "net/ipv4.hpp"

namespace vp::bgp {

class RoutingTable;

/// Process-wide switch for catchment precomputation (vpctl
/// --no-route-cache / tests' A-B comparisons). Results are identical
/// either way; off means every probe resolves through the uncached path.
void set_catchment_cache_enabled(bool on) noexcept;
bool catchment_cache_enabled() noexcept;

class CatchmentResolver {
 public:
  /// Consulted once per allocated block at build time; must be the flip
  /// model's exact flappy decision so cached and uncached paths agree.
  using FlappyPredicate = std::function<bool(const net::Block24&)>;

  static constexpr std::size_t kNotVisible = ~std::size_t{0};

  CatchmentResolver(const RoutingTable& routes, std::uint64_t flip_signature,
                    const FlappyPredicate& is_flappy);

  /// Warm rebuild from the resolver of the table's delta parent: copies
  /// the parent's block->site table and flappy bitset, then recomputes
  /// only `changed_ranges` ([begin, end) index ranges into
  /// Topology::blocks() — RoutingTable::changed_block_ranges()). The
  /// visible-site list is rebuilt from the new deployment. Produces
  /// exactly the table a cold build of `routes` would.
  CatchmentResolver(
      const RoutingTable& routes, std::uint64_t flip_signature,
      const FlappyPredicate& is_flappy, const CatchmentResolver& parent,
      std::span<const std::pair<std::uint32_t, std::uint32_t>>
          changed_ranges);

  /// Signature of the flip configuration folded into the flappy bitset.
  std::uint64_t flip_signature() const { return flip_signature_; }

  /// O(1): stable (hot-potato + stable-multipath) site for a block;
  /// kUnknownSite for unallocated blocks and unreachable ASes.
  anycast::SiteId stable_site(net::Block24 block) const {
    const std::uint32_t off = block.index() - first_;
    if (off >= sites_.size()) return anycast::kUnknownSite;
    return sites_[off];
  }

  /// O(1): whether the block belongs to the flappy population.
  bool flappy(net::Block24 block) const {
    const std::uint32_t off = block.index() - first_;
    if (off >= sites_.size()) return false;
    return (flappy_bits_[off >> 6] >> (off & 63)) & 1u;
  }

  /// Visible (enabled, non-hidden) sites in site-id order — the
  /// candidate pool for transient one-round flips.
  std::span<const anycast::SiteId> visible_sites() const { return visible_; }

  /// Index of `site` within visible_sites(), or kNotVisible.
  std::size_t visible_position(anycast::SiteId site) const {
    if (site < 0 || static_cast<std::size_t>(site) >= visible_pos_.size())
      return kNotVisible;
    const std::uint16_t p = visible_pos_[static_cast<std::size_t>(site)];
    return p == 0xffff ? kNotVisible : p;
  }

  /// O(1) transient pick: the `pick`-th visible site excluding `current`,
  /// exactly matching the uncached picker's enumeration order. Returns
  /// `current` when it is the only visible site.
  anycast::SiteId transient_site(anycast::SiteId current,
                                 std::uint64_t pick) const {
    const std::size_t pos = visible_position(current);
    const std::size_t others =
        visible_.size() - (pos == kNotVisible ? 0 : 1);
    if (others == 0) return current;
    std::size_t k = pick % others;
    if (pos != kNotVisible && k >= pos) ++k;
    return visible_[k];
  }

  std::size_t block_span() const { return sites_.size(); }
  std::size_t flappy_count() const { return flappy_count_; }
  /// Bytes materialized (table + bitset + site lists).
  std::size_t bytes() const;

  /// Prefetches the site-table and flappy-bitset slices covering
  /// [lo, hi] into cache — the tile-granular warm-touch hook the probe
  /// engine calls as it enters each block-range tile, so the first probe
  /// of a tile doesn't eat the cold misses serially. Purely advisory:
  /// results never depend on it.
  void warm_touch(net::Block24 lo, net::Block24 hi) const;

 private:
  std::uint32_t first_ = 0;  // lowest allocated /24 index
  std::uint64_t flip_signature_ = 0;
  std::size_t flappy_count_ = 0;
  std::vector<anycast::SiteId> sites_;       // direct-mapped by index-first_
  std::vector<std::uint64_t> flappy_bits_;   // same indexing, 64 per word
  std::vector<anycast::SiteId> visible_;     // enabled && !hidden, in order
  std::vector<std::uint16_t> visible_pos_;   // site id -> pos, 0xffff absent
};

}  // namespace vp::bgp
