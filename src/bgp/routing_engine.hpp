// Incremental BGP recomputation behind a session API.
//
// A RoutingEngine owns the mutable per-AS propagation state for one
// (topology, deployment, options) session and hands out immutable,
// structurally shared RoutingTables:
//
//   bgp::RoutingEngine engine{topo, deployment, options};
//   auto base = engine.full();                       // initial table
//   auto step = engine.apply(                        // delta table
//       anycast::ConfigDelta::set_prepend(mia, 2));
//   step.changed_ases;                               // blast radius
//
// apply() seeds a frontier with the ASes adjacent to the changed
// announcements (the upstreams of the touched sites) and propagates
// changed/affected sets to quiescence through the three valley-free
// stages, recomputing only ASes whose candidate routes can actually
// change. Unchanged ASes keep their exact AsRoutingState objects, so a
// delta table shares almost all of its storage with its parent and the
// one-knob sweeps of §6.1 (Figs 5-6) cost proportional to their blast
// radius instead of the whole topology.
//
// Correctness contract: routing state is a *canonical* function of the
// configuration — candidate lists are kept in a deterministic order
// independent of propagation order — so the table produced by apply()
// is bit-identical to a fresh full() of the post-delta configuration
// (tests/delta_routing_test.cpp proves this over seeded topologies and
// random delta sequences).
//
// The stratification relies on the customer->provider hierarchy being
// acyclic (the generator's is). If a provider cycle is ever present the
// engine detects it at construction and apply() silently degrades to a
// full recompute — still correct, just not incremental.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "anycast/deployment.hpp"
#include "bgp/routing.hpp"

namespace vp::bgp {

/// Outcome of one RoutingEngine::apply.
struct ApplyResult {
  /// The post-delta routing table (shares state with its parent).
  std::shared_ptr<const RoutingTable> table;
  /// ASes whose final route changed (sorted). Equals
  /// table->changed_ases().
  std::vector<AsId> changed_ases;
  /// ASes the delta propagation visited — the work actually done. Always
  /// >= changed_ases.size() and, for a local change, far below
  /// topology().as_count().
  std::size_t recomputed_ases = 0;
  /// True when the engine had to fall back to a full recompute (first
  /// apply before full(), or a cyclic provider graph).
  bool full_recompute = false;
};

class RoutingEngine {
 public:
  /// Copies the deployment; the topology must outlive the engine.
  RoutingEngine(const topology::Topology& topo,
                const anycast::Deployment& deployment,
                const RoutingOptions& options = {});
  ~RoutingEngine();

  RoutingEngine(const RoutingEngine&) = delete;
  RoutingEngine& operator=(const RoutingEngine&) = delete;

  /// Computes (or recomputes) every AS from scratch and returns the
  /// resulting table. The first call initializes the session.
  std::shared_ptr<const RoutingTable> full();

  /// Applies a configuration delta to the session's deployment and
  /// recomputes only the affected ASes. Thread-safe: applies are
  /// serialized; previously returned tables are immutable and stay
  /// valid.
  ApplyResult apply(const anycast::ConfigDelta& delta);

  /// The session's current deployment (post all applied deltas).
  anycast::Deployment deployment() const;

  /// The most recently produced table; nullptr before the first full().
  std::shared_ptr<const RoutingTable> current() const;

  const RoutingOptions& options() const { return options_; }
  const topology::Topology& topology() const { return *topo_; }

  /// False when the provider hierarchy has a cycle and every apply()
  /// degrades to a full recompute.
  bool incremental_supported() const;

 private:
  struct Impl;

  const topology::Topology* topo_;
  RoutingOptions options_;
  mutable std::mutex mutex_;
  std::unique_ptr<Impl> impl_;
};

namespace detail {
/// The canonical propagation kernel as a one-shot: per-AS final states
/// for `deployment`, in canonical order. Implementation detail shared
/// with the deprecated compute_routes wrapper.
std::vector<AsRoutingState> compute_states(
    const topology::Topology& topo, const anycast::Deployment& deployment,
    const RoutingOptions& options);
}  // namespace detail

}  // namespace vp::bgp
