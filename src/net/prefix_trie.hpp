// Longest-prefix-match binary trie, the lookup structure behind
// "which announced prefix / origin AS covers this address".
//
// A plain binary trie (one bit per level, max depth 32) keeps the code
// simple and is fast enough: lookups are bounded by prefix length, and the
// simulator's routing tables hold at most a few hundred thousand prefixes.
// Nodes live in a contiguous vector (index links, not pointers) per the
// Core Guidelines' preference for compact, cache-friendly structures.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"

namespace vp::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts or replaces the value at `prefix`. Returns true if the prefix
  /// was newly inserted, false if an existing value was replaced.
  bool insert(Prefix prefix, Value value) {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t& child = nodes_[node].children[bit];
      if (child == kNoNode) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      node = nodes_[node].children[bit];
    }
    const bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Longest-prefix match: the most specific inserted prefix containing
  /// `addr`, with its value; nullopt if nothing matches.
  std::optional<std::pair<Prefix, Value>> lookup(Ipv4Address addr) const {
    std::optional<std::pair<Prefix, Value>> best;
    std::uint32_t node = 0;
    const std::uint32_t bits = addr.value();
    for (std::uint8_t depth = 0;; ++depth) {
      if (nodes_[node].value)
        best.emplace(Prefix{addr, depth}, *nodes_[node].value);
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].children[bit];
      if (child == kNoNode) break;
      node = child;
    }
    return best;
  }

  /// Exact-match lookup of a previously inserted prefix.
  const Value* find(Prefix prefix) const {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].children[bit];
      if (child == kNoNode) return nullptr;
      node = child;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate heap footprint of the node pool.
  std::size_t memory_bytes() const { return nodes_.capacity() * sizeof(Node); }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(0, 0, 0, fn);
  }

 private:
  static constexpr std::uint32_t kNoNode = 0xffffffff;

  struct Node {
    std::uint32_t children[2] = {kNoNode, kNoNode};
    std::optional<Value> value;
  };

  template <typename Fn>
  void visit(std::uint32_t node, std::uint32_t bits, std::uint8_t depth,
             Fn& fn) const {
    if (nodes_[node].value)
      fn(Prefix{Ipv4Address{bits}, depth}, *nodes_[node].value);
    if (depth == 32) return;
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t child = nodes_[node].children[bit];
      if (child != kNoNode) {
        visit(child,
              bits | (static_cast<std::uint32_t>(bit) << (31 - depth)),
              static_cast<std::uint8_t>(depth + 1), fn);
      }
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace vp::net
