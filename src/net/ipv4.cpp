#include "net/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace vp::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* ptr = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(ptr, end, octet);
    if (ec != std::errc{} || next == ptr || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    ptr = next;
    if (i < 3) {
      if (ptr == end || *ptr != '.') return std::nullopt;
      ++ptr;
    }
  }
  if (ptr != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  return Prefix{*addr, static_cast<std::uint8_t>(length)};
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace vp::net
