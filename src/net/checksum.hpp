// RFC 1071 Internet checksum, used by both the IPv4 header and ICMP.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace vp::net {

/// One's-complement sum accumulator so a checksum can be computed over
/// multiple buffers (header + payload) without copying.
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) noexcept;
  /// Finalized RFC 1071 checksum (host order).
  std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // previous buffer ended on an odd byte boundary
};

/// Convenience single-buffer checksum.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

}  // namespace vp::net
