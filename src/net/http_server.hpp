// A tiny blocking HTTP/1.x server for the verfploeterd query endpoints.
//
// Deliberately minimal — no third-party dependencies, no TLS, no
// keep-alive: bind 127.0.0.1, accept one connection at a time, parse the
// request line plus query string, hand the request to a handler, write
// the response, close. The daemon's serving economics live in the
// handler (an O(1) map lookup), so a single blocking accept loop is
// plenty for the 100k-lookups/s bar — the lookup path is benchmarked
// in-process (bench_serve) and the socket layer only has to not wedge:
// per-connection read/write timeouts guarantee a stalled client cannot
// stop the daemon from serving the next one.
//
// The request/response structs are plain values so endpoint handlers are
// unit-testable (and benchable) without a socket in sight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace vp::net {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // decoded, no query string: "/block/1.2.3.4"
  std::map<std::string, std::string> query;  // decoded key -> value

  /// Query parameter lookup with a fallback.
  std::string param(const std::string& key, const std::string& fallback = "") const {
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(std::string body, int status = 200) {
    return HttpResponse{status, "application/json", std::move(body)};
  }
  static HttpResponse text(std::string body, int status = 200) {
    return HttpResponse{status, "text/plain; version=0.0.4", std::move(body)};
  }
  static HttpResponse not_found(std::string why = "not found") {
    return HttpResponse{404, "text/plain; version=0.0.4", std::move(why) + "\n"};
  }
  static HttpResponse bad_request(std::string why) {
    return HttpResponse{400, "text/plain; version=0.0.4", std::move(why) + "\n"};
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Decodes %XX escapes and '+' (as space). Invalid escapes pass through.
std::string url_decode(std::string_view text);

/// Parses "GET /path?a=1&b=2 HTTP/1.1" request text (first line only) into
/// an HttpRequest. Returns false on a malformed request line.
bool parse_http_request(std::string_view request_text, HttpRequest& out);

/// Serializes a response with Content-Length and Connection: close.
std::string render_http_response(const HttpResponse& response);

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop on
  /// a background thread. Returns false if bind/listen fails. The handler
  /// is invoked from the accept thread; it must synchronize with whatever
  /// state it reads.
  bool start(std::uint16_t port, HttpHandler handler);

  /// The bound port (useful after an ephemeral bind). 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Closes the listener and joins the accept thread. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace vp::net
