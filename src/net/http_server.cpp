#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vp::net {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Socket send that survives EINTR and partial writes.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               hex_digit(text[i + 1]) >= 0 && hex_digit(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(text[i + 1]) * 16 +
                                      hex_digit(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool parse_http_request(std::string_view request_text, HttpRequest& out) {
  const std::size_t line_end = request_text.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? request_text
                                         : request_text.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  out.method = std::string{line.substr(0, sp1)};
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t q = target.find('?');
  out.path = url_decode(target.substr(0, q));
  out.query.clear();
  if (q != std::string_view::npos) {
    std::string_view rest = target.substr(q + 1);
    while (!rest.empty()) {
      const std::size_t amp = rest.find('&');
      const std::string_view pair = rest.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        if (!pair.empty()) out.query[url_decode(pair)] = "";
      } else {
        out.query[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      rest.remove_prefix(amp + 1);
    }
  }
  return true;
}

std::string render_http_response(const HttpResponse& response) {
  const char* reason = "OK";
  switch (response.status) {
    case 200: reason = "OK"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 503: reason = "Service Unavailable"; break;
    default: reason = "Status"; break;
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

bool HttpServer::start(std::uint16_t port, HttpHandler handler) {
  stop();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  handler_ = std::move(handler);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread{[this] { serve_loop(); }};
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocked accept(); close() alone can leave it
  // sleeping on some kernels.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // A stalled or malicious client must not wedge the accept loop: bound
  // both directions, then read until the end of headers (we never accept
  // request bodies) with a hard size cap.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest parsed;
  HttpResponse response;
  if (!parse_http_request(request, parsed)) {
    response = HttpResponse::bad_request("malformed request");
  } else if (parsed.method != "GET" && parsed.method != "HEAD") {
    response = HttpResponse::bad_request("only GET is supported");
  } else {
    response = handler_(parsed);
    if (parsed.method == "HEAD") response.body.clear();
  }
  send_all(fd, render_http_response(response));
}

}  // namespace vp::net
