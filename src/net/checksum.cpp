#include "net/checksum.hpp"

namespace vp::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Previous buffer ended mid-word: this byte is the low half.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (std::uint16_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += std::uint16_t{data[i]} << 8;
    odd_ = true;
  }
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t folded = sum_;
  while (folded >> 16) folded = (folded & 0xffff) + (folded >> 16);
  return static_cast<std::uint16_t>(~folded & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

}  // namespace vp::net
