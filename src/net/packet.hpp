// Wire-format IPv4 + ICMP echo packets.
//
// The probe pipeline works on real packet bytes end-to-end, like the
// original Verfploeter: the prober serializes an ICMP Echo Request inside an
// IPv4 header, the simulated Internet delivers the raw bytes, hosts parse
// them and emit Echo Replies, and per-site collectors parse the replies.
// Every field crossing the "network" passes through serialize/parse with
// checksums validated, so the parsing code is tested under the same
// adversarial conditions a real deployment sees (truncation, corruption,
// duplicate and unsolicited replies).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "util/clock.hpp"

namespace vp::net {

/// IPv4 protocol numbers we care about.
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kUdp = 17,
};

/// A 20-byte IPv4 header (no options), RFC 791.
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t ttl = 64;
  IpProtocol protocol = IpProtocol::kIcmp;
  Ipv4Address source;
  Ipv4Address destination;
  std::uint16_t identification = 0;
  std::uint16_t total_length = kSize;

  /// Appends the serialized header (with correct checksum) to `out`.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parses and checksum-validates a header from the front of `data`.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);
};

/// ICMP message types used by the prober.
enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestinationUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

/// Verfploeter's probe payload. The original tool embeds enough state in
/// the echo payload to (a) associate replies with a measurement round and
/// (b) detect hosts replying from a different address than probed (§4,
/// "data cleaning"). We mirror that: a magic tag, the measurement id, the
/// transmit timestamp, and the original target address.
struct ProbePayload {
  static constexpr std::uint32_t kMagic = 0x56504c54;  // "VPLT"
  static constexpr std::size_t kSize = 20;

  std::uint32_t measurement_id = 0;
  std::int64_t tx_time_usec = 0;
  Ipv4Address original_target;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<ProbePayload> parse(std::span<const std::uint8_t> data);
};

/// An ICMP echo request/reply: 8-byte header + payload, RFC 792.
struct IcmpEcho {
  static constexpr std::size_t kHeaderSize = 8;

  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;

  /// Appends the serialized message (with correct checksum) to `out`.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parses and checksum-validates an ICMP echo from `data`.
  static std::optional<IcmpEcho> parse(std::span<const std::uint8_t> data);
};

/// A fully assembled probe packet (IPv4 + ICMP echo) as raw bytes.
struct PacketBytes {
  std::vector<std::uint8_t> data;
};

/// Builds the raw bytes of an ICMP Echo Request probe.
PacketBytes build_echo_request(Ipv4Address source, Ipv4Address destination,
                               std::uint16_t identifier, std::uint16_t sequence,
                               const ProbePayload& payload);

/// Builds an Echo Reply for a parsed request, echoing the payload verbatim
/// (as RFC 792 requires), optionally from a different source address.
PacketBytes build_echo_reply(const Ipv4Header& request_ip,
                             const IcmpEcho& request_icmp,
                             Ipv4Address reply_source);

// ---- allocation-free variants (the probe hot path) -----------------------
//
// The sharded engine builds and parses millions of packets per round;
// the *_into / *_view forms below produce byte-identical wire images and
// identical accept/reject decisions while reusing caller-owned buffers,
// so a steady-state round touches the allocator zero times per probe.

/// An ICMP echo whose payload is a view into the containing packet.
struct IcmpEchoView {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::span<const std::uint8_t> payload;
};

/// IcmpEcho::parse without the payload copy; identical validation.
std::optional<IcmpEchoView> parse_icmp_echo_view(
    std::span<const std::uint8_t> data);

/// build_echo_request into a reused buffer (cleared first). Byte-identical
/// to build_echo_request().
void build_echo_request_into(std::vector<std::uint8_t>& out,
                             Ipv4Address source, Ipv4Address destination,
                             std::uint16_t identifier, std::uint16_t sequence,
                             const ProbePayload& payload);

/// build_echo_reply into a reused buffer (cleared first), from the parsed
/// request's fields and payload bytes. Byte-identical to build_echo_reply().
void build_echo_reply_into(std::vector<std::uint8_t>& out,
                           const Ipv4Header& request_ip,
                           const IcmpEchoView& request_icmp,
                           Ipv4Address reply_source);

/// A parsed probe reply as seen by a collector.
struct ParsedReply {
  Ipv4Header ip;
  IcmpEcho icmp;
  ProbePayload probe;
};

/// parse_reply without materializing the payload vector; identical
/// validation, so malformed counts match the allocating path exactly.
struct ParsedReplyView {
  Ipv4Header ip;
  IcmpEchoView icmp;
  ProbePayload probe;
};

/// Parses and validates a full reply packet; nullopt if any layer is
/// malformed, the checksum fails, or the payload lacks the probe magic.
std::optional<ParsedReply> parse_reply(std::span<const std::uint8_t> data);

/// View-returning twin of parse_reply: same decisions, zero allocations.
/// The view borrows `data` and must not outlive it.
std::optional<ParsedReplyView> parse_reply_view(
    std::span<const std::uint8_t> data);

}  // namespace vp::net
