#include "net/packet.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace vp::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint16_t>((std::uint16_t{d[at]} << 8) | d[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t at) {
  return (std::uint32_t{get_u16(d, at)} << 16) | get_u16(d, at + 2);
}

std::uint64_t get_u64(std::span<const std::uint8_t> d, std::size_t at) {
  return (std::uint64_t{get_u32(d, at)} << 32) | get_u32(d, at + 4);
}

}  // namespace

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0x00);  // DSCP/ECN
  put_u16(out, total_length);
  put_u16(out, identification);
  put_u16(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(protocol));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, source.value());
  put_u32(out, destination.value());
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>{out.data() + start, kSize});
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum);
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if (data[0] != 0x45) return std::nullopt;  // require v4, no options
  if (internet_checksum(data.first(kSize)) != 0) return std::nullopt;
  Ipv4Header h;
  h.total_length = get_u16(data, 2);
  h.identification = get_u16(data, 4);
  h.ttl = data[8];
  h.protocol = static_cast<IpProtocol>(data[9]);
  h.source = Ipv4Address{get_u32(data, 12)};
  h.destination = Ipv4Address{get_u32(data, 16)};
  if (h.total_length < kSize) return std::nullopt;
  return h;
}

void ProbePayload::serialize(std::vector<std::uint8_t>& out) const {
  put_u32(out, kMagic);
  put_u32(out, measurement_id);
  put_u64(out, static_cast<std::uint64_t>(tx_time_usec));
  put_u32(out, original_target.value());
}

std::optional<ProbePayload> ProbePayload::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if (get_u32(data, 0) != kMagic) return std::nullopt;
  ProbePayload p;
  p.measurement_id = get_u32(data, 4);
  p.tx_time_usec = static_cast<std::int64_t>(get_u64(data, 8));
  p.original_target = Ipv4Address{get_u32(data, 16)};
  return p;
}

void IcmpEcho::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // code
  put_u16(out, 0);   // checksum placeholder
  put_u16(out, identifier);
  put_u16(out, sequence);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = internet_checksum(std::span<const std::uint8_t>{
      out.data() + start, out.size() - start});
  out[start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(sum);
}

std::optional<IcmpEcho> IcmpEcho::parse(std::span<const std::uint8_t> data) {
  const auto view = parse_icmp_echo_view(data);
  if (!view) return std::nullopt;
  IcmpEcho m;
  m.type = view->type;
  m.identifier = view->identifier;
  m.sequence = view->sequence;
  m.payload.assign(view->payload.begin(), view->payload.end());
  return m;
}

std::optional<IcmpEchoView> parse_icmp_echo_view(
    std::span<const std::uint8_t> data) {
  if (data.size() < IcmpEcho::kHeaderSize) return std::nullopt;
  if (internet_checksum(data) != 0) return std::nullopt;
  IcmpEchoView m;
  m.type = static_cast<IcmpType>(data[0]);
  if (m.type != IcmpType::kEchoRequest && m.type != IcmpType::kEchoReply)
    return std::nullopt;
  if (data[1] != 0) return std::nullopt;  // echo code must be 0
  m.identifier = get_u16(data, 4);
  m.sequence = get_u16(data, 6);
  m.payload = data.subspan(IcmpEcho::kHeaderSize);
  return m;
}

namespace {

/// Shared tail of the builders: ICMP echo header + payload bytes appended
/// to `out` with the checksum fixed up — byte-identical to
/// IcmpEcho::serialize without needing an owning payload vector.
void append_icmp_echo(std::vector<std::uint8_t>& out, IcmpType type,
                      std::uint16_t identifier, std::uint16_t sequence,
                      std::span<const std::uint8_t> payload) {
  const std::size_t start = out.size();
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // code
  put_u16(out, 0);   // checksum placeholder
  put_u16(out, identifier);
  put_u16(out, sequence);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = internet_checksum(std::span<const std::uint8_t>{
      out.data() + start, out.size() - start});
  out[start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(sum);
}

}  // namespace

void build_echo_request_into(std::vector<std::uint8_t>& out,
                             Ipv4Address source, Ipv4Address destination,
                             std::uint16_t identifier, std::uint16_t sequence,
                             const ProbePayload& payload) {
  out.clear();
  Ipv4Header ip;
  ip.protocol = IpProtocol::kIcmp;
  ip.source = source;
  ip.destination = destination;
  ip.identification = sequence;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + IcmpEcho::kHeaderSize + ProbePayload::kSize);
  out.reserve(ip.total_length);
  ip.serialize(out);
  const std::size_t icmp_start = out.size();
  out.push_back(static_cast<std::uint8_t>(IcmpType::kEchoRequest));
  out.push_back(0);  // code
  put_u16(out, 0);   // checksum placeholder
  put_u16(out, identifier);
  put_u16(out, sequence);
  payload.serialize(out);
  const std::uint16_t sum = internet_checksum(std::span<const std::uint8_t>{
      out.data() + icmp_start, out.size() - icmp_start});
  out[icmp_start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[icmp_start + 3] = static_cast<std::uint8_t>(sum);
}

void build_echo_reply_into(std::vector<std::uint8_t>& out,
                           const Ipv4Header& request_ip,
                           const IcmpEchoView& request_icmp,
                           Ipv4Address reply_source) {
  out.clear();
  Ipv4Header ip;
  ip.protocol = IpProtocol::kIcmp;
  ip.source = reply_source;
  ip.destination = request_ip.source;
  ip.identification = request_icmp.sequence;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + IcmpEcho::kHeaderSize + request_icmp.payload.size());
  out.reserve(ip.total_length);
  ip.serialize(out);
  append_icmp_echo(out, IcmpType::kEchoReply, request_icmp.identifier,
                   request_icmp.sequence, request_icmp.payload);
}

PacketBytes build_echo_request(Ipv4Address source, Ipv4Address destination,
                               std::uint16_t identifier, std::uint16_t sequence,
                               const ProbePayload& payload) {
  PacketBytes pkt;
  build_echo_request_into(pkt.data, source, destination, identifier, sequence,
                          payload);
  return pkt;
}

PacketBytes build_echo_reply(const Ipv4Header& request_ip,
                             const IcmpEcho& request_icmp,
                             Ipv4Address reply_source) {
  PacketBytes pkt;
  build_echo_reply_into(
      pkt.data, request_ip,
      IcmpEchoView{request_icmp.type, request_icmp.identifier,
                   request_icmp.sequence, request_icmp.payload},
      reply_source);
  return pkt;
}

std::optional<ParsedReply> parse_reply(std::span<const std::uint8_t> data) {
  const auto view = parse_reply_view(data);
  if (!view) return std::nullopt;
  IcmpEcho icmp;
  icmp.type = view->icmp.type;
  icmp.identifier = view->icmp.identifier;
  icmp.sequence = view->icmp.sequence;
  icmp.payload.assign(view->icmp.payload.begin(), view->icmp.payload.end());
  return ParsedReply{view->ip, std::move(icmp), view->probe};
}

std::optional<ParsedReplyView> parse_reply_view(
    std::span<const std::uint8_t> data) {
  const auto ip = Ipv4Header::parse(data);
  if (!ip || ip->protocol != IpProtocol::kIcmp) return std::nullopt;
  if (data.size() < ip->total_length) return std::nullopt;
  const auto icmp = parse_icmp_echo_view(
      data.subspan(Ipv4Header::kSize, ip->total_length - Ipv4Header::kSize));
  if (!icmp || icmp->type != IcmpType::kEchoReply) return std::nullopt;
  const auto probe = ProbePayload::parse(icmp->payload);
  if (!probe) return std::nullopt;
  return ParsedReplyView{*ip, *icmp, *probe};
}

}  // namespace vp::net
