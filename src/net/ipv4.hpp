// IPv4 address and CIDR prefix value types.
//
// Verfploeter's unit of measurement is the /24 block (the smallest
// prefix routable in BGP, paper §3.1), so Block24 gets a first-class
// strong type used as a key throughout the catchment pipeline.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vp::net {

/// An IPv4 address stored host-order for arithmetic; (de)serialization to
/// network order lives in the packet layer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (address + length), normalized so that host bits are zero.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Address base, std::uint8_t length)
      : base_(Ipv4Address{length == 0 ? 0 : (base.value() & mask(length))}),
        length_(length) {}

  constexpr Ipv4Address base() const { return base_; }
  constexpr std::uint8_t length() const { return length_; }

  /// Number of addresses covered: 2^(32-length).
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Number of /24 blocks covered (0 for prefixes longer than /24).
  constexpr std::uint64_t block24_count() const {
    return length_ <= 24 ? (std::uint64_t{1} << (24 - length_)) : 0;
  }

  constexpr bool contains(Ipv4Address addr) const {
    return length_ == 0 || (addr.value() & mask(length_)) == base_.value();
  }

  constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

  static constexpr std::uint32_t mask(std::uint8_t length) {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

 private:
  Ipv4Address base_{};
  std::uint8_t length_ = 0;
};

/// A /24 block identified by its 24-bit index (address >> 8). The hitlist,
/// catchment maps, and load tables are all keyed by Block24.
class Block24 {
 public:
  constexpr Block24() = default;
  explicit constexpr Block24(std::uint32_t index) : index_(index & 0xffffff) {}
  static constexpr Block24 containing(Ipv4Address addr) {
    return Block24{addr.value() >> 8};
  }

  constexpr std::uint32_t index() const { return index_; }
  constexpr Ipv4Address base_address() const {
    return Ipv4Address{index_ << 8};
  }
  /// The block as a /24 prefix.
  constexpr Prefix prefix() const { return Prefix{base_address(), 24}; }
  /// Address at a host offset within the block (offset in [0,255]).
  constexpr Ipv4Address address(std::uint8_t host) const {
    return Ipv4Address{(index_ << 8) | host};
  }

  std::string to_string() const { return prefix().to_string(); }

  constexpr auto operator<=>(const Block24&) const = default;

 private:
  std::uint32_t index_ = 0;
};

}  // namespace vp::net

template <>
struct std::hash<vp::net::Ipv4Address> {
  std::size_t operator()(const vp::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<vp::net::Block24> {
  std::size_t operator()(const vp::net::Block24& b) const noexcept {
    return std::hash<std::uint32_t>{}(b.index());
  }
};

template <>
struct std::hash<vp::net::Prefix> {
  std::size_t operator()(const vp::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.base().value()} << 8) | p.length());
  }
};
