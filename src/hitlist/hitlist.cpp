#include "hitlist/hitlist.hpp"

#include <algorithm>
#include <optional>

#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp::hitlist {

namespace {
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Entry for one block, or nullopt when the block is missing from the
/// hitlist. A pure function of (config, block), which is what makes the
/// parallel build order-independent.
std::optional<Entry> make_entry(const topology::BlockInfo& info,
                                const sim::ResponsivenessModel& responsiveness,
                                const HitlistConfig& config) {
  const std::uint64_t h = util::hash_combine(
      util::hash_combine(config.seed, 0xb10c), info.block.index());
  if (to_unit(h) < config.missing_block_rate) return std::nullopt;
  std::uint8_t host = responsiveness.responsive_host(info.block);
  const std::uint64_t h2 = util::hash_combine(h, 0x57a1e);
  if (to_unit(h2) < config.stale_entry_rate) {
    // Stale entry: the census-era host is gone; point somewhere else.
    host = static_cast<std::uint8_t>(1 + (host + 1 + h2 % 248) % 250);
  }
  return Entry{info.block, info.block.address(host)};
}
}  // namespace

Hitlist Hitlist::build(const topology::Topology& topo,
                       const sim::ResponsivenessModel& responsiveness,
                       const HitlistConfig& config, unsigned threads) {
  Hitlist out;
  const std::span<const topology::BlockInfo> blocks = topo.blocks();
  const unsigned n = util::resolve_threads(threads);
  if (n <= 1 || blocks.size() < 4096) {
    out.entries_.reserve(blocks.size());
    for (const topology::BlockInfo& info : blocks) {
      if (const auto entry = make_entry(info, responsiveness, config))
        out.entries_.push_back(*entry);
    }
    return out;
  }
  // Parallel build: each worker fills a private vector over a contiguous
  // block range; splicing the parts in range order reproduces the
  // sequential result exactly (per-block decisions are stateless hashes,
  // and the responsiveness model is documented const + pure).
  std::vector<std::vector<Entry>> parts(n);
  util::run_shards(n, [&](unsigned shard) {
    const std::size_t lo = blocks.size() * shard / n;
    const std::size_t hi = blocks.size() * (shard + 1) / n;
    auto& part = parts[shard];
    part.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      if (const auto entry = make_entry(blocks[i], responsiveness, config))
        part.push_back(*entry);
    }
  });
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.entries_.reserve(total);
  for (auto& part : parts)
    out.entries_.insert(out.entries_.end(), part.begin(), part.end());
  return out;
}

std::uint32_t Hitlist::crc32() const {
  std::uint32_t crc = 0;
  for (const Entry& entry : entries_) {
    const std::uint32_t words[2] = {entry.block.index(),
                                    entry.target.value()};
    crc = util::crc32(words, sizeof(words), crc);
  }
  return crc;
}

std::vector<std::uint32_t> Hitlist::probe_order(
    std::uint64_t round_seed) const {
  std::vector<std::uint32_t> order;
  probe_order_into(round_seed, order);
  return order;
}

void Hitlist::probe_order_into(std::uint64_t round_seed,
                               std::vector<std::uint32_t>& out) const {
  out.resize(entries_.size());
  for (std::uint32_t i = 0; i < out.size(); ++i) out[i] = i;
  util::Rng rng{round_seed};
  for (std::size_t i = out.size(); i > 1; --i)
    std::swap(out[i - 1], out[rng.below(i)]);
}

std::vector<net::Ipv4Address> Hitlist::targets_for(
    const Entry& entry, int extra_targets_per_block,
    std::uint64_t seed) const {
  std::vector<net::Ipv4Address> scratch;
  const auto targets =
      targets_into(entry, extra_targets_per_block, seed, scratch);
  return {targets.begin(), targets.end()};
}

std::span<const net::Ipv4Address> Hitlist::targets_into(
    const Entry& entry, int extra_targets_per_block, std::uint64_t seed,
    std::vector<net::Ipv4Address>& scratch) const {
  if (extra_targets_per_block <= 0) return {&entry.target, 1};
  scratch.clear();
  scratch.push_back(entry.target);
  util::Rng rng{util::hash_combine(seed, entry.block.index())};
  for (int i = 0; i < extra_targets_per_block; ++i) {
    net::Ipv4Address candidate =
        entry.block.address(static_cast<std::uint8_t>(1 + rng.below(250)));
    if (std::find(scratch.begin(), scratch.end(), candidate) ==
        scratch.end()) {
      scratch.push_back(candidate);
    }
  }
  return scratch;
}

}  // namespace vp::hitlist
