#include "hitlist/hitlist.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace vp::hitlist {

namespace {
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

Hitlist Hitlist::build(const topology::Topology& topo,
                       const sim::ResponsivenessModel& responsiveness,
                       const HitlistConfig& config) {
  Hitlist out;
  out.entries_.reserve(topo.block_count());
  for (const topology::BlockInfo& info : topo.blocks()) {
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(config.seed, 0xb10c), info.block.index());
    if (to_unit(h) < config.missing_block_rate) continue;
    std::uint8_t host = responsiveness.responsive_host(info.block);
    const std::uint64_t h2 = util::hash_combine(h, 0x57a1e);
    if (to_unit(h2) < config.stale_entry_rate) {
      // Stale entry: the census-era host is gone; point somewhere else.
      host = static_cast<std::uint8_t>(
          1 + (host + 1 + h2 % 248) % 250);
    }
    out.entries_.push_back(Entry{info.block, info.block.address(host)});
  }
  return out;
}

std::vector<std::uint32_t> Hitlist::probe_order(
    std::uint64_t round_seed) const {
  std::vector<std::uint32_t> order(entries_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng{round_seed};
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  return order;
}

std::vector<net::Ipv4Address> Hitlist::targets_for(
    const Entry& entry, int extra_targets_per_block,
    std::uint64_t seed) const {
  std::vector<net::Ipv4Address> targets{entry.target};
  util::Rng rng{util::hash_combine(seed, entry.block.index())};
  for (int i = 0; i < extra_targets_per_block; ++i) {
    net::Ipv4Address candidate =
        entry.block.address(static_cast<std::uint8_t>(1 + rng.below(250)));
    if (std::find(targets.begin(), targets.end(), candidate) ==
        targets.end()) {
      targets.push_back(candidate);
    }
  }
  return targets;
}

}  // namespace vp::hitlist
