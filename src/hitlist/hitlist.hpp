// The ISI-style IPv4 hitlist (paper §3.1, [17]): one representative,
// ping-likely address per /24 block, probed in pseudorandom order.
//
// The hitlist is built from *historical* knowledge, so it is imperfect on
// purpose: for most blocks it names the address that actually answers, but
// for a fraction it points at a stale address (the host moved), making the
// block unmappable even though something in it is alive — one of the
// reasons the paper sees only ~55% response and proposes multi-target
// probing as future work (our retry ablation exercises exactly this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/responsiveness.hpp"
#include "topology/topology.hpp"

namespace vp::hitlist {

struct HitlistConfig {
  std::uint64_t seed = 23;
  /// Fraction of entries pointing at a stale (wrong) host address.
  double stale_entry_rate = 0.07;
  /// Fraction of allocated blocks missing from the hitlist entirely
  /// (never observed by the historical censuses that feed it).
  double missing_block_rate = 0.02;
};

/// One hitlist entry: the representative address to probe for a block.
struct Entry {
  net::Block24 block;
  net::Ipv4Address target;
};

class Hitlist {
 public:
  /// Builds the hitlist for every allocated block of the topology. The
  /// responsiveness model supplies the "true" live host per block; staleness
  /// and missing blocks are then layered on deterministically. Per-block
  /// decisions are stateless hashes, so the build parallelizes over block
  /// ranges (`threads` > 1) with output identical to the sequential build —
  /// at the paper's 6.4M blocks this is the difference between seconds and
  /// a blink.
  static Hitlist build(const topology::Topology& topo,
                       const sim::ResponsivenessModel& responsiveness,
                       const HitlistConfig& config = {},
                       unsigned threads = 1);

  std::span<const Entry> entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// CRC-32 over the (block, target) sequence — the cheap fingerprint the
  /// determinism and golden-stats suites compare.
  std::uint32_t crc32() const;

  /// A pseudorandom probe order over the entries (paper §3.1: requests are
  /// sent "in a pseudorandom order (following [25])" to spread load).
  /// Different rounds get different permutations via `round_seed`.
  std::vector<std::uint32_t> probe_order(std::uint64_t round_seed) const;

  /// probe_order into a reused buffer — identical permutation, no
  /// allocation once `out` has the capacity (the engine's cross-round
  /// arena keeps it; at 6.4M entries the order alone is 25 MB).
  void probe_order_into(std::uint64_t round_seed,
                        std::vector<std::uint32_t>& out) const;

  /// Probes `extra_targets_per_block` additional addresses per block (the
  /// Trinocular-style retry ablation, §3.1 "we could improve the response
  /// rate by probing multiple targets in each block").
  std::vector<net::Ipv4Address> targets_for(const Entry& entry,
                                            int extra_targets_per_block,
                                            std::uint64_t seed) const;

  /// targets_for into a reused buffer: same addresses in the same order,
  /// returned as a span over `scratch` (or directly over the entry's own
  /// target when no extras are requested — zero work on the paper's
  /// single-probe design).
  std::span<const net::Ipv4Address> targets_into(
      const Entry& entry, int extra_targets_per_block, std::uint64_t seed,
      std::vector<net::Ipv4Address>& scratch) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace vp::hitlist
