// Simulated time. The whole system runs on a virtual clock so that
// 24-hour measurement campaigns (96 rounds of 10-minute scans, §4.2)
// complete in milliseconds of wall time while preserving timestamps on
// packets, late-reply classification, and hourly load bins.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace vp::util {

/// Virtual time since the start of the experiment, in microseconds.
/// A strong type so simulated time can never be mixed with wall time.
struct SimTime {
  std::int64_t usec = 0;

  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime from_minutes(double m) {
    return from_seconds(m * 60.0);
  }
  static constexpr SimTime from_hours(double h) {
    return from_seconds(h * 3600.0);
  }

  constexpr double seconds() const { return static_cast<double>(usec) / 1e6; }
  constexpr double minutes() const { return seconds() / 60.0; }
  constexpr double hours() const { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimTime other) const {
    return SimTime{usec + other.usec};
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime{usec - other.usec};
  }
  constexpr SimTime& operator+=(SimTime other) {
    usec += other.usec;
    return *this;
  }
};

/// Renders "HH:MM:SS" for logs and table captions.
std::string format_hms(SimTime t);

/// Monotonic virtual clock owned by a simulation run.
class SimClock {
 public:
  SimTime now() const noexcept { return now_; }
  void advance(SimTime delta) noexcept { now_ += delta; }
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_{};
};

}  // namespace vp::util
