// Human-readable number formatting matching the paper's table style
// ("2.34G", "27.1k", "3.79M", "82.4%").
#pragma once

#include <cstdint>
#include <string>

namespace vp::util {

/// Formats a count with a metric suffix: 1234 -> "1.23k", 2.2e9 -> "2.20G".
/// Values below 1000 are printed as plain integers.
std::string si_count(double value);

/// Formats a fraction as a percentage with one decimal: 0.824 -> "82.4%".
std::string percent(double fraction);

/// Formats with a fixed number of decimals.
std::string fixed(double value, int decimals);

/// Formats an integer with thousands separators: 3786907 -> "3,786,907".
std::string with_commas(std::uint64_t value);

}  // namespace vp::util
