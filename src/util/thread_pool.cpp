#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace vp::util {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return std::min(requested, 256u);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock{mutex_};
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock lock{mutex_};
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      lock.lock();
      if (!first_error_) first_error_ = std::current_exception();
      lock.unlock();
    }
    lock.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
  }
}

void run_shards(unsigned shards, const std::function<void(unsigned)>& body) {
  if (shards <= 1) {
    body(0);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto guarded = [&](unsigned shard) {
    try {
      body(shard);
    } catch (...) {
      std::lock_guard lock{error_mutex};
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(shards - 1);
  for (unsigned s = 1; s < shards; ++s)
    threads.emplace_back(guarded, s);
  guarded(0);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  const unsigned shards = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, threads), std::max<std::size_t>(count, 1)));
  run_shards(shards, [&](unsigned shard) {
    const std::size_t begin = count * shard / shards;
    const std::size_t end = count * (shard + 1) / shards;
    if (begin < end) body(begin, end);
  });
}

}  // namespace vp::util
