// Minimal threading primitives for the parallel probe engine.
//
// Two layers:
//  * ThreadPool — a fixed set of workers draining a task queue; used when
//    many independent jobs of uneven size share one set of threads (the
//    campaign runner's concurrent rounds).
//  * parallel_for / run_shards — fork-join helpers that split an index
//    range into contiguous chunks and run them on short-lived threads;
//    used by the probe engine, whose shards are sized up front. Spawning
//    is a few tens of microseconds per thread, noise next to a round.
//
// Both rethrow the first exception a worker raised, after every worker
// has finished, so partial work never escapes silently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vp::util {

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// thread", anything else is taken literally (capped at 256 for sanity).
unsigned resolve_threads(unsigned requested) noexcept;

/// Fixed-size worker pool over a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one job. Jobs may not block on other jobs in the same pool
  /// (no nesting) — a worker waiting on the queue would deadlock.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any job raised since the last wait.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  unsigned busy_ = 0;
  bool stopping_ = false;
};

/// Runs body(shard) for shard in [0, shards) on `shards` threads (the
/// calling thread runs shard 0). Fork-join: returns once all shards are
/// done. `shards <= 1` runs inline with no thread spawned.
void run_shards(unsigned shards, const std::function<void(unsigned)>& body);

/// Splits [0, count) into `threads` contiguous chunks and runs
/// body(begin, end) for each chunk concurrently. Chunk boundaries are a
/// pure function of (count, threads), so work assignment is deterministic.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace vp::util
