#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>

namespace vp::util {

namespace {

/// Slice-by-8 lookup tables (table[0] is the classic byte-at-a-time
/// table; table[k] advances a byte seen k positions earlier). Eight
/// bytes per iteration keeps CRC well under the per-round fsync cost —
/// the journal checksums ~0.4 MB per round, twice (frame + resume).
const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t k = 1; k < 8; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
    return t;
  }();
  return tables;
}

/// write() the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path` so a completed rename survives
/// power loss. Best effort: some filesystems refuse O_RDONLY on dirs.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string{"."}
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = crc32_tables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (std::uint32_t{bytes[0]} |
                                    std::uint32_t{bytes[1]} << 8 |
                                    std::uint32_t{bytes[2]} << 16 |
                                    std::uint32_t{bytes[3]} << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][bytes[4]] ^ t[2][bytes[5]] ^ t[1][bytes[6]] ^
          t[0][bytes[7]];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ t[0][(crc ^ bytes[i]) & 0xFF];
  return crc ^ 0xFFFFFFFFu;
}

bool atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool written = write_all(fd, contents.data(), contents.size()) &&
                       ::fsync(fd) == 0;
  if (::close(fd) != 0 || !written ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

}  // namespace vp::util
