#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace vp::util {

std::string si_count(double value) {
  static constexpr std::array<const char*, 5> kSuffixes = {"", "k", "M", "G",
                                                           "T"};
  double magnitude = std::abs(value);
  std::size_t tier = 0;
  while (magnitude >= 1000.0 && tier + 1 < kSuffixes.size()) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++tier;
  }
  char buf[32];
  if (tier == 0) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else if (magnitude >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f%s", value, kSuffixes[tier]);
  } else if (magnitude >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f%s", value, kSuffixes[tier]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", value, kSuffixes[tier]);
  }
  return buf;
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group)
      out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace vp::util
