// Small statistics helpers used by the analysis and benchmark layers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace vp::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics. `q` in [0, 100]. Copies the input; callers on hot paths
/// should sort once and use `percentile_sorted`.
double percentile(std::span<const double> sample, double q);

/// Percentile of an already-sorted sample.
double percentile_sorted(std::span<const double> sorted, double q);

/// Median shorthand.
inline double median(std::span<const double> sample) {
  return percentile(sample, 50.0);
}

/// The 5/25/50/75/95 percentile summary the paper plots in Figure 7.
struct PercentileSummary {
  double p5 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0;
};

PercentileSummary summarize(std::span<const double> sample);

}  // namespace vp::util
