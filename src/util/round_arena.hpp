// Cross-round scratch arena for the probe hot path.
//
// A measurement round needs a pile of working storage — per-shard SoA
// reply buffers, tile buckets, packet scratch, the merged cleaning
// array — whose *shapes* repeat exactly from round to round (same
// hitlist, same thread count). Allocating them per round is pure waste:
// at 6.4M blocks the allocator traffic and the cold pages it hands back
// are a measurable slice of the probe phase, and a continuous daemon
// pays it every round forever.
//
// RoundArena is a typed-slot holder: the first round creates each state
// object (a "grow"), later rounds get the same object back with its
// vectors' capacity intact (a "reuse"). It is deliberately dumb — no
// size classes, no freelists — because the engine's workspaces already
// know how to size themselves; the arena only keeps them alive between
// rounds and counts what happened, so a regression test can assert that
// round 2+ performs zero hot-path growth (vp_engine_arena_reuses_total /
// vp_engine_hot_allocs_total, see core/probe_engine.cpp).
//
// Threading: an arena may be used by AT MOST ONE round at a time. The
// engine's workers never touch the arena directly — the coordinator
// checks out the workspace once, workers get disjoint slices. Campaign
// keeps a pool (one arena per in-flight round); service::Daemon keeps a
// shared_ptr it drops if the watchdog abandons a round, so an abandoned
// worker can never race the next attempt's arena.
#pragma once

#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <vector>

namespace vp::util {

class RoundArena {
 public:
  RoundArena() = default;
  RoundArena(const RoundArena&) = delete;
  RoundArena& operator=(const RoundArena&) = delete;

  /// The arena's single instance of `T`, default-constructed on first
  /// use. Later calls return the same object (capacity intact) and count
  /// one reuse.
  template <typename T>
  T& state() {
    const std::type_index key{typeid(T)};
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_shared<T>()).first;
    } else {
      ++reuses_;
    }
    return *std::static_pointer_cast<T>(it->second);
  }

  /// Workspaces report every vector-capacity growth here; zero across a
  /// steady-state round is the arena's whole point.
  void note_grow(std::uint64_t n = 1) { grow_events_ += n; }

  /// Times a state<T>() call handed back an existing object.
  std::uint64_t reuses() const { return reuses_; }
  /// Cumulative capacity-growth events reported by the workspaces.
  std::uint64_t grow_events() const { return grow_events_; }

 private:
  std::unordered_map<std::type_index, std::shared_ptr<void>> slots_;
  std::uint64_t reuses_ = 0;
  std::uint64_t grow_events_ = 0;
};

/// reserve() that tells the arena when it actually grew. Hot loops size
/// their vectors through this so the steady-state allocation test can
/// count growths instead of hooking the global allocator.
template <typename T>
void arena_reserve(std::vector<T>& v, std::size_t n, RoundArena& arena) {
  if (v.capacity() < n) {
    v.reserve(n);
    arena.note_grow();
  }
}

}  // namespace vp::util
