// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the simulator (topology generation, host
// responsiveness, load models, route flaps) draws from an explicitly seeded
// generator so that a given seed reproduces a run bit-for-bit. We use
// xoshiro256++ (public domain, Blackman & Vigna) seeded through splitmix64,
// which is both faster and statistically stronger than std::mt19937_64 and
// has a trivially copyable, value-semantic state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace vp::util {

/// splitmix64 step; used to expand a single 64-bit seed into generator state
/// and as a cheap stateless hash for per-entity deterministic randomness.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value; handy to derive independent substreams
/// (e.g. hash(seed, block_index)) without carrying generator objects around.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combine two 64-bit values into one well-mixed value.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of mantissa entropy.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection sampling on the low word keeps the result exactly uniform.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Pareto-distributed sample with shape `alpha` and scale `x_min` —
  /// the heavy tail behind per-block DNS load and AS size distributions.
  double pareto(double x_min, double alpha) noexcept {
    return x_min / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Exponentially distributed sample with the given mean.
  double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Normal sample via Box–Muller (one value per call; simple over fast).
  double normal(double mean, double stddev) noexcept {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    const double mag =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * mag;
  }

  /// Poisson sample (Knuth for small means, normal approximation above 64 —
  /// adequate for binning query counts).
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0) return 0;
    if (mean > 64.0) {
      const double v = normal(mean, std::sqrt(mean));
      return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Derive an independent generator for a named substream.
  constexpr Rng fork(std::uint64_t stream) noexcept {
    return Rng{hash_combine((*this)(), stream)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vp::util
