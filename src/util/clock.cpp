#include "util/clock.hpp"

#include <cstdio>

namespace vp::util {

std::string format_hms(SimTime t) {
  const auto total_seconds = t.usec / 1'000'000;
  const auto h = total_seconds / 3600;
  const auto m = (total_seconds / 60) % 60;
  const auto s = total_seconds % 60;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s));
  return buf;
}

}  // namespace vp::util
