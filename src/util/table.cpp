#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace vp::util {

Table::Table(std::vector<std::string> header, std::vector<Align> alignments)
    : header_(std::move(header)), alignments_(std::move(alignments)) {
  alignments_.resize(header_.size(), Align::kRight);
  if (!alignments_.empty()) alignments_.front() = alignments_[0];
}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_separator() {
  rows_.emplace_back();  // sentinel
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_cell = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t pad = widths[c] - std::min(widths[c], text.size());
    if (alignments_[c] == Align::kRight) out.append(pad, ' ');
    out += text;
    if (alignments_[c] == Align::kLeft) out.append(pad, ' ');
    return out;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "  " : "") << render_cell(header_[c], c);
  os << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "  " : "") << std::string(widths[c], '-');
  os << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {  // separator sentinel
      for (std::size_t c = 0; c < header_.size(); ++c)
        os << (c ? "  " : "") << std::string(widths[c], '-');
      os << '\n';
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "  " : "") << render_cell(row[c], c);
    os << '\n';
  }
  return os.str();
}

}  // namespace vp::util
