// Plain-text table renderer for the benchmark harnesses. Produces the
// aligned rows the paper's tables report, e.g.:
//
//   method        measurement      % LAX
//   ------------  --------------  ------
//   Atlas         9,682 VPs        82.4%
//   Verfploeter   3.923M /24s      87.8%
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vp::util {

/// Column alignment for Table cells.
enum class Align { kLeft, kRight };

/// Minimal text table: add a header, then rows of cells; `to_string`
/// computes column widths and renders with a dashed separator.
class Table {
 public:
  explicit Table(std::vector<std::string> header,
                 std::vector<Align> alignments = {});

  Table& add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  Table& add_separator();

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace vp::util
