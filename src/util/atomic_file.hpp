// Crash-safe file replacement and CRC32 integrity checking.
//
// Every durable artifact the system writes (catchment CSVs, load
// exports, campaign journals) must survive a crash at any instruction:
// either the old file is intact or the new one is, never a torn mix.
// atomic_write_file() gives that guarantee the classic POSIX way —
// write to a sibling temp file, fsync it, rename() over the target,
// fsync the directory — and the journal layer (core/journal.hpp) frames
// its append-only records with the CRC32 implemented here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vp::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
/// Chain calls by passing the previous return value as `seed`.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// Atomically replaces `path` with `contents`: writes `path.tmp.<pid>`,
/// fsyncs it, rename()s it over `path`, then fsyncs the directory so the
/// rename itself is durable. A crash at any point leaves either the old
/// file or the new one, never a truncated or interleaved mix. Returns
/// false (and removes the temp file) on any I/O failure.
bool atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace vp::util
