#include "util/stats.hpp"

#include <cassert>

namespace vp::util {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

PercentileSummary summarize(std::span<const double> sample) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return PercentileSummary{
      .p5 = percentile_sorted(copy, 5.0),
      .p25 = percentile_sorted(copy, 25.0),
      .p50 = percentile_sorted(copy, 50.0),
      .p75 = percentile_sorted(copy, 75.0),
      .p95 = percentile_sorted(copy, 95.0),
  };
}

}  // namespace vp::util
