#include "dnsload/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace vp::dnsload {

namespace {
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

double country_volume_multiplier(LoadProfile profile,
                                 std::string_view country) {
  if (profile == LoadProfile::kRootLike) {
    // NAT-dense regions put many users behind few blocks (§5.4: India's
    // load exceeds its block share); ICMP-filtering regions still query.
    if (country == "IN") return 4.0;
    if (country == "KR") return 3.5;
    if (country == "CN") return 3.0;
    if (country == "ID" || country == "PH" || country == "VN") return 2.2;
    // Carrier-grade NAT is ubiquitous across South America too.
    if (country == "BR" || country == "AR") return 3.0;
    if (country == "JP") return 1.5;
    return 1.0;
  }
  // .nl-like: overwhelmingly Dutch/European clients, some US, thin tail.
  if (country == "NL") return 400.0;
  if (country == "DE" || country == "GB" || country == "FR" ||
      country == "BE" || country == "DK" || country == "SE" ||
      country == "PL" || country == "ES" || country == "IT" ||
      country == "CZ" || country == "AT" || country == "CH" ||
      country == "IE" || country == "PT" || country == "FI" ||
      country == "GR") {
    return 40.0;
  }
  if (country == "US" || country == "CA") return 6.0;
  return 1.0;
}

LoadModel::LoadModel(const topology::Topology& topo,
                     const sim::ResponsivenessModel& responsiveness,
                     const LoadConfig& config)
    : topo_(&topo), config_(config) {
  const std::uint64_t membership_seed =
      config.membership_seed != 0 ? config.membership_seed : config.seed;
  double raw_total = 0.0;
  for (const topology::BlockInfo& info : topo.blocks()) {
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(membership_seed, 0xd05), info.block.index());
    const bool responsive = responsiveness.ever_responds(info.block);
    const double p = config.querying_rate_responsive *
                     (responsive ? 1.0 : config.nonresponsive_factor);
    if (to_unit(h) >= p) continue;

    util::Rng rng{util::hash_combine(
        util::hash_combine(config.seed, h), 0x10ad)};
    double volume = rng.pareto(1.0, config.pareto_alpha);
    if (rng.chance(config.hotspot_rate))
      volume *= config.hotspot_multiplier;
    if (!responsive) volume *= config.nonresponsive_volume_multiplier;
    std::string_view country = "??";
    if (const auto geo = topo.geodb().lookup(info.block))
      country = std::string_view{geo->country, 2};
    // Stash per-block country multiplier lookup via geodb; blocks without
    // geolocation keep multiplier 1.
    volume *= country_volume_multiplier(config.profile, country);
    volume = std::min(volume, config.max_block_multiple);

    BlockLoad load;
    load.block = info.block;
    load.daily_queries = volume;
    load.good_fraction = static_cast<float>(
        std::clamp(rng.normal(config.good_reply_mean, 0.15), 0.02, 0.98));
    raw_total += volume;
    blocks_.push_back(load);
  }
  // Normalize so the mean per-block volume matches the configured target.
  const double target_total =
      config.mean_daily_per_block * static_cast<double>(blocks_.size());
  const double factor = raw_total > 0 ? target_total / raw_total : 0.0;
  index_.reserve(blocks_.size() * 2);
  for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].daily_queries *= factor;
    total_daily_ += blocks_[i].daily_queries;
    total_good_ += blocks_[i].daily_queries * blocks_[i].good_fraction;
    index_.emplace(blocks_[i].block, i);
  }
}

double LoadModel::daily_queries(net::Block24 block) const {
  const auto it = index_.find(block);
  return it == index_.end() ? 0.0 : blocks_[it->second].daily_queries;
}

double LoadModel::hourly_weight(double lon_degrees, int hour_utc) {
  // Peak around 15:00 local time, trough before dawn; weights sum to 1
  // over the day because the sinusoid integrates to zero.
  const double local_hour =
      std::fmod(hour_utc + lon_degrees / 15.0 + 48.0, 24.0);
  const double phase =
      2.0 * std::numbers::pi * (local_hour - 15.0) / 24.0;
  return (1.0 + 0.6 * std::cos(phase)) / 24.0;
}

}  // namespace vp::dnsload
