// Per-block DNS query load model (paper §3.2, §5.4).
//
// Stands in for B-Root's DITL/RSSAC query logs (datasets LB-4-12,
// LB-5-15) and the .nl operator logs (LN-4-12). Reproduced effects:
//
//  * only a minority of /24 blocks send DNS to a root at all (B-Root saw
//    1.39M blocks; Verfploeter mapped 3.79M);
//  * querying blocks are strongly biased toward ping-responsive networks
//    (resolvers are servers), yet a stubborn residue is not mappable —
//    concentrated where whole networks filter ICMP (Korea/Japan/Asia,
//    Figure 4a);
//  * per-block volume is heavy-tailed with resolver hotspots ("load
//    seems to concentrate traffic in fewer hotspots", §5.4) and higher
//    per-block load in NAT-dense regions (India, §5.4);
//  * volume follows a diurnal curve in each block's local time;
//  * queries split into good replies vs all replies (§3.2), with the
//    root's famously junk-heavy mix;
//  * the .nl-like profile concentrates load in Europe (Figure 4b).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/responsiveness.hpp"
#include "topology/topology.hpp"

namespace vp::dnsload {

enum class LoadProfile {
  kRootLike,  // global, tracks Internet users (B-Root)
  kNlLike,    // Europe/Netherlands-concentrated ccTLD (.nl)
};

struct LoadConfig {
  std::uint64_t seed = 31;
  /// Seed for *which* blocks query. Defaults to `seed`; give two models
  /// the same membership_seed but different seeds to represent the same
  /// client population measured on two dates (volumes drift, the set of
  /// resolvers mostly does not).
  std::uint64_t membership_seed = 0;  // 0 = use `seed`
  LoadProfile profile = LoadProfile::kRootLike;
  /// Probability that a ping-responsive block runs a resolver that
  /// queries this service.
  double querying_rate_responsive = 0.40;
  /// Multiplier on that probability for ping-unresponsive blocks.
  double nonresponsive_factor = 0.08;
  /// Volume multiplier for querying blocks that are ping-unresponsive:
  /// ICMP-filtering networks are often large NATted ISPs whose resolvers
  /// serve many users, which is why the paper's unmappable 12.9% of
  /// blocks carry 17.6% of queries (Table 5).
  double nonresponsive_volume_multiplier = 3.5;
  /// Pareto shape of per-block daily volume (heavy tail).
  double pareto_alpha = 1.2;
  /// Fraction of querying blocks that are major-resolver hotspots, and
  /// their volume multiplier.
  double hotspot_rate = 0.004;
  double hotspot_multiplier = 60.0;
  /// Cap on a single block's volume, as a multiple of the mean block.
  /// Stops the pareto x hotspot x regional product from minting a block
  /// that alone carries percents of the service's traffic.
  double max_block_multiple = 400.0;
  /// Average daily queries per querying block after normalization
  /// (B-Root 2017: ~2.2G/day over ~1.39M blocks ~ 1580 q/day/block).
  double mean_daily_per_block = 1580.0;
  /// Mean fraction of queries that yield "good" replies (the root sees
  /// mostly junk names; §3.2 separates good replies from all replies).
  double good_reply_mean = 0.45;
};

/// Load record for one querying block.
struct BlockLoad {
  net::Block24 block;
  double daily_queries = 0.0;
  float good_fraction = 0.5f;
};

class LoadModel {
 public:
  LoadModel(const topology::Topology& topo,
            const sim::ResponsivenessModel& responsiveness,
            const LoadConfig& config);

  const LoadConfig& config() const { return config_; }

  /// Every querying block with its daily volume, descending by block id.
  std::span<const BlockLoad> blocks() const { return blocks_; }

  double total_daily_queries() const { return total_daily_; }
  double total_daily_good_replies() const { return total_good_; }

  /// Daily queries for one block (0 if it does not query).
  double daily_queries(net::Block24 block) const;

  /// Diurnal weight of `hour_utc` for a block at longitude `lon`;
  /// the 24 weights sum to 1.
  static double hourly_weight(double lon_degrees, int hour_utc);

 private:
  const topology::Topology* topo_;
  LoadConfig config_;
  std::vector<BlockLoad> blocks_;
  std::unordered_map<net::Block24, std::uint32_t> index_;
  double total_daily_ = 0.0;
  double total_good_ = 0.0;
};

/// Country-level query-volume multiplier for a profile. Exposed for tests.
double country_volume_multiplier(LoadProfile profile,
                                 std::string_view country);

}  // namespace vp::dnsload
