#include "geo/geodb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vp::geo {

void GeoDatabase::add(net::Block24 block, const GeoRecord& record) {
  const std::uint32_t b = block.index();
  if (records_.empty()) {
    first_ = b;
    records_.resize(1);
    present_.resize(1, 0);
  } else if (b < first_) {
    records_.insert(records_.begin(), first_ - b, GeoRecord{});
    present_.insert(present_.begin(), first_ - b, 0);
    first_ = b;
  } else if (b - first_ >= records_.size()) {
    records_.resize(b - first_ + 1);
    present_.resize(b - first_ + 1, 0);
  }
  const std::uint32_t slot = b - first_;
  if (!present_[slot]) ++count_;
  present_[slot] = 1;
  records_[slot] = record;
}

std::optional<GeoRecord> GeoDatabase::lookup(net::Block24 block) const {
  const std::uint32_t off = block.index() - first_;  // wraps below first_
  if (off >= records_.size() || !present_[off]) return std::nullopt;
  return records_[off];
}

void GeoDatabase::prepare_span(net::Block24 lo, net::Block24 hi) {
  // Bulk build only makes sense on an empty database; keep any existing
  // records by widening instead of clobbering.
  const std::uint32_t lo_i = lo.index();
  const std::uint32_t hi_i = hi.index();
  if (records_.empty()) {
    first_ = lo_i;
    records_.resize(hi_i - lo_i + 1);
    present_.resize(hi_i - lo_i + 1, 0);
    return;
  }
  if (lo_i < first_) {
    records_.insert(records_.begin(), first_ - lo_i, GeoRecord{});
    present_.insert(present_.begin(), first_ - lo_i, 0);
    first_ = lo_i;
  }
  if (hi_i - first_ >= records_.size()) {
    records_.resize(hi_i - first_ + 1);
    present_.resize(hi_i - first_ + 1, 0);
  }
}

void GeoDatabase::set(net::Block24 block, const GeoRecord& record) {
  const std::uint32_t slot = block.index() - first_;
  records_[slot] = record;
  present_[slot] = 1;
}

void GeoDatabase::recount() {
  std::size_t n = 0;
  for (const std::uint8_t p : present_) n += p;
  count_ = n;
}

GeoBin GeoBin::of(LatLon loc) {
  const double lon = std::clamp(loc.lon, -180.0, 179.999);
  const double lat = std::clamp(loc.lat, -90.0, 89.999);
  return GeoBin{static_cast<std::int16_t>((lon + 180.0) / 2.0),
                static_cast<std::int16_t>((lat + 90.0) / 2.0)};
}

LatLon GeoBin::center() const {
  return LatLon{static_cast<double>(y) * 2.0 - 90.0 + 1.0,
                static_cast<double>(x) * 2.0 - 180.0 + 1.0};
}

void GeoBinner::add(LatLon loc, std::size_t category, double weight) {
  const GeoBin bin = GeoBin::of(loc);
  const BinKey key{static_cast<std::int32_t>(bin.x) * 90 + bin.y};
  auto& weights = bins_[key];
  if (weights.empty()) weights.resize(category_count_, 0.0);
  if (category < category_count_) weights[category] += weight;
}

std::vector<GeoBinner::BinRow> GeoBinner::rows() const {
  std::vector<BinRow> out;
  out.reserve(bins_.size());
  for (const auto& [key, weights] : bins_) {
    BinRow row;
    row.bin = GeoBin{static_cast<std::int16_t>(key.packed / 90),
                     static_cast<std::int16_t>(key.packed % 90)};
    row.category_weights = weights;
    for (double w : weights) row.total += w;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const BinRow& a, const BinRow& b) { return a.total > b.total; });
  return out;
}

std::vector<std::pair<Continent, std::vector<double>>> GeoBinner::by_continent()
    const {
  // Continent of a bin = continent of the nearest population center.
  const auto centers = world_centers();
  std::vector<std::pair<Continent, std::vector<double>>> totals;
  for (int c = 0; c < 6; ++c) {
    totals.emplace_back(static_cast<Continent>(c),
                        std::vector<double>(category_count_, 0.0));
  }
  for (const auto& row : rows()) {
    const LatLon loc = row.bin.center();
    double best = std::numeric_limits<double>::max();
    Continent continent = Continent::kEurope;
    for (const auto& center : centers) {
      const double d = distance_km(loc, center.location);
      if (d < best) {
        best = d;
        continent = center.continent;
      }
    }
    auto& bucket = totals[static_cast<std::size_t>(continent)].second;
    for (std::size_t i = 0; i < category_count_; ++i)
      bucket[i] += row.category_weights[i];
  }
  return totals;
}

}  // namespace vp::geo
