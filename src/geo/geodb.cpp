#include "geo/geodb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vp::geo {

void GeoDatabase::add(net::Block24 block, const GeoRecord& record) {
  records_[block] = record;
}

std::optional<GeoRecord> GeoDatabase::lookup(net::Block24 block) const {
  const auto it = records_.find(block);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

GeoBin GeoBin::of(LatLon loc) {
  const double lon = std::clamp(loc.lon, -180.0, 179.999);
  const double lat = std::clamp(loc.lat, -90.0, 89.999);
  return GeoBin{static_cast<std::int16_t>((lon + 180.0) / 2.0),
                static_cast<std::int16_t>((lat + 90.0) / 2.0)};
}

LatLon GeoBin::center() const {
  return LatLon{static_cast<double>(y) * 2.0 - 90.0 + 1.0,
                static_cast<double>(x) * 2.0 - 180.0 + 1.0};
}

void GeoBinner::add(LatLon loc, std::size_t category, double weight) {
  const GeoBin bin = GeoBin::of(loc);
  const BinKey key{static_cast<std::int32_t>(bin.x) * 90 + bin.y};
  auto& weights = bins_[key];
  if (weights.empty()) weights.resize(category_count_, 0.0);
  if (category < category_count_) weights[category] += weight;
}

std::vector<GeoBinner::BinRow> GeoBinner::rows() const {
  std::vector<BinRow> out;
  out.reserve(bins_.size());
  for (const auto& [key, weights] : bins_) {
    BinRow row;
    row.bin = GeoBin{static_cast<std::int16_t>(key.packed / 90),
                     static_cast<std::int16_t>(key.packed % 90)};
    row.category_weights = weights;
    for (double w : weights) row.total += w;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const BinRow& a, const BinRow& b) { return a.total > b.total; });
  return out;
}

std::vector<std::pair<Continent, std::vector<double>>> GeoBinner::by_continent()
    const {
  // Continent of a bin = continent of the nearest population center.
  const auto centers = world_centers();
  std::vector<std::pair<Continent, std::vector<double>>> totals;
  for (int c = 0; c < 6; ++c) {
    totals.emplace_back(static_cast<Continent>(c),
                        std::vector<double>(category_count_, 0.0));
  }
  for (const auto& row : rows()) {
    const LatLon loc = row.bin.center();
    double best = std::numeric_limits<double>::max();
    Continent continent = Continent::kEurope;
    for (const auto& center : centers) {
      const double d = distance_km(loc, center.location);
      if (d < best) {
        best = d;
        continent = center.continent;
      }
    }
    auto& bucket = totals[static_cast<std::size_t>(continent)].second;
    for (std::size_t i = 0; i < category_count_; ++i)
      bucket[i] += row.category_weights[i];
  }
  return totals;
}

}  // namespace vp::geo
