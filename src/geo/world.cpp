#include "geo/world.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <numeric>

namespace vp::geo {

std::string_view to_string(Continent c) {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kEurope: return "Europe";
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kOceania: return "Oceania";
  }
  return "?";
}

double distance_km(LatLon a, LatLon b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDeg = std::numbers::pi / 180.0;
  const double dlat = (b.lat - a.lat) * kDeg;
  const double dlon = (b.lon - a.lon) * kDeg;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(a.lat * kDeg) * std::cos(b.lat * kDeg) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

namespace {

using enum Continent;

// block_weight ~ regional share of active /24 blocks; atlas_weight encodes
// the well-documented Europe skew of the Atlas platform (paper [8]): Europe
// holds roughly half of all probes, China almost none.
constexpr std::array kCenters = {
    // --- North America ---
    PopulationCenter{"New York", "US", kNorthAmerica, {40.7, -74.0}, 5.2, 3.2, 3.0},
    PopulationCenter{"Los Angeles", "US", kNorthAmerica, {34.1, -118.2}, 4.0, 2.2, 3.0},
    PopulationCenter{"Chicago", "US", kNorthAmerica, {41.9, -87.6}, 3.0, 1.6, 2.5},
    PopulationCenter{"Dallas", "US", kNorthAmerica, {32.8, -96.8}, 2.6, 1.2, 2.5},
    PopulationCenter{"Seattle", "US", kNorthAmerica, {47.6, -122.3}, 1.8, 1.0, 2.0},
    PopulationCenter{"Miami", "US", kNorthAmerica, {25.8, -80.2}, 1.7, 0.8, 2.0},
    PopulationCenter{"Washington", "US", kNorthAmerica, {38.9, -77.0}, 2.4, 1.4, 2.0},
    PopulationCenter{"Toronto", "CA", kNorthAmerica, {43.7, -79.4}, 1.6, 1.2, 2.0},
    PopulationCenter{"Vancouver", "CA", kNorthAmerica, {49.3, -123.1}, 0.8, 0.6, 2.0},
    PopulationCenter{"Mexico City", "MX", kNorthAmerica, {19.4, -99.1}, 1.8, 0.3, 2.5},
    // --- South America ---
    PopulationCenter{"Sao Paulo", "BR", kSouthAmerica, {-23.6, -46.6}, 2.6, 0.5, 2.5},
    PopulationCenter{"Rio de Janeiro", "BR", kSouthAmerica, {-22.9, -43.2}, 1.3, 0.2, 2.0},
    PopulationCenter{"Buenos Aires", "AR", kSouthAmerica, {-34.6, -58.4}, 1.4, 0.3, 2.0},
    PopulationCenter{"Santiago", "CL", kSouthAmerica, {-33.5, -70.7}, 0.8, 0.2, 1.5},
    PopulationCenter{"Lima", "PE", kSouthAmerica, {-12.0, -77.0}, 0.7, 0.1, 1.5},
    PopulationCenter{"Bogota", "CO", kSouthAmerica, {4.7, -74.1}, 0.8, 0.1, 1.5},
    // --- Europe (Atlas-dense) ---
    PopulationCenter{"London", "GB", kEurope, {51.5, -0.1}, 3.0, 8.0, 1.5},
    PopulationCenter{"Amsterdam", "NL", kEurope, {52.4, 4.9}, 1.6, 7.5, 1.0},
    PopulationCenter{"Frankfurt", "DE", kEurope, {50.1, 8.7}, 2.6, 8.5, 1.5},
    PopulationCenter{"Paris", "FR", kEurope, {48.9, 2.4}, 2.4, 6.0, 1.5},
    PopulationCenter{"Madrid", "ES", kEurope, {40.4, -3.7}, 1.5, 2.5, 1.5},
    PopulationCenter{"Milan", "IT", kEurope, {45.5, 9.2}, 1.6, 3.0, 1.5},
    PopulationCenter{"Stockholm", "SE", kEurope, {59.3, 18.1}, 0.9, 2.6, 1.5},
    PopulationCenter{"Copenhagen", "DK", kEurope, {55.7, 12.6}, 0.7, 2.2, 1.0},
    PopulationCenter{"Warsaw", "PL", kEurope, {52.2, 21.0}, 1.3, 2.0, 1.5},
    PopulationCenter{"Prague", "CZ", kEurope, {50.1, 14.4}, 0.7, 2.4, 1.0},
    PopulationCenter{"Vienna", "AT", kEurope, {48.2, 16.4}, 0.6, 2.0, 1.0},
    PopulationCenter{"Zurich", "CH", kEurope, {47.4, 8.5}, 0.6, 2.2, 1.0},
    PopulationCenter{"Moscow", "RU", kEurope, {55.8, 37.6}, 2.2, 1.8, 2.5},
    PopulationCenter{"Kyiv", "UA", kEurope, {50.5, 30.5}, 0.9, 1.2, 2.0},
    PopulationCenter{"Istanbul", "TR", kEurope, {41.0, 28.9}, 1.4, 0.8, 2.0},
    PopulationCenter{"Athens", "GR", kEurope, {38.0, 23.7}, 0.5, 1.0, 1.5},
    PopulationCenter{"Lisbon", "PT", kEurope, {38.7, -9.1}, 0.5, 1.0, 1.5},
    PopulationCenter{"Dublin", "IE", kEurope, {53.3, -6.3}, 0.4, 1.2, 1.0},
    PopulationCenter{"Helsinki", "FI", kEurope, {60.2, 24.9}, 0.5, 1.6, 1.5},
    PopulationCenter{"Enschede", "NL", kEurope, {52.2, 6.9}, 0.3, 1.5, 0.8},
    // --- Africa ---
    PopulationCenter{"Johannesburg", "ZA", kAfrica, {-26.2, 28.0}, 0.9, 0.5, 2.0},
    PopulationCenter{"Cairo", "EG", kAfrica, {30.0, 31.2}, 1.0, 0.2, 2.0},
    PopulationCenter{"Lagos", "NG", kAfrica, {6.5, 3.4}, 0.8, 0.1, 2.0},
    PopulationCenter{"Nairobi", "KE", kAfrica, {-1.3, 36.8}, 0.5, 0.2, 1.5},
    PopulationCenter{"Casablanca", "MA", kAfrica, {33.6, -7.6}, 0.4, 0.1, 1.5},
    // --- Asia ---
    PopulationCenter{"Beijing", "CN", kAsia, {39.9, 116.4}, 4.5, 0.05, 3.0},
    PopulationCenter{"Shanghai", "CN", kAsia, {31.2, 121.5}, 4.8, 0.05, 3.0},
    PopulationCenter{"Guangzhou", "CN", kAsia, {23.1, 113.3}, 4.2, 0.04, 3.0},
    PopulationCenter{"Chengdu", "CN", kAsia, {30.6, 104.1}, 2.6, 0.02, 3.0},
    PopulationCenter{"Tokyo", "JP", kAsia, {35.7, 139.7}, 3.4, 0.9, 2.0},
    PopulationCenter{"Osaka", "JP", kAsia, {34.7, 135.5}, 1.6, 0.4, 1.5},
    PopulationCenter{"Seoul", "KR", kAsia, {37.6, 127.0}, 2.8, 0.3, 1.5},
    PopulationCenter{"Mumbai", "IN", kAsia, {19.1, 72.9}, 2.4, 0.4, 2.5},
    PopulationCenter{"Delhi", "IN", kAsia, {28.6, 77.2}, 2.6, 0.3, 2.5},
    PopulationCenter{"Bangalore", "IN", kAsia, {13.0, 77.6}, 1.7, 0.3, 2.0},
    PopulationCenter{"Singapore", "SG", kAsia, {1.4, 103.8}, 1.2, 0.8, 1.0},
    PopulationCenter{"Hong Kong", "HK", kAsia, {22.3, 114.2}, 1.4, 0.6, 1.0},
    PopulationCenter{"Taipei", "TW", kAsia, {25.0, 121.6}, 1.2, 0.3, 1.5},
    PopulationCenter{"Bangkok", "TH", kAsia, {13.8, 100.5}, 1.3, 0.2, 2.0},
    PopulationCenter{"Jakarta", "ID", kAsia, {-6.2, 106.8}, 1.6, 0.2, 2.0},
    PopulationCenter{"Manila", "PH", kAsia, {14.6, 121.0}, 1.0, 0.1, 2.0},
    PopulationCenter{"Hanoi", "VN", kAsia, {21.0, 105.8}, 1.1, 0.1, 2.0},
    PopulationCenter{"Tehran", "IR", kAsia, {35.7, 51.4}, 1.0, 0.1, 2.0},
    PopulationCenter{"Dubai", "AE", kAsia, {25.2, 55.3}, 0.6, 0.3, 1.5},
    PopulationCenter{"Tel Aviv", "IL", kAsia, {32.1, 34.8}, 0.6, 0.6, 1.0},
    PopulationCenter{"Karachi", "PK", kAsia, {24.9, 67.0}, 0.9, 0.1, 2.0},
    // --- Oceania ---
    PopulationCenter{"Sydney", "AU", kOceania, {-33.9, 151.2}, 1.2, 0.9, 2.0},
    PopulationCenter{"Melbourne", "AU", kOceania, {-37.8, 145.0}, 0.9, 0.6, 2.0},
    PopulationCenter{"Auckland", "NZ", kOceania, {-36.8, 174.8}, 0.4, 0.4, 1.5},
};

}  // namespace

std::span<const PopulationCenter> world_centers() { return kCenters; }

double total_block_weight() {
  static const double total = std::accumulate(
      kCenters.begin(), kCenters.end(), 0.0,
      [](double acc, const PopulationCenter& c) { return acc + c.block_weight; });
  return total;
}

double total_atlas_weight() {
  static const double total = std::accumulate(
      kCenters.begin(), kCenters.end(), 0.0,
      [](double acc, const PopulationCenter& c) { return acc + c.atlas_weight; });
  return total;
}

}  // namespace vp::geo
