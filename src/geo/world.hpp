// A compact world model: population centers with Internet-usage weights.
//
// The paper's geographic results hinge on two distributions being very
// different: where Internet users (and thus ping-responsive /24 blocks)
// are, and where RIPE Atlas probes are (Europe-heavy, §5.4, [8]). This
// catalog encodes both: each center carries a `block_weight` (share of the
// world's /24 blocks homed there) and an `atlas_weight` (share of Atlas
// VPs), loosely derived from public regional Internet statistics. Absolute
// values are synthetic; only the relative shape matters for the
// reproduction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace vp::geo {

/// Continent of a population center; used for regional aggregation.
enum class Continent : std::uint8_t {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAfrica,
  kAsia,
  kOceania,
};

std::string_view to_string(Continent c);

/// Geographic coordinates in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometers (haversine).
double distance_km(LatLon a, LatLon b);

/// A population center: a metro-area-scale cluster where ASes and their
/// address blocks are homed.
struct PopulationCenter {
  std::string_view name;        // e.g. "Sao Paulo"
  std::string_view country;     // ISO-3166-ish alpha-2, e.g. "BR"
  Continent continent;
  LatLon location;
  double block_weight;   // relative share of the world's /24 blocks
  double atlas_weight;   // relative share of RIPE Atlas probes
  double scatter_deg;    // stddev of block scatter around the center
};

/// The full catalog (≈60 centers across every continent).
std::span<const PopulationCenter> world_centers();

/// Sum of block weights across the catalog (for normalization).
double total_block_weight();

/// Sum of Atlas weights across the catalog.
double total_atlas_weight();

}  // namespace vp::geo
