// Per-block geolocation database (the MaxMind-GeoLite2 stand-in, §4).
//
// The topology generator fills this database as it assigns /24 blocks to
// ASes; analysis code queries it to build the 2-degree-binned coverage maps
// (Figures 2-4) and the regional tables. A small fraction of blocks is
// deliberately left un-geolocatable, mirroring the 678 blocks the paper
// drops (Table 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"

namespace vp::geo {

/// Geolocation record for one /24 block.
struct GeoRecord {
  LatLon location;
  std::uint16_t center_id = 0;  // index into world_centers()
  char country[3] = {'?', '?', '\0'};
  Continent continent = Continent::kEurope;
};

/// Flat, direct-mapped store over the allocated /24 span. The allocated
/// block range is dense in practice (the generators hand out blocks from a
/// contiguous allocator), so a presence byte + record per span slot is far
/// smaller and faster than the hash map it replaces — and the slices are
/// disjoint per writer, which is what lets the scale generator fill the
/// database from parallel shard workers.
class GeoDatabase {
 public:
  /// Registers the location of a block. Blocks never registered are
  /// "un-geolocatable" — lookups return nullopt. Grows the span as needed.
  void add(net::Block24 block, const GeoRecord& record);

  std::optional<GeoRecord> lookup(net::Block24 block) const;

  std::size_t size() const { return count_; }

  // --- bulk build (scale generator) ---------------------------------------
  /// Pre-sizes the store to cover [lo, hi] inclusive. After this, set() may
  /// be called concurrently for distinct blocks inside the span.
  void prepare_span(net::Block24 lo, net::Block24 hi);

  /// Writes one record inside the prepared span. Thread-safe for distinct
  /// blocks (plain disjoint writes, no size bookkeeping). Call recount()
  /// once all writers are done.
  void set(net::Block24 block, const GeoRecord& record);

  /// Recomputes size() after a bulk fill via set().
  void recount();

  /// Approximate heap footprint.
  std::size_t memory_bytes() const {
    return records_.capacity() * sizeof(GeoRecord) + present_.capacity();
  }

  /// Visits every (block, record) pair in ascending block order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (present_[i])
        fn(net::Block24{first_ + static_cast<std::uint32_t>(i)}, records_[i]);
    }
  }

 private:
  std::uint32_t first_ = 0;
  std::vector<GeoRecord> records_;
  std::vector<std::uint8_t> present_;  // byte-wide: no racy bit RMW
  std::size_t count_ = 0;
};

/// A 2-degree geographic bin, the paper's map resolution ("two-degree
/// geographic bins", Figure 2 caption).
struct GeoBin {
  std::int16_t x = 0;  // floor((lon + 180) / 2), 0..179
  std::int16_t y = 0;  // floor((lat + 90) / 2), 0..89

  static GeoBin of(LatLon loc);
  LatLon center() const;
  constexpr auto operator<=>(const GeoBin&) const = default;
};

/// Accumulates per-bin, per-category counts (category = anycast site id or
/// "unknown"); produces rows for the map benchmarks.
class GeoBinner {
 public:
  explicit GeoBinner(std::size_t category_count)
      : category_count_(category_count) {}

  void add(LatLon loc, std::size_t category, double weight = 1.0);

  struct BinRow {
    GeoBin bin;
    std::vector<double> category_weights;  // indexed by category
    double total = 0.0;
  };

  /// All non-empty bins, sorted by total weight descending.
  std::vector<BinRow> rows() const;

  /// Per-continent aggregation (continent inferred from bin center by
  /// nearest world center).
  std::vector<std::pair<Continent, std::vector<double>>> by_continent() const;

  std::size_t category_count() const { return category_count_; }

 private:
  struct BinKey {
    std::int32_t packed;
    bool operator==(const BinKey&) const = default;
  };
  struct BinKeyHash {
    std::size_t operator()(const BinKey& k) const noexcept {
      return std::hash<std::int32_t>{}(k.packed);
    }
  };

  std::size_t category_count_;
  std::unordered_map<BinKey, std::vector<double>, BinKeyHash> bins_;
};

}  // namespace vp::geo
