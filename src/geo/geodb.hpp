// Per-block geolocation database (the MaxMind-GeoLite2 stand-in, §4).
//
// The topology generator fills this database as it assigns /24 blocks to
// ASes; analysis code queries it to build the 2-degree-binned coverage maps
// (Figures 2-4) and the regional tables. A small fraction of blocks is
// deliberately left un-geolocatable, mirroring the 678 blocks the paper
// drops (Table 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"

namespace vp::geo {

/// Geolocation record for one /24 block.
struct GeoRecord {
  LatLon location;
  std::uint16_t center_id = 0;  // index into world_centers()
  char country[3] = {'?', '?', '\0'};
  Continent continent = Continent::kEurope;
};

class GeoDatabase {
 public:
  /// Registers the location of a block. Blocks never registered are
  /// "un-geolocatable" — lookups return nullopt.
  void add(net::Block24 block, const GeoRecord& record);

  std::optional<GeoRecord> lookup(net::Block24 block) const;

  std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<net::Block24, GeoRecord> records_;
};

/// A 2-degree geographic bin, the paper's map resolution ("two-degree
/// geographic bins", Figure 2 caption).
struct GeoBin {
  std::int16_t x = 0;  // floor((lon + 180) / 2), 0..179
  std::int16_t y = 0;  // floor((lat + 90) / 2), 0..89

  static GeoBin of(LatLon loc);
  LatLon center() const;
  constexpr auto operator<=>(const GeoBin&) const = default;
};

/// Accumulates per-bin, per-category counts (category = anycast site id or
/// "unknown"); produces rows for the map benchmarks.
class GeoBinner {
 public:
  explicit GeoBinner(std::size_t category_count)
      : category_count_(category_count) {}

  void add(LatLon loc, std::size_t category, double weight = 1.0);

  struct BinRow {
    GeoBin bin;
    std::vector<double> category_weights;  // indexed by category
    double total = 0.0;
  };

  /// All non-empty bins, sorted by total weight descending.
  std::vector<BinRow> rows() const;

  /// Per-continent aggregation (continent inferred from bin center by
  /// nearest world center).
  std::vector<std::pair<Continent, std::vector<double>>> by_continent() const;

  std::size_t category_count() const { return category_count_; }

 private:
  struct BinKey {
    std::int32_t packed;
    bool operator==(const BinKey&) const = default;
  };
  struct BinKeyHash {
    std::size_t operator()(const BinKey& k) const noexcept {
      return std::hash<std::int32_t>{}(k.packed);
    }
  };

  std::size_t category_count_;
  std::unordered_map<BinKey, std::vector<double>, BinKeyHash> bins_;
};

}  // namespace vp::geo
