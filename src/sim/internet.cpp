#include "sim/internet.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp::sim {

namespace {

// Dataplane counters. probe() is the hottest call in the system (once
// per probe attempt, from every worker thread), so these are striped
// Counters: a relaxed enabled-check plus a per-thread-stripe fetch_add,
// a few ns against probe()'s ~µs of parsing and hashing. Observe-only —
// probe() stays pure in its inputs and bit-identical with metrics off.
// The probes/lookups ratio also surfaces the cache-able of a future PR:
// every target in a block repeats the same (routes, block, round) ->
// site ground-truth lookup.
struct DataplaneMetrics {
  obs::Counter& probes;
  obs::Counter& malformed;
  obs::Counter& unresponsive;
  obs::Counter& site_lookups;
  obs::Counter& replies;

  static DataplaneMetrics& get() {
    auto& r = obs::metrics();
    static DataplaneMetrics m{r.counter("vp_sim_probes_total"),
                              r.counter("vp_sim_malformed_probes_total"),
                              r.counter("vp_sim_unresponsive_total"),
                              r.counter("vp_sim_site_lookups_total"),
                              r.counter("vp_sim_replies_total")};
    return m;
  }
};

}  // namespace

double InternetSim::rtt_ms(net::Block24 block, anycast::SiteId site,
                           const bgp::RoutingTable& routes,
                           std::uint64_t jitter_key) const {
  double propagation_ms = 40.0;  // fallback when either end lacks geo
  const auto geo = topo_->geodb().lookup(block);
  if (geo && site >= 0) {
    const auto& site_loc =
        routes.deployment().sites[static_cast<std::size_t>(site)].location;
    // ~1ms per 100km round trip (speed of light in fiber, path stretch).
    propagation_ms = geo::distance_km(geo->location, site_loc) / 100.0 * 2.0;
  }
  util::Rng rng{util::hash_combine(jitter_key, block.index())};
  return propagation_ms + rng.exponential(config_.mean_queue_delay_ms);
}

std::vector<Delivery> InternetSim::probe(
    const bgp::RoutingTable& routes,
    std::span<const std::uint8_t> packet_bytes, util::SimTime tx_time,
    std::uint32_t round) const {
  std::vector<DeliveryView> views;
  std::vector<std::uint8_t> reply;
  probe_into(routes, packet_bytes, tx_time, round, views, reply);
  std::vector<Delivery> out;
  out.reserve(views.size());
  for (const DeliveryView& v : views) {
    Delivery d;
    d.site = v.site;
    d.arrival = v.arrival;
    d.packet.data = reply;  // copy; deliveries own their bytes
    out.push_back(std::move(d));
  }
  return out;
}

void InternetSim::flush(DataplaneTally& tally) {
  DataplaneMetrics& dm = DataplaneMetrics::get();
  if (tally.probes) dm.probes.add(tally.probes);
  if (tally.malformed) dm.malformed.add(tally.malformed);
  if (tally.unresponsive) dm.unresponsive.add(tally.unresponsive);
  if (tally.site_lookups) dm.site_lookups.add(tally.site_lookups);
  if (tally.replies) dm.replies.add(tally.replies);
  tally = {};
}

void InternetSim::probe_into(const bgp::RoutingTable& routes,
                             std::span<const std::uint8_t> packet_bytes,
                             util::SimTime tx_time, std::uint32_t round,
                             std::vector<DeliveryView>& out,
                             std::vector<std::uint8_t>& reply_scratch,
                             DataplaneTally* tally,
                             ResolveTally* resolve_tally) const {
  out.clear();
  reply_scratch.clear();
  DataplaneTally local;
  DataplaneTally& t = tally != nullptr ? *tally : local;
  // With no caller-owned tally, flush the local one on every exit path so
  // the striped counters advance exactly as before.
  struct Flusher {
    DataplaneTally* local;
    ~Flusher() {
      if (local != nullptr) InternetSim::flush(*local);
    }
  } flusher{tally != nullptr ? nullptr : &local};
  ++t.probes;

  // Parse at the "host": a real host only answers well-formed echoes.
  const auto ip = net::Ipv4Header::parse(packet_bytes);
  if (!ip || ip->protocol != net::IpProtocol::kIcmp) {
    ++t.malformed;
    return;
  }
  if (packet_bytes.size() < ip->total_length) {
    ++t.malformed;
    return;
  }
  const auto icmp = net::parse_icmp_echo_view(packet_bytes.subspan(
      net::Ipv4Header::kSize, ip->total_length - net::Ipv4Header::kSize));
  if (!icmp || icmp->type != net::IcmpType::kEchoRequest) {
    ++t.malformed;
    return;
  }

  const net::Block24 block = net::Block24::containing(ip->destination);
  const ReplyBehavior behavior = responsiveness_.behavior(block, round);
  if (!behavior.responds) {
    ++t.unresponsive;
    return;
  }

  // Hosts answer only if probed at an address that is actually alive
  // (the hitlist's representative may be stale; multi-target probing can
  // still find a live secondary host).
  if (!responsiveness_.is_live_host(
          block, static_cast<std::uint8_t>(ip->destination.value() & 0xff))) {
    ++t.unresponsive;
    return;
  }

  // Source address of the reply: usually the probed host; aliased hosts
  // (multi-homed boxes, middleboxes) reply from a neighboring address.
  net::Ipv4Address reply_source = ip->destination;
  if (behavior.alias) {
    util::Rng rng{util::hash_combine(
        util::hash_combine(responsiveness_.config().seed, 0xa71a5),
        block.index())};
    // Mostly another host in the same /24; occasionally a different block
    // entirely (these get cleaned as "replies from addresses we did not
    // probe", §4).
    if (rng.chance(0.8)) {
      reply_source = block.address(static_cast<std::uint8_t>(
          1 + rng.below(250)));
    } else {
      reply_source =
          net::Ipv4Address{ip->destination.value() + 256};  // next /24
    }
    if (reply_source == ip->destination)
      reply_source = block.address(251);
  }

  // Catchment: the site whose collector will receive this reply.
  ++t.site_lookups;
  const anycast::SiteId site =
      flips_.site_in_round(routes, block, round, resolve_tally);
  if (site < 0) return;

  net::build_echo_reply_into(reply_scratch, *ip, *icmp, reply_source);

  const std::uint64_t jitter_key = util::hash_combine(
      util::hash_combine(config_.responsiveness.seed, round), 0x9d7);
  for (std::uint8_t copy = 0; copy < behavior.copies; ++copy) {
    double delay_ms =
        rtt_ms(block, site, routes,
               util::hash_combine(jitter_key, copy));
    if (behavior.late && copy == 0)
      delay_ms += config_.late_extra_minutes * 60.0 * 1000.0;
    out.push_back(DeliveryView{
        site, tx_time + util::SimTime::from_seconds(delay_ms / 1000.0)});
  }
  t.replies += out.size();
}

}  // namespace vp::sim
