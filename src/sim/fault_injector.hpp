// Fault injection: a deterministic, seed-hashed fault plan layered over
// the simulated Internet (sim/internet.hpp).
//
// The paper leaves loss-robustness as future work (§3.1: "retrying
// immediately ... is future work") and §6.3 shows catchments must stay
// stable under churn; "Anycast Agility" (Rizvi et al.) stresses the same
// machinery with site overload and route withdrawal mid-measurement. The
// FaultInjector makes that misbehavior reproducible: probe loss on the
// forward path, reply loss on the return path, per-site ICMP
// rate-limiting, site outages, mid-round BGP withdrawal/re-route churn,
// and delay spikes that reorder replies or push them past the late
// cutoff.
//
// Thread-safety / determinism contract (same as the rest of sim/): every
// method is const and PURE — each decision is a stateless hash of
// (plan seed, entity, round, attempt, copy), with all generator state
// local to the call. The sharded probe engine (core/probe_engine.hpp)
// relies on this to keep rounds bit-identical for any worker count even
// with faults and retries active. Do not add mutable state here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/deployment.hpp"
#include "net/ipv4.hpp"
#include "sim/internet.hpp"
#include "util/clock.hpp"

namespace vp::obs {
class MetricsRegistry;
}

namespace vp::sim {

/// One fault plan: which misbehaviors are active and how hard they hit.
/// All rates are probabilities per decision; an all-zero plan (the
/// default) injects nothing and the engine skips the fault path.
struct FaultPlan {
  std::uint64_t seed = 0xfa017;
  /// Forward-path loss: the probe never reaches the target host.
  double probe_loss_rate = 0.0;
  /// Return-path loss: a reply vanishes between host and site.
  double reply_loss_rate = 0.0;
  /// Chance a site's collector is dark during any given outage slice
  /// (models maintenance windows and overload blackouts mid-round).
  double site_outage_rate = 0.0;
  /// Length of one outage decision slice of simulated time.
  double outage_slice_minutes = 5.0;
  /// Chance a site rate-limits inbound ICMP for a whole round.
  double rate_limit_site_rate = 0.0;
  /// Drop probability per reply at a rate-limiting site.
  double rate_limit_drop_rate = 0.0;
  /// Per-(block, round) chance of a mid-round BGP event at the block's
  /// AS: from a deterministic onset within the probing window, replies
  /// are withdrawn (lost) or diverted to a different site.
  double churn_rate = 0.0;
  /// Of churn events, the fraction that withdraw (vs divert).
  double churn_withdraw_fraction = 0.5;
  /// Chance a reply is hit by an extra queuing/suppression delay — the
  /// source of reordering and of extra late-cutoff drops.
  double delay_spike_rate = 0.0;
  /// Mean of the (exponential) delay spike.
  double delay_spike_mean_ms = 30'000.0;

  bool enabled() const {
    return probe_loss_rate > 0 || reply_loss_rate > 0 ||
           site_outage_rate > 0 || rate_limit_site_rate > 0 ||
           churn_rate > 0 || delay_spike_rate > 0;
  }

  /// A bounded random plan derived from one seed — what the property
  /// harness and `vpctl --fault-seed` use. Rates stay in ranges where a
  /// round still maps a meaningful catchment.
  static FaultPlan from_seed(std::uint64_t seed);
};

/// Accounting for one round's injected faults and retry behavior. The
/// engine sums per-shard instances, so every counter is order-invariant
/// and deterministic for any thread count. When the fault/retry path is
/// inactive, all fields stay zero.
struct FaultStats {
  std::uint64_t probes_lost = 0;       // forward-path drops
  std::uint64_t replies_generated = 0; // sim deliveries before reply faults
  std::uint64_t replies_lost = 0;      // return-path drops
  std::uint64_t rate_limited = 0;      // dropped by a rate-limiting site
  std::uint64_t outage_drops = 0;      // site dark at arrival
  std::uint64_t withdrawn = 0;         // churn: route gone, reply lost
  std::uint64_t diverted = 0;          // churn: delivered to another site
  std::uint64_t delayed = 0;           // delay spike injected (not dropped)
  std::uint64_t retries = 0;           // retry probes emitted by the engine
  std::uint64_t recovered = 0;         // probes first answered via a retry

  /// Replies dropped by injected faults (forward-path losses excluded:
  /// those probes never generated a reply).
  std::uint64_t replies_dropped() const {
    return replies_lost + rate_limited + outage_drops + withdrawn;
  }

  FaultStats& operator+=(const FaultStats& other) {
    probes_lost += other.probes_lost;
    replies_generated += other.replies_generated;
    replies_lost += other.replies_lost;
    rate_limited += other.rate_limited;
    outage_drops += other.outage_drops;
    withdrawn += other.withdrawn;
    diverted += other.diverted;
    delayed += other.delayed;
    retries += other.retries;
    recovered += other.recovered;
    return *this;
  }
};

/// One block's mid-round BGP event (if any) for one round.
struct ChurnEvent {
  bool active = false;
  bool withdraw = false;        // else: divert to another site
  double onset_fraction = 0.0;  // into the probing window
  std::uint64_t divert_key = 0; // picks the alternate site at apply time
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan = {}) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Forward-path loss for one probe attempt at `target`.
  bool drops_probe(net::Ipv4Address target, std::uint32_t round,
                   std::uint32_t attempt) const;

  /// Batched drops_probe over a whole tile of first-attempt targets:
  /// `out` is resized to targets.size() with out[i] nonzero iff
  /// drops_probe(targets[i], round, attempt) — the seed/salt/round
  /// combine is hoisted out of the loop, the draws are bit-identical.
  void drops_probe_batch(std::span<const net::Ipv4Address> targets,
                         std::uint32_t round, std::uint32_t attempt,
                         std::vector<std::uint8_t>& out) const;

  /// The block's mid-round BGP event for this round, if any.
  ChurnEvent churn(net::Block24 block, std::uint32_t round) const;

  /// Whether a site rate-limits ICMP for the whole round.
  bool site_rate_limited(anycast::SiteId site, std::uint32_t round) const;

  /// Whether a site is dark (outage) at a point in simulated time.
  bool site_dark_at(anycast::SiteId site, util::SimTime when) const;

  /// Applies every reply-path fault to the deliveries of one probe
  /// attempt, in place: churn (withdraw/divert, from its onset within
  /// [window_start, window_start + window_length)), return-path loss,
  /// rate-limiting, outages, and delay spikes. Counts each reply in at
  /// most one drop bucket so accounting is exact:
  ///   surviving = generated - replies_dropped().
  /// Pure given its arguments; `stats` is the caller's (per-shard)
  /// accumulator.
  void apply_reply_faults(std::vector<Delivery>& deliveries,
                          net::Block24 block, std::uint32_t round,
                          std::uint32_t attempt, util::SimTime tx,
                          std::size_t site_count,
                          util::SimTime window_start,
                          util::SimTime window_length,
                          FaultStats& stats) const;

  /// Same fault realization over the non-owning DeliveryView form the
  /// hot path uses (both overloads share one implementation, so the
  /// Bernoulli streams — keyed by delivery index — are identical).
  void apply_reply_faults(std::vector<DeliveryView>& deliveries,
                          net::Block24 block, std::uint32_t round,
                          std::uint32_t attempt, util::SimTime tx,
                          std::size_t site_count,
                          util::SimTime window_start,
                          util::SimTime window_length,
                          FaultStats& stats) const;

 private:
  FaultPlan plan_;
};

/// Flushes one round's fault accounting into per-fault-kind registry
/// counters (vp_fault_<kind>_total), so dashboards can tell forward-path
/// loss from rate-limiting from outage blackouts while a campaign runs.
/// Observe-only: never read back by any probe decision.
void record_fault_metrics(const FaultStats& stats,
                          obs::MetricsRegistry& registry);

}  // namespace vp::sim
