// Catchment flip model: which blocks change anycast site between rounds.
//
// The paper (§6.3, Table 7) finds anycast is stable for ~99.9% of VPs per
// round, but a small population — concentrated in a handful of ASes with
// load-balanced multipath, half of it in Chinanet — flips persistently.
// We model this on top of the routing table's *tied* candidate sets: a
// block can only flip between sites that BGP actually holds as equal-best
// at its AS. Within load-balanced ASes a small "flappy" population picks a
// tied route per round (per-flow load balancing); every other multi-route
// AS contributes a rare background flip (transient routing changes).
//
// Every decision is a stateless hash of (seed, block, round): const
// methods are pure and safe under concurrent probe workers
// (core/probe_engine.hpp).
#pragma once

#include <cstdint>

#include "bgp/routing.hpp"
#include "net/ipv4.hpp"

namespace vp::sim {

/// Batched resolution counters. The probe engine hands one of these to
/// site_in_round for a whole tile of blocks and flushes the totals to the
/// striped metric counters once per tile, instead of touching the obs
/// layer on every probe. hits = O(1) precomputed-resolver path; misses =
/// full hash-map walk (cache disabled or flip-signature mismatch).
struct ResolveTally {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct FlipConfig {
  std::uint64_t seed = 11;
  /// Fraction of blocks within a load-balanced, multi-site AS that are
  /// persistently flappy (re-rolled each round).
  double flappy_rate_load_balanced = 0.010;
  /// Same, for ASes that are multi-site-tied but not flagged
  /// load-balanced.
  double flappy_rate_background = 0.0008;
  /// Per-(block, round) probability of a transient routing event sending
  /// the block to a different site for just that round — the long "Other"
  /// tail of Table 7: thousands of ASes with one or two flips each.
  double transient_rate = 0.0003;
};

class FlipModel {
 public:
  explicit FlipModel(const FlipConfig& config = {}) : config_(config) {}

  const FlipConfig& config() const { return config_; }

  /// Ground-truth site of a block in a specific round: the hot-potato
  /// choice, unless the block is flappy (per-round pick among the AS's
  /// tied candidates) or hit by a transient routing event (any other
  /// visible site, for one round only). When `tally` is non-null the
  /// hit/miss count is accumulated there instead of hitting the striped
  /// metric counters — callers flush per tile (the site answer itself is
  /// identical either way).
  anycast::SiteId site_in_round(const bgp::RoutingTable& routes,
                                net::Block24 block, std::uint32_t round,
                                ResolveTally* tally = nullptr) const;

  /// Flushes a ResolveTally accumulated via site_in_round to the metric
  /// counters, leaving `tally` zeroed.
  static void flush(ResolveTally& tally);

  /// Whether the block belongs to the flappy population under `routes`.
  bool is_flappy(const bgp::RoutingTable& routes, net::Block24 block) const;

  /// Hash of the flip configuration that shapes the flappy bitset (seed
  /// and the two flappy rates; transient_rate stays out because transient
  /// events are rolled per probe, never baked into the resolver).
  std::uint64_t flap_signature() const;

  /// The routing table's catchment resolver for this flip configuration,
  /// building it on first use; nullptr when catchment precomputation is
  /// disabled or the table's resolver was built under a different flip
  /// signature (callers fall back to the uncached path — answers are
  /// identical either way).
  const bgp::CatchmentResolver* resolver_for(
      const bgp::RoutingTable& routes) const;

  /// Eagerly builds the resolver (probe engines call this once per round
  /// setup so the first probe doesn't pay the build).
  void warm(const bgp::RoutingTable& routes) const { (void)resolver_for(routes); }

 private:
  FlipConfig config_;
};

}  // namespace vp::sim
