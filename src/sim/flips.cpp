#include "sim/flips.hpp"

#include <bit>
#include <memory>

#include "bgp/catchment_resolver.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp::sim {

namespace {
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Per-probe resolution counters. Hits mean the O(1) precomputed path
// served the probe; misses mean the full hash-map walk did (cache
// disabled or flip-signature mismatch). Together these replace the old
// vp_bgp_block_site_lookups_total: hits + misses is the same denominator.
struct ResolveMetrics {
  obs::Counter& hits;
  obs::Counter& misses;

  static ResolveMetrics& get() {
    auto& r = obs::metrics();
    static ResolveMetrics m{
        r.counter("vp_bgp_catchment_cache_hits_total"),
        r.counter("vp_bgp_catchment_cache_misses_total")};
    return m;
  }
};
}  // namespace

bool FlipModel::is_flappy(const bgp::RoutingTable& routes,
                          net::Block24 block) const {
  const topology::BlockInfo* info = routes.topology().block_info(block);
  if (info == nullptr) return false;
  const bgp::AsRoutingState& state = routes.state(info->as_id);
  if (!state.reachable() || !state.multi_site()) return false;
  const topology::AsNode& node = routes.topology().as_at(info->as_id);
  const double rate = (node.load_balanced
                           ? config_.flappy_rate_load_balanced
                           : config_.flappy_rate_background) *
                      node.flap_scale;
  return to_unit(util::hash_combine(
             util::hash_combine(config_.seed, 0xf1a9), block.index())) <
         rate;
}

std::uint64_t FlipModel::flap_signature() const {
  std::uint64_t h = util::hash_combine(util::mix64(0xf11b), config_.seed);
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(config_.flappy_rate_load_balanced));
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(config_.flappy_rate_background));
  return h;
}

const bgp::CatchmentResolver* FlipModel::resolver_for(
    const bgp::RoutingTable& routes) const {
  if (!bgp::catchment_cache_enabled()) return nullptr;
  const std::uint64_t signature = flap_signature();
  return routes.catchment_resolver(signature, [&] {
    const auto flappy = [&](const net::Block24& b) {
      return is_flappy(routes, b);
    };
    // Delta-derived tables invalidate incrementally: if the parent table
    // already built a resolver under the same flip signature, only the
    // blocks of ASes whose route actually changed are recomputed.
    if (const auto parent_table = routes.parent()) {
      if (const bgp::CatchmentResolver* parent =
              parent_table->catchment_resolver();
          parent != nullptr && parent->flip_signature() == signature) {
        return std::make_unique<const bgp::CatchmentResolver>(
            routes, signature, flappy, *parent, routes.changed_block_ranges());
      }
    }
    return std::make_unique<const bgp::CatchmentResolver>(routes, signature,
                                                          flappy);
  });
}

void FlipModel::flush(ResolveTally& tally) {
  if (tally.hits == 0 && tally.misses == 0) return;
  ResolveMetrics& rm = ResolveMetrics::get();
  if (tally.hits) rm.hits.add(tally.hits);
  if (tally.misses) rm.misses.add(tally.misses);
  tally = {};
}

anycast::SiteId FlipModel::site_in_round(const bgp::RoutingTable& routes,
                                         net::Block24 block,
                                         std::uint32_t round,
                                         ResolveTally* tally) const {
  anycast::SiteId site;

  if (const bgp::CatchmentResolver* resolver = resolver_for(routes)) {
    // Fast path: the stable majority is one bounds check + one load; only
    // flappy blocks (the §6.3 minority) still reach into the hash map for
    // their AS's tied candidate set.
    if (tally != nullptr)
      ++tally->hits;
    else
      ResolveMetrics::get().hits.add();
    if (resolver->flappy(block)) {
      const topology::BlockInfo* info = routes.topology().block_info(block);
      const bgp::AsRoutingState& state = routes.state(info->as_id);
      const std::uint64_t h = util::hash_combine(
          util::hash_combine(config_.seed, block.index()), round);
      site = state.candidates[h % state.candidates.size()].site;
    } else {
      site = resolver->stable_site(block);
    }

    const std::uint64_t th = util::hash_combine(
        util::hash_combine(config_.seed, 0x7a4e),
        util::hash_combine(block.index(), round));
    if (site >= 0 && to_unit(th) < config_.transient_rate)
      site = resolver->transient_site(site, util::mix64(th));
    return site;
  }

  // Uncached path — must enumerate identically to the resolver so cached
  // and uncached runs produce byte-identical CSVs.
  if (tally != nullptr)
    ++tally->misses;
  else
    ResolveMetrics::get().misses.add();
  const topology::BlockInfo* info = routes.topology().block_info(block);
  if (info == nullptr) return anycast::kUnknownSite;

  if (is_flappy(routes, block)) {
    const bgp::AsRoutingState& state = routes.state(info->as_id);
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(config_.seed, block.index()), round);
    site = state.candidates[h % state.candidates.size()].site;
  } else {
    // Includes stable per-block multipath splits (§6.2).
    site = routes.site_for_block(*info);
  }

  // Transient routing event: for one round, the block lands at some other
  // visible site of the deployment.
  const std::uint64_t th = util::hash_combine(
      util::hash_combine(config_.seed, 0x7a4e),
      util::hash_combine(block.index(), round));
  if (site >= 0 && to_unit(th) < config_.transient_rate) {
    const auto& sites = routes.deployment().sites;
    const auto visible = [&](std::size_t s) {
      return sites[s].enabled && !sites[s].hidden &&
             static_cast<anycast::SiteId>(s) != site;
    };
    std::size_t others = 0;
    for (std::size_t s = 0; s < sites.size(); ++s)
      if (visible(s)) ++others;
    if (others > 0) {
      std::size_t k = util::mix64(th) % others;
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (!visible(s)) continue;
        if (k-- == 0) {
          site = static_cast<anycast::SiteId>(s);
          break;
        }
      }
    }
  }
  return site;
}

}  // namespace vp::sim
