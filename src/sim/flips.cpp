#include "sim/flips.hpp"

#include <array>

#include "util/rng.hpp"

namespace vp::sim {

namespace {
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

bool FlipModel::is_flappy(const bgp::RoutingTable& routes,
                          net::Block24 block) const {
  const topology::BlockInfo* info = routes.topology().block_info(block);
  if (info == nullptr) return false;
  const bgp::AsRoutingState& state = routes.state(info->as_id);
  if (!state.reachable() || !state.multi_site()) return false;
  const topology::AsNode& node = routes.topology().as_at(info->as_id);
  const double rate = (node.load_balanced
                           ? config_.flappy_rate_load_balanced
                           : config_.flappy_rate_background) *
                      node.flap_scale;
  return to_unit(util::hash_combine(
             util::hash_combine(config_.seed, 0xf1a9), block.index())) <
         rate;
}

anycast::SiteId FlipModel::site_in_round(const bgp::RoutingTable& routes,
                                         net::Block24 block,
                                         std::uint32_t round) const {
  const topology::BlockInfo* info = routes.topology().block_info(block);
  if (info == nullptr) return anycast::kUnknownSite;

  anycast::SiteId site;
  if (is_flappy(routes, block)) {
    const bgp::AsRoutingState& state = routes.state(info->as_id);
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(config_.seed, block.index()), round);
    site = state.candidates[h % state.candidates.size()].site;
  } else {
    // Includes stable per-block multipath splits (§6.2).
    site = routes.site_for_block(block);
  }

  // Transient routing event: for one round, the block lands at some other
  // visible site of the deployment.
  const std::uint64_t th = util::hash_combine(
      util::hash_combine(config_.seed, 0x7a4e),
      util::hash_combine(block.index(), round));
  if (site >= 0 && to_unit(th) < config_.transient_rate) {
    const auto& sites = routes.deployment().sites;
    std::array<anycast::SiteId, 32> visible{};
    std::size_t visible_count = 0;
    for (std::size_t s = 0;
         s < sites.size() && visible_count < visible.size(); ++s) {
      if (sites[s].enabled && !sites[s].hidden &&
          static_cast<anycast::SiteId>(s) != site) {
        visible[visible_count++] = static_cast<anycast::SiteId>(s);
      }
    }
    if (visible_count > 0)
      site = visible[util::mix64(th) % visible_count];
  }
  return site;
}

}  // namespace vp::sim
