#include "sim/fault_injector.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp::sim {

namespace {

// Salts separating the injector's decision streams. Arbitrary but fixed:
// changing any of them changes every plan's realization.
constexpr std::uint64_t kProbeLossSalt = 0x10551;
constexpr std::uint64_t kReplyLossSalt = 0x10552;
constexpr std::uint64_t kRateLimitSiteSalt = 0x11317;
constexpr std::uint64_t kRateLimitDropSalt = 0x11318;
constexpr std::uint64_t kOutageSalt = 0x0a7a6e;
constexpr std::uint64_t kChurnSalt = 0xc4012;
constexpr std::uint64_t kDelaySalt = 0xde1a9;

/// One Bernoulli draw from a fresh, key-derived stream.
bool roll(std::uint64_t key, double p) {
  if (p <= 0.0) return false;
  util::Rng rng{key};
  return rng.chance(p);
}

}  // namespace

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  util::Rng rng{util::hash_combine(seed, 0xfa0172)};
  FaultPlan plan;
  plan.seed = seed;
  plan.probe_loss_rate = rng.uniform(0.0, 0.25);
  plan.reply_loss_rate = rng.uniform(0.0, 0.25);
  plan.site_outage_rate = rng.uniform(0.0, 0.15);
  plan.outage_slice_minutes = rng.uniform(1.0, 6.0);
  plan.rate_limit_site_rate = rng.uniform(0.0, 0.5);
  plan.rate_limit_drop_rate = rng.uniform(0.0, 0.6);
  plan.churn_rate = rng.uniform(0.0, 0.02);
  plan.churn_withdraw_fraction = rng.uniform();
  plan.delay_spike_rate = rng.uniform(0.0, 0.05);
  plan.delay_spike_mean_ms = rng.uniform(1'000.0, 120'000.0);
  return plan;
}

bool FaultInjector::drops_probe(net::Ipv4Address target, std::uint32_t round,
                                std::uint32_t attempt) const {
  const std::uint64_t key = util::hash_combine(
      util::hash_combine(plan_.seed, kProbeLossSalt),
      util::hash_combine(target.value(),
                         (std::uint64_t{round} << 32) | attempt));
  return roll(key, plan_.probe_loss_rate);
}

void FaultInjector::drops_probe_batch(
    std::span<const net::Ipv4Address> targets, std::uint32_t round,
    std::uint32_t attempt, std::vector<std::uint8_t>& out) const {
  out.resize(targets.size());
  if (plan_.probe_loss_rate <= 0.0) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  const std::uint64_t base =
      util::hash_combine(plan_.seed, kProbeLossSalt);
  const std::uint64_t ra = (std::uint64_t{round} << 32) | attempt;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint64_t key = util::hash_combine(
        base, util::hash_combine(targets[i].value(), ra));
    out[i] = roll(key, plan_.probe_loss_rate) ? 1 : 0;
  }
}

ChurnEvent FaultInjector::churn(net::Block24 block,
                                std::uint32_t round) const {
  ChurnEvent event;
  if (plan_.churn_rate <= 0.0) return event;
  util::Rng rng{util::hash_combine(
      util::hash_combine(plan_.seed, kChurnSalt),
      util::hash_combine(block.index(), round))};
  if (!rng.chance(plan_.churn_rate)) return event;
  event.active = true;
  event.withdraw = rng.chance(plan_.churn_withdraw_fraction);
  event.onset_fraction = rng.uniform();
  event.divert_key = rng();
  return event;
}

bool FaultInjector::site_rate_limited(anycast::SiteId site,
                                      std::uint32_t round) const {
  const std::uint64_t key = util::hash_combine(
      util::hash_combine(plan_.seed, kRateLimitSiteSalt),
      util::hash_combine(static_cast<std::uint64_t>(site), round));
  return roll(key, plan_.rate_limit_site_rate);
}

bool FaultInjector::site_dark_at(anycast::SiteId site,
                                 util::SimTime when) const {
  if (plan_.site_outage_rate <= 0.0) return false;
  const auto slice_usec = static_cast<std::int64_t>(
      plan_.outage_slice_minutes * 60.0 * 1e6);
  if (slice_usec <= 0) return false;
  const std::uint64_t slice =
      static_cast<std::uint64_t>(when.usec / slice_usec);
  const std::uint64_t key = util::hash_combine(
      util::hash_combine(plan_.seed, kOutageSalt),
      util::hash_combine(static_cast<std::uint64_t>(site), slice));
  return roll(key, plan_.site_outage_rate);
}

namespace {

/// Shared implementation for the owning (Delivery) and non-owning
/// (DeliveryView) overloads — both only read/write `site` and `arrival`,
/// and the Bernoulli streams are keyed by delivery index, so the fault
/// realization is identical regardless of the container form.
template <typename D>
void apply_reply_faults_impl(const FaultInjector& injector,
                             std::vector<D>& deliveries, net::Block24 block,
                             std::uint32_t round, std::uint32_t attempt,
                             util::SimTime tx, std::size_t site_count,
                             util::SimTime window_start,
                             util::SimTime window_length, FaultStats& stats) {
  if (deliveries.empty()) return;
  const FaultPlan& plan = injector.plan();
  stats.replies_generated += deliveries.size();

  // Route state is sampled at probe emission: a BGP event whose onset
  // precedes this attempt's tx affects every reply the attempt causes.
  const ChurnEvent event = injector.churn(block, round);
  const bool churned =
      event.active &&
      tx >= window_start +
                util::SimTime{static_cast<std::int64_t>(
                    event.onset_fraction *
                    static_cast<double>(window_length.usec))};

  const std::uint64_t reply_stream = util::hash_combine(
      util::hash_combine(plan.seed, util::hash_combine(block.index(), round)),
      attempt);

  std::size_t out = 0;
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    D d = deliveries[i];
    const std::uint64_t copy_key = util::hash_combine(reply_stream, i);
    if (churned) {
      if (event.withdraw || site_count < 2) {
        ++stats.withdrawn;
        continue;
      }
      // Divert to a deterministic *different* site.
      d.site = static_cast<anycast::SiteId>(
          (static_cast<std::uint64_t>(d.site) + 1 +
           event.divert_key % (site_count - 1)) %
          site_count);
      ++stats.diverted;
    }
    if (roll(util::hash_combine(copy_key, kReplyLossSalt),
             plan.reply_loss_rate)) {
      ++stats.replies_lost;
      continue;
    }
    if (injector.site_rate_limited(d.site, round) &&
        roll(util::hash_combine(copy_key, kRateLimitDropSalt),
             plan.rate_limit_drop_rate)) {
      ++stats.rate_limited;
      continue;
    }
    if (injector.site_dark_at(d.site, d.arrival)) {
      ++stats.outage_drops;
      continue;
    }
    if (roll(util::hash_combine(copy_key, kDelaySalt),
             plan.delay_spike_rate)) {
      util::Rng rng{util::hash_combine(copy_key, kDelaySalt + 1)};
      d.arrival += util::SimTime::from_seconds(
          rng.exponential(plan.delay_spike_mean_ms) / 1000.0);
      ++stats.delayed;
    }
    deliveries[out++] = std::move(d);
  }
  deliveries.resize(out);
}

}  // namespace

void FaultInjector::apply_reply_faults(
    std::vector<Delivery>& deliveries, net::Block24 block,
    std::uint32_t round, std::uint32_t attempt, util::SimTime tx,
    std::size_t site_count, util::SimTime window_start,
    util::SimTime window_length, FaultStats& stats) const {
  apply_reply_faults_impl(*this, deliveries, block, round, attempt, tx,
                          site_count, window_start, window_length, stats);
}

void FaultInjector::apply_reply_faults(
    std::vector<DeliveryView>& deliveries, net::Block24 block,
    std::uint32_t round, std::uint32_t attempt, util::SimTime tx,
    std::size_t site_count, util::SimTime window_start,
    util::SimTime window_length, FaultStats& stats) const {
  apply_reply_faults_impl(*this, deliveries, block, round, attempt, tx,
                          site_count, window_start, window_length, stats);
}

void record_fault_metrics(const FaultStats& stats,
                          obs::MetricsRegistry& registry) {
  // Called once per round, so plain name lookups are plenty cheap.
  registry.counter("vp_fault_probes_lost_total").add(stats.probes_lost);
  registry.counter("vp_fault_replies_generated_total")
      .add(stats.replies_generated);
  registry.counter("vp_fault_replies_lost_total").add(stats.replies_lost);
  registry.counter("vp_fault_rate_limited_total").add(stats.rate_limited);
  registry.counter("vp_fault_outage_drops_total").add(stats.outage_drops);
  registry.counter("vp_fault_withdrawn_total").add(stats.withdrawn);
  registry.counter("vp_fault_diverted_total").add(stats.diverted);
  registry.counter("vp_fault_delayed_total").add(stats.delayed);
  registry.counter("vp_fault_retries_total").add(stats.retries);
  registry.counter("vp_fault_recovered_total").add(stats.recovered);
}

}  // namespace vp::sim
