// The simulated Internet dataplane.
//
// Takes raw probe packets from the Verfploeter prober, delivers them to the
// target host (if the block is responsive this round), and routes the raw
// Echo Reply bytes to the anycast site serving that block's catchment —
// exactly the mechanism of Figure 1 (right): the reply returns "to the site
// for their catchment, even if it is not the site that originated the
// query". RTTs are distance-based so reply timestamps and the late-reply
// cleaning path are realistic.
//
// Thread-safety: probe() and every model beneath it (responsiveness,
// flips, RTT jitter) are const and PURE — each stochastic decision is a
// stateless hash of (block, round, seed), with all generator state local
// to the call. The parallel probe engine (core/probe_engine.hpp) depends
// on this: concurrent probe() calls against the same InternetSim and
// RoutingTable must be data-race-free and give identical answers in any
// interleaving. Do not add mutable caches here without a lock and a
// determinism argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/routing.hpp"
#include "net/packet.hpp"
#include "sim/flips.hpp"
#include "sim/responsiveness.hpp"
#include "util/clock.hpp"

namespace vp::sim {

struct InternetConfig {
  ResponsivenessConfig responsiveness;
  FlipConfig flips;
  /// Mean of the random queuing component added to propagation delay.
  double mean_queue_delay_ms = 12.0;
  /// Extra delay (beyond the cutoff) for "late" replies.
  double late_extra_minutes = 20.0;
};

/// A reply packet arriving at one anycast site's collector.
struct Delivery {
  anycast::SiteId site = anycast::kUnknownSite;
  util::SimTime arrival;
  net::PacketBytes packet;
};

/// Non-owning variant for the allocation-free hot path: all deliveries of
/// one probe attempt are copies of the SAME reply packet (only site and
/// arrival can differ per copy), so probe_into materializes the bytes once
/// in a caller-owned scratch buffer and hands out plain (site, arrival)
/// pairs. Valid until the next probe_into call on the same scratch.
struct DeliveryView {
  anycast::SiteId site = anycast::kUnknownSite;
  util::SimTime arrival;
};

/// Batched dataplane counters: probe_into accumulates here instead of
/// touching the striped metric counters per probe; the engine flushes one
/// tally per tile via InternetSim::flush. Field meanings match the
/// vp_sim_* counters one-to-one.
struct DataplaneTally {
  std::uint64_t probes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t unresponsive = 0;
  std::uint64_t site_lookups = 0;
  std::uint64_t replies = 0;
};

class InternetSim {
 public:
  InternetSim(const topology::Topology& topo, const InternetConfig& config)
      : topo_(&topo),
        config_(config),
        responsiveness_(topo, config.responsiveness),
        flips_(config.flips) {}

  const ResponsivenessModel& responsiveness() const { return responsiveness_; }
  const FlipModel& flips() const { return flips_; }

  /// Ground-truth site for a block in a round (hot-potato + flips). This
  /// is what the paper cannot observe and we can: tests compare measured
  /// catchments against it.
  anycast::SiteId ground_truth_site(const bgp::RoutingTable& routes,
                                    net::Block24 block,
                                    std::uint32_t round) const {
    return flips_.site_in_round(routes, block, round);
  }

  /// Builds `routes`' catchment resolver up front so the first probe of a
  /// round doesn't pay the one-time block->site materialization. Safe to
  /// call concurrently and repeatedly; a no-op when precomputation is
  /// disabled. The probe engine calls this once before fanning out.
  void warm(const bgp::RoutingTable& routes) const { flips_.warm(routes); }

  /// Injects one probe packet at `tx_time` during `round`, using `routes`
  /// as the current BGP state. Returns every reply delivery it causes
  /// (empty for unresponsive/unallocated targets or malformed packets).
  std::vector<Delivery> probe(const bgp::RoutingTable& routes,
                              std::span<const std::uint8_t> packet_bytes,
                              util::SimTime tx_time,
                              std::uint32_t round) const;

  /// Allocation-free probe: identical decisions and bytes to probe(), but
  /// deliveries land in `out` as views over `reply_scratch` (cleared and
  /// refilled here; the reply bytes are built once per attempt instead of
  /// copied per delivery). With `tally`/`resolve_tally` non-null, metric
  /// increments accumulate there for the caller to flush per tile;
  /// otherwise the striped counters are hit directly as in probe().
  void probe_into(const bgp::RoutingTable& routes,
                  std::span<const std::uint8_t> packet_bytes,
                  util::SimTime tx_time, std::uint32_t round,
                  std::vector<DeliveryView>& out,
                  std::vector<std::uint8_t>& reply_scratch,
                  DataplaneTally* tally = nullptr,
                  ResolveTally* resolve_tally = nullptr) const;

  /// Flushes a DataplaneTally (and nothing else) to the vp_sim_* striped
  /// counters, zeroing it. ResolveTally flushes via FlipModel::flush.
  static void flush(DataplaneTally& tally);

 private:
  double rtt_ms(net::Block24 block, anycast::SiteId site,
                const bgp::RoutingTable& routes, std::uint64_t jitter_key)
      const;

  const topology::Topology* topo_;
  InternetConfig config_;
  ResponsivenessModel responsiveness_;
  FlipModel flips_;
};

}  // namespace vp::sim
