#include "sim/responsiveness.hpp"

#include "util/rng.hpp"

namespace vp::sim {

namespace {
/// Maps a 64-bit hash to a uniform double in [0,1).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

std::uint64_t ResponsivenessModel::block_hash(net::Block24 block,
                                              std::uint64_t stream) const {
  return util::hash_combine(util::hash_combine(config_.seed, stream),
                            block.index());
}

bool ResponsivenessModel::ever_responds(net::Block24 block) const {
  double rate = config_.base_responsive_rate;
  if (const auto* info = topo_->block_info(block)) {
    rate *= topo_->as_at(info->as_id).icmp_response_scale;
  } else {
    return false;  // unallocated space never replies
  }
  return to_unit(block_hash(block, /*stream=*/1)) < rate;
}

bool ResponsivenessModel::responds_in_round(net::Block24 block,
                                            std::uint32_t round) const {
  if (!ever_responds(block)) return false;
  const std::uint64_t h =
      util::hash_combine(block_hash(block, /*stream=*/2), round);
  return to_unit(h) >= config_.round_down_rate;
}

ReplyBehavior ResponsivenessModel::behavior(net::Block24 block,
                                            std::uint32_t round) const {
  ReplyBehavior out;
  out.responds = responds_in_round(block, round);
  if (!out.responds) return out;
  const std::uint64_t h =
      util::hash_combine(block_hash(block, /*stream=*/3), round);
  // Slice independent uniforms out of one hash chain.
  util::Rng rng{h};
  if (rng.chance(config_.heavy_duplicate_rate)) {
    out.copies = static_cast<std::uint8_t>(8 + rng.below(56));
  } else if (rng.chance(config_.duplicate_rate)) {
    out.copies = 2;
  }
  out.alias = rng.chance(config_.alias_rate);
  out.late = rng.chance(config_.late_rate);
  return out;
}

std::uint8_t ResponsivenessModel::responsive_host(net::Block24 block) const {
  // Hosts cluster at low addresses; 1 + hash%250 avoids .0 and .255.
  return static_cast<std::uint8_t>(
      1 + block_hash(block, /*stream=*/4) % 250);
}

bool ResponsivenessModel::is_live_host(net::Block24 block,
                                       std::uint8_t host) const {
  if (host == responsive_host(block)) return true;
  const std::uint64_t h =
      util::hash_combine(block_hash(block, /*stream=*/5), host);
  return to_unit(h) < config_.secondary_live_rate;
}

}  // namespace vp::sim
