// Host responsiveness model: which /24 blocks answer pings, and how.
//
// Calibrated to the paper's observations:
//  * ~55% of probed blocks reply (Table 4; consistent with the 56-59% of
//    the ISI hitlist studies [17]);
//  * responsiveness churns between rounds — a median of ~2.4% of VPs go
//    non-responsive per round and about as many return (Figure 9);
//  * ~2% of replies are duplicates, some hosts replying up to thousands
//    of times (§4, data cleaning);
//  * some hosts reply from a different address than probed (§4);
//  * a small tail of replies arrives after the measurement cutoff;
//  * whole ASes can be ICMP-unfriendly (icmp_response_scale, e.g. the
//    Korea-heavy unmappable region of Figure 4a).
//
// All decisions are deterministic hashes of (seed, block, round), so any
// round can be re-evaluated independently and reproducibly. This also
// makes every const method safe to call from concurrent probe workers
// (core/probe_engine.hpp): the model holds no per-call mutable state.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "topology/topology.hpp"

namespace vp::sim {

struct ResponsivenessConfig {
  std::uint64_t seed = 7;
  /// Probability a block's representative host ever answers pings (before
  /// the per-AS icmp_response_scale multiplier).
  double base_responsive_rate = 0.68;
  /// Probability that an otherwise-responsive block is down in a round.
  double round_down_rate = 0.024;
  /// Probability a reply is sent twice.
  double duplicate_rate = 0.02;
  /// Probability a reply is sent many times (tens; "in some cases up to
  /// thousands" — we cap the tail for runtime sanity).
  double heavy_duplicate_rate = 0.0002;
  /// Probability a host replies from a different address than probed.
  double alias_rate = 0.012;
  /// Probability the (single) reply arrives after the late cutoff.
  double late_rate = 0.003;
  /// Probability that any given non-representative host offset is also
  /// alive (multi-target probing can find these).
  double secondary_live_rate = 0.12;
};

/// How one probe of one block in one round behaves.
struct ReplyBehavior {
  bool responds = false;
  std::uint8_t copies = 1;     // replies emitted (duplicates when > 1)
  bool alias = false;          // reply source differs from probed target
  bool late = false;           // reply arrives past the measurement window
};

class ResponsivenessModel {
 public:
  ResponsivenessModel(const topology::Topology& topo,
                      const ResponsivenessConfig& config)
      : topo_(&topo), config_(config) {}

  const ResponsivenessConfig& config() const { return config_; }

  /// Persistent property: does this block's host answer pings at all?
  bool ever_responds(net::Block24 block) const;

  /// Is the block up in the given round? (ever_responds AND not in a
  /// transient down period).
  bool responds_in_round(net::Block24 block, std::uint32_t round) const;

  /// Full behavior of the reply (duplicates / alias / lateness).
  ReplyBehavior behavior(net::Block24 block, std::uint32_t round) const;

  /// The host offset within the block that answers (the "representative
  /// address"), stable per block.
  std::uint8_t responsive_host(net::Block24 block) const;

  /// Whether a specific host offset within the block is alive. The
  /// representative host always is (when the block responds at all); a
  /// sprinkling of secondary hosts is too, which is what multi-target
  /// probing (the Trinocular-style ablation) can discover.
  bool is_live_host(net::Block24 block, std::uint8_t host) const;

 private:
  std::uint64_t block_hash(net::Block24 block, std::uint64_t stream) const;

  const topology::Topology* topo_;
  ResponsivenessConfig config_;
};

}  // namespace vp::sim
