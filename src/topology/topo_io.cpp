#include "topology/topo_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace vp::topology {
namespace {

using util::hash_combine;

constexpr std::uint64_t kMagic = 0x5650544f504f3101ULL;  // "VPTOPO1\x01"

// --- little primitives over a byte buffer ---------------------------------

struct Writer {
  std::string out;

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    out.append(bytes, sizeof(T));
  }

  void put_f64(double value) { put(std::bit_cast<std::uint64_t>(value)); }

  void put_str(const std::string& s) {
    put(static_cast<std::uint16_t>(s.size()));
    out.append(s);
  }
};

struct Reader {
  const std::string& in;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (pos + sizeof(T) > in.size()) {
      ok = false;
      return value;
    }
    std::memcpy(&value, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  double get_f64() { return std::bit_cast<double>(get<std::uint64_t>()); }

  std::string get_str() {
    const auto len = get<std::uint16_t>();
    if (pos + len > in.size()) {
      ok = false;
      return {};
    }
    std::string s = in.substr(pos, len);
    pos += len;
    return s;
  }
};

}  // namespace

std::uint64_t structural_digest(const Topology& topo) {
  std::uint64_t h = 0x746f706f;  // "topo"
  const auto fold = [&h](std::uint64_t v) { h = hash_combine(h, v); };
  fold(topo.as_count());
  for (const AsNode& node : topo.ases()) {
    fold(node.asn.value);
    fold(static_cast<std::uint64_t>(node.tier));
    fold((static_cast<std::uint64_t>(node.load_balanced) << 1) |
         static_cast<std::uint64_t>(node.multipath));
    fold(node.pops.size());
    for (const Pop& pop : node.pops) fold(pop.center_id);
    fold(node.links.size());
    for (const Link& link : node.links) {
      fold(link.neighbor);
      fold((static_cast<std::uint64_t>(link.rel) << 32) |
           (static_cast<std::uint64_t>(link.local_pop) << 16) |
           link.remote_pop);
      fold((static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(link.local_pref_bonus))
            << 8) |
           static_cast<std::uint8_t>(link.reverse_local_pref_bonus));
    }
    fold((static_cast<std::uint64_t>(node.first_prefix) << 32) |
         node.prefix_count);
    fold((static_cast<std::uint64_t>(node.first_block) << 32) |
         node.block_count);
  }
  fold(topo.announced_prefixes().size());
  for (const AnnouncedPrefix& p : topo.announced_prefixes()) {
    fold((static_cast<std::uint64_t>(p.prefix.base().value()) << 8) |
         p.prefix.length());
    fold(p.origin);
  }
  fold(topo.block_count());
  for (const BlockInfo& b : topo.blocks()) {
    fold((static_cast<std::uint64_t>(b.block.index()) << 32) | b.as_id);
    fold((static_cast<std::uint64_t>(b.pop) << 32) | b.prefix_index);
  }
  fold(topo.geodb().size());
  topo.geodb().for_each([&](net::Block24 block, const geo::GeoRecord& rec) {
    fold((static_cast<std::uint64_t>(block.index()) << 24) |
         (static_cast<std::uint64_t>(rec.center_id) << 8) |
         static_cast<std::uint64_t>(rec.continent));
  });
  return h;
}

std::string serialize_topology(const Topology& topo) {
  Writer w;
  w.put(kMagic);
  w.put(structural_digest(topo));
  w.put(static_cast<std::uint64_t>(topo.as_count()));
  w.put(static_cast<std::uint64_t>(topo.announced_prefixes().size()));
  w.put(static_cast<std::uint64_t>(topo.block_count()));
  w.put(static_cast<std::uint64_t>(topo.geodb().size()));
  for (const AsNode& node : topo.ases()) {
    w.put(node.asn.value);
    w.put(static_cast<std::uint8_t>(node.tier));
    w.put(static_cast<std::uint8_t>(node.load_balanced));
    w.put(static_cast<std::uint8_t>(node.multipath));
    w.put_str(node.name);
    w.put_f64(node.flap_scale);
    w.put_f64(node.icmp_response_scale);
    w.put(static_cast<std::uint16_t>(node.pops.size()));
    for (const Pop& pop : node.pops) {
      w.put(pop.center_id);
      w.put_f64(pop.location.lat);
      w.put_f64(pop.location.lon);
    }
    // Links are stored for both directions and reassigned verbatim on
    // load, reproducing the exact adjacency order (and the mirrored
    // reverse bonuses) the generator produced.
    w.put(static_cast<std::uint32_t>(node.links.size()));
    for (const Link& link : node.links) {
      w.put(link.neighbor);
      w.put(static_cast<std::uint8_t>(link.rel));
      w.put(link.local_pop);
      w.put(link.remote_pop);
      w.put(link.local_pref_bonus);
      w.put(link.reverse_local_pref_bonus);
    }
  }
  for (const AnnouncedPrefix& p : topo.announced_prefixes()) {
    w.put(p.prefix.base().value());
    w.put(p.prefix.length());
    w.put(p.origin);
  }
  for (const BlockInfo& b : topo.blocks()) {
    w.put(b.block.index());
    w.put(b.as_id);
    w.put(b.pop);
    w.put(b.prefix_index);
  }
  topo.geodb().for_each([&](net::Block24 block, const geo::GeoRecord& rec) {
    w.put(block.index());
    w.put_f64(rec.location.lat);
    w.put_f64(rec.location.lon);
    w.put(rec.center_id);
    w.put(rec.country[0]);
    w.put(rec.country[1]);
    w.put(static_cast<std::uint8_t>(rec.continent));
  });
  w.put(util::crc32(w.out.data(), w.out.size()));
  return std::move(w.out);
}

bool save_topology(const Topology& topo, const std::string& path) {
  return util::atomic_write_file(path, serialize_topology(topo));
}

bool deserialize_topology(const std::string& bytes, Topology& out,
                          std::string& error) {
  if (bytes.size() < sizeof(std::uint64_t) + sizeof(std::uint32_t)) {
    error = "truncated topology image";
    return false;
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (util::crc32(bytes.data(), bytes.size() - sizeof(stored_crc)) !=
      stored_crc) {
    error = "topology image CRC mismatch";
    return false;
  }
  Reader r{bytes};
  if (r.get<std::uint64_t>() != kMagic) {
    error = "not a topology image (bad magic)";
    return false;
  }
  const auto stored_digest = r.get<std::uint64_t>();
  const auto as_count = r.get<std::uint64_t>();
  const auto prefix_count = r.get<std::uint64_t>();
  const auto block_count = r.get<std::uint64_t>();
  const auto geo_count = r.get<std::uint64_t>();

  Topology topo;
  for (std::uint64_t v = 0; v < as_count && r.ok; ++v) {
    AsNode node;
    node.asn = AsNumber{r.get<std::uint32_t>()};
    node.tier = static_cast<AsTier>(r.get<std::uint8_t>());
    node.load_balanced = r.get<std::uint8_t>() != 0;
    node.multipath = r.get<std::uint8_t>() != 0;
    node.name = r.get_str();
    node.flap_scale = r.get_f64();
    node.icmp_response_scale = r.get_f64();
    const auto pop_count = r.get<std::uint16_t>();
    for (std::uint16_t i = 0; i < pop_count && r.ok; ++i) {
      Pop pop;
      pop.center_id = r.get<std::uint16_t>();
      pop.location.lat = r.get_f64();
      pop.location.lon = r.get_f64();
      node.pops.push_back(pop);
    }
    const auto link_count = r.get<std::uint32_t>();
    std::vector<Link> links;
    for (std::uint32_t i = 0; i < link_count && r.ok; ++i) {
      Link link;
      link.neighbor = r.get<AsId>();
      link.rel = static_cast<Relationship>(r.get<std::uint8_t>());
      link.local_pop = r.get<std::uint16_t>();
      link.remote_pop = r.get<std::uint16_t>();
      link.local_pref_bonus = r.get<std::int8_t>();
      link.reverse_local_pref_bonus = r.get<std::int8_t>();
      links.push_back(link);
    }
    const AsId id = topo.add_as(std::move(node));
    topo.as_mutable(id).links = std::move(links);
  }
  for (std::uint64_t i = 0; i < prefix_count && r.ok; ++i) {
    const auto base = r.get<std::uint32_t>();
    const auto len = r.get<std::uint8_t>();
    const auto origin = r.get<AsId>();
    topo.announce(origin, net::Prefix{net::Ipv4Address{base}, len});
  }
  for (std::uint64_t i = 0; i < block_count && r.ok; ++i) {
    const auto index = r.get<std::uint32_t>();
    const auto as_id = r.get<AsId>();
    const auto pop = r.get<std::uint16_t>();
    const auto prefix_index = r.get<std::uint32_t>();
    topo.add_block(net::Block24{index}, as_id, pop, prefix_index);
  }
  for (std::uint64_t i = 0; i < geo_count && r.ok; ++i) {
    const auto index = r.get<std::uint32_t>();
    geo::GeoRecord rec;
    rec.location.lat = r.get_f64();
    rec.location.lon = r.get_f64();
    rec.center_id = r.get<std::uint16_t>();
    rec.country[0] = r.get<char>();
    rec.country[1] = r.get<char>();
    rec.country[2] = '\0';
    rec.continent = static_cast<geo::Continent>(r.get<std::uint8_t>());
    topo.geodb_mutable().add(net::Block24{index}, rec);
  }
  if (!r.ok) {
    error = "truncated topology image";
    return false;
  }
  topo.seal();
  if (structural_digest(topo) != stored_digest) {
    error = "rebuilt topology does not match stored digest";
    return false;
  }
  out = std::move(topo);
  return true;
}

bool load_topology(const std::string& path, Topology& out,
                   std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_topology(buffer.str(), out, error);
}

}  // namespace vp::topology
