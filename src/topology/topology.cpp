#include "topology/topology.hpp"

#include <algorithm>
#include <cassert>

namespace vp::topology {

std::string_view to_string(AsTier tier) {
  switch (tier) {
    case AsTier::kTransit: return "transit";
    case AsTier::kRegional: return "regional";
    case AsTier::kStub: return "stub";
  }
  return "?";
}

std::string_view to_string(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

AsId Topology::find_as(AsNumber asn) const {
  const auto it = by_asn_.find(asn.value);
  return it == by_asn_.end() ? kNoAs : it->second;
}

const BlockInfo* Topology::block_info(net::Block24 block) const {
  const std::uint32_t off = block.index() - block_first_;  // wraps if below
  if (off >= block_slots_.size()) return nullptr;
  const std::uint32_t slot = block_slots_[off];
  return slot == kNoBlockSlot ? nullptr : &blocks_[slot];
}

void Topology::index_block(net::Block24 block, std::uint32_t index) {
  const std::uint32_t b = block.index();
  if (block_slots_.empty()) {
    block_first_ = b;
    block_slots_.assign(1, kNoBlockSlot);
  } else if (b < block_first_) {
    block_slots_.insert(block_slots_.begin(), block_first_ - b, kNoBlockSlot);
    block_first_ = b;
  } else if (b - block_first_ >= block_slots_.size()) {
    block_slots_.resize(b - block_first_ + 1, kNoBlockSlot);
  }
  block_slots_[b - block_first_] = index;
}

AsId Topology::add_as(AsNode node) {
  const auto id = static_cast<AsId>(ases_.size());
  by_asn_.emplace(node.asn.value, id);
  node.first_prefix = 0;
  node.prefix_count = 0;
  node.first_block = 0;
  node.block_count = 0;
  ases_.push_back(std::move(node));
  return id;
}

void Topology::link(AsId lower, std::uint16_t lower_pop, AsId upper,
                    std::uint16_t upper_pop,
                    Relationship lower_sees_upper_as) {
  assert(lower < ases_.size() && upper < ases_.size());
  // Refuse duplicate edges between the same AS pair.
  for (const Link& l : ases_[lower].links)
    if (l.neighbor == upper) return;
  ases_[lower].links.push_back(
      Link{upper, lower_sees_upper_as, lower_pop, upper_pop});
  const Relationship reciprocal =
      lower_sees_upper_as == Relationship::kProvider ? Relationship::kCustomer
      : lower_sees_upper_as == Relationship::kCustomer
          ? Relationship::kProvider
          : Relationship::kPeer;
  ases_[upper].links.push_back(Link{lower, reciprocal, upper_pop, lower_pop});
}

void Topology::set_local_pref_bonus(AsId from, AsId to, std::int8_t bonus) {
  bool found = false;
  for (Link& l : ases_[from].links) {
    if (l.neighbor == to) {
      l.local_pref_bonus = bonus;
      found = true;
      break;
    }
  }
  if (!found) return;
  // Mirror onto the neighbor's directed link so an advertisement over
  // to->from can price the receiver's policy without scanning its links.
  for (Link& l : ases_[to].links) {
    if (l.neighbor == from) {
      l.reverse_local_pref_bonus = bonus;
      return;
    }
  }
}

std::uint32_t Topology::announce(AsId as_id, net::Prefix prefix) {
  const auto index = static_cast<std::uint32_t>(prefixes_.size());
  prefixes_.push_back(AnnouncedPrefix{prefix, as_id});
  trie_.insert(prefix, index);
  AsNode& node = ases_[as_id];
  if (node.prefix_count == 0) node.first_prefix = index;
  ++node.prefix_count;
  return index;
}

void Topology::add_block(net::Block24 block, AsId as_id, std::uint16_t pop,
                         std::uint32_t prefix_index) {
  const auto index = static_cast<std::uint32_t>(blocks_.size());
  blocks_.push_back(BlockInfo{block, as_id, pop, prefix_index});
  index_block(block, index);
  AsNode& node = ases_[as_id];
  if (node.block_count == 0) node.first_block = index;
  ++node.block_count;
}

void Topology::begin_bulk_blocks(std::size_t total) {
  blocks_.assign(total, BlockInfo{});
  block_slots_.clear();
  block_first_ = 0;
}

void Topology::finish_bulk_blocks() {
  if (blocks_.empty()) return;
  std::uint32_t lo = 0xffffffff, hi = 0;
  for (const BlockInfo& info : blocks_) {
    lo = std::min(lo, info.block.index());
    hi = std::max(hi, info.block.index());
  }
  block_first_ = lo;
  block_slots_.assign(hi - lo + 1, kNoBlockSlot);
  for (std::uint32_t i = 0; i < blocks_.size(); ++i)
    block_slots_[blocks_[i].block.index() - lo] = i;
}

std::size_t Topology::memory_bytes() const {
  std::size_t bytes = ases_.capacity() * sizeof(AsNode) +
                      prefixes_.capacity() * sizeof(AnnouncedPrefix) +
                      blocks_.capacity() * sizeof(BlockInfo) +
                      block_slots_.capacity() * sizeof(std::uint32_t) +
                      by_asn_.size() * (sizeof(std::uint32_t) + sizeof(AsId) +
                                        2 * sizeof(void*)) +
                      trie_.memory_bytes() + geodb_.memory_bytes();
  for (const AsNode& node : ases_) {
    bytes += node.pops.capacity() * sizeof(Pop) +
             node.links.capacity() * sizeof(Link);
  }
  return bytes;
}

void Topology::seal() {
  // Generation appends prefixes and blocks per-AS contiguously, so the
  // first/count ranges recorded by announce()/add_block() are already
  // consistent; just sanity-check in debug builds.
#ifndef NDEBUG
  for (const AsNode& node : ases_) {
    for (std::uint32_t i = 0; i < node.block_count; ++i)
      assert(blocks_[node.first_block + i].as_id ==
             static_cast<AsId>(&node - ases_.data()));
    // The mirrored reverse bonus (set_local_pref_bonus) must agree with
    // what a scan of the neighbor's adjacency list would find.
    for (const Link& l : node.links) {
      for (const Link& back : ases_[l.neighbor].links) {
        if (back.neighbor == static_cast<AsId>(&node - ases_.data())) {
          assert(l.reverse_local_pref_bonus == back.local_pref_bonus);
          break;
        }
      }
    }
  }
#endif
}

}  // namespace vp::topology
